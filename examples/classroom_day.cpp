// A day of unplugged PDC: run a sequence of activity simulations the way
// an instructor might sequence a workshop, printing each classroom script
// and the observed result. Demonstrates the simulation side of the public
// API (pdcu::act).
#include <cstdio>

#include "pdcu/activities/registry.hpp"
#include "pdcu/activities/sorting.hpp"
#include "pdcu/core/curation.hpp"
#include "pdcu/runtime/trace.hpp"

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2020;

  // Period 1: warm up with the tournament minimum, scripted in full.
  {
    std::printf("=== Period 1: FindSmallestCard ===\n");
    pdcu::rt::TraceLog trace;
    std::vector<pdcu::act::Value> cards = {42, 17, 93, 8, 61, 25, 77, 34};
    auto result = pdcu::act::find_smallest_card(cards, 4, &trace);
    std::printf("%s", trace.render_script().c_str());
    std::printf("-> minimum %lld in %lld rounds (%lld comparisons)\n\n",
                static_cast<long long>(result.minimum),
                static_cast<long long>(result.rounds),
                static_cast<long long>(result.comparisons));
  }

  // Period 2: the full odd-even dramatization, scripted.
  {
    std::printf("=== Period 2: OddEvenTranspositionSort ===\n");
    pdcu::rt::TraceLog trace;
    std::vector<pdcu::act::Value> row = {6, 3, 8, 1};
    auto result = pdcu::act::odd_even_transposition(row, &trace);
    std::printf("%s", trace.render_script().c_str());
    std::printf("-> sorted row:");
    for (auto v : result.sorted) {
      std::printf(" %lld", static_cast<long long>(v));
    }
    std::printf("\n\n");
  }

  // Periods 3+: run every registered simulation linked from the curation,
  // in curation order, summarizing each.
  std::printf("=== The rest of the day: every curated dramatization ===\n");
  int period = 3;
  int green = 0;
  int total = 0;
  for (const auto& activity : pdcu::core::curation()) {
    if (activity.simulation.empty()) continue;
    const auto* sim = pdcu::act::find_simulation(activity.simulation);
    if (sim == nullptr) continue;
    auto report = sim->run(seed);
    ++total;
    if (report.ok) ++green;
    std::printf("[period %2d] %-28s %s\n            %s\n", period++,
                activity.title.c_str(), report.ok ? "(ok)" : "(FAILED)",
                report.summary.c_str());
  }
  std::printf("\n%d/%d dramatizations behaved as the literature "
              "describes.\n",
              green, total);
  return green == total ? 0 : 1;
}
