// Where should the community write new unplugged activities? Reproduces
// the gap analysis of §III.B/C/E and ranks the most impactful openings —
// the workflow the paper anticipates for activity authors (§II.C).
#include <algorithm>
#include <cstdio>

#include "pdcu/core/repository.hpp"
#include "pdcu/core/views.hpp"

int main() {
  auto repo = pdcu::core::Repository::builtin();
  auto gaps = repo.gaps();

  std::printf("%s\n", gaps.render_report().c_str());

  // Rank knowledge units by how far they are from full coverage, weighting
  // units with fewer activities higher — a simple "where to contribute"
  // heuristic.
  std::printf("=== Suggested contribution targets ===\n");
  struct Target {
    std::string name;
    double score;
    std::size_t missing;
  };
  std::vector<Target> targets;
  for (const auto& row : repo.coverage().cs2013_table()) {
    const std::size_t missing = row.num_outcomes - row.covered_outcomes;
    if (missing == 0) continue;
    const double scarcity =
        1.0 / (1.0 + static_cast<double>(row.total_activities));
    targets.push_back(
        {row.unit_name, static_cast<double>(missing) * scarcity, missing});
  }
  std::sort(targets.begin(), targets.end(),
            [](const Target& a, const Target& b) { return a.score > b.score; });
  for (const auto& target : targets) {
    std::printf("  %-50s %zu uncovered outcomes (priority %.2f)\n",
                target.name.c_str(), target.missing, target.score);
  }

  std::printf("\nThe paper's own conclusion (SSIII.E): distributed "
              "systems, cloud computing, and power consumption lack "
              "unplugged materials; tactile and auditory activities are "
              "scarce.\n");
  return 0;
}
