// The activity-author workflow of §II.A: scaffold a new activity from the
// Fig. 1 template (the `hugo new` equivalent), fill it in, lint it like
// the curator reviewing a pull request would, and preview its rendering.
#include <cstdio>

#include "pdcu/core/activity_io.hpp"
#include "pdcu/core/archetype.hpp"
#include "pdcu/core/repository.hpp"
#include "pdcu/core/validate.hpp"
#include "pdcu/site/site.hpp"

int main() {
  // 1. `pdcu new activities/humanscan.md` — a pre-populated template.
  std::printf("=== scaffolded template (Fig. 1) ===\n%s\n",
              pdcu::core::instantiate_activity("HumanScan",
                                               pdcu::Date{2020, 2, 1})
                  .c_str());

  // 2. The author fills in the activity. Parallel prefix (scan) is one of
  // the gaps §III.C calls out, so this hypothetical contribution would
  // have high impact in the TCPP view.
  pdcu::core::Activity draft;
  draft.title = "HumanScan";
  draft.slug = "humanscan";
  draft.date = pdcu::Date{2020, 2, 1};
  draft.year = 2020;
  draft.authors = {"A. Contributor"};
  draft.details =
      "Students in a row hold numbers. In round k, each student adds the "
      "value held by the student 2^k places to their left (if any). After "
      "ceil(log2 n) rounds every student holds the prefix sum of the row - "
      "the parallel scan made kinesthetic.";
  draft.accessibility =
      "Standing row with card exchanges; a seated variation passes "
      "running-total slips down each row of desks.";
  draft.assessment = "No formal assessment yet; first classroom run "
                     "planned.";
  draft.citations.push_back(
      {"A. Contributor, classroom materials, 2020.", ""});
  draft.cs2013 = {"PD_ParallelAlgorithms"};
  draft.cs2013details = {"PAAP_4"};
  draft.tcpp = {"TCPP_Algorithms"};
  draft.tcppdetails = {"K_Scan"};
  draft.courses = {"CS2", "DSA"};
  draft.senses = {"movement", "visual"};
  draft.mediums = {"role-play", "cards"};

  // 3. Curator review: lint the draft.
  auto findings = pdcu::core::validate_activity(draft);
  std::printf("=== curator lint ===\n");
  if (findings.empty()) std::printf("clean - no findings\n");
  for (const auto& f : findings) {
    std::printf("%s [%s] %s\n",
                f.severity == pdcu::core::Severity::kError ? "error  "
                                                           : "warning",
                f.code.c_str(), f.message.c_str());
  }
  std::printf("publishable: %s\n\n",
              pdcu::core::is_publishable(findings) ? "yes" : "no");

  // 4. Serialize to the Markdown content file that would be committed.
  std::printf("=== content file ===\n%s\n",
              pdcu::core::write_activity(draft).c_str());

  // 5. Preview the Fig. 3 header.
  std::printf("=== rendered header ===\n%s",
              pdcu::site::render_activity_header_ansi(draft).c_str());

  // 6. Impact check: before this contribution, K_Scan has no coverage.
  auto repo = pdcu::core::Repository::builtin();
  auto scan_pages = repo.index().pages("tcppdetails", "K_Scan");
  std::printf("\nActivities covering K_Scan in the existing curation: %zu "
              "(a gap this draft would fill)\n",
              scan_pages.size());
  return 0;
}
