// Plan a course's unplugged sessions: the educator workflow of §II.C made
// constructive. Greedy coverage-maximizing selection per course, the
// link-rot audit for the chosen activities, and the simulations to rehearse.
//
//   $ ./lesson_plan [course] [sessions]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "pdcu/activities/registry.hpp"
#include "pdcu/core/link_audit.hpp"
#include "pdcu/core/planner.hpp"
#include "pdcu/core/repository.hpp"

int main(int argc, char** argv) {
  const char* course = argc > 1 ? argv[1] : "CS1";
  const std::size_t sessions =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;

  auto repo = pdcu::core::Repository::builtin();
  auto plan = pdcu::core::plan_course(repo.activities(), course, sessions);
  if (plan.sessions.empty()) {
    std::fprintf(stderr, "no activities recommended for '%s'\n", course);
    return 1;
  }
  std::printf("%s\n", plan.render().c_str());

  // Preparation notes: which sessions have materials to print or mirror,
  // and which have a simulation to rehearse with.
  auto audit = pdcu::core::audit_links(repo.activities());
  std::printf("Preparation:\n");
  for (const auto& session : plan.sessions) {
    const auto* activity = session.activity;
    auto entry = std::find_if(audit.begin(), audit.end(),
                              [&](const pdcu::core::LinkAuditEntry& e) {
                                return e.slug == activity->slug;
                              });
    std::printf("  %-28s ", activity->title.c_str());
    if (entry != audit.end() &&
        entry->status == pdcu::core::LinkStatus::kSelfContained) {
      std::printf("details inline; ");
    } else if (entry != audit.end() &&
               entry->status == pdcu::core::LinkStatus::kKnownDead) {
      std::printf("original materials lost - use inline details; ");
    } else {
      std::printf("materials: %s ; ", activity->origin_url.c_str());
    }
    if (!activity->simulation.empty() &&
        pdcu::act::find_simulation(activity->simulation) != nullptr) {
      std::printf("rehearse: pdcu run %s\n", activity->simulation.c_str());
    } else {
      std::printf("no simulation (pure analogy)\n");
    }
  }

  // Rehearse the first session right away.
  const auto* first = plan.sessions.front().activity;
  if (!first->simulation.empty()) {
    const auto* sim = pdcu::act::find_simulation(first->simulation);
    if (sim != nullptr) {
      auto report = sim->run(2020);
      std::printf("\nRehearsal of %s:\n%s\n", first->title.c_str(),
                  report.summary.c_str());
    }
  }
  return 0;
}
