// Quickstart: load the built-in PDCunplugged curation, browse it the way
// an educator would, and regenerate the paper's coverage tables.
//
//   $ ./quickstart
#include <cstdio>

#include "pdcu/core/repository.hpp"
#include "pdcu/core/views.hpp"
#include "pdcu/site/site.hpp"

int main() {
  // 1. Open the repository (38 curated activities, fully indexed).
  auto repo = pdcu::core::Repository::builtin();
  std::printf("PDCunplugged: %zu curated unplugged PDC activities\n\n",
              repo.activities().size());

  // 2. An educator teaching CS1 asks: what can I run in my class?
  std::printf("Activities recommended for CS1:\n");
  for (const auto& page : repo.index().pages("courses", "CS1")) {
    std::printf("  - %s\n", page.title.c_str());
  }

  // 3. Want something with a deck of cards (the Accessibility view)?
  std::printf("\nActivities using cards:\n");
  for (const auto& page : repo.index().pages("medium", "cards")) {
    std::printf("  - %s\n", page.title.c_str());
  }

  // 4. Inspect one activity's header, as rendered on the site (Fig. 3).
  const auto* activity = repo.find("findsmallestcard");
  std::printf("\n%s\n",
              pdcu::site::render_activity_header_ansi(*activity).c_str());

  // 5. Regenerate the paper's coverage analysis (Tables I and II).
  auto coverage = repo.coverage();
  std::printf("CS2013 coverage (Table I):\n%s\n",
              coverage.render_cs2013_table().c_str());
  std::printf("TCPP coverage (Table II):\n%s\n",
              coverage.render_tcpp_table().c_str());

  // 6. And the curation statistics of SSIII.A / SSIII.D.
  std::printf("%s\n", repo.stats().render_report().c_str());
  return 0;
}
