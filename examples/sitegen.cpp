// End-to-end static-site generation: export the curation to a content
// directory (what lives in the GitHub repo), load it back (a contributor
// clone), and build the browsable HTML site (pdcunplugged.org).
//
//   $ ./sitegen [content-dir] [out-dir]
#include <cstdio>

#include "pdcu/core/repository.hpp"
#include "pdcu/site/site.hpp"

int main(int argc, char** argv) {
  const char* content_dir = argc > 1 ? argv[1] : "pdcu-content";
  const char* out_dir = argc > 2 ? argv[2] : "public";

  // 1. Export the curation as Markdown content files.
  auto builtin = pdcu::core::Repository::builtin();
  if (auto status = builtin.export_to(content_dir); !status) {
    std::fprintf(stderr, "export failed: %s\n",
                 status.error().message.c_str());
    return 1;
  }
  std::printf("exported %zu activities to %s/activities/\n",
              builtin.activities().size(), content_dir);

  // 2. Load them back, as a fresh clone would.
  auto loaded = pdcu::core::Repository::load(content_dir);
  if (!loaded) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.error().message.c_str());
    return 1;
  }

  // 3. Lint before publishing.
  auto findings = loaded.value().validate();
  if (!pdcu::core::is_publishable(findings)) {
    std::fprintf(stderr, "curation not publishable (%zu findings)\n",
                 findings.size());
    return 1;
  }

  // 4. Generate the site.
  auto site = pdcu::site::write_site(loaded.value(), out_dir);
  if (!site) {
    std::fprintf(stderr, "site build failed: %s\n",
                 site.error().message.c_str());
    return 1;
  }
  std::printf("built %zu pages into %s/ in %lld us\n",
              site.value().pages.size(), out_dir,
              static_cast<long long>(site.value().build_time.count()));
  std::printf("open %s/index.html to browse; per-term pages live under "
              "%s/<taxonomy>/<term>/\n",
              out_dir, out_dir);
  return 0;
}
