file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_tcpp.dir/bench/bench_table2_tcpp.cpp.o"
  "CMakeFiles/bench_table2_tcpp.dir/bench/bench_table2_tcpp.cpp.o.d"
  "bench/bench_table2_tcpp"
  "bench/bench_table2_tcpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_tcpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
