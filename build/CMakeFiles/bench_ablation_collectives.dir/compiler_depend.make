# Empty compiler generated dependencies file for bench_ablation_collectives.
# This may be replaced when dependencies are built.
