file(REMOVE_RECURSE
  "CMakeFiles/bench_sitegen.dir/bench/bench_sitegen.cpp.o"
  "CMakeFiles/bench_sitegen.dir/bench/bench_sitegen.cpp.o.d"
  "bench/bench_sitegen"
  "bench/bench_sitegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sitegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
