# Empty compiler generated dependencies file for bench_sitegen.
# This may be replaced when dependencies are built.
