file(REMOVE_RECURSE
  "CMakeFiles/bench_accessibility.dir/bench/bench_accessibility.cpp.o"
  "CMakeFiles/bench_accessibility.dir/bench/bench_accessibility.cpp.o.d"
  "bench/bench_accessibility"
  "bench/bench_accessibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accessibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
