# Empty dependencies file for bench_accessibility.
# This may be replaced when dependencies are built.
