file(REMOVE_RECURSE
  "CMakeFiles/bench_races.dir/bench/bench_races.cpp.o"
  "CMakeFiles/bench_races.dir/bench/bench_races.cpp.o.d"
  "bench/bench_races"
  "bench/bench_races.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_races.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
