# Empty dependencies file for bench_races.
# This may be replaced when dependencies are built.
