file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_cs2013.dir/bench/bench_table1_cs2013.cpp.o"
  "CMakeFiles/bench_table1_cs2013.dir/bench/bench_table1_cs2013.cpp.o.d"
  "bench/bench_table1_cs2013"
  "bench/bench_table1_cs2013.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_cs2013.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
