# Empty compiler generated dependencies file for bench_table1_cs2013.
# This may be replaced when dependencies are built.
