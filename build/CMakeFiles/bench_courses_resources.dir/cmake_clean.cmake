file(REMOVE_RECURSE
  "CMakeFiles/bench_courses_resources.dir/bench/bench_courses_resources.cpp.o"
  "CMakeFiles/bench_courses_resources.dir/bench/bench_courses_resources.cpp.o.d"
  "bench/bench_courses_resources"
  "bench/bench_courses_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_courses_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
