# Empty dependencies file for bench_courses_resources.
# This may be replaced when dependencies are built.
