# Empty dependencies file for bench_sync_methods.
# This may be replaced when dependencies are built.
