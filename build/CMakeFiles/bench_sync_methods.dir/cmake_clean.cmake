file(REMOVE_RECURSE
  "CMakeFiles/bench_sync_methods.dir/bench/bench_sync_methods.cpp.o"
  "CMakeFiles/bench_sync_methods.dir/bench/bench_sync_methods.cpp.o.d"
  "bench/bench_sync_methods"
  "bench/bench_sync_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sync_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
