# Empty dependencies file for bench_stabilization.
# This may be replaced when dependencies are built.
