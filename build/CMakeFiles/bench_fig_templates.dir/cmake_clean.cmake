file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_templates.dir/bench/bench_fig_templates.cpp.o"
  "CMakeFiles/bench_fig_templates.dir/bench/bench_fig_templates.cpp.o.d"
  "bench/bench_fig_templates"
  "bench/bench_fig_templates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
