# Empty compiler generated dependencies file for bench_fig_templates.
# This may be replaced when dependencies are built.
