file(REMOVE_RECURSE
  "CMakeFiles/bench_gaps.dir/bench/bench_gaps.cpp.o"
  "CMakeFiles/bench_gaps.dir/bench/bench_gaps.cpp.o.d"
  "bench/bench_gaps"
  "bench/bench_gaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
