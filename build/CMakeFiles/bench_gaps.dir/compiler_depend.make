# Empty compiler generated dependencies file for bench_gaps.
# This may be replaced when dependencies are built.
