
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_gaps.cpp" "CMakeFiles/bench_gaps.dir/bench/bench_gaps.cpp.o" "gcc" "CMakeFiles/bench_gaps.dir/bench/bench_gaps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pdcu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/site/CMakeFiles/pdcu_site.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pdcu_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/activities/CMakeFiles/pdcu_activities.dir/DependInfo.cmake"
  "/root/repo/build/src/extensions/CMakeFiles/pdcu_extensions.dir/DependInfo.cmake"
  "/root/repo/build/src/markdown/CMakeFiles/pdcu_markdown.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/pdcu_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/curriculum/CMakeFiles/pdcu_curriculum.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pdcu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
