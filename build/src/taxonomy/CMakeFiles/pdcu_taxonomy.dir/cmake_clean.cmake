file(REMOVE_RECURSE
  "CMakeFiles/pdcu_taxonomy.dir/chips.cpp.o"
  "CMakeFiles/pdcu_taxonomy.dir/chips.cpp.o.d"
  "CMakeFiles/pdcu_taxonomy.dir/taxonomy.cpp.o"
  "CMakeFiles/pdcu_taxonomy.dir/taxonomy.cpp.o.d"
  "CMakeFiles/pdcu_taxonomy.dir/term_index.cpp.o"
  "CMakeFiles/pdcu_taxonomy.dir/term_index.cpp.o.d"
  "libpdcu_taxonomy.a"
  "libpdcu_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdcu_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
