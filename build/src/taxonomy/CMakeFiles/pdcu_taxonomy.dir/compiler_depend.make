# Empty compiler generated dependencies file for pdcu_taxonomy.
# This may be replaced when dependencies are built.
