file(REMOVE_RECURSE
  "libpdcu_taxonomy.a"
)
