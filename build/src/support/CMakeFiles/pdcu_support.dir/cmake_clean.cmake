file(REMOVE_RECURSE
  "CMakeFiles/pdcu_support.dir/date.cpp.o"
  "CMakeFiles/pdcu_support.dir/date.cpp.o.d"
  "CMakeFiles/pdcu_support.dir/fs.cpp.o"
  "CMakeFiles/pdcu_support.dir/fs.cpp.o.d"
  "CMakeFiles/pdcu_support.dir/slug.cpp.o"
  "CMakeFiles/pdcu_support.dir/slug.cpp.o.d"
  "CMakeFiles/pdcu_support.dir/strings.cpp.o"
  "CMakeFiles/pdcu_support.dir/strings.cpp.o.d"
  "CMakeFiles/pdcu_support.dir/text_table.cpp.o"
  "CMakeFiles/pdcu_support.dir/text_table.cpp.o.d"
  "libpdcu_support.a"
  "libpdcu_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdcu_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
