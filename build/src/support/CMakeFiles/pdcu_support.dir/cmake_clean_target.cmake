file(REMOVE_RECURSE
  "libpdcu_support.a"
)
