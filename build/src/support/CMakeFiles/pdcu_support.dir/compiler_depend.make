# Empty compiler generated dependencies file for pdcu_support.
# This may be replaced when dependencies are built.
