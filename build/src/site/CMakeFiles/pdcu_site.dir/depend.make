# Empty dependencies file for pdcu_site.
# This may be replaced when dependencies are built.
