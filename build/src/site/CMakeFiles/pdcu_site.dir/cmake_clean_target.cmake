file(REMOVE_RECURSE
  "libpdcu_site.a"
)
