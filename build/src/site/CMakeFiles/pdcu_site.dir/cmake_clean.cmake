file(REMOVE_RECURSE
  "CMakeFiles/pdcu_site.dir/json_catalog.cpp.o"
  "CMakeFiles/pdcu_site.dir/json_catalog.cpp.o.d"
  "CMakeFiles/pdcu_site.dir/site.cpp.o"
  "CMakeFiles/pdcu_site.dir/site.cpp.o.d"
  "libpdcu_site.a"
  "libpdcu_site.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdcu_site.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
