file(REMOVE_RECURSE
  "CMakeFiles/pdcu_markdown.dir/frontmatter.cpp.o"
  "CMakeFiles/pdcu_markdown.dir/frontmatter.cpp.o.d"
  "CMakeFiles/pdcu_markdown.dir/html.cpp.o"
  "CMakeFiles/pdcu_markdown.dir/html.cpp.o.d"
  "CMakeFiles/pdcu_markdown.dir/inline_parser.cpp.o"
  "CMakeFiles/pdcu_markdown.dir/inline_parser.cpp.o.d"
  "CMakeFiles/pdcu_markdown.dir/parser.cpp.o"
  "CMakeFiles/pdcu_markdown.dir/parser.cpp.o.d"
  "libpdcu_markdown.a"
  "libpdcu_markdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdcu_markdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
