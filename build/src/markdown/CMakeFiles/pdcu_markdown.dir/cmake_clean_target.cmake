file(REMOVE_RECURSE
  "libpdcu_markdown.a"
)
