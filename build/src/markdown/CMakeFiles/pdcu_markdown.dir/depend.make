# Empty dependencies file for pdcu_markdown.
# This may be replaced when dependencies are built.
