
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/markdown/frontmatter.cpp" "src/markdown/CMakeFiles/pdcu_markdown.dir/frontmatter.cpp.o" "gcc" "src/markdown/CMakeFiles/pdcu_markdown.dir/frontmatter.cpp.o.d"
  "/root/repo/src/markdown/html.cpp" "src/markdown/CMakeFiles/pdcu_markdown.dir/html.cpp.o" "gcc" "src/markdown/CMakeFiles/pdcu_markdown.dir/html.cpp.o.d"
  "/root/repo/src/markdown/inline_parser.cpp" "src/markdown/CMakeFiles/pdcu_markdown.dir/inline_parser.cpp.o" "gcc" "src/markdown/CMakeFiles/pdcu_markdown.dir/inline_parser.cpp.o.d"
  "/root/repo/src/markdown/parser.cpp" "src/markdown/CMakeFiles/pdcu_markdown.dir/parser.cpp.o" "gcc" "src/markdown/CMakeFiles/pdcu_markdown.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pdcu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
