
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/activity.cpp" "src/core/CMakeFiles/pdcu_core.dir/activity.cpp.o" "gcc" "src/core/CMakeFiles/pdcu_core.dir/activity.cpp.o.d"
  "/root/repo/src/core/activity_parser.cpp" "src/core/CMakeFiles/pdcu_core.dir/activity_parser.cpp.o" "gcc" "src/core/CMakeFiles/pdcu_core.dir/activity_parser.cpp.o.d"
  "/root/repo/src/core/activity_writer.cpp" "src/core/CMakeFiles/pdcu_core.dir/activity_writer.cpp.o" "gcc" "src/core/CMakeFiles/pdcu_core.dir/activity_writer.cpp.o.d"
  "/root/repo/src/core/annotate.cpp" "src/core/CMakeFiles/pdcu_core.dir/annotate.cpp.o" "gcc" "src/core/CMakeFiles/pdcu_core.dir/annotate.cpp.o.d"
  "/root/repo/src/core/archetype.cpp" "src/core/CMakeFiles/pdcu_core.dir/archetype.cpp.o" "gcc" "src/core/CMakeFiles/pdcu_core.dir/archetype.cpp.o.d"
  "/root/repo/src/core/coverage.cpp" "src/core/CMakeFiles/pdcu_core.dir/coverage.cpp.o" "gcc" "src/core/CMakeFiles/pdcu_core.dir/coverage.cpp.o.d"
  "/root/repo/src/core/curation.cpp" "src/core/CMakeFiles/pdcu_core.dir/curation.cpp.o" "gcc" "src/core/CMakeFiles/pdcu_core.dir/curation.cpp.o.d"
  "/root/repo/src/core/curation_data_1.cpp" "src/core/CMakeFiles/pdcu_core.dir/curation_data_1.cpp.o" "gcc" "src/core/CMakeFiles/pdcu_core.dir/curation_data_1.cpp.o.d"
  "/root/repo/src/core/curation_data_2.cpp" "src/core/CMakeFiles/pdcu_core.dir/curation_data_2.cpp.o" "gcc" "src/core/CMakeFiles/pdcu_core.dir/curation_data_2.cpp.o.d"
  "/root/repo/src/core/gaps.cpp" "src/core/CMakeFiles/pdcu_core.dir/gaps.cpp.o" "gcc" "src/core/CMakeFiles/pdcu_core.dir/gaps.cpp.o.d"
  "/root/repo/src/core/link_audit.cpp" "src/core/CMakeFiles/pdcu_core.dir/link_audit.cpp.o" "gcc" "src/core/CMakeFiles/pdcu_core.dir/link_audit.cpp.o.d"
  "/root/repo/src/core/planner.cpp" "src/core/CMakeFiles/pdcu_core.dir/planner.cpp.o" "gcc" "src/core/CMakeFiles/pdcu_core.dir/planner.cpp.o.d"
  "/root/repo/src/core/repository.cpp" "src/core/CMakeFiles/pdcu_core.dir/repository.cpp.o" "gcc" "src/core/CMakeFiles/pdcu_core.dir/repository.cpp.o.d"
  "/root/repo/src/core/stats.cpp" "src/core/CMakeFiles/pdcu_core.dir/stats.cpp.o" "gcc" "src/core/CMakeFiles/pdcu_core.dir/stats.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/core/CMakeFiles/pdcu_core.dir/validate.cpp.o" "gcc" "src/core/CMakeFiles/pdcu_core.dir/validate.cpp.o.d"
  "/root/repo/src/core/views.cpp" "src/core/CMakeFiles/pdcu_core.dir/views.cpp.o" "gcc" "src/core/CMakeFiles/pdcu_core.dir/views.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pdcu_support.dir/DependInfo.cmake"
  "/root/repo/build/src/markdown/CMakeFiles/pdcu_markdown.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/pdcu_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/curriculum/CMakeFiles/pdcu_curriculum.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pdcu_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
