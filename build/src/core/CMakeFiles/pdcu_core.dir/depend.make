# Empty dependencies file for pdcu_core.
# This may be replaced when dependencies are built.
