file(REMOVE_RECURSE
  "libpdcu_core.a"
)
