# Empty compiler generated dependencies file for pdcu_activities.
# This may be replaced when dependencies are built.
