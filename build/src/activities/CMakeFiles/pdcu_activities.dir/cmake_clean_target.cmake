file(REMOVE_RECURSE
  "libpdcu_activities.a"
)
