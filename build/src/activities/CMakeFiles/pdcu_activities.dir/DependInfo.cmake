
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/activities/data_parallel.cpp" "src/activities/CMakeFiles/pdcu_activities.dir/data_parallel.cpp.o" "gcc" "src/activities/CMakeFiles/pdcu_activities.dir/data_parallel.cpp.o.d"
  "/root/repo/src/activities/distributed.cpp" "src/activities/CMakeFiles/pdcu_activities.dir/distributed.cpp.o" "gcc" "src/activities/CMakeFiles/pdcu_activities.dir/distributed.cpp.o.d"
  "/root/repo/src/activities/performance.cpp" "src/activities/CMakeFiles/pdcu_activities.dir/performance.cpp.o" "gcc" "src/activities/CMakeFiles/pdcu_activities.dir/performance.cpp.o.d"
  "/root/repo/src/activities/races.cpp" "src/activities/CMakeFiles/pdcu_activities.dir/races.cpp.o" "gcc" "src/activities/CMakeFiles/pdcu_activities.dir/races.cpp.o.d"
  "/root/repo/src/activities/registry.cpp" "src/activities/CMakeFiles/pdcu_activities.dir/registry.cpp.o" "gcc" "src/activities/CMakeFiles/pdcu_activities.dir/registry.cpp.o.d"
  "/root/repo/src/activities/sorting.cpp" "src/activities/CMakeFiles/pdcu_activities.dir/sorting.cpp.o" "gcc" "src/activities/CMakeFiles/pdcu_activities.dir/sorting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/pdcu_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pdcu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
