file(REMOVE_RECURSE
  "CMakeFiles/pdcu_activities.dir/data_parallel.cpp.o"
  "CMakeFiles/pdcu_activities.dir/data_parallel.cpp.o.d"
  "CMakeFiles/pdcu_activities.dir/distributed.cpp.o"
  "CMakeFiles/pdcu_activities.dir/distributed.cpp.o.d"
  "CMakeFiles/pdcu_activities.dir/performance.cpp.o"
  "CMakeFiles/pdcu_activities.dir/performance.cpp.o.d"
  "CMakeFiles/pdcu_activities.dir/races.cpp.o"
  "CMakeFiles/pdcu_activities.dir/races.cpp.o.d"
  "CMakeFiles/pdcu_activities.dir/registry.cpp.o"
  "CMakeFiles/pdcu_activities.dir/registry.cpp.o.d"
  "CMakeFiles/pdcu_activities.dir/sorting.cpp.o"
  "CMakeFiles/pdcu_activities.dir/sorting.cpp.o.d"
  "libpdcu_activities.a"
  "libpdcu_activities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdcu_activities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
