file(REMOVE_RECURSE
  "CMakeFiles/pdcu_extensions.dir/gap_sims.cpp.o"
  "CMakeFiles/pdcu_extensions.dir/gap_sims.cpp.o.d"
  "CMakeFiles/pdcu_extensions.dir/impact.cpp.o"
  "CMakeFiles/pdcu_extensions.dir/impact.cpp.o.d"
  "CMakeFiles/pdcu_extensions.dir/proposed.cpp.o"
  "CMakeFiles/pdcu_extensions.dir/proposed.cpp.o.d"
  "libpdcu_extensions.a"
  "libpdcu_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdcu_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
