file(REMOVE_RECURSE
  "libpdcu_extensions.a"
)
