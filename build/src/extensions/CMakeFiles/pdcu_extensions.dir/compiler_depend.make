# Empty compiler generated dependencies file for pdcu_extensions.
# This may be replaced when dependencies are built.
