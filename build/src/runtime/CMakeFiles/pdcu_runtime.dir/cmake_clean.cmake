file(REMOVE_RECURSE
  "CMakeFiles/pdcu_runtime.dir/classroom.cpp.o"
  "CMakeFiles/pdcu_runtime.dir/classroom.cpp.o.d"
  "CMakeFiles/pdcu_runtime.dir/scheduler.cpp.o"
  "CMakeFiles/pdcu_runtime.dir/scheduler.cpp.o.d"
  "CMakeFiles/pdcu_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/pdcu_runtime.dir/thread_pool.cpp.o.d"
  "CMakeFiles/pdcu_runtime.dir/trace.cpp.o"
  "CMakeFiles/pdcu_runtime.dir/trace.cpp.o.d"
  "libpdcu_runtime.a"
  "libpdcu_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdcu_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
