# Empty dependencies file for pdcu_runtime.
# This may be replaced when dependencies are built.
