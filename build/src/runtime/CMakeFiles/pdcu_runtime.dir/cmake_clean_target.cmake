file(REMOVE_RECURSE
  "libpdcu_runtime.a"
)
