
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/classroom.cpp" "src/runtime/CMakeFiles/pdcu_runtime.dir/classroom.cpp.o" "gcc" "src/runtime/CMakeFiles/pdcu_runtime.dir/classroom.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "src/runtime/CMakeFiles/pdcu_runtime.dir/scheduler.cpp.o" "gcc" "src/runtime/CMakeFiles/pdcu_runtime.dir/scheduler.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "src/runtime/CMakeFiles/pdcu_runtime.dir/thread_pool.cpp.o" "gcc" "src/runtime/CMakeFiles/pdcu_runtime.dir/thread_pool.cpp.o.d"
  "/root/repo/src/runtime/trace.cpp" "src/runtime/CMakeFiles/pdcu_runtime.dir/trace.cpp.o" "gcc" "src/runtime/CMakeFiles/pdcu_runtime.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pdcu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
