file(REMOVE_RECURSE
  "libpdcu_curriculum.a"
)
