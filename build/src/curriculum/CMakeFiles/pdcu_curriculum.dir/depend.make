# Empty dependencies file for pdcu_curriculum.
# This may be replaced when dependencies are built.
