
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/curriculum/cs2013.cpp" "src/curriculum/CMakeFiles/pdcu_curriculum.dir/cs2013.cpp.o" "gcc" "src/curriculum/CMakeFiles/pdcu_curriculum.dir/cs2013.cpp.o.d"
  "/root/repo/src/curriculum/tcpp.cpp" "src/curriculum/CMakeFiles/pdcu_curriculum.dir/tcpp.cpp.o" "gcc" "src/curriculum/CMakeFiles/pdcu_curriculum.dir/tcpp.cpp.o.d"
  "/root/repo/src/curriculum/terms.cpp" "src/curriculum/CMakeFiles/pdcu_curriculum.dir/terms.cpp.o" "gcc" "src/curriculum/CMakeFiles/pdcu_curriculum.dir/terms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pdcu_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
