file(REMOVE_RECURSE
  "CMakeFiles/pdcu_curriculum.dir/cs2013.cpp.o"
  "CMakeFiles/pdcu_curriculum.dir/cs2013.cpp.o.d"
  "CMakeFiles/pdcu_curriculum.dir/tcpp.cpp.o"
  "CMakeFiles/pdcu_curriculum.dir/tcpp.cpp.o.d"
  "CMakeFiles/pdcu_curriculum.dir/terms.cpp.o"
  "CMakeFiles/pdcu_curriculum.dir/terms.cpp.o.d"
  "libpdcu_curriculum.a"
  "libpdcu_curriculum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdcu_curriculum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
