
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/channel_test.cpp" "tests/CMakeFiles/runtime_test.dir/runtime/channel_test.cpp.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/channel_test.cpp.o.d"
  "/root/repo/tests/runtime/classroom_test.cpp" "tests/CMakeFiles/runtime_test.dir/runtime/classroom_test.cpp.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/classroom_test.cpp.o.d"
  "/root/repo/tests/runtime/scheduler_test.cpp" "tests/CMakeFiles/runtime_test.dir/runtime/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/scheduler_test.cpp.o.d"
  "/root/repo/tests/runtime/thread_pool_test.cpp" "tests/CMakeFiles/runtime_test.dir/runtime/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/thread_pool_test.cpp.o.d"
  "/root/repo/tests/runtime/virtual_cost_test.cpp" "tests/CMakeFiles/runtime_test.dir/runtime/virtual_cost_test.cpp.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/virtual_cost_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pdcu_support.dir/DependInfo.cmake"
  "/root/repo/build/src/markdown/CMakeFiles/pdcu_markdown.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/pdcu_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/curriculum/CMakeFiles/pdcu_curriculum.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pdcu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/site/CMakeFiles/pdcu_site.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pdcu_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/activities/CMakeFiles/pdcu_activities.dir/DependInfo.cmake"
  "/root/repo/build/src/extensions/CMakeFiles/pdcu_extensions.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
