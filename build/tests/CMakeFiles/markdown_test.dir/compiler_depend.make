# Empty compiler generated dependencies file for markdown_test.
# This may be replaced when dependencies are built.
