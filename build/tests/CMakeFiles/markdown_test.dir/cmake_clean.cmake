file(REMOVE_RECURSE
  "CMakeFiles/markdown_test.dir/markdown/frontmatter_test.cpp.o"
  "CMakeFiles/markdown_test.dir/markdown/frontmatter_test.cpp.o.d"
  "CMakeFiles/markdown_test.dir/markdown/fuzz_test.cpp.o"
  "CMakeFiles/markdown_test.dir/markdown/fuzz_test.cpp.o.d"
  "CMakeFiles/markdown_test.dir/markdown/html_test.cpp.o"
  "CMakeFiles/markdown_test.dir/markdown/html_test.cpp.o.d"
  "CMakeFiles/markdown_test.dir/markdown/parser_test.cpp.o"
  "CMakeFiles/markdown_test.dir/markdown/parser_test.cpp.o.d"
  "markdown_test"
  "markdown_test.pdb"
  "markdown_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/markdown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
