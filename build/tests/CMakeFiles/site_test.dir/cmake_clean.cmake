file(REMOVE_RECURSE
  "CMakeFiles/site_test.dir/site/json_catalog_test.cpp.o"
  "CMakeFiles/site_test.dir/site/json_catalog_test.cpp.o.d"
  "CMakeFiles/site_test.dir/site/site_test.cpp.o"
  "CMakeFiles/site_test.dir/site/site_test.cpp.o.d"
  "site_test"
  "site_test.pdb"
  "site_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/site_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
