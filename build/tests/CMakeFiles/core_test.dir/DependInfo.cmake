
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/activity_io_test.cpp" "tests/CMakeFiles/core_test.dir/core/activity_io_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/activity_io_test.cpp.o.d"
  "/root/repo/tests/core/annotate_test.cpp" "tests/CMakeFiles/core_test.dir/core/annotate_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/annotate_test.cpp.o.d"
  "/root/repo/tests/core/archetype_test.cpp" "tests/CMakeFiles/core_test.dir/core/archetype_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/archetype_test.cpp.o.d"
  "/root/repo/tests/core/coverage_test.cpp" "tests/CMakeFiles/core_test.dir/core/coverage_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/coverage_test.cpp.o.d"
  "/root/repo/tests/core/curation_test.cpp" "tests/CMakeFiles/core_test.dir/core/curation_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/curation_test.cpp.o.d"
  "/root/repo/tests/core/gaps_test.cpp" "tests/CMakeFiles/core_test.dir/core/gaps_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/gaps_test.cpp.o.d"
  "/root/repo/tests/core/link_audit_test.cpp" "tests/CMakeFiles/core_test.dir/core/link_audit_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/link_audit_test.cpp.o.d"
  "/root/repo/tests/core/planner_test.cpp" "tests/CMakeFiles/core_test.dir/core/planner_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/planner_test.cpp.o.d"
  "/root/repo/tests/core/stats_test.cpp" "tests/CMakeFiles/core_test.dir/core/stats_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/stats_test.cpp.o.d"
  "/root/repo/tests/core/validate_test.cpp" "tests/CMakeFiles/core_test.dir/core/validate_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/validate_test.cpp.o.d"
  "/root/repo/tests/core/views_test.cpp" "tests/CMakeFiles/core_test.dir/core/views_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/views_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pdcu_support.dir/DependInfo.cmake"
  "/root/repo/build/src/markdown/CMakeFiles/pdcu_markdown.dir/DependInfo.cmake"
  "/root/repo/build/src/taxonomy/CMakeFiles/pdcu_taxonomy.dir/DependInfo.cmake"
  "/root/repo/build/src/curriculum/CMakeFiles/pdcu_curriculum.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pdcu_core.dir/DependInfo.cmake"
  "/root/repo/build/src/site/CMakeFiles/pdcu_site.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pdcu_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/activities/CMakeFiles/pdcu_activities.dir/DependInfo.cmake"
  "/root/repo/build/src/extensions/CMakeFiles/pdcu_extensions.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
