file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/activity_io_test.cpp.o"
  "CMakeFiles/core_test.dir/core/activity_io_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/annotate_test.cpp.o"
  "CMakeFiles/core_test.dir/core/annotate_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/archetype_test.cpp.o"
  "CMakeFiles/core_test.dir/core/archetype_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/coverage_test.cpp.o"
  "CMakeFiles/core_test.dir/core/coverage_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/curation_test.cpp.o"
  "CMakeFiles/core_test.dir/core/curation_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/gaps_test.cpp.o"
  "CMakeFiles/core_test.dir/core/gaps_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/link_audit_test.cpp.o"
  "CMakeFiles/core_test.dir/core/link_audit_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/planner_test.cpp.o"
  "CMakeFiles/core_test.dir/core/planner_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/stats_test.cpp.o"
  "CMakeFiles/core_test.dir/core/stats_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/validate_test.cpp.o"
  "CMakeFiles/core_test.dir/core/validate_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/views_test.cpp.o"
  "CMakeFiles/core_test.dir/core/views_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
