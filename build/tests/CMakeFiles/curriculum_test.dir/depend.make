# Empty dependencies file for curriculum_test.
# This may be replaced when dependencies are built.
