file(REMOVE_RECURSE
  "CMakeFiles/curriculum_test.dir/curriculum/cs2013_test.cpp.o"
  "CMakeFiles/curriculum_test.dir/curriculum/cs2013_test.cpp.o.d"
  "CMakeFiles/curriculum_test.dir/curriculum/tcpp_test.cpp.o"
  "CMakeFiles/curriculum_test.dir/curriculum/tcpp_test.cpp.o.d"
  "curriculum_test"
  "curriculum_test.pdb"
  "curriculum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curriculum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
