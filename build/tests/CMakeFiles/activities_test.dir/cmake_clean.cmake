file(REMOVE_RECURSE
  "CMakeFiles/activities_test.dir/activities/data_parallel_test.cpp.o"
  "CMakeFiles/activities_test.dir/activities/data_parallel_test.cpp.o.d"
  "CMakeFiles/activities_test.dir/activities/distributed_test.cpp.o"
  "CMakeFiles/activities_test.dir/activities/distributed_test.cpp.o.d"
  "CMakeFiles/activities_test.dir/activities/performance_test.cpp.o"
  "CMakeFiles/activities_test.dir/activities/performance_test.cpp.o.d"
  "CMakeFiles/activities_test.dir/activities/races_test.cpp.o"
  "CMakeFiles/activities_test.dir/activities/races_test.cpp.o.d"
  "CMakeFiles/activities_test.dir/activities/registry_test.cpp.o"
  "CMakeFiles/activities_test.dir/activities/registry_test.cpp.o.d"
  "CMakeFiles/activities_test.dir/activities/sorting_test.cpp.o"
  "CMakeFiles/activities_test.dir/activities/sorting_test.cpp.o.d"
  "activities_test"
  "activities_test.pdb"
  "activities_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activities_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
