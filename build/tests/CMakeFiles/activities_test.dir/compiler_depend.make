# Empty compiler generated dependencies file for activities_test.
# This may be replaced when dependencies are built.
