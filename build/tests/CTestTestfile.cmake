# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/markdown_test[1]_include.cmake")
include("/root/repo/build/tests/taxonomy_test[1]_include.cmake")
include("/root/repo/build/tests/curriculum_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/site_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/activities_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
