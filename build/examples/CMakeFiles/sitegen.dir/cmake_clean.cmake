file(REMOVE_RECURSE
  "CMakeFiles/sitegen.dir/sitegen.cpp.o"
  "CMakeFiles/sitegen.dir/sitegen.cpp.o.d"
  "sitegen"
  "sitegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sitegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
