# Empty dependencies file for sitegen.
# This may be replaced when dependencies are built.
