file(REMOVE_RECURSE
  "CMakeFiles/lesson_plan.dir/lesson_plan.cpp.o"
  "CMakeFiles/lesson_plan.dir/lesson_plan.cpp.o.d"
  "lesson_plan"
  "lesson_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lesson_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
