# Empty compiler generated dependencies file for lesson_plan.
# This may be replaced when dependencies are built.
