file(REMOVE_RECURSE
  "CMakeFiles/classroom_day.dir/classroom_day.cpp.o"
  "CMakeFiles/classroom_day.dir/classroom_day.cpp.o.d"
  "classroom_day"
  "classroom_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classroom_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
