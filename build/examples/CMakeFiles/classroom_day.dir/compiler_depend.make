# Empty compiler generated dependencies file for classroom_day.
# This may be replaced when dependencies are built.
