file(REMOVE_RECURSE
  "CMakeFiles/author_workflow.dir/author_workflow.cpp.o"
  "CMakeFiles/author_workflow.dir/author_workflow.cpp.o.d"
  "author_workflow"
  "author_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/author_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
