# Empty dependencies file for author_workflow.
# This may be replaced when dependencies are built.
