file(REMOVE_RECURSE
  "CMakeFiles/coverage_gaps.dir/coverage_gaps.cpp.o"
  "CMakeFiles/coverage_gaps.dir/coverage_gaps.cpp.o.d"
  "coverage_gaps"
  "coverage_gaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coverage_gaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
