# Empty dependencies file for coverage_gaps.
# This may be replaced when dependencies are built.
