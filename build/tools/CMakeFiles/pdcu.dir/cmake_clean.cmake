file(REMOVE_RECURSE
  "CMakeFiles/pdcu.dir/pdcu_cli.cpp.o"
  "CMakeFiles/pdcu.dir/pdcu_cli.cpp.o.d"
  "pdcu"
  "pdcu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
