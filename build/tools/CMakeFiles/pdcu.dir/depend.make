# Empty dependencies file for pdcu.
# This may be replaced when dependencies are built.
