# Empty compiler generated dependencies file for curation_export.
# This may be replaced when dependencies are built.
