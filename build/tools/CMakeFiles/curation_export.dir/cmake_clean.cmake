file(REMOVE_RECURSE
  "CMakeFiles/curation_export.dir/curation_export.cpp.o"
  "CMakeFiles/curation_export.dir/curation_export.cpp.o.d"
  "curation_export"
  "curation_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curation_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
