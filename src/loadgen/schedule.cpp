#include "pdcu/loadgen/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iterator>

namespace pdcu::loadgen {

namespace {

/// Query terms for the search route, drawn from the repository's own
/// vocabulary so queries hit real postings lists instead of short-circuiting
/// on an empty result.
constexpr std::string_view kSearchLexicon[] = {
    "parallel", "sorting",  "message",  "network",  "race",
    "pipeline", "speedup",  "deadlock", "broadcast", "scaling",
    "distributed", "cards", "algorithm", "communication", "sum",
};

Expected<Route> route_from_name(std::string_view name) {
  if (name == "page") return Route::kPage;
  if (name == "catalog") return Route::kCatalog;
  if (name == "activity") return Route::kActivity;
  if (name == "search") return Route::kSearch;
  return Error::make("loadgen.mix",
                     "unknown route '" + std::string(name) +
                         "' (expected page|catalog|activity|search)");
}

}  // namespace

std::string_view route_name(Route route) {
  switch (route) {
    case Route::kPage: return "page";
    case Route::kCatalog: return "catalog";
    case Route::kActivity: return "activity";
    case Route::kSearch: return "search";
  }
  return "page";
}

Expected<std::vector<MixEntry>> parse_mix(std::string_view text) {
  std::vector<MixEntry> mix;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(':', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view part = text.substr(start, end - start);
    start = end + 1;
    if (part.empty()) {
      return Error::make("loadgen.mix", "empty mix component");
    }
    double weight = 1.0;
    const std::size_t eq = part.find('=');
    if (eq != std::string_view::npos) {
      const std::string weight_text(part.substr(eq + 1));
      char* parse_end = nullptr;
      weight = std::strtod(weight_text.c_str(), &parse_end);
      if (parse_end == weight_text.c_str() || *parse_end != '\0' ||
          !(weight > 0.0)) {
        return Error::make("loadgen.mix",
                           "bad weight '" + weight_text + "'");
      }
      part = part.substr(0, eq);
    }
    auto route = route_from_name(part);
    if (!route) return route.error();
    mix.push_back({route.value(), weight});
    if (end == text.size()) break;
  }
  if (mix.empty()) return Error::make("loadgen.mix", "empty mix");
  return mix;
}

std::string render_mix(const std::vector<MixEntry>& mix) {
  std::string out;
  for (const auto& entry : mix) {
    if (!out.empty()) out += ':';
    out += route_name(entry.route);
    out += '=';
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%g", entry.weight);
    out += buffer;
  }
  return out;
}

std::vector<MixEntry> default_mix() {
  return {{Route::kPage, 6.0},
          {Route::kCatalog, 1.0},
          {Route::kActivity, 2.0},
          {Route::kSearch, 1.0}};
}

std::vector<MixEntry> search_mix() {
  return {{Route::kSearch, 8.0},
          {Route::kPage, 1.0},
          {Route::kActivity, 1.0}};
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  cumulative_.reserve(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cumulative_.push_back(total);
  }
  for (auto& c : cumulative_) c /= total;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  if (cumulative_.empty()) return 0;
  const double u = rng.uniform();
  const auto it =
      std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return it == cumulative_.end()
             ? cumulative_.size() - 1
             : static_cast<std::size_t>(it - cumulative_.begin());
}

std::vector<ScheduledRequest> build_schedule(
    const ScheduleOptions& options, const std::vector<std::string>& slugs) {
  std::vector<ScheduledRequest> schedule;
  if (options.rate <= 0.0 || options.duration_s <= 0.0 || slugs.empty()) {
    return schedule;
  }
  const std::vector<MixEntry> mix =
      options.mix.empty() ? default_mix() : options.mix;
  double total_weight = 0.0;
  for (const auto& entry : mix) total_weight += entry.weight;

  const auto total = static_cast<std::size_t>(
      std::llround(options.rate * options.duration_s));
  const double interval_ns = 1e9 / options.rate;
  const ZipfSampler slug_zipf(slugs.size(), options.zipf_exponent);
  // Search terms: a caller-supplied vocabulary (e.g. a synthetic corpus's
  // sampled terms) or the built-in PDC lexicon; list order = popularity.
  std::vector<std::string_view> terms;
  if (options.search_terms.empty()) {
    terms.assign(std::begin(kSearchLexicon), std::end(kSearchLexicon));
  } else {
    terms.assign(options.search_terms.begin(), options.search_terms.end());
  }
  const ZipfSampler term_zipf(terms.size(), options.zipf_exponent);
  Rng rng(options.seed);

  schedule.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    ScheduledRequest request;
    request.offset_ns = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(i) * interval_ns));

    // Fixed draw order per request — route, then (route-dependent) one
    // popularity draw, then the connection draw — so a schedule is a pure
    // function of (seed, options, slugs).
    double pick = rng.uniform() * total_weight;
    request.route = mix.back().route;
    for (const auto& entry : mix) {
      if (pick < entry.weight) {
        request.route = entry.route;
        break;
      }
      pick -= entry.weight;
    }

    switch (request.route) {
      case Route::kPage:
        request.target = "/activities/" + slugs[slug_zipf.sample(rng)] + "/";
        break;
      case Route::kCatalog:
        request.target = "/api/catalog.json";
        break;
      case Route::kActivity:
        request.target =
            "/api/activities/" + slugs[slug_zipf.sample(rng)] + ".json";
        break;
      case Route::kSearch:
        request.target = "/api/search?q=";
        request.target += terms[term_zipf.sample(rng)];
        request.target += "&limit=10";
        break;
    }
    request.fresh_connection = rng.chance(1.0 - options.keep_alive_ratio);
    schedule.push_back(std::move(request));
  }
  return schedule;
}

}  // namespace pdcu::loadgen
