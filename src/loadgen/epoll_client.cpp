#include "pdcu/loadgen/epoll_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <queue>
#include <string>
#include <vector>

#include "pdcu/loadgen/client.hpp"

namespace pdcu::loadgen {

namespace {

using Clock = std::chrono::steady_clock;

/// One multiplexed connection's request-in-flight state machine.
struct Conn {
  enum class State {
    kIdle,        ///< between requests (socket may stay open: keep-alive)
    kConnecting,  ///< non-blocking connect in flight (EPOLLOUT = done)
    kSending,     ///< request partially written (EPOLLOUT)
    kReading,     ///< awaiting/parsing the response (EPOLLIN)
  };

  int fd = -1;
  State state = State::kIdle;
  std::size_t cursor = 0;  ///< how many of this conn's slice are finished
  Clock::time_point intended;  ///< in-flight request's scheduled send time
  Clock::time_point deadline;  ///< in-flight request's timeout
  std::string out;             ///< request bytes still to write
  std::size_t out_off = 0;
  std::string in;              ///< unparsed response bytes
};

struct Tally {
  obs::Histogram latency_us;
  std::uint64_t max_latency_us = 0;
  std::uint64_t completed = 0;
  std::uint64_t status_2xx = 0, status_3xx = 0, status_4xx = 0,
                status_5xx = 0;
  std::uint64_t connect_errors = 0, send_errors = 0, read_errors = 0,
                timeouts = 0;
  std::uint64_t open_now = 0, peak_open = 0;
  Clock::time_point last_response;
};

class EpollDriver {
 public:
  EpollDriver(const Options& options,
              const std::vector<ScheduledRequest>& schedule,
              std::size_t connections)
      : options_(options),
        schedule_(schedule),
        conns_(connections),
        stride_(connections) {}

  Result run() {
    Result result;
    result.target_rate = options_.schedule.rate;
    result.scheduled = schedule_.size();

    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) return result;
    ::inet_pton(AF_INET, options_.host.c_str(), &addr_.sin_addr);
    addr_.sin_family = AF_INET;
    addr_.sin_port = htons(options_.port);

    const Clock::time_point start =
        Clock::now() + std::chrono::milliseconds(20);
    start_ = start;
    tally_.last_response = start;
    // Every connection starts idle: seed the start queue with each one's
    // first scheduled request.
    for (std::size_t c = 0; c < conns_.size(); ++c) {
      if (slice_index(c, 0) < schedule_.size()) {
        starts_.push({intended_at(c, 0), c});
      }
    }

    std::vector<epoll_event> events(1024);
    while (in_flight_ > 0 || !starts_.empty()) {
      const Clock::time_point now = Clock::now();
      launch_due(now);
      sweep_timeouts(now);
      if (in_flight_ == 0 && starts_.empty()) break;

      const int timeout_ms = wait_budget_ms(Clock::now());
      const int ready = ::epoll_wait(epoll_fd_, events.data(),
                                     static_cast<int>(events.size()),
                                     timeout_ms);
      for (int i = 0; i < ready; ++i) {
        on_event(static_cast<std::size_t>(events[static_cast<std::size_t>(i)]
                                              .data.u64),
                 events[static_cast<std::size_t>(i)].events);
      }
    }

    for (Conn& conn : conns_) close_conn(conn);
    ::close(epoll_fd_);

    result.completed = tally_.completed;
    result.status_2xx = tally_.status_2xx;
    result.status_3xx = tally_.status_3xx;
    result.status_4xx = tally_.status_4xx;
    result.status_5xx = tally_.status_5xx;
    result.connect_errors = tally_.connect_errors;
    result.send_errors = tally_.send_errors;
    result.read_errors = tally_.read_errors;
    result.timeouts = tally_.timeouts;
    result.latency_us = tally_.latency_us.snapshot();
    result.max_latency_us = tally_.max_latency_us;
    result.peak_connections = tally_.peak_open;
    result.wall_s =
        std::chrono::duration<double>(tally_.last_response - start).count();
    if (result.wall_s > 0.0) {
      result.achieved_rate =
          static_cast<double>(result.completed) / result.wall_s;
    }
    return result;
  }

 private:
  /// Schedule index of connection `c`'s `cursor`-th request.
  std::size_t slice_index(std::size_t c, std::size_t cursor) const {
    return c + cursor * stride_;
  }
  Clock::time_point intended_at(std::size_t c, std::size_t cursor) const {
    return start_ + std::chrono::nanoseconds(
                        schedule_[slice_index(c, cursor)].offset_ns);
  }

  /// Starts every connection whose next request's intended time arrived.
  void launch_due(Clock::time_point now) {
    while (!starts_.empty() && starts_.top().first <= now) {
      const std::size_t c = starts_.top().second;
      starts_.pop();
      begin_request(conns_[c], c, now);
    }
  }

  /// The only place in_flight_ changes: it is exactly the number of
  /// connections whose state machine is mid-request (non-idle).
  void set_state(Conn& conn, Conn::State next) {
    const bool was_active = conn.state != Conn::State::kIdle;
    const bool now_active = next != Conn::State::kIdle;
    if (now_active && !was_active) ++in_flight_;
    if (!now_active && was_active) --in_flight_;
    conn.state = next;
  }

  void begin_request(Conn& conn, std::size_t c, Clock::time_point now) {
    const ScheduledRequest& request = schedule_[slice_index(c, conn.cursor)];
    conn.intended = intended_at(c, conn.cursor);
    // The timeout is an I/O bound, so it runs from actual initiation, not
    // the intended time — a late start (CO backlog) inflates latency, not
    // the error counts.
    conn.deadline = now + options_.timeout;
    if (request.fresh_connection) close_conn(conn);

    conn.out = "GET ";
    conn.out += request.target;
    conn.out += " HTTP/1.1\r\nHost: ";
    conn.out += options_.host;
    conn.out += "\r\nUser-Agent: pdcu-loadgen\r\n\r\n";
    conn.out_off = 0;
    conn.in.clear();

    if (conn.fd >= 0) {
      set_state(conn, Conn::State::kSending);
      continue_send(conn, c);
      return;
    }
    conn.fd = ::socket(AF_INET,
                       SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (conn.fd < 0) {
      finish_error(conn, c, &Tally::connect_errors);
      return;
    }
    const int nodelay = 1;
    ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                 sizeof nodelay);
    ++tally_.open_now;
    tally_.peak_open = std::max(tally_.peak_open, tally_.open_now);
    const int rc = ::connect(
        conn.fd, reinterpret_cast<const sockaddr*>(&addr_), sizeof addr_);
    if (rc == 0) {
      register_fd(conn, c, EPOLLOUT);
      set_state(conn, Conn::State::kSending);
      continue_send(conn, c);
      return;
    }
    if (errno == EINPROGRESS) {
      register_fd(conn, c, EPOLLOUT);
      set_state(conn, Conn::State::kConnecting);
      return;
    }
    finish_error(conn, c, &Tally::connect_errors);
  }

  void register_fd(Conn& conn, std::size_t c, std::uint32_t mask) {
    epoll_event ev{};
    ev.events = mask;
    ev.data.u64 = c;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn.fd, &ev);
  }

  void rearm(Conn& conn, std::size_t c, std::uint32_t mask) {
    epoll_event ev{};
    ev.events = mask;
    ev.data.u64 = c;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  }

  void close_conn(Conn& conn) {
    if (conn.fd < 0) return;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
    ::close(conn.fd);
    conn.fd = -1;
    conn.in.clear();
    if (tally_.open_now > 0) --tally_.open_now;
  }

  /// The in-flight request failed; count it and queue the next one.
  void finish_error(Conn& conn, std::size_t c,
                    std::uint64_t Tally::* counter) {
    ++(tally_.*counter);
    close_conn(conn);
    advance(conn, c);
  }

  void finish_ok(Conn& conn, std::size_t c, int status, bool server_closes,
                 Clock::time_point now) {
    const auto latency = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            now - conn.intended)
            .count());
    tally_.latency_us.record(latency);
    tally_.max_latency_us = std::max(tally_.max_latency_us, latency);
    ++tally_.completed;
    tally_.last_response = std::max(tally_.last_response, now);
    if (status >= 200 && status < 300) {
      ++tally_.status_2xx;
    } else if (status < 400) {
      ++tally_.status_3xx;
    } else if (status < 500) {
      ++tally_.status_4xx;
    } else {
      ++tally_.status_5xx;
    }
    if (server_closes) {
      close_conn(conn);
    } else {
      rearm(conn, c, 0);  // parked: no interest until the next request
    }
    advance(conn, c);
  }

  /// Moves a connection to its next scheduled request (or retires it).
  void advance(Conn& conn, std::size_t c) {
    set_state(conn, Conn::State::kIdle);
    ++conn.cursor;
    if (slice_index(c, conn.cursor) < schedule_.size()) {
      starts_.push({intended_at(c, conn.cursor), c});
    }
  }

  /// Entered with state == kSending (set_state already counted it).
  void continue_send(Conn& conn, std::size_t c) {
    while (conn.out_off < conn.out.size()) {
      const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_off,
                               conn.out.size() - conn.out_off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          rearm(conn, c, EPOLLOUT);
          return;
        }
        finish_error(conn, c, &Tally::send_errors);
        return;
      }
      conn.out_off += static_cast<std::size_t>(n);
    }
    set_state(conn, Conn::State::kReading);
    rearm(conn, c, EPOLLIN);
  }

  void on_event(std::size_t c, std::uint32_t mask) {
    Conn& conn = conns_[c];
    switch (conn.state) {
      case Conn::State::kIdle:
        return;  // stale event for a parked/closed connection
      case Conn::State::kConnecting: {
        int err = 0;
        socklen_t len = sizeof err;
        ::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if ((mask & (EPOLLERR | EPOLLHUP)) != 0 || err != 0) {
          finish_error(conn, c, &Tally::connect_errors);
          return;
        }
        set_state(conn, Conn::State::kSending);
        conn.out_off = 0;
        continue_send(conn, c);
        return;
      }
      case Conn::State::kSending:
        continue_send(conn, c);
        return;
      case Conn::State::kReading:
        continue_read(conn, c);
        return;
    }
  }

  void continue_read(Conn& conn, std::size_t c) {
    char chunk[16 * 1024];
    bool eof = false;
    while (true) {
      const ssize_t n = ::recv(conn.fd, chunk, sizeof chunk, 0);
      if (n > 0) {
        conn.in.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {
        eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      finish_error(conn, c, &Tally::read_errors);
      return;
    }

    const auto head_end = conn.in.find("\r\n\r\n");
    if (head_end == std::string::npos) {
      if (eof) finish_error(conn, c, &Tally::read_errors);
      return;  // need more head bytes
    }
    if (conn.in.size() < 12 || conn.in.compare(0, 5, "HTTP/") != 0) {
      finish_error(conn, c, &Tally::read_errors);
      return;
    }
    const std::string_view head(conn.in.data(), head_end + 2);
    const std::string length_text =
        find_header_value(head, "content-length");
    const bool server_closes =
        find_header_value(head, "connection") == "close" ||
        length_text.empty();
    const int status = std::atoi(conn.in.c_str() + 9);
    const std::size_t body_start = head_end + 4;

    if (!length_text.empty()) {
      const auto body_length = static_cast<std::size_t>(
          std::strtoull(length_text.c_str(), nullptr, 10));
      if (conn.in.size() < body_start + body_length) {
        if (eof) finish_error(conn, c, &Tally::read_errors);
        return;  // body still arriving
      }
      conn.in.erase(0, body_start + body_length);
      finish_ok(conn, c, status, server_closes, Clock::now());
      return;
    }
    // Unframed response: complete at EOF (the server is closing).
    if (!eof) return;
    finish_ok(conn, c, status, /*server_closes=*/true, Clock::now());
  }

  /// Times out every in-flight request whose deadline passed. O(conns),
  /// called once per loop — the loop iterates at event cadence, so this
  /// stays cheap relative to the I/O it polices.
  void sweep_timeouts(Clock::time_point now) {
    if (now < next_sweep_) return;
    next_sweep_ = now + std::chrono::milliseconds(50);
    for (std::size_t c = 0; c < conns_.size(); ++c) {
      Conn& conn = conns_[c];
      if (conn.state == Conn::State::kIdle || now < conn.deadline) continue;
      finish_error(conn, c,
                   conn.state == Conn::State::kConnecting
                       ? &Tally::connect_errors
                       : &Tally::timeouts);
    }
  }

  /// How long epoll_wait may block: until the next scheduled start or the
  /// next timeout sweep, whichever is sooner.
  int wait_budget_ms(Clock::time_point now) const {
    Clock::time_point until = next_sweep_;
    if (!starts_.empty()) until = std::min(until, starts_.top().first);
    const auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(until - now)
            .count();
    return static_cast<int>(std::clamp<long long>(ms, 0, 50));
  }

  const Options& options_;
  const std::vector<ScheduledRequest>& schedule_;
  std::vector<Conn> conns_;
  std::size_t stride_;
  int epoll_fd_ = -1;
  sockaddr_in addr_{};
  Clock::time_point start_{};
  Clock::time_point next_sweep_{};
  /// (intended time, connection) of every idle connection's next request.
  using StartEntry = std::pair<Clock::time_point, std::size_t>;
  std::priority_queue<StartEntry, std::vector<StartEntry>,
                      std::greater<StartEntry>>
      starts_;
  std::size_t in_flight_ = 0;
  Tally tally_;
};

}  // namespace

Result run_epoll(const Options& options,
                 const std::vector<ScheduledRequest>& schedule) {
  Result empty;
  empty.target_rate = options.schedule.rate;
  empty.scheduled = schedule.size();
  if (schedule.empty()) return empty;
  const std::size_t connections = std::max<std::size_t>(
      1, std::min<std::size_t>(options.connections, schedule.size()));
  EpollDriver driver(options, schedule, connections);
  return driver.run();
}

}  // namespace pdcu::loadgen
