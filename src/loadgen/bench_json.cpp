#include "pdcu/loadgen/bench_json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pdcu::loadgen {

namespace {

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Shortest representation that round-trips: integers render bare, other
/// values with up to 17 significant digits trimmed of trailing zeros.
void append_number(std::string& out, double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%.0f", value);
    out += buffer;
    return;
  }
  // Shortest representation that survives a parse round trip: most
  // human-entered values ("1.1") are exact at 15 digits; fall back to 17
  // only when they are not.
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.15g", value);
  if (std::strtod(buffer, nullptr) != value) {
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
  }
  out += buffer;
}

}  // namespace

BenchWriter::BenchWriter(std::string_view bench, std::string_view source) {
  out_ = "{";
  integer("bench_schema", static_cast<std::uint64_t>(kBenchSchemaVersion));
  text("bench", bench);
  text("source", source);
}

void BenchWriter::key(std::string_view name) {
  if (!first_in_scope_) out_ += ',';
  first_in_scope_ = false;
  append_escaped(out_, name);
  out_ += ':';
}

void BenchWriter::number(std::string_view name, double value) {
  key(name);
  append_number(out_, value);
}

void BenchWriter::integer(std::string_view name, std::uint64_t value) {
  key(name);
  out_ += std::to_string(value);
}

void BenchWriter::text(std::string_view name, std::string_view value) {
  key(name);
  append_escaped(out_, value);
}

void BenchWriter::open(std::string_view name) {
  key(name);
  out_ += '{';
  first_in_scope_ = true;
  ++depth_;
}

void BenchWriter::close() {
  if (depth_ == 0) return;
  out_ += '}';
  first_in_scope_ = false;
  --depth_;
}

std::string BenchWriter::finish() {
  if (!finished_) {
    while (depth_ > 0) close();
    out_ += "}\n";
    finished_ = true;
  }
  return out_;
}

double BenchDoc::number(const std::string& dotted_key, double fallback) const {
  const auto it = numbers.find(dotted_key);
  return it == numbers.end() ? fallback : it->second;
}

std::string BenchDoc::text(const std::string& dotted_key) const {
  const auto it = strings.find(dotted_key);
  return it == strings.end() ? std::string() : it->second;
}

namespace {

/// Tiny recursive-descent parser over the BENCH subset. `at` advances
/// through `text`; errors carry the byte offset for debuggability.
class Parser {
 public:
  Parser(std::string_view text, BenchDoc& doc) : text_(text), doc_(doc) {}

  Status run() {
    skip_ws();
    if (auto status = parse_object(""); !status) return status;
    skip_ws();
    if (at_ != text_.size()) {
      return fail("trailing content after the object");
    }
    return Status::ok();
  }

 private:
  Status fail(const std::string& what) const {
    return Error::make("bench_json.parse",
                       what + " at byte " + std::to_string(at_));
  }

  void skip_ws() {
    while (at_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[at_]))) {
      ++at_;
    }
  }

  bool consume(char c) {
    if (at_ < text_.size() && text_[at_] == c) {
      ++at_;
      return true;
    }
    return false;
  }

  Status parse_string(std::string& out) {
    if (!consume('"')) return fail("expected '\"'");
    out.clear();
    while (at_ < text_.size()) {
      const char c = text_[at_++];
      if (c == '"') return Status::ok();
      if (c == '\\') {
        if (at_ >= text_.size()) break;
        const char esc = text_[at_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (at_ + 4 > text_.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[at_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // The schema only ever escapes control characters.
            out += static_cast<char>(code & 0x7f);
            break;
          }
          default:
            return fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  Status parse_value(const std::string& dotted_key) {
    skip_ws();
    if (at_ >= text_.size()) return fail("expected a value");
    const char c = text_[at_];
    if (c == '{') return parse_object(dotted_key);
    if (c == '"') {
      std::string value;
      if (auto status = parse_string(value); !status) return status;
      doc_.strings[dotted_key] = std::move(value);
      return Status::ok();
    }
    if (c == '[') return fail("arrays are not part of the BENCH schema");
    if (c == 't' || c == 'f' || c == 'n') {
      // Booleans/null: skip the token, store nothing.
      while (at_ < text_.size() &&
             std::isalpha(static_cast<unsigned char>(text_[at_]))) {
        ++at_;
      }
      return Status::ok();
    }
    // Number.
    const std::size_t start = at_;
    while (at_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[at_])) ||
            text_[at_] == '-' || text_[at_] == '+' || text_[at_] == '.' ||
            text_[at_] == 'e' || text_[at_] == 'E')) {
      ++at_;
    }
    if (at_ == start) return fail("expected a value");
    const std::string token(text_.substr(start, at_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("bad number");
    doc_.numbers[dotted_key] = value;
    return Status::ok();
  }

  Status parse_object(const std::string& prefix) {
    if (!consume('{')) return fail("expected '{'");
    skip_ws();
    if (consume('}')) return Status::ok();
    while (true) {
      skip_ws();
      std::string name;
      if (auto status = parse_string(name); !status) return status;
      skip_ws();
      if (!consume(':')) return fail("expected ':'");
      const std::string dotted =
          prefix.empty() ? name : prefix + "." + name;
      if (auto status = parse_value(dotted); !status) return status;
      skip_ws();
      if (consume('}')) return Status::ok();
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  BenchDoc& doc_;
  std::size_t at_ = 0;
};

}  // namespace

Expected<BenchDoc> parse_bench_json(std::string_view text) {
  BenchDoc doc;
  Parser parser(text, doc);
  if (auto status = parser.run(); !status) return status.error();
  return doc;
}

}  // namespace pdcu::loadgen
