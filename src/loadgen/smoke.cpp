#include "pdcu/loadgen/smoke.hpp"

#include <algorithm>
#include <string>

#include "pdcu/core/repository.hpp"
#include "pdcu/loadgen/bench_json.hpp"
#include "pdcu/search/corpus.hpp"
#include "pdcu/search/index.hpp"
#include "pdcu/server/server.hpp"
#include "pdcu/site/site.hpp"

namespace pdcu::loadgen {

namespace {

server::ServerOptions make_server_options(const SmokeOptions& smoke) {
  server::ServerOptions server_options;
  server_options.port = 0;  // ephemeral; loadgen reads it back
  server_options.threads = smoke.server_threads;
  if (smoke.backend == SmokeBackend::kReactor) {
    server_options.backend = server::Backend::kReactor;
    server_options.net_shards = std::max(1u, smoke.net_shards);
  }
  if (smoke.max_connections > 0) {
    server_options.max_connections = smoke.max_connections;
  }
  return server_options;
}

server::HttpServer make_smoke_server(const SmokeOptions& smoke) {
  if (smoke.synthetic_docs > 0) {
    const auto repo = search::corpus::synthetic_repository(
        {smoke.synthetic_docs, smoke.corpus_seed});
    auto index = search::SearchIndex::build(repo);
    server::Router router(site::build_site(repo), repo, std::move(index));
    return server::HttpServer(std::move(router), make_server_options(smoke));
  }
  const auto& repo = core::Repository::builtin();
  auto index = search::SearchIndex::build(repo);
  server::Router router(site::build_site(repo), repo, std::move(index));
  return server::HttpServer(std::move(router), make_server_options(smoke));
}

}  // namespace

Expected<Result> run_smoke(const SmokeOptions& smoke, Options* used) {
  server::HttpServer server = make_smoke_server(smoke);
  if (auto status = server.start(); !status) {
    return status.error().context("smoke server failed to start");
  }

  Options options;
  options.host = "127.0.0.1";
  options.port = server.port();
  options.connections = smoke.connections;
  options.client = smoke.client;
  options.schedule.rate = smoke.rate;
  options.schedule.duration_s = smoke.duration_s;
  options.schedule.seed = smoke.seed;
  if (smoke.synthetic_docs > 0) {
    // Synthetic corpora exist to stress ranked search: switch to the
    // search-dominated mix and draw query terms from the generator's own
    // vocabulary so they hit real posting lists.
    options.schedule.mix = search_mix();
    options.schedule.search_terms =
        search::corpus::sample_query_terms(smoke.corpus_seed, 64);
  }
  if (used != nullptr) *used = options;

  auto result = run_against(options);
  server.stop();
  return result;
}

Expected<std::vector<SweepPoint>> run_sweep(const SweepOptions& sweep) {
  std::vector<SweepPoint> points;
  for (const SmokeBackend backend :
       {SmokeBackend::kPool, SmokeBackend::kReactor}) {
    SmokeOptions smoke;
    smoke.backend = backend;
    smoke.net_shards = sweep.net_shards;
    smoke.server_threads = sweep.server_threads;
    // Let every client connection in: the sweep measures what the backend
    // can serve, not how politely it sheds load.
    smoke.max_connections = sweep.connections * 2;
    server::HttpServer server = make_smoke_server(smoke);
    if (auto status = server.start(); !status) {
      return status.error().context("sweep server failed to start");
    }

    for (const double rate : sweep.rates) {
      Options options;
      options.host = "127.0.0.1";
      options.port = server.port();
      options.connections = sweep.connections;
      options.client = ClientMode::kEpoll;
      options.schedule.rate = rate;
      options.schedule.duration_s = sweep.duration_s;
      options.schedule.seed = sweep.seed;
      auto result = run_against(options);
      if (!result) {
        server.stop();
        return result.error().context("sweep point failed");
      }
      points.push_back(SweepPoint{backend, rate, std::move(result).value()});
    }
    server.stop();
  }
  return points;
}

std::string render_sweep_json(const std::vector<SweepPoint>& points,
                              const SweepOptions& sweep) {
  BenchWriter writer("sweep_serve", "loadgen");
  writer.number("duration_s", sweep.duration_s);
  writer.integer("connections", sweep.connections);
  writer.integer("seed", sweep.seed);
  writer.integer("net_shards", sweep.net_shards);
  writer.integer("points", points.size());

  double best_pool = 0.0;
  double best_reactor = 0.0;
  unsigned pool_index = 0;
  unsigned reactor_index = 0;
  for (const SweepPoint& point : points) {
    const bool reactor = point.backend == SmokeBackend::kReactor;
    // Saturation throughput = the best rate the backend actually served
    // anywhere in the sweep. achieved_rate counts only completed
    // requests, so an overloaded point contributes what it really
    // delivered, not what was offered.
    double& best = reactor ? best_reactor : best_pool;
    best = std::max(best, point.result.achieved_rate);

    std::string key = reactor ? "reactor_" : "pool_";
    key += std::to_string(reactor ? reactor_index++ : pool_index++);
    writer.open(key);
    writer.number("rate", point.rate);
    writer.number("achieved_rate", point.result.achieved_rate);
    writer.number("rps", point.result.achieved_rate);
    writer.integer("scheduled", point.result.scheduled);
    writer.integer("completed", point.result.completed);
    writer.integer("errors", point.result.errors_total());
    writer.integer("peak_connections", point.result.peak_connections);
    writer.integer("p50_us", point.result.latency_us.quantile(0.50));
    writer.integer("p99_us", point.result.latency_us.quantile(0.99));
    writer.integer("max_us", point.result.max_latency_us);
    writer.close();
  }

  writer.open("summary");
  writer.number("pool_saturation_rps", best_pool);
  writer.number("reactor_saturation_rps", best_reactor);
  writer.number("reactor_speedup",
                best_pool > 0.0 ? best_reactor / best_pool : 0.0);
  writer.close();
  return writer.finish();
}

}  // namespace pdcu::loadgen
