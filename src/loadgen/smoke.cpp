#include "pdcu/loadgen/smoke.hpp"

#include "pdcu/core/repository.hpp"
#include "pdcu/search/index.hpp"
#include "pdcu/server/server.hpp"
#include "pdcu/site/site.hpp"

namespace pdcu::loadgen {

Expected<Result> run_smoke(const SmokeOptions& smoke, Options* used) {
  const auto& repo = core::Repository::builtin();
  auto index = search::SearchIndex::build(repo);
  server::Router router(site::build_site(repo), repo, std::move(index));

  server::ServerOptions server_options;
  server_options.port = 0;  // ephemeral; loadgen reads it back below
  server_options.threads = smoke.server_threads;
  server::HttpServer server(std::move(router), server_options);
  if (auto status = server.start(); !status) {
    return status.error().context("smoke server failed to start");
  }

  Options options;
  options.host = "127.0.0.1";
  options.port = server.port();
  options.connections = smoke.connections;
  options.schedule.rate = smoke.rate;
  options.schedule.duration_s = smoke.duration_s;
  options.schedule.seed = smoke.seed;
  if (used != nullptr) *used = options;

  auto result = run_against(options);
  server.stop();
  return result;
}

}  // namespace pdcu::loadgen
