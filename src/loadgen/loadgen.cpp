#include "pdcu/loadgen/loadgen.hpp"

#include <algorithm>
#include <future>
#include <memory>
#include <thread>

#include "pdcu/loadgen/bench_json.hpp"
#include "pdcu/loadgen/client.hpp"
#include "pdcu/loadgen/epoll_client.hpp"
#include "pdcu/runtime/thread_pool.hpp"

namespace pdcu::loadgen {

namespace {

using Clock = std::chrono::steady_clock;

/// Everything one worker accumulates; folded into the Result at the end.
struct WorkerTally {
  obs::Histogram latency_us;
  std::uint64_t max_latency_us = 0;
  std::uint64_t completed = 0;
  std::uint64_t status_2xx = 0, status_3xx = 0, status_4xx = 0,
                status_5xx = 0;
  std::uint64_t connect_errors = 0, send_errors = 0, read_errors = 0,
                timeouts = 0;
  Clock::time_point last_response;
};

/// One worker: walks schedule indices w, w+stride, ... in intended-time
/// order, sleeping until each request's arrival time and never skipping a
/// request it is late for — the lateness is the coordinated-omission wait
/// and belongs in the recorded latency.
void run_worker(const Options& options,
                const std::vector<ScheduledRequest>& schedule,
                std::size_t worker, std::size_t stride,
                Clock::time_point start, WorkerTally& tally) {
  Connection connection(options.host, options.port, options.timeout);
  tally.last_response = start;
  for (std::size_t i = worker; i < schedule.size(); i += stride) {
    const ScheduledRequest& request = schedule[i];
    const Clock::time_point intended =
        start + std::chrono::nanoseconds(request.offset_ns);
    std::this_thread::sleep_until(intended);  // returns at once when late
    if (request.fresh_connection) connection.close();

    const Exchange exchange = connection.get(request.target);
    const Clock::time_point now = Clock::now();
    switch (exchange.outcome) {
      case Outcome::kOk: {
        const auto latency = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                now - intended)
                .count());
        tally.latency_us.record(latency);
        tally.max_latency_us = std::max(tally.max_latency_us, latency);
        ++tally.completed;
        tally.last_response = now;
        if (exchange.status >= 200 && exchange.status < 300) {
          ++tally.status_2xx;
        } else if (exchange.status < 400) {
          ++tally.status_3xx;
        } else if (exchange.status < 500) {
          ++tally.status_4xx;
        } else {
          ++tally.status_5xx;
        }
        break;
      }
      case Outcome::kConnectError: ++tally.connect_errors; break;
      case Outcome::kSendError: ++tally.send_errors; break;
      case Outcome::kReadError: ++tally.read_errors; break;
      case Outcome::kTimeout: ++tally.timeouts; break;
    }
  }
}

}  // namespace

/// 64 blocked worker threads is where thread-per-connection stops being
/// a reasonable model; kAuto switches to the epoll client above it.
constexpr unsigned kAutoEpollThreshold = 64;

Result run(const Options& options,
           const std::vector<ScheduledRequest>& schedule) {
  if (options.client == ClientMode::kEpoll ||
      (options.client == ClientMode::kAuto &&
       options.connections > kAutoEpollThreshold)) {
    return run_epoll(options, schedule);
  }

  Result result;
  result.target_rate = options.schedule.rate;
  result.scheduled = schedule.size();
  if (schedule.empty()) return result;

  const std::size_t workers =
      std::max<std::size_t>(1, std::min<std::size_t>(options.connections,
                                                     schedule.size()));
  // A worker occupies its pool thread for the entire run (blocking socket
  // I/O), so an undersized pool would serialize workers and destroy the
  // arrival schedule. Fall back to a private pool in that case.
  rt::ThreadPool* pool = options.pool;
  std::unique_ptr<rt::ThreadPool> private_pool;
  if (pool == nullptr || pool->size() < workers) {
    private_pool =
        std::make_unique<rt::ThreadPool>(static_cast<unsigned>(workers));
    pool = private_pool.get();
  }

  std::vector<WorkerTally> tallies(workers);
  // Small start offset so every worker is parked on its first
  // sleep_until before the first arrival fires.
  const Clock::time_point start =
      Clock::now() + std::chrono::milliseconds(20);
  std::vector<std::future<void>> done;
  done.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    done.push_back(pool->submit([&, w] {
      run_worker(options, schedule, w, workers, start, tallies[w]);
    }));
  }
  for (auto& future : done) future.get();

  Clock::time_point last_response = start;
  for (const WorkerTally& tally : tallies) {
    result.latency_us.merge(tally.latency_us.snapshot());
    result.max_latency_us =
        std::max(result.max_latency_us, tally.max_latency_us);
    result.completed += tally.completed;
    result.status_2xx += tally.status_2xx;
    result.status_3xx += tally.status_3xx;
    result.status_4xx += tally.status_4xx;
    result.status_5xx += tally.status_5xx;
    result.connect_errors += tally.connect_errors;
    result.send_errors += tally.send_errors;
    result.read_errors += tally.read_errors;
    result.timeouts += tally.timeouts;
    last_response = std::max(last_response, tally.last_response);
  }
  result.wall_s =
      std::chrono::duration<double>(last_response - start).count();
  if (result.wall_s > 0.0) {
    result.achieved_rate =
        static_cast<double>(result.completed) / result.wall_s;
  }
  // Each blocking worker owns exactly one connection for the whole run.
  result.peak_connections = workers;
  return result;
}

Expected<Result> run_against(const Options& options) {
  auto slugs =
      fetch_catalog_slugs(options.host, options.port, options.timeout);
  if (!slugs) return slugs.error();
  const auto schedule = build_schedule(options.schedule, slugs.value());
  if (schedule.empty()) {
    return Error::make("loadgen.schedule",
                       "empty schedule (rate and duration must be > 0)");
  }
  return run(options, schedule);
}

std::string render_result_json(const Result& result, std::string_view bench,
                               const Options& options) {
  BenchWriter writer(bench, "loadgen");
  writer.number("target_rate", result.target_rate);
  writer.number("achieved_rate", result.achieved_rate);
  writer.number("rps", result.achieved_rate);
  writer.number("duration_s", options.schedule.duration_s);
  writer.number("wall_s", result.wall_s);
  writer.open("requests");
  writer.integer("scheduled", result.scheduled);
  writer.integer("completed", result.completed);
  writer.integer("peak_connections", result.peak_connections);
  writer.close();
  writer.open("latency_us");
  writer.integer("p50", result.latency_us.quantile(0.50));
  writer.integer("p90", result.latency_us.quantile(0.90));
  writer.integer("p95", result.latency_us.quantile(0.95));
  writer.integer("p99", result.latency_us.quantile(0.99));
  writer.integer("p999", result.latency_us.quantile(0.999));
  writer.number("mean", result.latency_us.mean());
  writer.integer("max", result.max_latency_us);
  writer.close();
  writer.open("status");
  writer.integer("2xx", result.status_2xx);
  writer.integer("3xx", result.status_3xx);
  writer.integer("4xx", result.status_4xx);
  writer.integer("5xx", result.status_5xx);
  writer.close();
  writer.open("errors");
  writer.integer("connect", result.connect_errors);
  writer.integer("send", result.send_errors);
  writer.integer("read", result.read_errors);
  writer.integer("timeout", result.timeouts);
  // The roll-up a reader actually checks: without it, a run where the
  // server died mid-schedule still *looked* clean to anyone comparing
  // requests.completed against latency percentiles — the refused and
  // mid-body-disconnected requests vanished from the summary.
  writer.integer("total", result.errors_total());
  writer.close();
  writer.open("config");
  writer.text("host", options.host);
  writer.integer("connections", options.connections);
  writer.integer("seed", options.schedule.seed);
  writer.number("zipf_exponent", options.schedule.zipf_exponent);
  writer.number("keep_alive_ratio", options.schedule.keep_alive_ratio);
  writer.text("mix", render_mix(options.schedule.mix.empty()
                                    ? default_mix()
                                    : options.schedule.mix));
  writer.close();
  return writer.finish();
}

}  // namespace pdcu::loadgen
