#include "pdcu/loadgen/gate.hpp"

#include <cstdio>

namespace pdcu::loadgen {

namespace {

std::string format_violation(const GateRule& rule, double baseline,
                             double fresh, double tolerance) {
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                "%s: fresh %.1f vs baseline %.1f exceeds the %.1fx "
                "tolerance (%s is worse)",
                rule.key.c_str(), fresh, baseline, tolerance,
                rule.higher_is_worse ? "higher" : "lower");
  return buffer;
}

}  // namespace

std::vector<GateRule> serve_gate_rules() {
  return {
      {"latency_us.p50", /*higher_is_worse=*/true, /*required=*/true},
      {"latency_us.p99", /*higher_is_worse=*/true, /*required=*/true},
      {"achieved_rate", /*higher_is_worse=*/false, /*required=*/true},
  };
}

std::vector<GateRule> search_gate_rules() {
  return {
      {"query_us.p50", /*higher_is_worse=*/true, /*required=*/true},
      {"query_us.p99", /*higher_is_worse=*/true, /*required=*/true},
      {"index_build_ms", /*higher_is_worse=*/true, /*required=*/true},
  };
}

std::vector<std::string> gate_compare(const BenchDoc& baseline,
                                      const BenchDoc& fresh,
                                      const std::vector<GateRule>& rules,
                                      const GateOptions& options) {
  std::vector<std::string> violations;
  if (baseline.schema_version() != kBenchSchemaVersion) {
    violations.push_back(
        "baseline bench_schema " +
        std::to_string(baseline.schema_version()) + " != expected " +
        std::to_string(kBenchSchemaVersion) + " (refresh the baseline)");
    return violations;
  }
  if (fresh.schema_version() != kBenchSchemaVersion) {
    violations.push_back("fresh document has the wrong bench_schema");
    return violations;
  }
  if (baseline.bench_name() != fresh.bench_name()) {
    violations.push_back("bench name mismatch: baseline '" +
                         baseline.bench_name() + "' vs fresh '" +
                         fresh.bench_name() + "'");
    return violations;
  }

  // A fresh run that errored is a failure regardless of how fast the
  // successful requests were.
  for (const auto& [key, value] : fresh.numbers) {
    if (key.rfind("errors.", 0) == 0 && value != 0.0) {
      violations.push_back(key + " is " + std::to_string(value) +
                           " in the fresh run (expected 0)");
    }
  }

  for (const GateRule& rule : rules) {
    const bool in_baseline = baseline.has_number(rule.key);
    const bool in_fresh = fresh.has_number(rule.key);
    if (!in_baseline || !in_fresh) {
      if (rule.required) {
        violations.push_back(rule.key + " missing from the " +
                             (in_baseline ? "fresh run" : "baseline"));
      }
      continue;
    }
    const double base = baseline.number(rule.key);
    const double now = fresh.number(rule.key);
    if (base <= 0.0) continue;  // nothing meaningful to ratio against
    if (rule.higher_is_worse) {
      if (now > base * options.tolerance) {
        violations.push_back(
            format_violation(rule, base, now, options.tolerance));
      }
    } else if (now < base / options.tolerance) {
      violations.push_back(
          format_violation(rule, base, now, options.tolerance));
    }
  }
  return violations;
}

}  // namespace pdcu::loadgen
