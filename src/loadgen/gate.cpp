#include "pdcu/loadgen/gate.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pdcu::loadgen {

namespace {

std::string format_violation(const GateRule& rule, double baseline,
                             double fresh, double tolerance) {
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                "%s: fresh %.1f vs baseline %.1f exceeds the %.1fx "
                "tolerance (%s is worse)",
                rule.key.c_str(), fresh, baseline, tolerance,
                rule.higher_is_worse ? "higher" : "lower");
  return buffer;
}

}  // namespace

std::vector<GateRule> serve_gate_rules() {
  return {
      {"latency_us.p50", /*higher_is_worse=*/true, /*required=*/true},
      {"latency_us.p99", /*higher_is_worse=*/true, /*required=*/true},
      {"achieved_rate", /*higher_is_worse=*/false, /*required=*/true},
  };
}

std::vector<GateRule> search_gate_rules() {
  return {
      {"query_us.p50", /*higher_is_worse=*/true, /*required=*/true},
      {"query_us.p99", /*higher_is_worse=*/true, /*required=*/true},
      {"index_build_ms", /*higher_is_worse=*/true, /*required=*/true},
  };
}

std::vector<GateRule> scale_gate_rules() {
  return {
      {"docs_10000.maxscore_p50_us", /*higher_is_worse=*/true,
       /*required=*/true},
      {"docs_10000.maxscore_p99_us", /*higher_is_worse=*/true,
       /*required=*/true},
      {"docs_10000.build_ms", /*higher_is_worse=*/true, /*required=*/true},
      {"docs_10000.cache_hit_p99_us", /*higher_is_worse=*/true,
       /*required=*/true},
  };
}

std::vector<std::string> scale_schema_violations(const BenchDoc& doc,
                                                 double min_speedup) {
  std::vector<std::string> violations;
  if (doc.schema_version() != kBenchSchemaVersion) {
    violations.push_back("search_scale bench_schema " +
                         std::to_string(doc.schema_version()) +
                         " != expected " +
                         std::to_string(kBenchSchemaVersion));
    return violations;
  }
  if (doc.bench_name() != "search_scale") {
    violations.push_back("bench name '" + doc.bench_name() +
                         "' != 'search_scale'");
    return violations;
  }

  for (const char* size : {"docs_10000", "docs_100000"}) {
    for (const char* field :
         {"docs", "build_ms", "exhaustive_p50_us", "exhaustive_p99_us",
          "maxscore_p50_us", "maxscore_p99_us", "speedup_p99", "cache_hits",
          "cache_misses", "cache_hit_p99_us", "cache_miss_p99_us",
          "end_to_end_p99_us", "dense_pair_exhaustive_us",
          "dense_pair_pruned_us"}) {
      const std::string key = std::string(size) + "." + field;
      if (!doc.has_number(key)) violations.push_back(key + " missing");
    }
  }

  // The headline claim the baseline commits to: block-max early
  // termination is at least min_speedup times better at p99 on the
  // largest corpus.
  if (doc.number("summary.largest_docs", 0.0) < 100'000.0) {
    violations.push_back("summary.largest_docs < 100000");
  }
  const double speedup = doc.number("summary.speedup_p99", 0.0);
  if (speedup < min_speedup) {
    char buffer[128];
    std::snprintf(buffer, sizeof buffer,
                  "summary.speedup_p99 %.2f < required %.2fx "
                  "(MaxScore vs exhaustive at the largest corpus)",
                  speedup, min_speedup);
    violations.push_back(buffer);
  }
  return violations;
}

std::vector<GateRule> stencil_gate_rules() {
  return {
      {"kernels.serial_cells_per_s", /*higher_is_worse=*/false,
       /*required=*/true},
      {"kernels.tiled_cells_per_s", /*higher_is_worse=*/false,
       /*required=*/true},
      {"kernels.autovec_cells_per_s", /*higher_is_worse=*/false,
       /*required=*/true},
  };
}

std::vector<std::string> stencil_schema_violations(const BenchDoc& doc,
                                                   double min_speedup) {
  std::vector<std::string> violations;
  if (doc.schema_version() != kBenchSchemaVersion) {
    violations.push_back("stencil bench_schema " +
                         std::to_string(doc.schema_version()) +
                         " != expected " +
                         std::to_string(kBenchSchemaVersion));
    return violations;
  }
  if (doc.bench_name() != "stencil") {
    violations.push_back("bench name '" + doc.bench_name() +
                         "' != 'stencil'");
    return violations;
  }

  for (const char* field :
       {"width", "height", "generations", "kernels.serial_cells_per_s",
        "kernels.tiled_cells_per_s", "kernels.autovec_cells_per_s",
        "kernels.simd_cells_per_s", "kernels.simd_vs_autovec",
        "parity.checked", "parity.mismatches", "virtual.halo_mismatches",
        "errors.total"}) {
    if (!doc.has_number(field)) {
      violations.push_back(std::string(field) + " missing");
    }
  }
  for (const char* p : {"p1", "p2", "p4", "p8", "p16"}) {
    const std::string key = std::string("virtual.") + p + "_speedup";
    if (!doc.has_number(key)) violations.push_back(key + " missing");
  }
  if (!violations.empty()) return violations;

  // Honesty anchors: the baseline must have been measured with every
  // kernel agreeing with the serial oracle and the halo-message count
  // matching the analytic 2 * ranks * generations.
  if (doc.number("parity.checked", 0.0) <= 0.0) {
    violations.push_back("parity.checked is zero — no kernels compared");
  }
  if (doc.number("parity.mismatches", 0.0) != 0.0) {
    violations.push_back("parity.mismatches != 0 — a kernel diverged "
                         "from the serial oracle");
  }
  if (doc.number("virtual.halo_mismatches", 0.0) != 0.0) {
    violations.push_back("virtual.halo_mismatches != 0 — halo rounds "
                         "disagree with the analytic count");
  }
  if (doc.number("errors.total", 0.0) != 0.0) {
    violations.push_back("errors.total != 0");
  }

  // The committed headline: decomposing the torus buys real virtual-time
  // speedup by 4 ranks.
  const double speedup = doc.number("virtual.p4_speedup", 0.0);
  if (speedup < min_speedup) {
    char buffer[128];
    std::snprintf(buffer, sizeof buffer,
                  "virtual.p4_speedup %.2f < required %.2fx",
                  speedup, min_speedup);
    violations.push_back(buffer);
  }
  return violations;
}

std::vector<std::string> sweep_schema_violations(const BenchDoc& doc) {
  std::vector<std::string> violations;
  if (doc.schema_version() != kBenchSchemaVersion) {
    violations.push_back("sweep bench_schema " +
                         std::to_string(doc.schema_version()) +
                         " != expected " +
                         std::to_string(kBenchSchemaVersion));
    return violations;
  }
  if (doc.bench_name() != "sweep_serve") {
    violations.push_back("bench name '" + doc.bench_name() +
                         "' != 'sweep_serve'");
    return violations;
  }

  // Count the per-backend point objects and remember each backend's best
  // served rate so the summary can be cross-checked.
  double best[2] = {0.0, 0.0};  // [pool, reactor]
  int counts[2] = {0, 0};
  for (int backend = 0; backend < 2; ++backend) {
    const std::string prefix = backend == 0 ? "pool_" : "reactor_";
    for (int i = 0;; ++i) {
      const std::string point = prefix + std::to_string(i);
      if (!doc.has_number(point + ".rate")) break;
      ++counts[backend];
      for (const char* field : {"rps", "scheduled", "completed"}) {
        if (!doc.has_number(point + "." + field)) {
          violations.push_back(point + "." + field + " missing");
        }
      }
      best[backend] =
          std::max(best[backend], doc.number(point + ".rps", 0.0));
    }
    if (counts[backend] == 0) {
      violations.push_back("no " + prefix + "N points in the sweep");
    }
  }
  if (doc.number("points", 0.0) != counts[0] + counts[1]) {
    violations.push_back("'points' does not match the point objects found");
  }

  for (const char* key :
       {"summary.pool_saturation_rps", "summary.reactor_saturation_rps",
        "summary.reactor_speedup"}) {
    if (!doc.has_number(key)) {
      violations.push_back(std::string(key) + " missing");
    }
  }
  // The summary must describe the points it sits next to (small slack for
  // decimal round-tripping).
  if (counts[0] > 0 &&
      std::abs(doc.number("summary.pool_saturation_rps") - best[0]) >
          0.01 * std::max(1.0, best[0])) {
    violations.push_back(
        "summary.pool_saturation_rps does not match the best pool point");
  }
  if (counts[1] > 0 &&
      std::abs(doc.number("summary.reactor_saturation_rps") - best[1]) >
          0.01 * std::max(1.0, best[1])) {
    violations.push_back(
        "summary.reactor_saturation_rps does not match the best reactor "
        "point");
  }
  return violations;
}

std::vector<std::string> gate_compare(const BenchDoc& baseline,
                                      const BenchDoc& fresh,
                                      const std::vector<GateRule>& rules,
                                      const GateOptions& options) {
  std::vector<std::string> violations;
  if (baseline.schema_version() != kBenchSchemaVersion) {
    violations.push_back(
        "baseline bench_schema " +
        std::to_string(baseline.schema_version()) + " != expected " +
        std::to_string(kBenchSchemaVersion) + " (refresh the baseline)");
    return violations;
  }
  if (fresh.schema_version() != kBenchSchemaVersion) {
    violations.push_back("fresh document has the wrong bench_schema");
    return violations;
  }
  if (baseline.bench_name() != fresh.bench_name()) {
    violations.push_back("bench name mismatch: baseline '" +
                         baseline.bench_name() + "' vs fresh '" +
                         fresh.bench_name() + "'");
    return violations;
  }

  // A fresh run that errored is a failure regardless of how fast the
  // successful requests were.
  for (const auto& [key, value] : fresh.numbers) {
    if (key.rfind("errors.", 0) == 0 && value != 0.0) {
      violations.push_back(key + " is " + std::to_string(value) +
                           " in the fresh run (expected 0)");
    }
  }

  for (const GateRule& rule : rules) {
    const bool in_baseline = baseline.has_number(rule.key);
    const bool in_fresh = fresh.has_number(rule.key);
    if (!in_baseline || !in_fresh) {
      if (rule.required) {
        violations.push_back(rule.key + " missing from the " +
                             (in_baseline ? "fresh run" : "baseline"));
      }
      continue;
    }
    const double base = baseline.number(rule.key);
    const double now = fresh.number(rule.key);
    if (base <= 0.0) continue;  // nothing meaningful to ratio against
    if (rule.higher_is_worse) {
      if (now > base * options.tolerance) {
        violations.push_back(
            format_violation(rule, base, now, options.tolerance));
      }
    } else if (now < base / options.tolerance) {
      violations.push_back(
          format_violation(rule, base, now, options.tolerance));
    }
  }
  return violations;
}

}  // namespace pdcu::loadgen
