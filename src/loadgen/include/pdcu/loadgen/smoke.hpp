// Self-test mode: boot a real HttpServer over the builtin repository on
// an ephemeral loopback port, drive a short loadgen run against it, and
// return the Result. This is what `pdcu loadgen --smoke` and the
// bench_gate CI comparator run — no fixture server to deploy, no port to
// coordinate, identical request schedule on every machine (fixed seed).
//
// The embedded server gets a private worker pool: in-process, server and
// loadgen sharing one rt::default_pool() would deadlock on a 1-core host
// (the loadgen worker holds the only pool thread while waiting for a
// response the server can never schedule).
#pragma once

#include <vector>

#include "pdcu/loadgen/loadgen.hpp"
#include "pdcu/support/expected.hpp"

namespace pdcu::loadgen {

/// Which HttpServer backend the embedded server runs on. Mirrors
/// server::Backend without dragging server headers into this interface.
enum class SmokeBackend { kPool, kReactor };

struct SmokeOptions {
  double rate = 150.0;
  double duration_s = 2.0;
  unsigned connections = 2;
  std::uint64_t seed = 42;
  unsigned server_threads = 4;
  SmokeBackend backend = SmokeBackend::kPool;
  unsigned net_shards = 1;
  /// Server-side concurrent-connection cap; 0 keeps the server default.
  unsigned max_connections = 0;
  ClientMode client = ClientMode::kAuto;
  /// Serve a deterministic synthetic corpus of this many documents instead
  /// of the builtin 38-activity curation (0 = builtin). Search-route query
  /// terms are drawn from the generator's vocabulary so they hit real
  /// posting lists. Keep modest (<= a few thousand): the embedded server
  /// renders a site page per document.
  std::size_t synthetic_docs = 0;
  std::uint64_t corpus_seed = 42;  ///< corpus seed when synthetic_docs > 0
};

/// Runs the smoke load and returns the result; the embedded server is
/// gone by the time this returns. The loadgen Options used are written to
/// `used` (for rendering the BENCH JSON) when non-null.
Expected<Result> run_smoke(const SmokeOptions& smoke = {},
                           Options* used = nullptr);

/// One measured point of the offered-rate sweep.
struct SweepPoint {
  SmokeBackend backend = SmokeBackend::kPool;
  double rate = 0.0;
  Result result;
};

struct SweepOptions {
  /// Offered arrival rates, swept in order against each backend.
  std::vector<double> rates = {200.0, 800.0, 3200.0};
  double duration_s = 2.0;
  unsigned connections = 128;
  std::uint64_t seed = 42;
  unsigned server_threads = 4;
  unsigned net_shards = 2;
};

/// Drives every rate in `sweep.rates` against a pool-backend server and
/// then a reactor-backend server (one embedded server per backend, reused
/// across its rates so TCP state warms identically). Points are returned
/// pool-first, in rate order.
Expected<std::vector<SweepPoint>> run_sweep(const SweepOptions& sweep = {});

/// Renders sweep points as one BENCH-schema document (bench
/// "sweep_serve"): per-point nested objects keyed pool_0, pool_1, ...,
/// reactor_0, ... plus a "summary" object with each backend's best
/// achieved rate and the reactor/pool speedup at saturation.
std::string render_sweep_json(const std::vector<SweepPoint>& points,
                              const SweepOptions& sweep);

}  // namespace pdcu::loadgen
