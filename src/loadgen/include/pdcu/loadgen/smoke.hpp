// Self-test mode: boot a real HttpServer over the builtin repository on
// an ephemeral loopback port, drive a short loadgen run against it, and
// return the Result. This is what `pdcu loadgen --smoke` and the
// bench_gate CI comparator run — no fixture server to deploy, no port to
// coordinate, identical request schedule on every machine (fixed seed).
//
// The embedded server gets a private worker pool: in-process, server and
// loadgen sharing one rt::default_pool() would deadlock on a 1-core host
// (the loadgen worker holds the only pool thread while waiting for a
// response the server can never schedule).
#pragma once

#include "pdcu/loadgen/loadgen.hpp"
#include "pdcu/support/expected.hpp"

namespace pdcu::loadgen {

struct SmokeOptions {
  double rate = 150.0;
  double duration_s = 2.0;
  unsigned connections = 2;
  std::uint64_t seed = 42;
  unsigned server_threads = 4;
};

/// Runs the smoke load and returns the result; the embedded server is
/// gone by the time this returns. The loadgen Options used are written to
/// `used` (for rendering the BENCH JSON) when non-null.
Expected<Result> run_smoke(const SmokeOptions& smoke = {},
                           Options* used = nullptr);

}  // namespace pdcu::loadgen
