// pdcu::loadgen — an open-loop, coordinated-omission-safe HTTP load
// generator for the pdcu server.
//
// Closed-loop load tools (send, wait, send again) silently stop measuring
// whenever the server stalls: the requests that *would* have arrived
// during the stall are never sent, so the stall barely shows in the
// percentiles. This harness is open-loop instead: the whole request
// schedule — arrival times included — is fixed up front at the target
// rate, and every request's latency is measured from its *intended* send
// time. If the server stalls for 200 ms, every request scheduled inside
// that window is charged the wait, and the p99 says so.
//
// N workers each own one connection and walk a round-robin slice of the
// schedule, recording latencies into a worker-local obs::Histogram; the
// snapshots merge lock-free at the end. Workers run on the provided
// thread pool when it is big enough, otherwise on a private pool sized to
// the connection count — a worker blocks in socket I/O for the whole run,
// so packing two workers onto one pool thread would corrupt the schedule.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "pdcu/obs/histogram.hpp"
#include "pdcu/loadgen/schedule.hpp"
#include "pdcu/support/expected.hpp"

namespace pdcu::rt {
class ThreadPool;
}  // namespace pdcu::rt

namespace pdcu::loadgen {

/// How the generator drives its connections.
enum class ClientMode {
  /// kBlocking under 65 connections, kEpoll above — the blocking client's
  /// thread-per-connection model stops scaling right around there.
  kAuto,
  /// One worker thread per connection, blocking socket I/O. Simple, and
  /// exact for small connection counts.
  kBlocking,
  /// One thread multiplexing every connection through epoll state
  /// machines. Scales --connections to tens of thousands (the schedule
  /// semantics — per-connection slices, intended-time latency — are
  /// identical to the blocking mode).
  kEpoll,
};

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 8080;
  unsigned connections = 4;  ///< worker connections walking the schedule
  ClientMode client = ClientMode::kAuto;
  std::chrono::milliseconds timeout{2000};  ///< per-exchange socket timeout
  ScheduleOptions schedule;  ///< rate, duration, seed, zipf, mix
  /// Workers run here when it has >= `connections` idle threads;
  /// otherwise a private pool is created for the run (see file comment).
  /// The epoll client ignores it (one thread drives everything).
  rt::ThreadPool* pool = nullptr;
};

struct Result {
  double target_rate = 0.0;    ///< what the schedule asked for
  double achieved_rate = 0.0;  ///< completed responses / wall seconds
  double wall_s = 0.0;         ///< first intended send to last response
  std::uint64_t scheduled = 0;
  std::uint64_t completed = 0;  ///< full responses read, any status
  std::uint64_t status_2xx = 0;
  std::uint64_t status_3xx = 0;
  std::uint64_t status_4xx = 0;
  std::uint64_t status_5xx = 0;
  std::uint64_t connect_errors = 0;
  std::uint64_t send_errors = 0;
  std::uint64_t read_errors = 0;
  std::uint64_t timeouts = 0;
  /// Merged per-worker latencies, in microseconds, measured from each
  /// request's intended send time (coordinated-omission-safe).
  obs::Histogram::Snapshot latency_us;
  std::uint64_t max_latency_us = 0;
  /// Most connections simultaneously open during the run (== worker count
  /// for the blocking client; the interesting number for the epoll one).
  std::uint64_t peak_connections = 0;

  std::uint64_t errors_total() const {
    return connect_errors + send_errors + read_errors + timeouts;
  }

  /// The no-silent-gaps invariant: every scheduled request lands in
  /// exactly one bucket — completed, or one of the error counters. False
  /// means the generator dropped requests from its own accounting (the
  /// failure mode that makes a dead server look like a fast one).
  bool fully_accounted() const {
    return completed + errors_total() == scheduled;
  }
};

/// Drives a prebuilt schedule against host:port. Blocks until every
/// scheduled request has been attempted.
Result run(const Options& options,
           const std::vector<ScheduledRequest>& schedule);

/// Fetches the served catalog's slugs, builds the schedule from
/// options.schedule, and runs it. Fails if the server is unreachable or
/// serves an empty catalog.
Expected<Result> run_against(const Options& options);

/// Renders a Result as one BENCH-schema JSON object (see bench_json.hpp).
/// `bench` names the trajectory file family, e.g. "serve".
std::string render_result_json(const Result& result, std::string_view bench,
                               const Options& options);

}  // namespace pdcu::loadgen
