// The blocking HTTP/1.1 client one load-generator worker drives: a single
// connection that can be kept alive across requests or deliberately torn
// down to pay the cold-connect cost the schedule asks for. Responses are
// framed by Content-Length (the only framing the pdcu server emits), so a
// keep-alive exchange knows exactly where one response ends and leaves the
// socket clean for the next. Send/receive timeouts are enforced with
// SO_SNDTIMEO/SO_RCVTIMEO; a timed-out connection is closed, because the
// stream position is unknowable after an abandoned read.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "pdcu/support/expected.hpp"

namespace pdcu::loadgen {

enum class Outcome {
  kOk,            ///< full response read; see `status`
  kConnectError,  ///< could not establish the TCP connection
  kSendError,     ///< connection died while writing the request
  kReadError,     ///< connection died or desynced while reading
  kTimeout,       ///< the read timeout expired mid-response
};

struct Exchange {
  Outcome outcome = Outcome::kReadError;
  int status = 0;              ///< HTTP status when outcome == kOk
  std::size_t body_bytes = 0;  ///< response body size when outcome == kOk
};

class Connection {
 public:
  Connection(std::string host, std::uint16_t port,
             std::chrono::milliseconds timeout);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  bool connected() const { return fd_ >= 0; }
  void close();

  /// One GET exchange. Connects first if the socket is down (counted in
  /// the measured latency — a cold connect is part of what the user
  /// waits for). The request is sent keep-alive; the connection is closed
  /// afterwards only if the server said "Connection: close" or the
  /// exchange failed.
  Exchange get(const std::string& target);

 private:
  bool ensure_connected();
  bool read_more();  ///< appends to buffer_; false on EOF/error/timeout

  std::string host_;
  std::uint16_t port_;
  std::chrono::milliseconds timeout_;
  int fd_ = -1;
  bool timed_out_ = false;  ///< the last read_more failure was a timeout
  std::string buffer_;      ///< unconsumed response bytes
};

/// Case-insensitive lookup of a header value inside a response head
/// (start line + header lines). Returns the trimmed value, lower-cased,
/// or an empty string when absent. Shared by the blocking and epoll
/// clients so both frame responses identically.
std::string find_header_value(std::string_view head, std::string_view name);

/// Fetches /api/catalog.json from a running server and returns the slugs
/// in catalog order (which the Zipf sampler treats as popularity order).
Expected<std::vector<std::string>> fetch_catalog_slugs(
    const std::string& host, std::uint16_t port,
    std::chrono::milliseconds timeout);

}  // namespace pdcu::loadgen
