// The regression comparator behind tools/bench_gate: given a committed
// BENCH baseline and a freshly measured document, decide whether the
// fresh run regressed. Rules are multiplicative — a latency key fails
// when fresh > baseline * tolerance, a throughput key fails when
// fresh < baseline / tolerance — because absolute perf varies wildly
// across the containers and CI runners this repo builds on, while an
// order-of-magnitude cliff is a regression anywhere.
#pragma once

#include <string>
#include <vector>

#include "pdcu/loadgen/bench_json.hpp"

namespace pdcu::loadgen {

struct GateRule {
  std::string key;            ///< dotted BENCH key, e.g. "latency_us.p99"
  bool higher_is_worse = true;
  bool required = true;       ///< missing key is itself a violation
};

struct GateOptions {
  /// Allowed multiplicative drift in the worse direction. Improvements
  /// are never violations.
  double tolerance = 5.0;
};

/// The rules bench_gate applies to a loadgen "serve" document.
std::vector<GateRule> serve_gate_rules();

/// The rules bench_gate applies to a "search" document.
std::vector<GateRule> search_gate_rules();

/// The rules bench_gate applies to a re-measured "search_scale" document.
/// Only the 10k-document section is compared — the gate re-measures at
/// 10k; the committed 100k section is validated structurally instead (see
/// scale_schema_violations).
std::vector<GateRule> scale_gate_rules();

/// Structural validation of the committed "search_scale" document: both
/// corpus sizes present with exhaustive/MaxScore percentiles and cache
/// counters, and the headline claim — MaxScore p99 at least
/// `min_speedup` times better than exhaustive at >= 100k documents —
/// actually held when the baseline was measured. Returns human-readable
/// violations; empty means the document is well-formed.
std::vector<std::string> scale_schema_violations(const BenchDoc& doc,
                                                 double min_speedup = 5.0);

/// Rules for the "stencil" benchmark (bench/bench_stencil.cpp): the host
/// kernel throughputs are rates, so lower is worse. The SIMD arm is
/// compared via the always-present autovec kernel; the avx2 figure is
/// informational because CI hosts may not have AVX2 at all.
std::vector<GateRule> stencil_gate_rules();

/// Structural validation of the committed "stencil" document: grid shape
/// and kernel throughputs present, bit-exact parity recorded with zero
/// mismatches, the virtual-time speedup curve complete for p in
/// {1,2,4,8,16} with the analytic halo count holding, zero errors, and
/// the committed headline — at least `min_speedup` virtual-time speedup
/// at 4 ranks — actually measured. Empty means well-formed.
std::vector<std::string> stencil_schema_violations(const BenchDoc& doc,
                                                   double min_speedup = 1.5);

/// Structural validation of a "sweep_serve" BENCH document (the
/// latency-vs-offered-rate sweep committed as BENCH_sweep_serve.json).
/// The sweep is too expensive to re-measure inside the gate, so the gate
/// checks the committed document's shape instead: right bench name and
/// schema, at least one pool_N and one reactor_N point each carrying
/// rate/rps/completed, and a summary whose saturation numbers are
/// consistent with the points. Returns human-readable violations; empty
/// means the document is well-formed.
std::vector<std::string> sweep_schema_violations(const BenchDoc& doc);

/// Compares `fresh` against `baseline`: schema versions must match, the
/// bench names must match, fresh error counters (any "errors.*" key
/// present in `fresh`) must be zero, and every rule must hold within the
/// tolerance. Returns human-readable violations; empty means the gate
/// passes.
std::vector<std::string> gate_compare(const BenchDoc& baseline,
                                      const BenchDoc& fresh,
                                      const std::vector<GateRule>& rules,
                                      const GateOptions& options = {});

}  // namespace pdcu::loadgen
