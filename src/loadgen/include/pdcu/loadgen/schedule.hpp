// The deterministic half of the load generator: given a seed, a target
// arrival rate, a traffic mix, and the served catalog's slugs, produce the
// complete request schedule up front — every request's *intended* send
// time, route, target path, and whether it rides a kept-alive connection
// or pays a cold connect.
//
// Everything downstream (the workers, the latency accounting) treats this
// schedule as ground truth: a request that should have left at t is
// charged from t even if the generator was still waiting on an earlier
// response, which is what makes the harness coordinated-omission-safe.
// Two calls with the same options and slugs return byte-identical
// schedules, so a run is reproducible from its seed alone.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "pdcu/support/expected.hpp"
#include "pdcu/support/rng.hpp"

namespace pdcu::loadgen {

/// The route classes a scheduled request can exercise — the same classes
/// the server's /metrics breaks latency out by.
enum class Route {
  kPage,      ///< GET /activities/<slug>/          (cached HTML)
  kCatalog,   ///< GET /api/catalog.json            (one big JSON body)
  kActivity,  ///< GET /api/activities/<slug>.json  (small JSON body)
  kSearch,    ///< GET /api/search?q=<term>&limit=10 (BM25 query)
};

std::string_view route_name(Route route);

struct MixEntry {
  Route route = Route::kPage;
  double weight = 1.0;
};

/// Parses a traffic-mix spec: colon-separated route names with optional
/// weights, e.g. "page:catalog:search" (equal weights) or
/// "page=6:catalog=1:activity=2:search=1". Unknown routes and
/// non-positive weights are errors.
Expected<std::vector<MixEntry>> parse_mix(std::string_view text);

/// Renders a mix back to its canonical "route=weight:..." spelling.
std::string render_mix(const std::vector<MixEntry>& mix);

/// The default mix when none is given: page-heavy with a steady API and
/// search tail, roughly what a public education site sees.
std::vector<MixEntry> default_mix();

/// A search-dominated mix ("search=8:page=1:activity=1") for hammering
/// /api/search at corpus scale, where ranked queries are the cost center.
std::vector<MixEntry> search_mix();

/// Zipf-distributed ranks: P(rank k) proportional to 1/(k+1)^s over ranks
/// [0, n). Rank 0 is the most popular. Sampling is a binary search over a
/// precomputed cumulative table, deterministic given the Rng.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  std::size_t size() const { return cumulative_.size(); }
  std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> cumulative_;
};

struct ScheduleOptions {
  double rate = 100.0;      ///< target arrivals per second (open loop)
  double duration_s = 5.0;  ///< schedule horizon; ~rate*duration requests
  std::uint64_t seed = 42;
  double zipf_exponent = 1.1;    ///< slug/term popularity skew
  double keep_alive_ratio = 0.9; ///< P(request reuses its connection)
  std::vector<MixEntry> mix;     ///< empty => default_mix()
  /// Query vocabulary for the search route; empty => the built-in PDC
  /// lexicon. Point this at corpus::sample_query_terms(...) (or any term
  /// list) to drive searches that match a synthetic corpus — list order
  /// defines popularity rank for the Zipf draw.
  std::vector<std::string> search_terms;
};

struct ScheduledRequest {
  std::uint64_t offset_ns = 0;  ///< intended send time, relative to start
  Route route = Route::kPage;
  std::string target;           ///< origin-form request target
  bool fresh_connection = false; ///< close and reconnect before sending
};

/// Builds the full open-loop schedule: arrivals at a fixed 1/rate spacing,
/// routes drawn from the weighted mix, slugs drawn Zipf-distributed from
/// `slugs` (catalog order defines popularity rank), search terms drawn
/// Zipf-distributed from a built-in PDC lexicon. `slugs` must be
/// non-empty. Deterministic in (options, slugs).
std::vector<ScheduledRequest> build_schedule(
    const ScheduleOptions& options, const std::vector<std::string>& slugs);

}  // namespace pdcu::loadgen
