// The epoll load-generator client: one thread multiplexing every
// configured connection through non-blocking state machines, so
// --connections can climb to tens of thousands without tens of thousands
// of blocked threads. Schedule semantics are identical to the blocking
// workers — connection c walks schedule indices c, c+N, ... in intended-
// time order, never skips a request it is late for, and charges every
// latency from the request's *intended* send time — so the two modes are
// interchangeable for small runs and comparable for large ones.
#pragma once

#include <vector>

#include "pdcu/loadgen/loadgen.hpp"
#include "pdcu/loadgen/schedule.hpp"

namespace pdcu::loadgen {

/// Drives `schedule` with the epoll client. Called by run() when the
/// ClientMode resolves to kEpoll; exposed for tests that pin the mode.
Result run_epoll(const Options& options,
                 const std::vector<ScheduledRequest>& schedule);

}  // namespace pdcu::loadgen
