// The versioned BENCH_*.json schema every perf-trajectory file in the
// repo speaks: one flat-ish JSON object per benchmark run, opened by
//
//   {"bench_schema": 1, "bench": "<name>", "source": "<binary>", ...}
//
// with at most one level of nesting ("latency_us": {"p50": ...}). The
// writer emits keys in insertion order so committed baselines diff
// cleanly; the parser flattens nested keys with dots ("latency_us.p50"),
// which is what the bench_gate comparator keys its tolerance rules on.
// Both ends live here so the load generator, the bench binaries, and the
// gate can never drift apart on the format.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "pdcu/support/expected.hpp"

namespace pdcu::loadgen {

/// Bumped when a key is renamed or changes meaning; the gate refuses to
/// compare documents across schema versions.
inline constexpr int kBenchSchemaVersion = 1;

/// Ordered single-object JSON writer with one level of nesting. Keys are
/// emitted in call order; numbers are rendered with enough precision to
/// round-trip through the parser.
class BenchWriter {
 public:
  /// Opens the document and writes the three schema fields.
  BenchWriter(std::string_view bench, std::string_view source);

  void number(std::string_view key, double value);
  void integer(std::string_view key, std::uint64_t value);
  void text(std::string_view key, std::string_view value);

  /// Opens a nested object; subsequent fields land inside until close().
  void open(std::string_view key);
  void close();

  /// Closes any open nesting and returns the document plus a trailing
  /// newline (BENCH files are one JSON object per file, newline-terminated).
  std::string finish();

 private:
  void key(std::string_view name);

  std::string out_;
  bool first_in_scope_ = true;
  int depth_ = 0;
  bool finished_ = false;
};

/// A parsed BENCH document: leaf values keyed by their dotted path.
struct BenchDoc {
  std::map<std::string, double> numbers;
  std::map<std::string, std::string> strings;

  bool has_number(const std::string& dotted_key) const {
    return numbers.count(dotted_key) != 0;
  }
  /// The value at `dotted_key`, or `fallback` when absent.
  double number(const std::string& dotted_key, double fallback = 0.0) const;
  std::string text(const std::string& dotted_key) const;

  int schema_version() const {
    return static_cast<int>(number("bench_schema", 0.0));
  }
  std::string bench_name() const { return text("bench"); }
};

/// Parses one BENCH-schema JSON object (objects, strings, numbers;
/// booleans and nulls are skipped, arrays are rejected — the schema has
/// none). Nested keys flatten with dots. Leading/trailing whitespace is
/// fine; anything else trailing the object is an error.
Expected<BenchDoc> parse_bench_json(std::string_view text);

}  // namespace pdcu::loadgen
