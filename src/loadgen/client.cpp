#include "pdcu/loadgen/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace pdcu::loadgen {

std::string find_header_value(std::string_view head, std::string_view name) {
  std::string lowered;
  lowered.reserve(head.size());
  for (const char c : head) {
    lowered += static_cast<char>(
        c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  }
  std::string needle = "\n";
  needle.append(name);
  needle += ':';
  const auto at = lowered.find(needle);
  if (at == std::string::npos) return {};
  auto start = at + needle.size();
  auto end = lowered.find('\n', start);
  if (end == std::string::npos) end = lowered.size();
  std::string value(lowered, start, end - start);
  while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
    value.erase(value.begin());
  }
  while (!value.empty() &&
         (value.back() == '\r' || value.back() == ' ' ||
          value.back() == '\t')) {
    value.pop_back();
  }
  return value;
}

Connection::Connection(std::string host, std::uint16_t port,
                       std::chrono::milliseconds timeout)
    : host_(std::move(host)), port_(port), timeout_(timeout) {}

Connection::~Connection() { close(); }

void Connection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

bool Connection::ensure_connected() {
  if (fd_ >= 0) return true;
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return false;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_.count() % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  const int nodelay = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof nodelay);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &address.sin_addr) != 1 ||
      ::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                sizeof address) != 0) {
    close();
    return false;
  }
  buffer_.clear();
  return true;
}

bool Connection::read_more() {
  char chunk[8192];
  const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
  timed_out_ = n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK);
  if (n <= 0) return false;
  buffer_.append(chunk, static_cast<std::size_t>(n));
  return true;
}

Exchange Connection::get(const std::string& target) {
  Exchange exchange;
  if (!ensure_connected()) {
    exchange.outcome = Outcome::kConnectError;
    return exchange;
  }

  std::string request = "GET ";
  request += target;
  request += " HTTP/1.1\r\nHost: ";
  request += host_;
  request += "\r\nUser-Agent: pdcu-loadgen\r\n\r\n";
  std::string_view remaining = request;
  while (!remaining.empty()) {
    const ssize_t n =
        ::send(fd_, remaining.data(), remaining.size(), MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      close();
      exchange.outcome = Outcome::kSendError;
      return exchange;
    }
    remaining.remove_prefix(static_cast<std::size_t>(n));
  }

  // Read the header block.
  std::size_t head_end;
  while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    if (!read_more()) {
      exchange.outcome = timed_out_ ? Outcome::kTimeout : Outcome::kReadError;
      close();
      return exchange;
    }
  }
  const std::string_view head(buffer_.data(), head_end + 2);
  if (buffer_.size() < 12 || buffer_.compare(0, 5, "HTTP/") != 0) {
    close();
    exchange.outcome = Outcome::kReadError;
    return exchange;
  }
  exchange.status = std::atoi(buffer_.c_str() + 9);

  const std::string length_text = find_header_value(head, "content-length");
  const bool server_closes =
      find_header_value(head, "connection") == "close" || length_text.empty();
  std::size_t body_length = 0;
  if (!length_text.empty()) {
    body_length = static_cast<std::size_t>(
        std::strtoull(length_text.c_str(), nullptr, 10));
  }

  const std::size_t body_start = head_end + 4;
  if (!length_text.empty()) {
    while (buffer_.size() < body_start + body_length) {
      if (!read_more()) {
        exchange.outcome =
            timed_out_ ? Outcome::kTimeout : Outcome::kReadError;
        close();
        return exchange;
      }
    }
    exchange.body_bytes = body_length;
    buffer_.erase(0, body_start + body_length);
  } else {
    // No framing: drain to EOF (the server is closing this connection).
    while (read_more()) {
    }
    if (timed_out_) {
      exchange.outcome = Outcome::kTimeout;
      close();
      return exchange;
    }
    exchange.body_bytes = buffer_.size() - body_start;
    buffer_.clear();
  }

  exchange.outcome = Outcome::kOk;
  if (server_closes) close();
  return exchange;
}

Expected<std::vector<std::string>> fetch_catalog_slugs(
    const std::string& host, std::uint16_t port,
    std::chrono::milliseconds timeout) {
  // One raw connection-close exchange; get() discards bodies, and the
  // catalog body is the whole point here.
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Error::make("loadgen.catalog", "socket failed");
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&address),
                sizeof address) != 0) {
    ::close(fd);
    return Error::make("loadgen.catalog",
                       "cannot connect to " + host + ":" +
                           std::to_string(port));
  }
  const std::string request =
      "GET /api/catalog.json HTTP/1.1\r\nHost: " + host +
      "\r\nConnection: close\r\n\r\n";
  if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) <= 0) {
    ::close(fd);
    return Error::make("loadgen.catalog", "send failed");
  }
  std::string response;
  char chunk[8192];
  ssize_t n;
  while ((n = ::recv(fd, chunk, sizeof chunk, 0)) > 0) {
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const auto head_end = response.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Error::make("loadgen.catalog", "malformed catalog response");
  }
  const std::string body = response.substr(head_end + 4);
  std::vector<std::string> slugs;
  const std::string needle = "\"slug\":";
  std::size_t at = 0;
  while ((at = body.find(needle, at)) != std::string::npos) {
    at += needle.size();
    while (at < body.size() && (body[at] == ' ' || body[at] == '\t')) ++at;
    if (at >= body.size() || body[at] != '"') continue;
    const auto end = body.find('"', at + 1);
    if (end == std::string::npos) break;
    slugs.push_back(body.substr(at + 1, end - at - 1));
    at = end + 1;
  }
  if (slugs.empty()) {
    return Error::make("loadgen.catalog", "catalog listed no slugs");
  }
  return slugs;
}

}  // namespace pdcu::loadgen
