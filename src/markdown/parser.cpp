#include "pdcu/markdown/parser.hpp"

#include <cctype>

#include "pdcu/support/strings.hpp"

namespace pdcu::md {

namespace strs = pdcu::strings;

namespace {

/// True if the line is a thematic break: three or more -, *, or _ (with
/// optional spaces between), nothing else.
bool is_horizontal_rule(std::string_view line) {
  std::string_view t = strs::trim(line);
  if (t.size() < 3) return false;
  char marker = t[0];
  if (marker != '-' && marker != '*' && marker != '_') return false;
  int count = 0;
  for (char c : t) {
    if (c == marker) {
      ++count;
    } else if (c != ' ') {
      return false;
    }
  }
  return count >= 3;
}

/// Parses "## Heading" returning level (0 if not a heading) and text.
int heading_level(std::string_view line, std::string_view& text_out) {
  std::string_view t = strs::trim_left(line);
  std::size_t hashes = 0;
  while (hashes < t.size() && t[hashes] == '#') ++hashes;
  if (hashes == 0 || hashes > 6) return 0;
  if (hashes < t.size() && t[hashes] != ' ' && t[hashes] != '\t') return 0;
  std::string_view rest = strs::trim(t.substr(hashes));
  // Strip optional closing hashes ("## Title ##").
  while (!rest.empty() && rest.back() == '#') rest.remove_suffix(1);
  text_out = strs::trim(rest);
  return static_cast<int>(hashes);
}

/// Number of leading spaces (tabs count as 4).
std::size_t indent_width(std::string_view line) {
  std::size_t w = 0;
  for (char c : line) {
    if (c == ' ') {
      ++w;
    } else if (c == '\t') {
      w += 4;
    } else {
      break;
    }
  }
  return w;
}

struct ListMarker {
  bool ordered = false;
  int start = 1;
  std::size_t content_indent = 0;  ///< columns to strip from continuations
};

/// Detects "- item", "* item", "+ item", "1. item", "1) item".
bool parse_list_marker(std::string_view line, ListMarker& out) {
  std::size_t indent = indent_width(line);
  std::string_view t = strs::trim_left(line);
  if (t.empty()) return false;
  if (t[0] == '-' || t[0] == '*' || t[0] == '+') {
    if (t.size() < 2 || (t[1] != ' ' && t[1] != '\t')) return false;
    if (is_horizontal_rule(line)) return false;
    out.ordered = false;
    out.start = 1;
    out.content_indent = indent + 2;
    return true;
  }
  std::size_t i = 0;
  while (i < t.size() && std::isdigit(static_cast<unsigned char>(t[i]))) ++i;
  if (i == 0 || i > 9 || i >= t.size()) return false;
  if (t[i] != '.' && t[i] != ')') return false;
  if (i + 1 >= t.size() || (t[i + 1] != ' ' && t[i + 1] != '\t')) return false;
  out.ordered = true;
  out.start = std::stoi(std::string(t.substr(0, i)));
  out.content_indent = indent + i + 2;
  return true;
}

/// Content of a marker line after the marker itself ("- x" -> "x",
/// "12. y" -> "y").
std::string_view marker_line_content(std::string_view line,
                                     const ListMarker& marker) {
  std::string_view t = strs::trim_left(line);
  if (!marker.ordered) return strs::trim_left(t.substr(2));
  std::size_t i = 0;
  while (i < t.size() && std::isdigit(static_cast<unsigned char>(t[i]))) {
    ++i;
  }
  return strs::trim_left(t.substr(i + 1));
}

/// Removes up to n columns of leading indentation.
std::string_view strip_indent(std::string_view line, std::size_t n) {
  std::size_t i = 0, w = 0;
  while (i < line.size() && w < n) {
    if (line[i] == ' ') {
      ++w;
    } else if (line[i] == '\t') {
      w += 4;
    } else {
      break;
    }
    ++i;
  }
  return line.substr(i);
}

class BlockParser {
 public:
  explicit BlockParser(std::vector<std::string> lines)
      : lines_(std::move(lines)) {}

  Block parse() {
    Block doc;
    doc.kind = BlockKind::kDocument;
    doc.children = parse_blocks(lines_);
    return doc;
  }

 private:
  std::vector<Block> parse_blocks(const std::vector<std::string>& lines) {
    std::vector<Block> blocks;
    std::size_t i = 0;
    while (i < lines.size()) {
      std::string_view line = lines[i];
      std::string_view trimmed = strs::trim(line);

      if (trimmed.empty()) {
        ++i;
        continue;
      }

      // Fenced code block.
      if (strs::starts_with(strs::trim_left(line), "```")) {
        blocks.push_back(parse_code_fence(lines, i));
        continue;
      }

      // Heading.
      std::string_view htext;
      if (int level = heading_level(line, htext); level > 0) {
        Block h;
        h.kind = BlockKind::kHeading;
        h.heading_level = level;
        h.inlines = parse_inlines(htext);
        blocks.push_back(std::move(h));
        ++i;
        continue;
      }

      // Horizontal rule (checked before lists so "---" is not a list).
      if (is_horizontal_rule(line)) {
        Block hr;
        hr.kind = BlockKind::kHorizontalRule;
        blocks.push_back(std::move(hr));
        ++i;
        continue;
      }

      // Block quote.
      if (strs::trim_left(line).front() == '>') {
        blocks.push_back(parse_blockquote(lines, i));
        continue;
      }

      // List.
      ListMarker marker;
      if (parse_list_marker(line, marker)) {
        blocks.push_back(parse_list(lines, i, marker));
        continue;
      }

      // Paragraph: consume until a blank line or another block opener.
      blocks.push_back(parse_paragraph(lines, i));
    }
    return blocks;
  }

  Block parse_code_fence(const std::vector<std::string>& lines,
                         std::size_t& i) {
    Block code;
    code.kind = BlockKind::kCodeBlock;
    std::string_view open = strs::trim_left(lines[i]);
    code.info = std::string(strs::trim(open.substr(3)));
    ++i;
    std::string body;
    while (i < lines.size() &&
           !strs::starts_with(strs::trim_left(lines[i]), "```")) {
      body += lines[i];
      body += '\n';
      ++i;
    }
    if (i < lines.size()) ++i;  // consume the closing fence
    code.literal = std::move(body);
    return code;
  }

  Block parse_blockquote(const std::vector<std::string>& lines,
                         std::size_t& i) {
    std::vector<std::string> inner;
    while (i < lines.size()) {
      std::string_view t = strs::trim_left(lines[i]);
      if (t.empty() || t.front() != '>') break;
      t.remove_prefix(1);
      if (!t.empty() && t.front() == ' ') t.remove_prefix(1);
      inner.emplace_back(t);
      ++i;
    }
    Block quote;
    quote.kind = BlockKind::kBlockQuote;
    quote.children = parse_blocks(inner);
    return quote;
  }

  Block parse_list(const std::vector<std::string>& lines, std::size_t& i,
                   const ListMarker& first) {
    Block list;
    list.kind = BlockKind::kList;
    list.ordered = first.ordered;
    list.list_start = first.start;

    while (i < lines.size()) {
      ListMarker marker;
      if (!parse_list_marker(lines[i], marker) ||
          marker.ordered != first.ordered) {
        break;
      }
      // Gather this item's lines: the marker line (content stripped) plus
      // continuation lines indented at least to the content column, plus lazy
      // paragraph continuations.
      std::vector<std::string> item_lines;
      item_lines.emplace_back(marker_line_content(lines[i], marker));
      ++i;
      bool saw_blank = false;
      while (i < lines.size()) {
        std::string_view line = lines[i];
        if (strs::trim(line).empty()) {
          saw_blank = true;
          ++i;
          continue;
        }
        std::size_t indent = indent_width(line);
        ListMarker next;
        bool is_marker = parse_list_marker(line, next);
        if (indent >= marker.content_indent) {
          if (saw_blank) item_lines.emplace_back("");
          saw_blank = false;
          item_lines.emplace_back(strip_indent(line, marker.content_indent));
          ++i;
          continue;
        }
        if (is_marker || saw_blank || is_horizontal_rule(line) ||
            strs::trim_left(line).front() == '>' ||
            strs::starts_with(strs::trim_left(line), "#") ||
            strs::starts_with(strs::trim_left(line), "```")) {
          break;
        }
        // Lazy continuation of the item's paragraph.
        item_lines.emplace_back(strs::trim(line));
        ++i;
      }
      Block item;
      item.kind = BlockKind::kListItem;
      item.children = parse_blocks(item_lines);
      list.children.push_back(std::move(item));
      if (saw_blank) {
        // A blank line followed by a sibling marker continues the list.
        ListMarker sibling;
        if (i < lines.size() && parse_list_marker(lines[i], sibling) &&
            sibling.ordered == first.ordered) {
          continue;
        }
        break;
      }
    }
    return list;
  }

  Block parse_paragraph(const std::vector<std::string>& lines,
                        std::size_t& i) {
    std::vector<std::string> para_lines;
    while (i < lines.size()) {
      std::string_view line = lines[i];
      std::string_view t = strs::trim(line);
      if (t.empty() || is_horizontal_rule(line)) break;
      std::string_view htext;
      if (heading_level(line, htext) > 0) break;
      if (strs::trim_left(line).front() == '>') break;
      if (strs::starts_with(strs::trim_left(line), "```")) break;
      ListMarker marker;
      if (parse_list_marker(line, marker)) break;
      para_lines.emplace_back(t);
      ++i;
    }
    Block para;
    para.kind = BlockKind::kParagraph;
    for (std::size_t n = 0; n < para_lines.size(); ++n) {
      if (n > 0) {
        Inline br;
        br.kind = InlineKind::kSoftBreak;
        para.inlines.push_back(std::move(br));
      }
      auto line_inlines = parse_inlines(para_lines[n]);
      for (auto& in : line_inlines) para.inlines.push_back(std::move(in));
    }
    return para;
  }

  std::vector<std::string> lines_;
};

}  // namespace

Block parse_markdown(std::string_view text) {
  return BlockParser(strs::split_lines(text)).parse();
}

std::string plain_text(const std::vector<Inline>& inlines) {
  std::string out;
  for (const auto& in : inlines) {
    switch (in.kind) {
      case InlineKind::kText:
      case InlineKind::kCode:
        out += in.text;
        break;
      case InlineKind::kSoftBreak:
        out += ' ';
        break;
      case InlineKind::kEmph:
      case InlineKind::kStrong:
      case InlineKind::kLink:
        out += plain_text(in.children);
        break;
    }
  }
  return out;
}

std::string Block::plain_text() const { return md::plain_text(inlines); }

}  // namespace pdcu::md
