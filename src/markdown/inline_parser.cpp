// Inline markup parsing: code spans, strong/emphasis, links, literal text.
#include <cstddef>

#include "pdcu/markdown/parser.hpp"

namespace pdcu::md {

namespace {

class InlineParser {
 public:
  explicit InlineParser(std::string_view text) : text_(text) {}

  std::vector<Inline> parse() { return parse_until('\0'); }

 private:
  /// Parses inlines until the (single- or double-) delimiter or end of input.
  /// `stop` is '\0' (end only), '*'/'_' (emphasis close), ']' (link text).
  std::vector<Inline> parse_until(char stop, bool double_marker = false) {
    std::vector<Inline> out;
    std::string text;
    auto flush = [&] {
      if (!text.empty()) {
        Inline t;
        t.kind = InlineKind::kText;
        t.text = std::move(text);
        text.clear();
        out.push_back(std::move(t));
      }
    };

    while (pos_ < text_.size()) {
      char c = text_[pos_];

      if (stop != '\0' && c == stop) {
        if (!double_marker) {
          flush();
          return out;
        }
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == stop) {
          flush();
          return out;
        }
      }

      if (c == '\\' && pos_ + 1 < text_.size() && is_punct(text_[pos_ + 1])) {
        text += text_[pos_ + 1];
        pos_ += 2;
        continue;
      }

      if (c == '`') {
        flush();
        out.push_back(parse_code_span());
        continue;
      }

      if (c == '[') {
        std::size_t saved = pos_;
        Inline link;
        if (try_parse_link(link)) {
          flush();
          out.push_back(std::move(link));
          continue;
        }
        pos_ = saved;
      }

      if (c == '*' || c == '_') {
        std::size_t saved = pos_;
        Inline emph;
        if (try_parse_emphasis(c, emph)) {
          flush();
          out.push_back(std::move(emph));
          continue;
        }
        pos_ = saved;
      }

      text += c;
      ++pos_;
    }
    flush();
    return out;
  }

  static bool is_punct(char c) {
    return c == '\\' || c == '`' || c == '*' || c == '_' || c == '[' ||
           c == ']' || c == '(' || c == ')' || c == '#' || c == '-' ||
           c == '.' || c == '!' || c == '<' || c == '>' || c == '"';
  }

  Inline parse_code_span() {
    // pos_ is at the opening backtick.
    std::size_t ticks = 0;
    while (pos_ < text_.size() && text_[pos_] == '`') {
      ++ticks;
      ++pos_;
    }
    std::string body;
    std::size_t run = 0;
    std::size_t start = pos_;
    while (pos_ < text_.size()) {
      if (text_[pos_] == '`') {
        ++run;
        if (run == ticks &&
            (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '`')) {
          Inline code;
          code.kind = InlineKind::kCode;
          code.text = text_.substr(start, pos_ - start - (ticks - 1));
          ++pos_;
          return code;
        }
      } else {
        run = 0;
      }
      ++pos_;
    }
    // Unterminated: emit the backticks as literal text.
    Inline lit;
    lit.kind = InlineKind::kText;
    lit.text = std::string(ticks, '`') + std::string(text_.substr(start));
    return lit;
  }

  bool try_parse_link(Inline& out) {
    // pos_ is at '['. Find the matching ']' at depth 0, then "(url)".
    std::size_t i = pos_ + 1;
    int depth = 0;
    std::size_t close = std::string_view::npos;
    for (; i < text_.size(); ++i) {
      if (text_[i] == '\\') {
        ++i;
        continue;
      }
      if (text_[i] == '[') ++depth;
      if (text_[i] == ']') {
        if (depth == 0) {
          close = i;
          break;
        }
        --depth;
      }
    }
    if (close == std::string_view::npos) return false;
    if (close + 1 >= text_.size() || text_[close + 1] != '(') return false;
    std::size_t url_end = text_.find(')', close + 2);
    if (url_end == std::string_view::npos) return false;

    std::string label(text_.substr(pos_ + 1, close - pos_ - 1));
    out.kind = InlineKind::kLink;
    out.url = std::string(text_.substr(close + 2, url_end - close - 2));
    out.children = parse_inlines(label);
    pos_ = url_end + 1;
    return true;
  }

  bool try_parse_emphasis(char marker, Inline& out) {
    bool strong = pos_ + 1 < text_.size() && text_[pos_ + 1] == marker;
    std::size_t markers = strong ? 2 : 1;
    std::size_t content_start = pos_ + markers;
    if (content_start >= text_.size()) return false;
    // No space immediately inside the opener ("* not emph").
    if (text_[content_start] == ' ') return false;

    // Find the closing run at the same length.
    std::size_t i = content_start;
    std::size_t close = std::string_view::npos;
    while (i < text_.size()) {
      if (text_[i] == '\\') {
        i += 2;
        continue;
      }
      if (text_[i] == marker) {
        std::size_t run = 0;
        while (i + run < text_.size() && text_[i + run] == marker) ++run;
        if (run >= markers && text_[i - 1] != ' ') {
          close = i;
          break;
        }
        i += run;
        continue;
      }
      ++i;
    }
    if (close == std::string_view::npos || close == content_start) {
      return false;
    }
    std::string inner(text_.substr(content_start, close - content_start));
    out.kind = strong ? InlineKind::kStrong : InlineKind::kEmph;
    out.children = parse_inlines(inner);
    pos_ = close + markers;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<Inline> parse_inlines(std::string_view text) {
  return InlineParser(text).parse();
}

}  // namespace pdcu::md
