// Markdown parsing (CommonMark subset).
//
// Supported syntax — everything the PDCunplugged activity corpus uses:
// ATX headings, horizontal rules, fenced code blocks, block quotes, bullet
// and ordered lists (with lazy continuation and nesting by indentation),
// paragraphs, and the inline set in ast.hpp.
#pragma once

#include <string_view>
#include <vector>

#include "pdcu/markdown/ast.hpp"

namespace pdcu::md {

/// Parses a Markdown body (no front matter) into a document block.
Block parse_markdown(std::string_view text);

/// Parses inline markup only (used for headings and paragraph content).
std::vector<Inline> parse_inlines(std::string_view text);

}  // namespace pdcu::md
