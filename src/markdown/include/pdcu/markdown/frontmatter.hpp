// Front-matter parsing for content files.
//
// PDCunplugged activities carry a YAML front-matter block delimited by `---`
// lines, exactly as in the paper's Fig. 1/Fig. 2:
//
//   ---
//   title: "FindSmallestCard"
//   cs2013: ["PD_ParallelDecomposition", (backslash continuation)
//       "PD_ParallelAlgorithms"]
//   tcpp: ["TCPP_Algorithms", "TCPP_Programming"]
//   ---
//
// We support the subset the site uses: scalar strings (bare or quoted),
// flow-style string lists, comments (#...), and the backslash line
// continuation shown in Fig. 2.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "pdcu/support/expected.hpp"

namespace pdcu::md {

/// A front-matter value: either a scalar string or a list of strings.
struct Value {
  enum class Kind { kScalar, kList };
  Kind kind = Kind::kScalar;
  std::string scalar;
  std::vector<std::string> list;

  static Value make_scalar(std::string s) {
    Value v;
    v.kind = Kind::kScalar;
    v.scalar = std::move(s);
    return v;
  }
  static Value make_list(std::vector<std::string> items) {
    Value v;
    v.kind = Kind::kList;
    v.list = std::move(items);
    return v;
  }

  /// The value as a list regardless of kind: a scalar becomes a 1-element
  /// list; an empty scalar becomes an empty list.
  std::vector<std::string> as_list() const;
};

/// Parsed front matter: ordered key/value pairs (order preserved so a file
/// can be re-emitted stably) with map-style lookup.
class FrontMatter {
 public:
  /// Sets a key, replacing any previous value, preserving first-set order.
  void set(std::string key, Value value);

  bool has(std::string_view key) const;
  /// Scalar lookup; returns "" for absent keys and joins lists with ", ".
  std::string get(std::string_view key) const;
  /// List lookup; see Value::as_list for scalar coercion.
  std::vector<std::string> get_list(std::string_view key) const;

  const std::vector<std::pair<std::string, Value>>& entries() const {
    return entries_;
  }

  /// Serializes back to a `---` delimited block (lists in flow style).
  std::string to_string() const;

 private:
  std::vector<std::pair<std::string, Value>> entries_;
};

/// Result of splitting a content file into front matter and body.
struct SplitContent {
  FrontMatter front;
  std::string body;  ///< Markdown after the closing `---`, newline-trimmed.
};

/// Parses a full content file. Files without a leading `---` are treated as
/// all-body with empty front matter.
Expected<SplitContent> parse_content(std::string_view text);

/// Parses just a front-matter block's inner lines (no delimiters).
Expected<FrontMatter> parse_front_matter_lines(
    const std::vector<std::string>& lines);

}  // namespace pdcu::md
