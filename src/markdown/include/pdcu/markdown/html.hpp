// HTML rendering of the Markdown AST (Hugo's render step).
#pragma once

#include <string>

#include "pdcu/markdown/ast.hpp"

namespace pdcu::md {

/// Renders a document (or any block) to HTML. Produces the conventional
/// mapping: headings to <h1>..<h6>, paragraphs to <p>, rules to <hr>, fenced
/// code to <pre><code>, quotes to <blockquote>, lists to <ul>/<ol>.
std::string render_html(const Block& block);

/// Renders a sequence of inlines to HTML (no surrounding element).
std::string render_html(const std::vector<Inline>& inlines);

/// Append-style variants: render into a caller-owned (ideally reserved)
/// buffer. These are the site generator's hot path — one buffer per page,
/// no intermediate concatenation temporaries.
void render_html_append(const Block& block, std::string& out);
void render_html_append(const std::vector<Inline>& inlines, std::string& out);

}  // namespace pdcu::md
