// Markdown AST shared by the parser and renderers.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace pdcu::md {

/// Inline node kinds.
enum class InlineKind {
  kText,      ///< literal text
  kCode,      ///< `code span`
  kEmph,      ///< *emphasis*
  kStrong,    ///< **strong**
  kLink,      ///< [children](url)
  kSoftBreak  ///< newline inside a paragraph
};

/// An inline element; Emph/Strong/Link carry children, Text/Code carry text.
struct Inline {
  InlineKind kind = InlineKind::kText;
  std::string text;             ///< kText, kCode payload
  std::string url;              ///< kLink destination
  std::vector<Inline> children; ///< kEmph, kStrong, kLink
};

/// Block node kinds.
enum class BlockKind {
  kDocument,
  kHeading,         ///< level 1..6, inline children
  kParagraph,       ///< inline children
  kHorizontalRule,  ///< --- / *** / ___ (section separator in activities)
  kCodeBlock,       ///< fenced ``` with optional info string
  kBlockQuote,      ///< child blocks
  kList,            ///< ordered or bullet, children are kListItem
  kListItem         ///< child blocks
};

/// A block element; the document is a tree of these.
struct Block {
  BlockKind kind = BlockKind::kDocument;
  int heading_level = 0;            ///< kHeading
  bool ordered = false;             ///< kList
  int list_start = 1;               ///< kList first ordinal
  std::string literal;              ///< kCodeBlock body
  std::string info;                 ///< kCodeBlock info string
  std::vector<Inline> inlines;      ///< kHeading, kParagraph
  std::vector<Block> children;      ///< containers

  /// Concatenated plain text of this block's inlines (no markup).
  std::string plain_text() const;
};

/// Plain text of a sequence of inlines.
std::string plain_text(const std::vector<Inline>& inlines);

}  // namespace pdcu::md
