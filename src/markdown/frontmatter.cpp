#include "pdcu/markdown/frontmatter.hpp"

#include <algorithm>

#include "pdcu/support/strings.hpp"

namespace pdcu::md {

namespace strs = pdcu::strings;

std::vector<std::string> Value::as_list() const {
  if (kind == Kind::kList) return list;
  if (scalar.empty()) return {};
  return {scalar};
}

void FrontMatter::set(std::string key, Value value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  entries_.emplace_back(std::move(key), std::move(value));
}

bool FrontMatter::has(std::string_view key) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const auto& e) { return e.first == key; });
}

std::string FrontMatter::get(std::string_view key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) {
      if (v.kind == Value::Kind::kScalar) return v.scalar;
      return strs::join(v.list, ", ");
    }
  }
  return {};
}

std::vector<std::string> FrontMatter::get_list(std::string_view key) const {
  for (const auto& [k, v] : entries_) {
    if (k == key) return v.as_list();
  }
  return {};
}

namespace {

/// Quotes a scalar when YAML would need it (special chars or spaces at ends).
std::string quote_if_needed(const std::string& s) {
  bool needs = s.empty();
  for (char c : s) {
    if (c == ':' || c == '#' || c == '[' || c == ']' || c == ',' ||
        c == '"' || c == '\\') {
      needs = true;
      break;
    }
  }
  if (!s.empty() && (s.front() == ' ' || s.back() == ' ')) needs = true;
  if (!needs) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string FrontMatter::to_string() const {
  std::string out = "---\n";
  for (const auto& [key, value] : entries_) {
    out += key;
    out += ": ";
    if (value.kind == Value::Kind::kScalar) {
      out += quote_if_needed(value.scalar);
    } else {
      out += '[';
      for (std::size_t i = 0; i < value.list.size(); ++i) {
        if (i > 0) out += ", ";
        std::string q = "\"";
        for (char c : value.list[i]) {
          if (c == '"' || c == '\\') q += '\\';
          q += c;
        }
        q += '"';
        out += q;
      }
      out += ']';
    }
    out += '\n';
  }
  out += "---\n";
  return out;
}

namespace {

/// Scans a possibly-quoted token starting at `i`; advances `i` past it.
Expected<std::string> scan_flow_item(const std::string& s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  if (i >= s.size()) {
    return Error::make("frontmatter.flow", "expected list item");
  }
  std::string out;
  if (s[i] == '"' || s[i] == '\'') {
    const char quote = s[i++];
    bool closed = false;
    while (i < s.size()) {
      char c = s[i++];
      if (c == '\\' && i < s.size()) {
        out += s[i++];
      } else if (c == quote) {
        closed = true;
        break;
      } else {
        out += c;
      }
    }
    if (!closed) {
      return Error::make("frontmatter.quote", "unterminated quoted string");
    }
    return out;
  }
  while (i < s.size() && s[i] != ',' && s[i] != ']') out += s[i++];
  return std::string(strs::trim(out));
}

/// Parses a flow list "[a, "b", c]" into items.
Expected<std::vector<std::string>> parse_flow_list(const std::string& text) {
  std::vector<std::string> items;
  std::size_t i = 0;
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  if (i >= text.size() || text[i] != '[') {
    return Error::make("frontmatter.flow", "expected '['");
  }
  ++i;
  // Allow empty list.
  while (true) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    if (i < text.size() && text[i] == ']') {
      ++i;
      break;
    }
    auto item = scan_flow_item(text, i);
    if (!item) return item.error();
    items.push_back(std::move(item).value());
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    if (i < text.size() && text[i] == ',') {
      ++i;
      continue;
    }
    if (i < text.size() && text[i] == ']') {
      ++i;
      break;
    }
    return Error::make("frontmatter.flow", "expected ',' or ']' in list");
  }
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  if (i != text.size() && text[i] != '#') {
    return Error::make("frontmatter.flow", "trailing characters after list");
  }
  return items;
}

/// Parses a scalar value, stripping one level of quotes and trailing comment.
std::string parse_scalar(std::string_view raw) {
  std::string_view v = strs::trim(raw);
  if (v.size() >= 2 && (v.front() == '"' || v.front() == '\'') &&
      v.back() == v.front()) {
    std::string out;
    for (std::size_t i = 1; i + 1 < v.size(); ++i) {
      if (v[i] == '\\' && i + 2 < v.size()) {
        out += v[++i];
      } else {
        out += v[i];
      }
    }
    return out;
  }
  // Unquoted: strip a trailing comment introduced by " #".
  std::size_t hash = v.find(" #");
  if (hash != std::string_view::npos) v = strs::trim(v.substr(0, hash));
  return std::string(v);
}

}  // namespace

Expected<FrontMatter> parse_front_matter_lines(
    const std::vector<std::string>& lines) {
  FrontMatter fm;
  // First join continuation lines: a line ending in '\' continues onto the
  // next line (Fig. 2 of the paper uses this inside a flow list).
  std::vector<std::string> logical;
  std::string pending;
  bool continuing = false;
  for (const auto& raw : lines) {
    std::string_view line = raw;
    std::string_view rtrimmed = strs::trim_right(line);
    bool continues = !rtrimmed.empty() && rtrimmed.back() == '\\';
    std::string_view payload =
        continues ? rtrimmed.substr(0, rtrimmed.size() - 1) : line;
    if (continuing) {
      pending += std::string(strs::trim_left(payload));
    } else {
      pending = std::string(payload);
    }
    if (continues) {
      continuing = true;
    } else {
      logical.push_back(pending);
      pending.clear();
      continuing = false;
    }
  }
  if (continuing) {
    return Error::make("frontmatter.continuation",
                       "front matter ends with a '\\' continuation");
  }

  for (const auto& line : logical) {
    std::string_view t = strs::trim(line);
    if (t.empty() || t.front() == '#') continue;
    std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Error::make("frontmatter.key",
                         "expected 'key: value', got '" + line + "'");
    }
    std::string key(strs::trim(std::string_view(line).substr(0, colon)));
    if (key.empty()) {
      return Error::make("frontmatter.key", "empty key in '" + line + "'");
    }
    std::string rest(strs::trim(std::string_view(line).substr(colon + 1)));
    if (!rest.empty() && rest.front() == '[') {
      auto list = parse_flow_list(rest);
      if (!list) return list.error().context("key '" + key + "'");
      fm.set(std::move(key), Value::make_list(std::move(list).value()));
    } else {
      fm.set(std::move(key), Value::make_scalar(parse_scalar(rest)));
    }
  }
  return fm;
}

Expected<SplitContent> parse_content(std::string_view text) {
  auto lines = strs::split_lines(text);
  SplitContent out;
  if (lines.empty() || strs::trim(lines[0]) != "---") {
    out.body = std::string(strs::trim(text));
    return out;
  }
  std::size_t close = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (strs::trim(lines[i]) == "---") {
      close = i;
      break;
    }
  }
  if (close == 0) {
    return Error::make("frontmatter.unterminated",
                       "front matter opened with '---' but never closed");
  }
  std::vector<std::string> inner(lines.begin() + 1, lines.begin() + close);
  auto fm = parse_front_matter_lines(inner);
  if (!fm) return fm.error();
  out.front = std::move(fm).value();
  std::vector<std::string> body_lines(lines.begin() + close + 1, lines.end());
  out.body = std::string(strs::trim(strs::join(body_lines, "\n")));
  return out;
}

}  // namespace pdcu::md
