#include "pdcu/markdown/html.hpp"

#include "pdcu/support/strings.hpp"

namespace pdcu::md {

namespace strs = pdcu::strings;

void render_html_append(const std::vector<Inline>& inlines,
                        std::string& out) {
  for (const auto& in : inlines) {
    switch (in.kind) {
      case InlineKind::kText:
        strs::html_escape_append(in.text, out);
        break;
      case InlineKind::kCode:
        out += "<code>";
        strs::html_escape_append(in.text, out);
        out += "</code>";
        break;
      case InlineKind::kEmph:
        out += "<em>";
        render_html_append(in.children, out);
        out += "</em>";
        break;
      case InlineKind::kStrong:
        out += "<strong>";
        render_html_append(in.children, out);
        out += "</strong>";
        break;
      case InlineKind::kLink:
        out += "<a href=\"";
        strs::html_escape_append(in.url, out);
        out += "\">";
        render_html_append(in.children, out);
        out += "</a>";
        break;
      case InlineKind::kSoftBreak:
        out += '\n';
        break;
    }
  }
}

std::string render_html(const std::vector<Inline>& inlines) {
  std::string out;
  render_html_append(inlines, out);
  return out;
}

namespace {

void render_block(const Block& block, std::string& out) {
  switch (block.kind) {
    case BlockKind::kDocument:
      for (const auto& child : block.children) render_block(child, out);
      break;
    case BlockKind::kHeading: {
      // Heading levels are 1..6, so the tag digit is a single character.
      const char digit = static_cast<char>('0' + block.heading_level);
      out += "<h";
      out += digit;
      out += '>';
      render_html_append(block.inlines, out);
      out += "</h";
      out += digit;
      out += ">\n";
      break;
    }
    case BlockKind::kParagraph:
      out += "<p>";
      render_html_append(block.inlines, out);
      out += "</p>\n";
      break;
    case BlockKind::kHorizontalRule:
      out += "<hr>\n";
      break;
    case BlockKind::kCodeBlock:
      out += "<pre><code";
      if (!block.info.empty()) {
        out += " class=\"language-";
        strs::html_escape_append(block.info, out);
        out += '"';
      }
      out += '>';
      strs::html_escape_append(block.literal, out);
      out += "</code></pre>\n";
      break;
    case BlockKind::kBlockQuote:
      out += "<blockquote>\n";
      for (const auto& child : block.children) render_block(child, out);
      out += "</blockquote>\n";
      break;
    case BlockKind::kList: {
      if (block.ordered) {
        if (block.list_start == 1) {
          out += "<ol>\n";
        } else {
          out += "<ol start=\"";
          out += std::to_string(block.list_start);
          out += "\">\n";
        }
      } else {
        out += "<ul>\n";
      }
      for (const auto& child : block.children) render_block(child, out);
      out += block.ordered ? "</ol>\n" : "</ul>\n";
      break;
    }
    case BlockKind::kListItem: {
      // Tight rendering: a single-paragraph item drops the <p> wrapper.
      out += "<li>";
      if (block.children.size() == 1 &&
          block.children[0].kind == BlockKind::kParagraph) {
        render_html_append(block.children[0].inlines, out);
      } else {
        out += '\n';
        for (const auto& child : block.children) render_block(child, out);
      }
      out += "</li>\n";
      break;
    }
  }
}

}  // namespace

void render_html_append(const Block& block, std::string& out) {
  render_block(block, out);
}

std::string render_html(const Block& block) {
  std::string out;
  render_block(block, out);
  return out;
}

}  // namespace pdcu::md
