#include "pdcu/markdown/html.hpp"

#include "pdcu/support/strings.hpp"

namespace pdcu::md {

namespace strs = pdcu::strings;

std::string render_html(const std::vector<Inline>& inlines) {
  std::string out;
  for (const auto& in : inlines) {
    switch (in.kind) {
      case InlineKind::kText:
        out += strs::html_escape(in.text);
        break;
      case InlineKind::kCode:
        out += "<code>" + strs::html_escape(in.text) + "</code>";
        break;
      case InlineKind::kEmph:
        out += "<em>" + render_html(in.children) + "</em>";
        break;
      case InlineKind::kStrong:
        out += "<strong>" + render_html(in.children) + "</strong>";
        break;
      case InlineKind::kLink:
        out += "<a href=\"" + strs::html_escape(in.url) + "\">" +
               render_html(in.children) + "</a>";
        break;
      case InlineKind::kSoftBreak:
        out += "\n";
        break;
    }
  }
  return out;
}

namespace {

void render_block(const Block& block, std::string& out) {
  switch (block.kind) {
    case BlockKind::kDocument:
      for (const auto& child : block.children) render_block(child, out);
      break;
    case BlockKind::kHeading: {
      std::string tag = "h" + std::to_string(block.heading_level);
      out += "<" + tag + ">" + render_html(block.inlines) + "</" + tag + ">\n";
      break;
    }
    case BlockKind::kParagraph:
      out += "<p>" + render_html(block.inlines) + "</p>\n";
      break;
    case BlockKind::kHorizontalRule:
      out += "<hr>\n";
      break;
    case BlockKind::kCodeBlock:
      out += "<pre><code";
      if (!block.info.empty()) {
        out += " class=\"language-" + strs::html_escape(block.info) + "\"";
      }
      out += ">" + strs::html_escape(block.literal) + "</code></pre>\n";
      break;
    case BlockKind::kBlockQuote:
      out += "<blockquote>\n";
      for (const auto& child : block.children) render_block(child, out);
      out += "</blockquote>\n";
      break;
    case BlockKind::kList: {
      if (block.ordered) {
        out += block.list_start == 1
                   ? std::string("<ol>\n")
                   : "<ol start=\"" + std::to_string(block.list_start) +
                         "\">\n";
      } else {
        out += "<ul>\n";
      }
      for (const auto& child : block.children) render_block(child, out);
      out += block.ordered ? "</ol>\n" : "</ul>\n";
      break;
    }
    case BlockKind::kListItem: {
      // Tight rendering: a single-paragraph item drops the <p> wrapper.
      out += "<li>";
      if (block.children.size() == 1 &&
          block.children[0].kind == BlockKind::kParagraph) {
        out += render_html(block.children[0].inlines);
      } else {
        out += "\n";
        for (const auto& child : block.children) render_block(child, out);
      }
      out += "</li>\n";
      break;
    }
  }
}

}  // namespace

std::string render_html(const Block& block) {
  std::string out;
  render_block(block, out);
  return out;
}

}  // namespace pdcu::md
