#include "pdcu/server/reload.hpp"

#include <algorithm>
#include <utility>

#include "pdcu/core/repository.hpp"
#include "pdcu/runtime/thread_pool.hpp"
#include "pdcu/search/index.hpp"
#include "pdcu/support/fs.hpp"
#include "pdcu/support/hash.hpp"

namespace pdcu::server {

Expected<std::uint64_t> content_fingerprint(
    const std::filesystem::path& content_dir) {
  auto files = fs::list_files(content_dir / "activities", ".md");
  if (!files) return files.error().context("fingerprinting content");
  std::uint64_t state = hash::kFnv1aInit;
  const auto mix = [&state](std::string_view bytes) {
    state = hash::fnv1a_64_update(state, bytes);
    state = hash::fnv1a_64_update(state, std::string_view("\x1f", 1));
  };
  for (const auto& path : files.value()) {
    mix(path.string());
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    mix(ec ? "?" : std::to_string(size));
    const auto mtime = std::filesystem::last_write_time(path, ec);
    mix(ec ? "?"
           : std::to_string(mtime.time_since_epoch().count()));
  }
  mix(std::to_string(files.value().size()));
  return state;
}

ReloadManager::ReloadManager(std::filesystem::path content_dir,
                             HttpServer& server, HealthTracker& health,
                             ReloadMetrics& metrics, site::BuildCache cache,
                             std::uint64_t fingerprint, ReloadOptions options,
                             rt::TraceLog* trace)
    : content_dir_(std::move(content_dir)),
      server_(server),
      health_(health),
      metrics_(metrics),
      options_(options),
      trace_(trace),
      cache_(std::move(cache)),
      last_fingerprint_(fingerprint) {}

ReloadManager::~ReloadManager() { stop(); }

void ReloadManager::start() {
  if (running_.exchange(true, std::memory_order_acq_rel)) return;
  thread_ = std::thread([this] {
    while (running_.load(std::memory_order_acquire)) {
      check_once();
      // Sleep the poll interval in short slices so stop() is prompt.
      auto remaining = options_.poll_interval;
      while (remaining.count() > 0 &&
             running_.load(std::memory_order_acquire)) {
        const auto slice = std::min<std::chrono::milliseconds>(
            remaining, std::chrono::milliseconds(50));
        std::this_thread::sleep_for(slice);
        remaining -= slice;
      }
    }
  });
}

void ReloadManager::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (thread_.joinable()) thread_.join();
}

ReloadManager::Step ReloadManager::check_once() {
  if (next_attempt_.has_value() &&
      std::chrono::steady_clock::now() < *next_attempt_) {
    return Step::kBackoff;
  }
  const Expected<std::uint64_t> fingerprint =
      content_fingerprint(content_dir_);
  // After a failure the fingerprint may match the last *attempted* state
  // (or the content may have been reverted to the served state); either
  // way the failure only clears by completing a clean reload, so keep
  // attempting until one lands.
  if (fingerprint.has_value() && fingerprint.value() == last_fingerprint_ &&
      !last_failed_) {
    return Step::kIdle;
  }
  return attempt_reload(fingerprint);
}

ReloadManager::Step ReloadManager::attempt_reload(
    const Expected<std::uint64_t>& fingerprint) {
  metrics_.record_attempt();
  if (!fingerprint.has_value()) return fail(fingerprint.error());

  auto loaded = core::Repository::load_lenient(content_dir_);
  if (!loaded) return fail(loaded.error());
  core::LoadReport& report = loaded.value();
  if (report.total_files > 0 && report.loaded() == 0) {
    // Quarantining everything is indistinguishable from losing the
    // content dir; treat it as a failed reload rather than swapping an
    // empty site over a working one.
    return fail(Error::make(
        "reload.empty", "all " + std::to_string(report.total_files) +
                            " activities quarantined; keeping "
                            "last-known-good site"));
  }

  site::SiteOptions site_options;
  site_options.pool = &rt::default_pool();
  site_options.trace = trace_;
  site_options.quarantined_inputs = report.quarantined.size();
  site_options.spans = spans_;
  site::BuildStats stats;
  site::Site site =
      site::rebuild(report.repository, cache_, site_options, &stats);

  auto index = search::SearchIndex::build(report.repository,
                                          &rt::default_pool(), spans_);
  Router router(site, report.repository, std::move(index));
  router.set_build_stats(stats);
  router.set_health(&health_);
  router.set_spans(spans_);
  router.set_reload_metrics(&metrics_);
  server_.swap_router(std::move(router));

  health_.set_content(report.loaded(), report.quarantined_slugs());
  health_.record_reload_success();
  metrics_.record_success(report.quarantined.size(), stats.pages_rendered);
  last_fingerprint_ = fingerprint.value();
  last_failed_ = false;
  backoff_ = std::chrono::milliseconds{0};
  next_attempt_.reset();
  if (trace_ != nullptr) {
    trace_->narrate(
        "reload: swapped in " + std::to_string(site.pages.size()) +
        " pages (" + std::to_string(stats.pages_rendered) + " rendered, " +
        std::to_string(report.quarantined.size()) + " quarantined)");
  }
  return Step::kReloaded;
}

ReloadManager::Step ReloadManager::fail(const Error& error) {
  last_failed_ = true;
  backoff_ = backoff_.count() == 0
                 ? options_.backoff_initial
                 : std::min(backoff_ * 2, options_.backoff_max);
  next_attempt_ = std::chrono::steady_clock::now() + backoff_;
  health_.record_reload_failure("[" + error.code + "] " + error.message);
  metrics_.record_failure(static_cast<std::uint64_t>(backoff_.count()));
  if (trace_ != nullptr) {
    trace_->narrate("reload: failed (" + error.code +
                    "), serving last-known-good; retry in " +
                    std::to_string(backoff_.count()) + " ms");
  }
  return Step::kFailed;
}

}  // namespace pdcu::server
