#include "pdcu/server/router.hpp"

#include <cstdio>
#include <cstdlib>

#include "pdcu/site/json_catalog.hpp"
#include "pdcu/support/strings.hpp"

namespace pdcu::server {

namespace strs = pdcu::strings;

namespace {

constexpr std::string_view kJsonType = "application/json; charset=utf-8";
constexpr std::string_view kTextType = "text/plain; charset=utf-8";
/// The Prometheus text exposition content type, so a stock scraper accepts
/// /metrics without content-type overrides.
constexpr std::string_view kMetricsType =
    "text/plain; version=0.0.4; charset=utf-8";

constexpr std::size_t kDefaultSearchLimit = 10;
constexpr std::size_t kMaxSearchLimit = 100;

/// If-None-Match is a comma-separated list of entity tags, or "*".
bool etag_matches(std::string_view if_none_match, std::string_view etag) {
  return strs::trim(if_none_match) == "*" ||
         strs::contains(if_none_match, etag);
}

Response plain_response(int status, std::string body) {
  Response response;
  response.status = status;
  response.set("Content-Type", std::string(kTextType));
  response.body = std::move(body);
  return response;
}

Response json_response(int status, std::string body) {
  Response response;
  response.status = status;
  response.set("Content-Type", std::string(kJsonType));
  response.body = std::move(body);
  return response;
}

std::string format_score(double score) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.4f", score);
  return buffer;
}

std::string search_results_json(const search::Query& query,
                                const std::vector<search::Hit>& hits) {
  std::string json = "{\"query\":\"" + site::json_escape(query.raw) + "\",";
  json += "\"count\":" + std::to_string(hits.size()) + ",\"hits\":[";
  for (std::size_t i = 0; i < hits.size(); ++i) {
    const auto& hit = hits[i];
    if (i > 0) json += ',';
    json += "{\"slug\":\"" + site::json_escape(hit.slug) + "\",";
    json += "\"title\":\"" + site::json_escape(hit.title) + "\",";
    json += "\"url\":\"/activities/" + site::json_escape(hit.slug) + "/\",";
    json += "\"score\":" + format_score(hit.score) + ",";
    // The snippet highlights matches with <mark>; everything else is
    // HTML-escaped, so clients can inject it into a results page directly.
    json += "\"snippet\":\"" +
            site::json_escape(hit.snippet.render("<mark>", "</mark>",
                                                 strs::html_escape)) +
            "\"}";
  }
  json += "]}\n";
  return json;
}

}  // namespace

Router::Router(const site::Site& site, const core::Repository& repo,
               std::optional<search::SearchIndex> index)
    : cache_(site),
      index_(index.has_value() ? std::move(*index)
                               : search::SearchIndex::build(repo)),
      taxonomy_(repo.index()) {
  cache_.put("api/catalog.json", site::render_json_catalog(repo),
             std::string(kJsonType));
  for (const auto& activity : repo.activities()) {
    cache_.put("api/activities/" + activity.slug + ".json",
               site::activity_json(activity), std::string(kJsonType));
  }
}

Response Router::handle(const Request& request) const {
  const std::string_view path = request.path();
  const bool known_route = path == "/healthz" || path == "/metrics" ||
                           path == "/api/search" ||
                           cache_.find(path) != nullptr;
  if (request.method != "GET" && request.method != "HEAD") {
    // 405 promises the path exists for some method; an unknown path is a
    // 404 no matter how it is requested.
    if (!known_route) {
      return plain_response(404, "404 not found\n");
    }
    Response response = plain_response(405, "405 method not allowed\n");
    response.set("Allow", "GET, HEAD");
    return response;
  }

  if (path == "/healthz") {
    if (health_ == nullptr) {
      return plain_response(200, "ok\n");
    }
    return json_response(200, health_->render_json());
  }
  if (path == "/metrics") {
    if (metrics_ == nullptr) {
      return plain_response(404, "404 metrics not enabled\n");
    }
    std::string text = metrics_->render_text();
    if (build_stats_.has_value()) text += build_stats_->render_text();
    if (reload_metrics_ != nullptr) text += reload_metrics_->render_text();
    if (spans_ != nullptr) text += spans_->render_text();
    if (net_metrics_ != nullptr) text += net_metrics_->render_text();
    Response response;
    response.set("Content-Type", std::string(kMetricsType));
    response.body = std::move(text);
    return response;
  }
  if (path == "/api/search") {
    return handle_search(request);
  }

  const CachedEntry* entry = cache_.find(path);
  if (entry == nullptr) {
    return plain_response(404, "404 not found\n");
  }

  Response response;
  response.set("ETag", entry->etag);
  response.set("Cache-Control", "no-cache");
  const std::string* if_none_match = request.header("if-none-match");
  if (if_none_match != nullptr && etag_matches(*if_none_match, entry->etag)) {
    response.status = 304;
    return response;
  }
  response.set("Content-Type", entry->content_type);
  response.body = entry->body;
  return response;
}

std::optional<Router::FastHit> Router::try_fast(const Request& request) const {
  const bool head_only = request.method == "HEAD";
  if (request.method != "GET" && !head_only) return std::nullopt;
  const CachedEntry* entry = cache_.find(request.path());
  if (entry == nullptr) return std::nullopt;

  FastHit hit;
  const std::string* if_none_match = request.header("if-none-match");
  if (if_none_match != nullptr && etag_matches(*if_none_match, entry->etag)) {
    hit.head = entry->head_304;
    hit.status = 304;
    return hit;
  }
  hit.head = entry->head_200;
  if (!head_only) hit.body = entry->body;
  hit.status = 200;
  return hit;
}

Response Router::handle_search(const Request& request) const {
  std::string q;
  bool has_q = false;
  std::size_t limit = kDefaultSearchLimit;
  for (const auto& [key, value] : parse_query_params(request.query())) {
    if (key == "q" && !has_q) {
      q = value;
      has_q = true;
    } else if (key == "limit") {
      // Strict parse: "10abc", "-1", "1e3", and "" are client errors, not
      // numbers; so is an explicit limit=0 (the old code silently served
      // the default for all of these). Valid but huge limits clamp.
      const auto parsed = strs::parse_u64(value);
      if (!parsed.has_value() || *parsed == 0) {
        return json_response(
            400,
            "{\"error\":\"invalid limit parameter: expected a positive "
            "integer\"}\n");
      }
      limit = std::min<std::size_t>(*parsed, kMaxSearchLimit);
    }
  }
  if (!has_q || strs::trim(q).empty()) {
    return json_response(400,
                         "{\"error\":\"missing query parameter q\"}\n");
  }

  const search::Query query = search::parse_query(q);
  const auto hits = index_.search(query, &taxonomy_, limit);

  Response response = json_response(200, search_results_json(query, hits));
  // Same conditional-GET contract as cached pages: the body is a pure
  // function of (index, query), so the ETag is stable until a reindex.
  const std::string etag = strong_etag(response.body);
  response.set("ETag", etag);
  response.set("Cache-Control", "no-cache");
  const std::string* if_none_match = request.header("if-none-match");
  if (if_none_match != nullptr && etag_matches(*if_none_match, etag)) {
    Response not_modified;
    not_modified.status = 304;
    not_modified.set("ETag", etag);
    not_modified.set("Cache-Control", "no-cache");
    return not_modified;
  }
  return response;
}

}  // namespace pdcu::server
