#include "pdcu/server/router.hpp"

#include "pdcu/site/json_catalog.hpp"
#include "pdcu/support/strings.hpp"

namespace pdcu::server {

namespace strs = pdcu::strings;

namespace {

constexpr std::string_view kJsonType = "application/json; charset=utf-8";
constexpr std::string_view kTextType = "text/plain; charset=utf-8";

/// If-None-Match is a comma-separated list of entity tags, or "*".
bool etag_matches(std::string_view if_none_match, std::string_view etag) {
  return strs::trim(if_none_match) == "*" ||
         strs::contains(if_none_match, etag);
}

Response plain_response(int status, std::string body) {
  Response response;
  response.status = status;
  response.set("Content-Type", std::string(kTextType));
  response.body = std::move(body);
  return response;
}

}  // namespace

Router::Router(const site::Site& site, const core::Repository& repo)
    : cache_(site) {
  cache_.put("api/catalog.json", site::render_json_catalog(repo),
             std::string(kJsonType));
  for (const auto& activity : repo.activities()) {
    cache_.put("api/activities/" + activity.slug + ".json",
               site::activity_json(activity), std::string(kJsonType));
  }
}

Response Router::handle(const Request& request) const {
  if (request.method != "GET" && request.method != "HEAD") {
    Response response = plain_response(405, "405 method not allowed\n");
    response.set("Allow", "GET, HEAD");
    return response;
  }

  const std::string_view path = request.path();
  if (path == "/healthz") {
    return plain_response(200, "ok\n");
  }
  if (path == "/metrics") {
    if (metrics_ == nullptr) {
      return plain_response(404, "404 metrics not enabled\n");
    }
    return plain_response(200, metrics_->render_text());
  }

  const CachedEntry* entry = cache_.find(path);
  if (entry == nullptr) {
    return plain_response(404, "404 not found\n");
  }

  Response response;
  response.set("ETag", entry->etag);
  response.set("Cache-Control", "no-cache");
  const std::string* if_none_match = request.header("if-none-match");
  if (if_none_match != nullptr && etag_matches(*if_none_match, entry->etag)) {
    response.status = 304;
    return response;
  }
  response.set("Content-Type", entry->content_type);
  response.body = entry->body;
  return response;
}

}  // namespace pdcu::server
