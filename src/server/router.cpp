#include "pdcu/server/router.hpp"

#include <cstdio>
#include <cstdlib>

#include "pdcu/site/json_catalog.hpp"
#include "pdcu/support/strings.hpp"

namespace pdcu::server {

namespace strs = pdcu::strings;

namespace {

constexpr std::string_view kJsonType = "application/json; charset=utf-8";
constexpr std::string_view kTextType = "text/plain; charset=utf-8";
/// The Prometheus text exposition content type, so a stock scraper accepts
/// /metrics without content-type overrides.
constexpr std::string_view kMetricsType =
    "text/plain; version=0.0.4; charset=utf-8";

constexpr std::size_t kDefaultSearchLimit = 10;
constexpr std::size_t kMaxSearchLimit = 100;

/// If-None-Match is a comma-separated list of entity tags, or "*".
bool etag_matches(std::string_view if_none_match, std::string_view etag) {
  return strs::trim(if_none_match) == "*" ||
         strs::contains(if_none_match, etag);
}

Response plain_response(int status, std::string body) {
  Response response;
  response.status = status;
  response.set("Content-Type", std::string(kTextType));
  response.body = std::move(body);
  return response;
}

Response json_response(int status, std::string body) {
  Response response;
  response.status = status;
  response.set("Content-Type", std::string(kJsonType));
  response.body = std::move(body);
  return response;
}

std::string format_score(double score) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.4f", score);
  return buffer;
}

/// The result fragment of a search response — everything after the echoed
/// raw query. This is what the query cache stores: it is a pure function
/// of (index, normalized query, limit), whereas the full body also echoes
/// the raw input, which varies across inputs that normalize identically.
std::string search_results_fragment(const std::vector<search::Hit>& hits) {
  std::string json = "\"count\":" + std::to_string(hits.size()) + ",\"hits\":[";
  for (std::size_t i = 0; i < hits.size(); ++i) {
    const auto& hit = hits[i];
    if (i > 0) json += ',';
    json += "{\"slug\":\"" + site::json_escape(hit.slug) + "\",";
    json += "\"title\":\"" + site::json_escape(hit.title) + "\",";
    json += "\"url\":\"/activities/" + site::json_escape(hit.slug) + "/\",";
    json += "\"score\":" + format_score(hit.score) + ",";
    // The snippet highlights matches with <mark>; everything else is
    // HTML-escaped, so clients can inject it into a results page directly.
    json += "\"snippet\":\"" +
            site::json_escape(hit.snippet.render("<mark>", "</mark>",
                                                 strs::html_escape)) +
            "\"}";
  }
  json += "]}\n";
  return json;
}

/// Cache key: index fingerprint, limit, normalized terms, filters. The
/// 0x1f separators cannot appear in tokenized terms, and the section
/// separators keep terms and filters from aliasing each other.
std::string search_cache_key(std::uint64_t fingerprint,
                             const search::Query& query, std::size_t limit) {
  std::string key = std::to_string(fingerprint);
  key += '|';
  key += std::to_string(limit);
  for (const auto& term : query.terms) {
    key += '\x1f';
    key += term;
  }
  key += '|';
  for (const auto& filter : query.filters) {
    key += '\x1f';
    key += filter.taxonomy;
    key += ':';
    key += filter.value;
  }
  return key;
}

std::string query_cache_metrics_text(const QueryCache& cache) {
  std::string out;
  out += "# HELP pdcu_search_cache_hits_total Search query cache hits.\n";
  out += "# TYPE pdcu_search_cache_hits_total counter\n";
  out += "pdcu_search_cache_hits_total " + std::to_string(cache.hits()) + "\n";
  out += "# HELP pdcu_search_cache_misses_total Search query cache misses.\n";
  out += "# TYPE pdcu_search_cache_misses_total counter\n";
  out +=
      "pdcu_search_cache_misses_total " + std::to_string(cache.misses()) + "\n";
  out += "# HELP pdcu_search_cache_evictions_total Search query cache LRU "
         "evictions.\n";
  out += "# TYPE pdcu_search_cache_evictions_total counter\n";
  out += "pdcu_search_cache_evictions_total " +
         std::to_string(cache.evictions()) + "\n";
  out += "# HELP pdcu_search_cache_entries Search queries currently cached.\n";
  out += "# TYPE pdcu_search_cache_entries gauge\n";
  out += "pdcu_search_cache_entries " + std::to_string(cache.size()) + "\n";
  return out;
}

}  // namespace

Router::Router(const site::Site& site, const core::Repository& repo,
               std::optional<search::SearchIndex> index)
    : cache_(site),
      index_(index.has_value() ? std::move(*index)
                               : search::SearchIndex::build(repo)),
      taxonomy_(repo.index()) {
  cache_.put("api/catalog.json", site::render_json_catalog(repo),
             std::string(kJsonType));
  for (const auto& activity : repo.activities()) {
    cache_.put("api/activities/" + activity.slug + ".json",
               site::activity_json(activity), std::string(kJsonType));
  }
}

Response Router::handle(const Request& request) const {
  const std::string_view path = request.path();
  const bool known_route = path == "/healthz" || path == "/metrics" ||
                           path == "/api/search" ||
                           (path == "/cluster/gossip" && gossip_ != nullptr) ||
                           cache_.find(path) != nullptr;
  if (request.method != "GET" && request.method != "HEAD") {
    // 405 promises the path exists for some method; an unknown path is a
    // 404 no matter how it is requested.
    if (!known_route) {
      return plain_response(404, "404 not found\n");
    }
    Response response = plain_response(405, "405 method not allowed\n");
    response.set("Allow", "GET, HEAD");
    return response;
  }

  if (path == "/healthz") {
    if (health_ == nullptr) {
      return plain_response(200, "ok\n");
    }
    return json_response(200, health_->render_json());
  }
  if (path == "/metrics") {
    if (metrics_ == nullptr) {
      return plain_response(404, "404 metrics not enabled\n");
    }
    std::string text = metrics_->render_text();
    if (build_stats_.has_value()) text += build_stats_->render_text();
    if (reload_metrics_ != nullptr) text += reload_metrics_->render_text();
    if (spans_ != nullptr) text += spans_->render_text();
    if (net_metrics_ != nullptr) text += net_metrics_->render_text();
    text += query_cache_metrics_text(query_cache_);
    Response response;
    response.set("Content-Type", std::string(kMetricsType));
    response.body = std::move(text);
    return response;
  }
  if (path == "/api/search") {
    return handle_search(request);
  }
  if (path == "/cluster/gossip" && gossip_ != nullptr) {
    std::string peer_digest;
    for (const auto& [key, value] : parse_query_params(request.query())) {
      if (key == "digest") peer_digest = value;
    }
    return plain_response(200, gossip_->exchange(peer_digest));
  }

  const CachedEntry* entry = cache_.find(path);
  if (entry == nullptr) {
    return plain_response(404, "404 not found\n");
  }

  Response response;
  response.set("ETag", entry->etag);
  response.set("Cache-Control", "no-cache");
  const std::string* if_none_match = request.header("if-none-match");
  if (if_none_match != nullptr && etag_matches(*if_none_match, entry->etag)) {
    response.status = 304;
    return response;
  }
  response.set("Content-Type", entry->content_type);
  response.body = entry->body;
  return response;
}

std::optional<Router::FastHit> Router::try_fast(const Request& request) const {
  const bool head_only = request.method == "HEAD";
  if (request.method != "GET" && !head_only) return std::nullopt;
  const CachedEntry* entry = cache_.find(request.path());
  if (entry == nullptr) return std::nullopt;

  FastHit hit;
  const std::string* if_none_match = request.header("if-none-match");
  if (if_none_match != nullptr && etag_matches(*if_none_match, entry->etag)) {
    hit.head = entry->head_304;
    hit.status = 304;
    return hit;
  }
  hit.head = entry->head_200;
  if (!head_only) hit.body = entry->body;
  hit.status = 200;
  return hit;
}

Response Router::handle_search(const Request& request) const {
  std::string q;
  bool has_q = false;
  std::size_t limit = kDefaultSearchLimit;
  for (const auto& [key, value] : parse_query_params(request.query())) {
    if (key == "q" && !has_q) {
      q = value;
      has_q = true;
    } else if (key == "limit") {
      // Strict parse: "10abc", "-1", "1e3", and "" are client errors, not
      // numbers; so is an explicit limit=0 (the old code silently served
      // the default for all of these). Valid but huge limits clamp.
      const auto parsed = strs::parse_u64(value);
      if (!parsed.has_value() || *parsed == 0) {
        return json_response(
            400,
            "{\"error\":\"invalid limit parameter: expected a positive "
            "integer\"}\n");
      }
      limit = std::min<std::size_t>(*parsed, kMaxSearchLimit);
    }
  }
  if (!has_q || strs::trim(q).empty()) {
    return json_response(400,
                         "{\"error\":\"missing query parameter q\"}\n");
  }

  const search::Query query = search::parse_query(q);

  // Serve the result fragment from the per-snapshot cache when the
  // normalized query has been answered before against this exact index;
  // otherwise run the (possibly sharded) ranked search and remember it.
  const std::string key =
      search_cache_key(index_.fingerprint(), query, limit);
  std::string fragment;
  auto cached = query_cache_.get(key);
  if (cached.has_value()) {
    fragment = std::move(*cached);
  } else {
    search::SearchOptions options;
    options.limit = limit;
    options.pool = search_pool_;
    options.filter_cache = &filter_cache_;
    const auto hits = index_.search(query, &taxonomy_, options);
    fragment = search_results_fragment(hits);
    query_cache_.put(key, fragment);
  }

  std::string body =
      "{\"query\":\"" + site::json_escape(query.raw) + "\"," + fragment;
  Response response = json_response(200, std::move(body));
  // Same conditional-GET contract as cached pages: the body is a pure
  // function of (index, query), so the ETag is stable until a reindex.
  const std::string etag = strong_etag(response.body);
  response.set("ETag", etag);
  response.set("Cache-Control", "no-cache");
  const std::string* if_none_match = request.header("if-none-match");
  if (if_none_match != nullptr && etag_matches(*if_none_match, etag)) {
    Response not_modified;
    not_modified.status = 304;
    not_modified.set("ETag", etag);
    not_modified.set("Cache-Control", "no-cache");
    return not_modified;
  }
  return response;
}

}  // namespace pdcu::server
