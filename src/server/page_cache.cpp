#include "pdcu/server/page_cache.hpp"

#include <cstdio>

#include "pdcu/support/hash.hpp"
#include "pdcu/support/strings.hpp"

namespace pdcu::server {

namespace strs = pdcu::strings;

std::uint64_t fnv1a_64(std::string_view bytes) {
  return hash::fnv1a_64(bytes);
}

std::string strong_etag(std::string_view bytes) {
  char buffer[20];
  std::snprintf(buffer, sizeof buffer, "\"%016llx\"",
                static_cast<unsigned long long>(fnv1a_64(bytes)));
  return buffer;
}

PageCache::PageCache(const site::Site& site) {
  entries_.reserve(site.pages.size());
  for (const auto& page : site.pages) {
    put(page.path, page.html, std::string(site::content_type_for(page.path)));
  }
}

void PageCache::put(std::string site_path, std::string body,
                    std::string content_type) {
  std::string etag = strong_etag(body);
  // Everything about these answers except the Connection header is known
  // now, so serialize it now; the per-request work for a cache hit is a
  // lookup plus one writev of [head, tail, body].
  const std::string shared_headers =
      "ETag: " + etag + "\r\nCache-Control: no-cache\r\n";
  std::string head_200 = "HTTP/1.1 200 OK\r\n" + shared_headers +
                         "Content-Type: " + content_type +
                         "\r\nContent-Length: " +
                         std::to_string(body.size()) + "\r\n";
  std::string head_304 = "HTTP/1.1 304 Not Modified\r\n" + shared_headers;
  auto [it, inserted] = entries_.try_emplace(std::move(site_path));
  if (!inserted) total_bytes_ -= it->second.body.size();
  total_bytes_ += body.size();
  it->second = {std::move(body), std::move(content_type), std::move(etag),
                std::move(head_200), std::move(head_304)};
}

std::string PageCache::normalize(std::string_view request_path) {
  while (!request_path.empty() && request_path.front() == '/') {
    request_path.remove_prefix(1);
  }
  // Dot-dot segments could only matter if entries aliased the filesystem;
  // they never match a cached key, which keeps the contract obvious.
  if (strs::contains(request_path, "..")) return std::string();
  std::string key(request_path);
  if (key.empty() || key.back() == '/') key += "index.html";
  return key;
}

const CachedEntry* PageCache::find(std::string_view request_path) const {
  const std::string key = normalize(request_path);
  if (key.empty()) return nullptr;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    // "/activities/x" (no trailing slash) serves the directory index.
    it = entries_.find(key + "/index.html");
  }
  return it == entries_.end() ? nullptr : &it->second;
}

}  // namespace pdcu::server
