#include "pdcu/server/http.hpp"

#include <algorithm>
#include <cctype>

#include "pdcu/support/strings.hpp"

namespace pdcu::server {

namespace strs = pdcu::strings;

namespace {

constexpr std::size_t kMaxHeaderCount = 100;
constexpr std::size_t kMaxTargetBytes = 2048;

/// RFC 7230 token characters (header names, methods).
bool is_tchar(char c) {
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
      (c >= '0' && c <= '9')) {
    return true;
  }
  constexpr std::string_view kExtra = "!#$%&'*+-.^_`|~";
  return kExtra.find(c) != std::string_view::npos;
}

bool is_upper_token(std::string_view s) {
  if (s.empty() || s.size() > 16) return false;
  return std::all_of(s.begin(), s.end(),
                     [](char c) { return c >= 'A' && c <= 'Z'; });
}

bool is_valid_target(std::string_view s) {
  if (s.empty() || s.front() != '/' || s.size() > kMaxTargetBytes) {
    return false;
  }
  return std::none_of(s.begin(), s.end(), [](char c) {
    return c == ' ' || c == '\t' || static_cast<unsigned char>(c) < 0x20 ||
           c == 0x7f;
  });
}

bool equals_ignore_case(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

const std::string* Request::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (equals_ignore_case(key, name)) return &value;
  }
  return nullptr;
}

std::string_view Request::path() const {
  const std::string_view t = target;
  return t.substr(0, t.find('?'));
}

std::string_view Request::query() const {
  const std::string_view t = target;
  const auto mark = t.find('?');
  return mark == std::string_view::npos ? std::string_view{}
                                        : t.substr(mark + 1);
}

std::string url_decode(std::string_view text, bool plus_as_space) {
  const auto hex_digit = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '+' && plus_as_space) {
      out.push_back(' ');
      continue;
    }
    if (c == '%' && i + 2 < text.size()) {
      const int hi = hex_digit(text[i + 1]);
      const int lo = hex_digit(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(c);
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> parse_query_params(
    std::string_view query) {
  std::vector<std::pair<std::string, std::string>> params;
  std::size_t start = 0;
  while (start <= query.size()) {
    std::size_t end = query.find('&', start);
    if (end == std::string_view::npos) end = query.size();
    const std::string_view pair = query.substr(start, end - start);
    start = end + 1;
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      params.emplace_back(url_decode(pair), "");
    } else {
      params.emplace_back(url_decode(pair.substr(0, eq)),
                          url_decode(pair.substr(eq + 1)));
    }
  }
  return params;
}

namespace {

/// True when the comma-separated Connection header lists `token` as one of
/// its whole (trimmed, case-insensitive) members. Substring matching is
/// wrong here: "Connection: keep-alive, x-close-hint" must not read as
/// "close", and "proxy-keep-alive" must not read as "keep-alive".
bool connection_has_token(std::string_view header, std::string_view token) {
  for (const auto& piece : strs::split(header, ',')) {
    if (equals_ignore_case(strs::trim(piece), token)) return true;
  }
  return false;
}

}  // namespace

bool Request::keep_alive() const {
  const std::string* connection = header("connection");
  if (connection != nullptr && connection_has_token(*connection, "close")) {
    return false;
  }
  if (version == "HTTP/1.1") return true;
  return connection != nullptr &&
         connection_has_token(*connection, "keep-alive");
}

ParseResult parse_request(std::string_view data, std::size_t max_bytes) {
  ParseResult result;

  // Locate the end of the head: CRLFCRLF, tolerating bare LF.
  const std::size_t crlf = data.find("\r\n\r\n");
  const std::size_t lf = data.find("\n\n");
  std::size_t head_len = 0;
  std::size_t terminator = 0;
  if (crlf != std::string_view::npos &&
      (lf == std::string_view::npos || crlf < lf)) {
    head_len = crlf;
    terminator = 4;
  } else if (lf != std::string_view::npos) {
    head_len = lf;
    terminator = 2;
  } else {
    result.status = data.size() > max_bytes ? ParseStatus::kTooLarge
                                            : ParseStatus::kIncomplete;
    return result;
  }
  if (head_len + terminator > max_bytes) {
    result.status = ParseStatus::kTooLarge;
    return result;
  }

  const auto lines = strs::split_lines(data.substr(0, head_len));
  if (lines.empty()) {
    result.status = ParseStatus::kBad;
    return result;
  }

  // Start line: METHOD SP target SP HTTP-version, single spaces only.
  const auto parts = strs::split(lines.front(), ' ');
  if (parts.size() != 3 || !is_upper_token(parts[0]) ||
      !is_valid_target(parts[1]) ||
      (parts[2] != "HTTP/1.0" && parts[2] != "HTTP/1.1")) {
    result.status = ParseStatus::kBad;
    return result;
  }
  result.request.method = parts[0];
  result.request.target = parts[1];
  result.request.version = parts[2];

  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    // No obs-fold continuations, no blank lines inside the head.
    if (line.empty() || line.front() == ' ' || line.front() == '\t') {
      result.status = ParseStatus::kBad;
      return result;
    }
    const auto colon = line.find(':');
    if (colon == 0 || colon == std::string::npos) {
      result.status = ParseStatus::kBad;
      return result;
    }
    const std::string_view name = std::string_view(line).substr(0, colon);
    if (!std::all_of(name.begin(), name.end(), is_tchar)) {
      result.status = ParseStatus::kBad;
      return result;
    }
    if (result.request.headers.size() >= kMaxHeaderCount) {
      result.status = ParseStatus::kBad;
      return result;
    }
    result.request.headers.emplace_back(
        strs::to_lower(name),
        std::string(strs::trim(std::string_view(line).substr(colon + 1))));
  }

  result.status = ParseStatus::kOk;
  result.consumed = head_len + terminator;
  return result;
}

void Response::set(std::string name, std::string value) {
  for (auto& [key, existing] : headers) {
    if (key == name) {
      existing = std::move(value);
      return;
    }
  }
  headers.emplace_back(std::move(name), std::move(value));
}

const std::string* Response::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (equals_ignore_case(key, name)) return &value;
  }
  return nullptr;
}

std::string_view status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 304: return "Not Modified";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

Response error_response(int status) {
  Response response;
  response.status = status;
  response.set("Content-Type", "text/plain; charset=utf-8");
  response.set("Connection", "close");
  if (status == 503) {
    // The connection limit is a transient condition; tell clients when to
    // come back instead of letting them retry-storm the accept loop.
    response.set("Retry-After", "1");
  }
  response.body = std::to_string(status) + " ";
  response.body += status_reason(status);
  response.body += "\n";
  return response;
}

std::string serialize(const Response& response, bool head_only) {
  const bool body_allowed = response.status / 100 != 1 &&
                            response.status != 204 && response.status != 304;
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " ";
  out += status_reason(response.status);
  out += "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  if (body_allowed && response.header("content-length") == nullptr) {
    out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  }
  out += "\r\n";
  if (body_allowed && !head_only) out += response.body;
  return out;
}

}  // namespace pdcu::server
