#include "pdcu/server/health.hpp"

#include "pdcu/site/json_catalog.hpp"

namespace pdcu::server {

void HealthTracker::set_content(std::size_t loaded,
                                std::vector<std::string> quarantined) {
  std::lock_guard lock(mutex_);
  loaded_ = loaded;
  quarantined_ = std::move(quarantined);
}

void HealthTracker::record_reload_success() {
  std::lock_guard lock(mutex_);
  last_reload_ = ReloadOutcome::kOk;
  last_error_.clear();
  last_reload_at_ = std::chrono::steady_clock::now();
  ++epoch_;
}

void HealthTracker::record_reload_failure(std::string error) {
  std::lock_guard lock(mutex_);
  last_reload_ = ReloadOutcome::kFailed;
  last_error_ = std::move(error);
  last_reload_at_ = std::chrono::steady_clock::now();
}

bool HealthTracker::degraded() const {
  std::lock_guard lock(mutex_);
  return !quarantined_.empty() || last_reload_ == ReloadOutcome::kFailed;
}

std::uint64_t HealthTracker::epoch() const {
  std::lock_guard lock(mutex_);
  return epoch_;
}

std::string HealthTracker::render_json() const {
  std::lock_guard lock(mutex_);
  const bool degraded =
      !quarantined_.empty() || last_reload_ == ReloadOutcome::kFailed;
  std::string json = "{\"status\":\"";
  json += degraded ? "degraded" : "ok";
  json += "\",\"epoch\":" + std::to_string(epoch_);
  json += ",\"activities\":" + std::to_string(loaded_);
  json += ",\"quarantined\":" + std::to_string(quarantined_.size());
  json += ",\"quarantined_slugs\":[";
  for (std::size_t i = 0; i < quarantined_.size(); ++i) {
    if (i > 0) json += ',';
    json += "\"" + site::json_escape(quarantined_[i]) + "\"";
  }
  json += "],\"last_reload\":\"";
  switch (last_reload_) {
    case ReloadOutcome::kNever:
      json += "never";
      break;
    case ReloadOutcome::kOk:
      json += "ok";
      break;
    case ReloadOutcome::kFailed:
      json += "failed";
      break;
  }
  json += "\"";
  if (last_reload_ != ReloadOutcome::kNever) {
    const auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
        std::chrono::steady_clock::now() - last_reload_at_);
    json += ",\"last_reload_age_ms\":" + std::to_string(age.count());
  }
  if (!last_error_.empty()) {
    json += ",\"last_error\":\"" + site::json_escape(last_error_) + "\"";
  }
  json += "}\n";
  return json;
}

std::string ReloadMetrics::render_text() const {
  std::string out;
  out += "# HELP pdcu_reload_attempts_total Content reloads attempted.\n";
  out += "# TYPE pdcu_reload_attempts_total counter\n";
  out += "pdcu_reload_attempts_total " + std::to_string(attempts()) + "\n";
  out += "# HELP pdcu_reload_success_total Content reloads that swapped in "
         "a new snapshot.\n";
  out += "# TYPE pdcu_reload_success_total counter\n";
  out += "pdcu_reload_success_total " + std::to_string(successes()) + "\n";
  out += "# HELP pdcu_reload_failures_total Content reloads that kept the "
         "last-known-good snapshot.\n";
  out += "# TYPE pdcu_reload_failures_total counter\n";
  out += "pdcu_reload_failures_total " + std::to_string(failures()) + "\n";
  out += "# HELP pdcu_reload_consecutive_failures Failed reloads since the "
         "last success.\n";
  out += "# TYPE pdcu_reload_consecutive_failures gauge\n";
  out += "pdcu_reload_consecutive_failures " +
         std::to_string(consecutive_failures()) + "\n";
  out += "# HELP pdcu_reload_last_ok Whether the most recent reload "
         "succeeded (1) or failed (0).\n";
  out += "# TYPE pdcu_reload_last_ok gauge\n";
  out += "pdcu_reload_last_ok " + std::to_string(last_ok_.load(kRelaxed)) +
         "\n";
  out += "# HELP pdcu_reload_quarantined Content files quarantined by the "
         "last successful reload.\n";
  out += "# TYPE pdcu_reload_quarantined gauge\n";
  out += "pdcu_reload_quarantined " +
         std::to_string(quarantined_.load(kRelaxed)) + "\n";
  out += "# HELP pdcu_reload_pages_rendered_last Pages re-rendered by the "
         "last successful reload.\n";
  out += "# TYPE pdcu_reload_pages_rendered_last gauge\n";
  out += "pdcu_reload_pages_rendered_last " +
         std::to_string(pages_rendered_last_.load(kRelaxed)) + "\n";
  out += "# HELP pdcu_reload_backoff_ms Current reload failure backoff in "
         "milliseconds (0 when healthy).\n";
  out += "# TYPE pdcu_reload_backoff_ms gauge\n";
  out += "pdcu_reload_backoff_ms " +
         std::to_string(backoff_ms_.load(kRelaxed)) + "\n";
  return out;
}

}  // namespace pdcu::server
