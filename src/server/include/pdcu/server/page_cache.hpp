// The serving cache: every page of a built pdcu::site::Site, keyed by
// normalized request path, with its content type and a strong ETag
// precomputed at construction so the per-request hot path is one hash
// lookup and zero hashing of page bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "pdcu/site/site.hpp"

namespace pdcu::server {

/// 64-bit FNV-1a over `bytes`.
std::uint64_t fnv1a_64(std::string_view bytes);

/// A strong entity tag for `bytes`: a quoted 16-digit hex FNV-1a digest,
/// e.g. "\"af63dc4c8601ec8c\"".
std::string strong_etag(std::string_view bytes);

/// One cached response payload, with the wire-format header blocks for
/// both of its possible answers precomputed at construction. The blocks
/// deliberately stop short of the Connection header and the final CRLF:
/// the reactor's zero-copy path writev()s [head, connection-tail, body]
/// straight from here, so a cache hit serializes nothing per request.
struct CachedEntry {
  std::string body;
  std::string content_type;
  std::string etag;
  /// "HTTP/1.1 200 OK" + ETag/Cache-Control/Content-Type/Content-Length
  /// header lines; no Connection header, no blank line.
  std::string head_200;
  /// "HTTP/1.1 304 Not Modified" + ETag/Cache-Control; same framing rules.
  std::string head_304;
};

/// Immutable-after-construction map from site path to payload. Lookups are
/// const and therefore safe from any number of server threads.
class PageCache {
 public:
  PageCache() = default;

  /// Caches every page of a built site; content types come from
  /// site::content_type_for.
  explicit PageCache(const site::Site& site);

  /// Adds (or replaces) one entry under a site-relative path such as
  /// "api/catalog.json". The ETag is computed here.
  void put(std::string site_path, std::string body, std::string content_type);

  /// Resolves a request path ("/", "/activities/x/", "/activities/x") to a
  /// cached entry; nullptr when nothing matches.
  const CachedEntry* find(std::string_view request_path) const;

  /// Maps a request path to the site-relative key it would match:
  /// leading '/' stripped, "" and trailing-'/' forms get "index.html"
  /// appended, dot-dot segments collapse to an unmatchable key.
  static std::string normalize(std::string_view request_path);

  std::size_t size() const { return entries_.size(); }
  std::size_t total_bytes() const { return total_bytes_; }

 private:
  std::unordered_map<std::string, CachedEntry> entries_;
  std::size_t total_bytes_ = 0;
};

}  // namespace pdcu::server
