// The connection layer: a dependency-free HTTP/1.1 server over POSIX
// sockets. One thread accepts; connections are handled on the existing
// pdcu::runtime::ThreadPool with keep-alive, per-request read timeouts, a
// concurrent-connection limit (excess connections get 503), and graceful
// shutdown — stop() stops accepting, lets in-flight requests finish, and
// joins everything. Malformed requests are answered with 400, oversized
// heads with 431, idle sockets with 408; nothing a client sends can crash
// the process. Lifecycle events land in an optional runtime TraceLog.
//
// The served content is an immutable snapshot: a shared_ptr<const Router>
// that each request loads once (RCU-style; the pointer itself is guarded
// by a tiny mutex rather than std::atomic<shared_ptr> — libstdc++ 12's
// _Sp_atomic trips TSan false positives under contention, and the lock is
// held only for the pointer copy, never across a request). swap_router()
// publishes a new snapshot without pausing serving; requests already
// running finish against the snapshot they loaded, and the old router is
// freed when the last such request drops its reference. This is what live
// reload (ReloadManager) builds on.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "pdcu/net/metrics.hpp"
#include "pdcu/net/reactor.hpp"
#include "pdcu/runtime/thread_pool.hpp"
#include "pdcu/runtime/trace.hpp"
#include "pdcu/server/metrics.hpp"
#include "pdcu/server/router.hpp"
#include "pdcu/support/expected.hpp"

namespace pdcu::obs {
class AccessLog;
}  // namespace pdcu::obs

namespace pdcu::server {

/// Which connection engine carries the traffic. Routing, metrics, access
/// logging, and reload semantics are identical across the two; only the
/// concurrency model differs.
enum class Backend {
  /// One blocking thread per in-flight connection, from a ThreadPool.
  /// Simple and battle-tested, but keep-alive connections pin their
  /// thread for the connection's whole life, so concurrency is capped
  /// at the pool size.
  kPool,
  /// Sharded epoll reactor (pdcu::net): a few event-loop threads
  /// multiplex every connection, with a zero-copy writev hot path for
  /// cached pages. Scales to tens of thousands of keep-alive
  /// connections.
  kReactor,
};

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 8080;  ///< 0 picks an ephemeral port (see port())
  Backend backend = Backend::kPool;
  unsigned threads = 0;  ///< 0 = share rt::default_pool(); else private pool
  /// Reactor shards (epoll loops with private SO_REUSEPORT listeners).
  /// Size to physical cores serving traffic; 0 means 1. Pool ignores it.
  unsigned net_shards = 1;
  unsigned max_connections = 128;  ///< concurrent; excess answered with 503
  std::chrono::milliseconds read_timeout{5000};  ///< per request head
  /// Reactor only: how long stop() lets in-flight responses finish before
  /// force-closing (the pool backend drains unconditionally).
  std::chrono::milliseconds drain_timeout{2000};
  std::size_t max_request_bytes = kDefaultMaxRequestBytes;
  unsigned max_requests_per_connection = 100;  ///< keep-alive cap
  /// Structured JSON access log: one line per parsed request. The pointee
  /// (owned by the caller, e.g. `pdcu serve --access-log`) must outlive
  /// the server; its writer thread keeps file I/O off the request path.
  obs::AccessLog* access_log = nullptr;
};

class HttpServer {
 public:
  explicit HttpServer(Router router, ServerOptions options = {},
                      rt::TraceLog* trace = nullptr);
  ~HttpServer();  ///< stops the server if still running

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens, and starts the accept thread and worker pool.
  Status start();

  /// Graceful shutdown: stop accepting, finish in-flight requests, join
  /// the pool, close the listening socket. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The actually-bound port (useful with options.port == 0). Valid after
  /// a successful start().
  std::uint16_t port() const { return bound_port_; }

  const ServerMetrics& metrics() const { return metrics_; }

  /// Reactor-core counters (accepts by shard, peak connections, writev
  /// stats). All zero when the pool backend is serving.
  const net::NetMetrics& net_metrics() const { return net_metrics_; }

  /// The current serving snapshot. Hold the shared_ptr for as long as the
  /// Router is used; a concurrent swap_router() frees replaced snapshots
  /// once their last holder lets go.
  std::shared_ptr<const Router> router() const {
    std::lock_guard lock(router_mutex_);
    return router_;
  }

  /// Atomically replaces the serving snapshot (RCU-style). In-flight
  /// requests finish against the snapshot they already loaded; new
  /// requests see `router`. The server wires its own metrics into the
  /// new router before publishing it. Callable while serving.
  void swap_router(Router router);

  /// Async-signal-safe stop request; run_until_signalled() observes it.
  static void request_stop();

  /// Installs SIGINT/SIGTERM handlers, blocks until a signal (or
  /// request_stop()) arrives, then performs the graceful stop().
  void run_until_signalled();

 private:
  Status start_reactor();
  void accept_loop();
  void handle_connection(int fd);

  /// The serving snapshot; requests load it once and hold a reference for
  /// the duration of the request (see swap_router()). The mutex guards
  /// only the pointer, never a request.
  mutable std::mutex router_mutex_;
  std::shared_ptr<const Router> router_;
  ServerOptions options_;
  rt::TraceLog* trace_;
  ServerMetrics metrics_;

  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<unsigned> active_connections_{0};
  /// Connections run on the shared rt::default_pool() unless
  /// options.threads asks for a private, explicitly-sized pool.
  rt::ThreadPool* pool_ = nullptr;
  std::unique_ptr<rt::ThreadPool> owned_pool_;
  std::thread accept_thread_;

  /// Reactor backend (Backend::kReactor): the protocol handler and the
  /// sharded epoll server it plugs into. Null while the pool serves.
  net::NetMetrics net_metrics_;
  std::unique_ptr<net::Handler> reactor_handler_;
  std::unique_ptr<net::ReactorServer> reactor_;
};

}  // namespace pdcu::server
