// Minimal HTTP/1.1 message layer for the embedded server: request parsing
// with hard size limits, response serialization, and status reasons. The
// parser is incremental — callers feed it a growing buffer and it reports
// kIncomplete until a full request head has arrived — and strict: anything
// malformed is kBad, which the connection layer answers with 400 instead of
// guessing (and instead of crashing).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pdcu::server {

/// Upper bound on a request head (start-line + headers) unless overridden.
inline constexpr std::size_t kDefaultMaxRequestBytes = 16 * 1024;

enum class ParseStatus {
  kOk,          ///< a complete request head was parsed
  kIncomplete,  ///< need more bytes; call again with a longer buffer
  kBad,         ///< malformed; answer 400 and close
  kTooLarge,    ///< head exceeds the limit; answer 431 and close
};

/// One parsed request head. Header names are stored lower-cased; values are
/// trimmed of surrounding whitespace.
struct Request {
  std::string method;   ///< e.g. "GET" (uppercase token)
  std::string target;   ///< origin-form, e.g. "/activities/x/?plain=1"
  std::string version;  ///< "HTTP/1.0" or "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* header(std::string_view name) const;

  /// Target up to (excluding) the first '?'.
  std::string_view path() const;
  /// Target after the first '?', empty when there is none.
  std::string_view query() const;

  /// HTTP/1.1 defaults to persistent connections unless "Connection: close";
  /// HTTP/1.0 requires an explicit "Connection: keep-alive".
  bool keep_alive() const;
};

struct ParseResult {
  ParseStatus status = ParseStatus::kIncomplete;
  Request request;            ///< populated only when status == kOk
  std::size_t consumed = 0;   ///< bytes of input consumed when status == kOk
};

/// Decodes %xx escapes and, when `plus_as_space`, '+' into ' ' (the
/// query-string convention). Invalid or truncated escapes pass through
/// literally instead of failing — a lenient decoder can't be exploited
/// into rejecting valid data, and the router treats the result as text.
std::string url_decode(std::string_view text, bool plus_as_space = true);

/// Splits a query string ("q=a%20b&limit=5&flag") into decoded key/value
/// pairs, preserving order and repeated keys; a key without '=' gets an
/// empty value.
std::vector<std::pair<std::string, std::string>> parse_query_params(
    std::string_view query);

/// Parses one request head from the front of `data`. Tolerates bare-LF line
/// endings; rejects obs-fold continuations, non-token method/header names,
/// targets that do not start with '/', and unknown HTTP versions.
ParseResult parse_request(std::string_view data,
                          std::size_t max_bytes = kDefaultMaxRequestBytes);

struct Response {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Appends or replaces a header (exact-name match on replace).
  void set(std::string name, std::string value);
  const std::string* header(std::string_view name) const;
};

/// Canonical reason phrase ("OK", "Not Modified", ...); "Unknown" otherwise.
std::string_view status_reason(int status);

/// The canned close-the-connection error answer the connection layer sends
/// for 400/408/431/503: plain-text body "<status> <reason>\n" and
/// "Connection: close". A 503 (connection limit) additionally carries
/// "Retry-After: 1" so well-behaved clients back off instead of
/// hammering an already-saturated accept loop.
Response error_response(int status);

/// Serializes status line, headers, and body. Content-Length is added
/// automatically unless already set; 1xx/204/304 responses never carry a
/// body. `head_only` keeps the head (for HEAD requests) but still reports
/// the full Content-Length.
std::string serialize(const Response& response, bool head_only = false);

}  // namespace pdcu::server
