// The HTTP protocol plugged into pdcu::net — a net::Handler that feeds
// connection buffers through parse_request, routes via the RCU router
// snapshot, and frames responses for the reactor's vectored write path.
// A cache hit takes Router::try_fast: the response is three borrowed
// views (precomputed head block, static Connection tail, page body) with
// the router snapshot as the guard, so the hot path allocates nothing
// after routing and a live reload can never free a page mid-write.
//
// Exposed in a header (rather than buried in server.cpp) so tests can
// drive the handler over socketpairs without a listening server.
#pragma once

#include <functional>
#include <memory>

#include "pdcu/net/handler.hpp"
#include "pdcu/server/metrics.hpp"
#include "pdcu/server/router.hpp"

namespace pdcu::server {

struct ServerOptions;

/// Builds the reactor-side HTTP handler. `options` and `metrics` must
/// outlive the handler; `router` is called once per request and must be
/// thread-safe (HttpServer passes its snapshot getter).
std::unique_ptr<net::Handler> make_reactor_handler(
    const ServerOptions& options, ServerMetrics& metrics,
    std::function<std::shared_ptr<const Router>()> router);

}  // namespace pdcu::server
