// Lock-free serving counters with per-route resolution: request counts by
// route and status class, bytes on the wire, latency min/mean/max, and one
// log-bucketed obs::Histogram of handling latency per route. record() is a
// handful of relaxed atomic operations so it sits on the per-request hot
// path; render_text() produces promtool-clean /metrics exposition
// (# HELP / # TYPE lines, counters suffixed _total, cumulative
// pdcu_request_latency_us_bucket{route=...,le=...} series ending in +Inf).
// The pre-rename families are still emitted when obs::legacy_names() is
// set, for one release of scrape-config migration.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "pdcu/obs/histogram.hpp"

namespace pdcu::server {

/// The serving routes metrics are labeled with. kOther covers traffic that
/// never reached the router: connection-level 400/408/431/503 answers.
enum class Route : std::uint8_t {
  kPage = 0,   ///< cached site pages (and API 404s)
  kCatalog,    ///< /api/catalog.json
  kActivity,   ///< /api/activities/<slug>.json
  kSearch,     ///< /api/search
  kHealthz,    ///< /healthz
  kMetrics,    ///< /metrics
  kOther,      ///< no parsed request (connection-level errors)
};

inline constexpr std::size_t kRouteCount = 7;

/// The exposition label for a route ("page", "catalog", ...).
std::string_view route_label(Route route);

/// Classifies a request path into its route tag.
Route route_for_path(std::string_view path);

class ServerMetrics {
 public:
  /// Records one finished request: the route it hit, its response status,
  /// bytes written to the socket (head + body), and wall-clock handling
  /// latency.
  void record(Route route, int status, std::size_t bytes_sent,
              std::chrono::microseconds latency);

  std::uint64_t requests_total() const;
  /// Count for one status class; status_class is 1..5 (1xx..5xx).
  std::uint64_t requests_by_class(int status_class) const;
  std::uint64_t requests_by_route(Route route, int status_class) const;
  std::uint64_t bytes_sent_total() const;

  /// Counts a response the peer never fully received: the socket write
  /// failed mid-flight (EPIPE, ECONNRESET, ...). Exposed as
  /// pdcu_write_errors_total so a spike of dead-peer writes is visible
  /// instead of silently folded into "sent".
  void record_write_error() {
    write_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t write_errors_total() const {
    return write_errors_.load(std::memory_order_relaxed);
  }

  /// One consistent view of the aggregate latency counters. record()
  /// publishes the running sum last (release) and the snapshot loads it
  /// first (acquire), so every microsecond in `sum` comes from a request
  /// whose count/min/max updates are already visible: the mean can never
  /// exceed the max (the torn-read the old per-field getters allowed).
  struct LatencyStats {
    std::uint64_t count = 0;
    std::uint64_t sum_us = 0;
    std::uint64_t min_us = 0;
    std::uint64_t max_us = 0;
    double mean_us = 0.0;  ///< clamped into [min_us, max_us]
  };
  LatencyStats latency_stats() const;

  /// Latency stats in microseconds; min and max are 0 before any request.
  std::uint64_t latency_min_us() const { return latency_stats().min_us; }
  std::uint64_t latency_max_us() const { return latency_stats().max_us; }
  double latency_mean_us() const { return latency_stats().mean_us; }

  /// The per-route latency histogram (for percentile queries in tests and
  /// tools; /metrics renders all of them).
  const obs::Histogram& route_latency(Route route) const {
    return per_route_[static_cast<std::size_t>(route)].latency;
  }

  /// Prometheus text exposition (the body served at /metrics).
  std::string render_text() const;

 private:
  struct PerRoute {
    std::array<std::atomic<std::uint64_t>, 5> by_class{};
    obs::Histogram latency;
  };

  std::array<PerRoute, kRouteCount> per_route_{};
  std::array<std::atomic<std::uint64_t>, 5> by_class_{};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> write_errors_{0};
  std::atomic<std::uint64_t> latency_total_us_{0};
  std::atomic<std::uint64_t> latency_min_us_{UINT64_MAX};
  std::atomic<std::uint64_t> latency_max_us_{0};
};

}  // namespace pdcu::server
