// Lock-free serving counters: request counts by status class, bytes on the
// wire, and latency min/mean/max. record() is a handful of relaxed atomic
// operations so it can sit on the per-request hot path; render_text()
// produces the /metrics exposition format.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace pdcu::server {

class ServerMetrics {
 public:
  /// Records one finished request: its response status, bytes written to
  /// the socket (head + body), and wall-clock handling latency.
  void record(int status, std::size_t bytes_sent,
              std::chrono::microseconds latency);

  std::uint64_t requests_total() const;
  /// Count for one status class; status_class is 1..5 (1xx..5xx).
  std::uint64_t requests_by_class(int status_class) const;
  std::uint64_t bytes_sent_total() const;

  /// Latency stats in microseconds; min and max are 0 before any request.
  std::uint64_t latency_min_us() const;
  std::uint64_t latency_max_us() const;
  double latency_mean_us() const;

  /// Plain-text exposition, one "name value" or "name{label} value" per
  /// line (the format served at /metrics).
  std::string render_text() const;

 private:
  std::array<std::atomic<std::uint64_t>, 5> by_class_{};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> latency_total_us_{0};
  std::atomic<std::uint64_t> latency_min_us_{UINT64_MAX};
  std::atomic<std::uint64_t> latency_max_us_{0};
};

}  // namespace pdcu::server
