// The seam that lets a Router serve cluster gossip without the server
// library depending on pdcu_cluster (which depends on pdcu_server — the
// dependency would be circular). cluster::GossipAgent implements this;
// the Router only knows "given the sender's digest, merge it and answer
// with mine".
#pragma once

#include <string>
#include <string_view>

namespace pdcu::server {

class GossipEndpoint {
 public:
  virtual ~GossipEndpoint() = default;

  /// Handles one gossip exchange: merge the peer's digest into local
  /// state, return the local digest for the peer to merge. Called from
  /// request threads concurrently; implementations synchronize internally
  /// (const here means "safe to call through a const Router snapshot").
  virtual std::string exchange(std::string_view peer_digest) const = 0;
};

}  // namespace pdcu::server
