// Request dispatch: maps a parsed request onto the page cache and the API
// endpoints. A Router owns copies of everything it serves (pages, catalog
// JSON, per-activity JSON), so the Site and Repository it was built from
// may be discarded after construction, and handle() is const and
// thread-safe.
//
//   GET /                                cached site pages (ETag / 304)
//   GET /activities/<slug>/              ... and every other site path
//   GET /api/catalog.json                machine-readable catalog
//   GET /api/activities/<slug>.json      one activity as JSON
//   GET /healthz                         liveness probe, "ok\n"
//   GET /metrics                         ServerMetrics exposition text
#pragma once

#include "pdcu/core/repository.hpp"
#include "pdcu/server/http.hpp"
#include "pdcu/server/metrics.hpp"
#include "pdcu/server/page_cache.hpp"
#include "pdcu/site/site.hpp"

namespace pdcu::server {

class Router {
 public:
  Router(const site::Site& site, const core::Repository& repo);

  /// Wires the /metrics endpoint; without it /metrics is a 404. The
  /// pointee must outlive the router (HttpServer passes its own metrics).
  void set_metrics(const ServerMetrics* metrics) { metrics_ = metrics; }

  /// Pure dispatch: no I/O, no mutation. GET and HEAD only (405 otherwise);
  /// cached paths honor If-None-Match with 304.
  Response handle(const Request& request) const;

  const PageCache& cache() const { return cache_; }

 private:
  PageCache cache_;
  const ServerMetrics* metrics_ = nullptr;
};

}  // namespace pdcu::server
