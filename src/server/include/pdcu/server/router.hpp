// Request dispatch: maps a parsed request onto the page cache and the API
// endpoints. A Router owns copies of everything it serves (pages, catalog
// JSON, per-activity JSON, the search index and taxonomy index), so the
// Site and Repository it was built from may be discarded after
// construction, and handle() is const and thread-safe.
//
//   GET /                                cached site pages (ETag / 304)
//   GET /activities/<slug>/              ... and every other site path
//   GET /api/catalog.json                machine-readable catalog
//   GET /api/activities/<slug>.json      one activity as JSON
//   GET /api/search?q=...&limit=...      ranked full-text + taxonomy search
//   GET /healthz                         liveness probe; with a
//                                        HealthTracker wired, a JSON body
//                                        (ok|degraded, quarantine, last
//                                        reload), otherwise plain "ok\n"
//   GET /metrics                         ServerMetrics exposition text
//   GET /cluster/gossip?digest=...       gossip exchange (only when a
//                                        GossipEndpoint is wired; 404
//                                        otherwise)
//
// Non-GET/HEAD methods on known routes get 405 with an Allow header;
// unknown paths are 404 regardless of method.
#pragma once

#include <optional>

#include "pdcu/core/repository.hpp"
#include "pdcu/net/metrics.hpp"
#include "pdcu/obs/span.hpp"
#include "pdcu/search/index.hpp"
#include "pdcu/server/gossip_hook.hpp"
#include "pdcu/server/health.hpp"
#include "pdcu/server/http.hpp"
#include "pdcu/server/metrics.hpp"
#include "pdcu/server/page_cache.hpp"
#include "pdcu/server/query_cache.hpp"
#include "pdcu/site/site.hpp"
#include "pdcu/taxonomy/term_index.hpp"

namespace pdcu::server {

class Router {
 public:
  /// Builds the dispatch table. `index` lets callers supply a prebuilt
  /// search index (parallel-built, or loaded from disk for a fast cold
  /// start); omitted, the router builds one serially from `repo`.
  Router(const site::Site& site, const core::Repository& repo,
         std::optional<search::SearchIndex> index = std::nullopt);

  /// Wires the /metrics endpoint; without it /metrics is a 404. The
  /// pointee must outlive the router (HttpServer passes its own metrics).
  void set_metrics(const ServerMetrics* metrics) { metrics_ = metrics; }

  /// Attaches the stats of the build that produced the served site;
  /// /metrics then appends the pdcu_build_* gauges (pages rendered vs.
  /// reused, per-phase wall times) to the serving counters.
  void set_build_stats(const site::BuildStats& stats) { build_stats_ = stats; }

  /// Wires content health into /healthz: with a tracker the probe answers
  /// a JSON document (status ok|degraded, quarantined slugs, last-reload
  /// outcome and age); without one it stays the bare "ok\n". The pointee
  /// must outlive the router and every snapshot swapped after it.
  void set_health(const HealthTracker* health) { health_ = health; }

  /// Appends the pdcu_reload_* lines to /metrics (live-reload servers).
  void set_reload_metrics(const ReloadMetrics* metrics) {
    reload_metrics_ = metrics;
  }

  /// Enables GET /cluster/gossip?digest=... — merge the sender's digest,
  /// answer with ours. Without it the route is a 404 (standalone servers
  /// advertise no cluster surface). The pointee must outlive the router
  /// and every snapshot swapped after it.
  void set_gossip(const GossipEndpoint* gossip) { gossip_ = gossip; }

  /// Appends the pdcu_span_duration_us histogram series (site-build
  /// phases, index builds) to /metrics. The registry must outlive the
  /// router and every snapshot swapped after it.
  void set_spans(const obs::SpanRegistry* spans) { spans_ = spans; }

  /// Appends the reactor's pdcu_net_* families to /metrics (wired only
  /// when the server runs the reactor backend). The pointee must outlive
  /// the router and every snapshot swapped after it.
  void set_net_metrics(const net::NetMetrics* metrics) {
    net_metrics_ = metrics;
  }

  /// Shards /api/search query execution across `pool` (per-shard top-k,
  /// deterministic merge) on corpora large enough to benefit. The pool
  /// must outlive the router and every snapshot swapped after it, and must
  /// NOT be the pool the server's own handlers run on: a handler blocking
  /// on tasks queued to its own busy pool deadlocks. Leave unset (the
  /// default) when ServerOptions::threads == 0 shares rt::default_pool().
  void set_search_pool(rt::ThreadPool* pool) { search_pool_ = pool; }

  /// Pure dispatch: no I/O, no mutation. GET and HEAD only (405 otherwise
  /// on known routes); cached paths honor If-None-Match with 304.
  Response handle(const Request& request) const;

  /// A cache hit resolved without building a Response: views into the
  /// entry's precomputed header block and body, valid for as long as the
  /// router snapshot they came from is held.
  struct FastHit {
    std::string_view head;  ///< CachedEntry::head_200 or head_304
    std::string_view body;  ///< empty for 304 and HEAD
    int status = 200;
  };

  /// The zero-copy hot path: GET/HEAD of a cached page (site pages and
  /// the static API documents), including the If-None-Match → 304 case.
  /// Everything else — dynamic routes, 404s, other methods — returns
  /// nullopt and takes handle(). Allocation-free on hit.
  std::optional<FastHit> try_fast(const Request& request) const;

  const PageCache& cache() const { return cache_; }
  const search::SearchIndex& index() const { return index_; }

  /// The per-snapshot search result cache (stats feed pdcu_search_cache_*
  /// on /metrics). A reload swaps in a new router with a cold cache, which
  /// is exactly the invalidation /api/search needs.
  const QueryCache& query_cache() const { return query_cache_; }

  /// Memoized taxonomy-filter masks, same per-snapshot lifetime (and thus
  /// the same reload invalidation) as the query cache.
  const search::FilterCache& filter_cache() const { return filter_cache_; }

  /// Cached /api/search results per router snapshot.
  static constexpr std::size_t kQueryCacheEntries = 512;

 private:
  Response handle_search(const Request& request) const;

  PageCache cache_;
  search::SearchIndex index_;
  tax::TermIndex taxonomy_;
  mutable QueryCache query_cache_{kQueryCacheEntries};
  mutable search::FilterCache filter_cache_;
  rt::ThreadPool* search_pool_ = nullptr;
  const ServerMetrics* metrics_ = nullptr;
  const HealthTracker* health_ = nullptr;
  const ReloadMetrics* reload_metrics_ = nullptr;
  const GossipEndpoint* gossip_ = nullptr;
  const obs::SpanRegistry* spans_ = nullptr;
  const net::NetMetrics* net_metrics_ = nullptr;
  std::optional<site::BuildStats> build_stats_;
};

}  // namespace pdcu::server
