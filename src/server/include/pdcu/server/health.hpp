// Health and reload telemetry shared between the serving side (Router
// renders /healthz and appends pdcu_reload_* to /metrics) and the reload
// side (ReloadManager records every attempt). Both classes are safe to
// read from any number of request threads while the reload thread writes:
// HealthTracker serializes through one mutex (healthz is not a hot path),
// ReloadMetrics is all relaxed atomics.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pdcu::server {

/// The serving process's view of its own content health: how much of the
/// content loaded, what is quarantined, and how the last reload went.
class HealthTracker {
 public:
  enum class ReloadOutcome { kNever, kOk, kFailed };

  /// Records the content state after a completed (lenient) load: how many
  /// activities are serving and which slugs were quarantined.
  void set_content(std::size_t loaded, std::vector<std::string> quarantined);

  void record_reload_success();
  void record_reload_failure(std::string error);

  /// Degraded when anything is quarantined or the last reload failed.
  bool degraded() const;

  /// The content generation this process is serving: 1 after the initial
  /// load, +1 per successful reload. A failed reload does NOT advance it —
  /// "degraded at epoch E" tells the fleet exactly which last-known-good
  /// snapshot this replica is stuck on, which is what gossip propagates.
  std::uint64_t epoch() const;

  /// The /healthz body: {"status":"ok|degraded","epoch":N,"activities":N,
  /// "quarantined":N,"quarantined_slugs":[...],"last_reload":
  /// "never|ok|failed","last_reload_age_ms":N,"last_error":"..."}.
  /// last_reload_age_ms and last_error appear once a reload has happened.
  std::string render_json() const;

 private:
  mutable std::mutex mutex_;
  std::size_t loaded_ = 0;
  std::uint64_t epoch_ = 1;
  std::vector<std::string> quarantined_;
  ReloadOutcome last_reload_ = ReloadOutcome::kNever;
  std::string last_error_;
  std::chrono::steady_clock::time_point last_reload_at_{};
};

/// Reload counters for /metrics (pdcu_reload_* lines). Gauges describe the
/// present (consecutive failures, current backoff, quarantine size);
/// counters accumulate across the server's lifetime.
class ReloadMetrics {
 public:
  void record_attempt() { attempts_.fetch_add(1, kRelaxed); }
  void record_success(std::size_t quarantined, std::size_t pages_rendered) {
    success_.fetch_add(1, kRelaxed);
    consecutive_failures_.store(0, kRelaxed);
    last_ok_.store(1, kRelaxed);
    quarantined_.store(quarantined, kRelaxed);
    pages_rendered_last_.store(pages_rendered, kRelaxed);
    backoff_ms_.store(0, kRelaxed);
  }
  void record_failure(std::uint64_t backoff_ms) {
    failures_.fetch_add(1, kRelaxed);
    consecutive_failures_.fetch_add(1, kRelaxed);
    last_ok_.store(0, kRelaxed);
    backoff_ms_.store(backoff_ms, kRelaxed);
  }

  std::uint64_t attempts() const { return attempts_.load(kRelaxed); }
  std::uint64_t successes() const { return success_.load(kRelaxed); }
  std::uint64_t failures() const { return failures_.load(kRelaxed); }
  std::uint64_t consecutive_failures() const {
    return consecutive_failures_.load(kRelaxed);
  }

  /// Exposition lines, same format as ServerMetrics::render_text().
  std::string render_text() const;

 private:
  static constexpr std::memory_order kRelaxed = std::memory_order_relaxed;

  std::atomic<std::uint64_t> attempts_{0};
  std::atomic<std::uint64_t> success_{0};
  std::atomic<std::uint64_t> failures_{0};
  std::atomic<std::uint64_t> consecutive_failures_{0};
  std::atomic<std::uint64_t> last_ok_{1};  ///< optimistic until a failure
  std::atomic<std::uint64_t> quarantined_{0};
  std::atomic<std::uint64_t> pages_rendered_last_{0};
  std::atomic<std::uint64_t> backoff_ms_{0};
};

}  // namespace pdcu::server
