// LRU cache of search results. The cached value is the result *fragment*
// of the /api/search body (everything after the echoed raw query), keyed by
// the normalized parsed query — terms, filters, limit — plus the served
// index's fingerprint, so two inputs that normalize identically ("Sorting
// cards!" / "sorting CARD") share one entry while a reindex can never serve
// a stale one.
//
// Invalidation rides the existing RCU snapshot swap: the cache is a member
// of the Router, and a reload builds a whole new Router. A successful
// reload therefore starts with an empty cache for the new corpus, a failed
// reload keeps the last-known-good router *and* its warm cache, and
// requests in flight during a swap keep reading the snapshot (and cache)
// they started with. No cross-snapshot coordination exists to get wrong.
//
// Thread safety: one mutex around an intrusive LRU list + hash map. A
// cache round-trip replaces BM25 scoring plus JSON assembly, so the
// critical section (a splice and a string copy) is far below the work it
// saves; the stats counters feed /metrics (pdcu_search_cache_*).
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace pdcu::server {

class QueryCache {
 public:
  /// `capacity` = max cached queries; 0 disables caching (every get
  /// misses, puts are dropped).
  explicit QueryCache(std::size_t capacity) : capacity_(capacity) {}

  /// Movable so the owning Router stays movable (snapshot swaps move
  /// routers around before they are shared); locks the source, since a
  /// mutex member deletes the defaults.
  QueryCache(QueryCache&& other) noexcept;
  QueryCache& operator=(QueryCache&& other) noexcept;
  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  /// The cached fragment for `key`, refreshing its recency; nullopt on
  /// miss. Counts a hit or a miss.
  std::optional<std::string> get(const std::string& key);

  /// Inserts (or refreshes) `key`, evicting the least recently used entry
  /// beyond capacity.
  void put(const std::string& key, std::string value);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string key;
    std::string value;
  };

  mutable std::mutex mutex_;
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> by_key_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace pdcu::server
