// Live reload with last-known-good serving. A ReloadManager watches a
// content directory from a background thread: it fingerprints the
// activities/*.md listing (paths, sizes, mtimes) every poll interval and,
// when the fingerprint moves, reloads leniently (core::LoadReport),
// rebuilds the site incrementally through the carried site::BuildCache,
// and publishes a fresh Router snapshot via HttpServer::swap_router().
//
// Failure policy — the heart of it: a reload that cannot produce a
// serving site (unlistable directory, or *every* activity quarantined)
// never replaces the last-known-good snapshot. The manager records the
// failure in the shared HealthTracker/ReloadMetrics, then retries with
// capped exponential backoff until content heals, at which point the next
// clean rebuild swaps in and /healthz returns to "ok".
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>

#include "pdcu/runtime/trace.hpp"
#include "pdcu/server/health.hpp"
#include "pdcu/server/server.hpp"
#include "pdcu/site/site.hpp"
#include "pdcu/support/expected.hpp"

namespace pdcu::obs {
class SpanRegistry;
}  // namespace pdcu::obs

namespace pdcu::server {

/// Fingerprint of a content directory's activities/*.md listing: file
/// paths, sizes, and mtimes (content bytes are not read — a change of
/// bytes without a change of size or mtime is not a thing editors do).
/// Error when the listing itself fails.
Expected<std::uint64_t> content_fingerprint(
    const std::filesystem::path& content_dir);

struct ReloadOptions {
  std::chrono::milliseconds poll_interval{500};
  std::chrono::milliseconds backoff_initial{1000};  ///< after first failure
  std::chrono::milliseconds backoff_max{30000};     ///< doubling caps here
};

class ReloadManager {
 public:
  /// What one poll step did (returned by check_once, mostly for tests).
  enum class Step {
    kIdle,      ///< fingerprint unchanged, nothing to do
    kBackoff,   ///< a change is pending but the failure backoff holds
    kReloaded,  ///< a new snapshot was swapped in
    kFailed,    ///< the reload failed; last-known-good keeps serving
  };

  /// `cache` is the BuildCache that produced the currently-served site
  /// (so the first reload is incremental) and `fingerprint` is the
  /// content fingerprint that site was built from. `server`, `health`,
  /// and `metrics` must outlive the manager.
  ReloadManager(std::filesystem::path content_dir, HttpServer& server,
                HealthTracker& health, ReloadMetrics& metrics,
                site::BuildCache cache, std::uint64_t fingerprint,
                ReloadOptions options = {}, rt::TraceLog* trace = nullptr);
  ~ReloadManager();  ///< stops the watch thread if running

  ReloadManager(const ReloadManager&) = delete;
  ReloadManager& operator=(const ReloadManager&) = delete;

  /// Span registry for reload-built sites and routers (site.* and
  /// search.build phase timings keep accumulating across reloads, and the
  /// swapped-in router keeps serving them on /metrics). Must outlive the
  /// manager. Call before start().
  void set_spans(obs::SpanRegistry* spans) { spans_ = spans; }

  /// Starts the background poll thread. Idempotent.
  void start();
  /// Stops and joins the poll thread. Idempotent.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// One poll step, run on the caller's thread. Exposed so tests can
  /// drive the reload loop deterministically (no sleeping, no thread).
  /// Not safe concurrently with a start()ed thread.
  Step check_once();

 private:
  Step attempt_reload(const Expected<std::uint64_t>& fingerprint);
  Step fail(const Error& error);

  std::filesystem::path content_dir_;
  HttpServer& server_;
  HealthTracker& health_;
  ReloadMetrics& metrics_;
  ReloadOptions options_;
  rt::TraceLog* trace_;
  obs::SpanRegistry* spans_ = nullptr;

  // Touched only from the polling thread (or check_once callers).
  site::BuildCache cache_;
  std::uint64_t last_fingerprint_;
  std::chrono::milliseconds backoff_{0};
  std::optional<std::chrono::steady_clock::time_point> next_attempt_;
  bool last_failed_ = false;

  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace pdcu::server
