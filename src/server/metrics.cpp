#include "pdcu/server/metrics.hpp"

#include <cstdio>
#include <functional>

namespace pdcu::server {

namespace {

/// CAS loop for atomic min/max (no fetch_min/fetch_max until C++26).
template <typename Compare>
void update_extreme(std::atomic<std::uint64_t>& extreme, std::uint64_t value,
                    Compare better) {
  std::uint64_t current = extreme.load(std::memory_order_relaxed);
  while (better(value, current) &&
         !extreme.compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace

void ServerMetrics::record(int status, std::size_t bytes_sent,
                           std::chrono::microseconds latency) {
  const int status_class = status / 100;
  if (status_class >= 1 && status_class <= 5) {
    by_class_[static_cast<std::size_t>(status_class - 1)].fetch_add(
        1, std::memory_order_relaxed);
  }
  total_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes_sent, std::memory_order_relaxed);
  const auto us = static_cast<std::uint64_t>(latency.count());
  latency_total_us_.fetch_add(us, std::memory_order_relaxed);
  update_extreme(latency_min_us_, us, std::less<>{});
  update_extreme(latency_max_us_, us, std::greater<>{});
}

std::uint64_t ServerMetrics::requests_total() const {
  return total_.load(std::memory_order_relaxed);
}

std::uint64_t ServerMetrics::requests_by_class(int status_class) const {
  if (status_class < 1 || status_class > 5) return 0;
  return by_class_[static_cast<std::size_t>(status_class - 1)].load(
      std::memory_order_relaxed);
}

std::uint64_t ServerMetrics::bytes_sent_total() const {
  return bytes_.load(std::memory_order_relaxed);
}

std::uint64_t ServerMetrics::latency_min_us() const {
  const std::uint64_t min = latency_min_us_.load(std::memory_order_relaxed);
  return min == UINT64_MAX ? 0 : min;
}

std::uint64_t ServerMetrics::latency_max_us() const {
  return latency_max_us_.load(std::memory_order_relaxed);
}

double ServerMetrics::latency_mean_us() const {
  const std::uint64_t n = requests_total();
  if (n == 0) return 0.0;
  return static_cast<double>(
             latency_total_us_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

std::string ServerMetrics::render_text() const {
  std::string out;
  out += "pdcu_requests_total " + std::to_string(requests_total()) + "\n";
  for (int status_class = 1; status_class <= 5; ++status_class) {
    out += "pdcu_requests{class=\"" + std::to_string(status_class) +
           "xx\"} " + std::to_string(requests_by_class(status_class)) + "\n";
  }
  out += "pdcu_bytes_sent_total " + std::to_string(bytes_sent_total()) + "\n";
  out += "pdcu_latency_us{stat=\"min\"} " +
         std::to_string(latency_min_us()) + "\n";
  char mean[32];
  std::snprintf(mean, sizeof mean, "%.1f", latency_mean_us());
  out += "pdcu_latency_us{stat=\"mean\"} " + std::string(mean) + "\n";
  out += "pdcu_latency_us{stat=\"max\"} " +
         std::to_string(latency_max_us()) + "\n";
  return out;
}

}  // namespace pdcu::server
