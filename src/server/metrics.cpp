#include "pdcu/server/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "pdcu/obs/span.hpp"
#include "pdcu/support/strings.hpp"

namespace pdcu::server {

namespace {

/// CAS loop for atomic min/max (no fetch_min/fetch_max until C++26).
template <typename Compare>
void update_extreme(std::atomic<std::uint64_t>& extreme, std::uint64_t value,
                    Compare better) {
  std::uint64_t current = extreme.load(std::memory_order_relaxed);
  while (better(value, current) &&
         !extreme.compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

constexpr std::array<std::string_view, kRouteCount> kRouteLabels = {
    "page", "catalog", "activity", "search", "healthz", "metrics", "other"};

constexpr std::array<std::string_view, 5> kClassLabels = {"1xx", "2xx", "3xx",
                                                          "4xx", "5xx"};

}  // namespace

std::string_view route_label(Route route) {
  return kRouteLabels[static_cast<std::size_t>(route)];
}

Route route_for_path(std::string_view path) {
  if (path == "/healthz") return Route::kHealthz;
  if (path == "/metrics") return Route::kMetrics;
  if (path == "/api/search") return Route::kSearch;
  if (path == "/api/catalog.json") return Route::kCatalog;
  if (strings::starts_with(path, "/api/activities/")) return Route::kActivity;
  return Route::kPage;
}

void ServerMetrics::record(Route route, int status, std::size_t bytes_sent,
                           std::chrono::microseconds latency) {
  const int status_class = status / 100;
  PerRoute& slot = per_route_[static_cast<std::size_t>(route)];
  if (status_class >= 1 && status_class <= 5) {
    const auto index = static_cast<std::size_t>(status_class - 1);
    by_class_[index].fetch_add(1, std::memory_order_relaxed);
    slot.by_class[index].fetch_add(1, std::memory_order_relaxed);
  }
  total_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes_sent, std::memory_order_relaxed);
  const auto us = static_cast<std::uint64_t>(latency.count());
  slot.latency.record(us);
  update_extreme(latency_min_us_, us, std::less<>{});
  update_extreme(latency_max_us_, us, std::greater<>{});
  // The sum is published last, with release: a reader that acquires the
  // sum therefore sees the count/min/max updates of every request the sum
  // includes (see latency_stats()).
  latency_total_us_.fetch_add(us, std::memory_order_release);
}

std::uint64_t ServerMetrics::requests_total() const {
  return total_.load(std::memory_order_relaxed);
}

std::uint64_t ServerMetrics::requests_by_class(int status_class) const {
  if (status_class < 1 || status_class > 5) return 0;
  return by_class_[static_cast<std::size_t>(status_class - 1)].load(
      std::memory_order_relaxed);
}

std::uint64_t ServerMetrics::requests_by_route(Route route,
                                               int status_class) const {
  if (status_class < 1 || status_class > 5) return 0;
  return per_route_[static_cast<std::size_t>(route)]
      .by_class[static_cast<std::size_t>(status_class - 1)]
      .load(std::memory_order_relaxed);
}

std::uint64_t ServerMetrics::bytes_sent_total() const {
  return bytes_.load(std::memory_order_relaxed);
}

ServerMetrics::LatencyStats ServerMetrics::latency_stats() const {
  LatencyStats stats;
  // One snapshot, sum first: the acquire pairs with record()'s release so
  // the count read next covers at least every request in the sum, keeping
  // the derived mean inside [min, max] even mid-record.
  stats.sum_us = latency_total_us_.load(std::memory_order_acquire);
  stats.count = total_.load(std::memory_order_relaxed);
  const std::uint64_t min = latency_min_us_.load(std::memory_order_relaxed);
  stats.min_us = min == UINT64_MAX ? 0 : min;
  stats.max_us = latency_max_us_.load(std::memory_order_relaxed);
  if (stats.count == 0) return stats;
  stats.mean_us = static_cast<double>(stats.sum_us) /
                  static_cast<double>(stats.count);
  // Belt and braces: a request counted but not yet summed can still drag
  // the quotient below the true mean; clamp so the reported mean never
  // escapes the [min, max] envelope.
  stats.mean_us =
      std::min(std::max(stats.mean_us, static_cast<double>(stats.min_us)),
               static_cast<double>(stats.max_us));
  return stats;
}

std::string ServerMetrics::render_text() const {
  const LatencyStats latency = latency_stats();
  std::string out;

  out += "# HELP pdcu_requests_total Requests answered, including "
         "connection-level errors.\n";
  out += "# TYPE pdcu_requests_total counter\n";
  out += "pdcu_requests_total " + std::to_string(requests_total()) + "\n";

  out += "# HELP pdcu_requests_by_class_total Requests answered, by status "
         "class.\n";
  out += "# TYPE pdcu_requests_by_class_total counter\n";
  for (int status_class = 1; status_class <= 5; ++status_class) {
    out += "pdcu_requests_by_class_total{class=\"";
    out += kClassLabels[static_cast<std::size_t>(status_class - 1)];
    out += "\"} " + std::to_string(requests_by_class(status_class)) + "\n";
  }

  out += "# HELP pdcu_requests_by_route_total Requests answered, by route "
         "and status class.\n";
  out += "# TYPE pdcu_requests_by_route_total counter\n";
  for (std::size_t route = 0; route < kRouteCount; ++route) {
    for (std::size_t cls = 0; cls < 5; ++cls) {
      out += "pdcu_requests_by_route_total{route=\"";
      out += kRouteLabels[route];
      out += "\",class=\"";
      out += kClassLabels[cls];
      out += "\"} ";
      out += std::to_string(
          per_route_[route].by_class[cls].load(std::memory_order_relaxed));
      out += '\n';
    }
  }

  out += "# HELP pdcu_bytes_sent_total Bytes written to client sockets.\n";
  out += "# TYPE pdcu_bytes_sent_total counter\n";
  out += "pdcu_bytes_sent_total " + std::to_string(bytes_sent_total()) + "\n";

  out += "# HELP pdcu_write_errors_total Responses lost to a failed socket "
         "write (EPIPE, ECONNRESET).\n";
  out += "# TYPE pdcu_write_errors_total counter\n";
  out += "pdcu_write_errors_total " + std::to_string(write_errors_total()) +
         "\n";

  out += "# HELP pdcu_latency_us Aggregate request latency in microseconds "
         "(min, mean, max over the server's lifetime).\n";
  out += "# TYPE pdcu_latency_us gauge\n";
  out += "pdcu_latency_us{stat=\"min\"} " + std::to_string(latency.min_us) +
         "\n";
  char mean[32];
  std::snprintf(mean, sizeof mean, "%.1f", latency.mean_us);
  out += "pdcu_latency_us{stat=\"mean\"} " + std::string(mean) + "\n";
  out += "pdcu_latency_us{stat=\"max\"} " + std::to_string(latency.max_us) +
         "\n";

  out += "# HELP pdcu_request_latency_us Request handling latency in "
         "microseconds, by route.\n";
  out += "# TYPE pdcu_request_latency_us histogram\n";
  for (std::size_t route = 0; route < kRouteCount; ++route) {
    std::string labels = "route=\"";
    labels += kRouteLabels[route];
    labels += '"';
    obs::append_histogram_series("pdcu_request_latency_us", labels,
                                 per_route_[route].latency.snapshot(), out);
  }

  if (obs::legacy_names()) {
    // Pre-rename families, kept one release for scrape-config migration.
    // Deliberately un-TYPEd, exactly as they shipped; drop together with
    // obs::legacy_names.
    for (int status_class = 1; status_class <= 5; ++status_class) {
      out += "pdcu_requests{class=\"" + std::to_string(status_class) +
             "xx\"} " + std::to_string(requests_by_class(status_class)) +
             "\n";
    }
  }
  return out;
}

}  // namespace pdcu::server
