#include "pdcu/server/query_cache.hpp"

#include <utility>

namespace pdcu::server {

QueryCache::QueryCache(QueryCache&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mutex_);
  capacity_ = other.capacity_;
  lru_ = std::move(other.lru_);
  by_key_ = std::move(other.by_key_);
  hits_ = other.hits_;
  misses_ = other.misses_;
  evictions_ = other.evictions_;
}

QueryCache& QueryCache::operator=(QueryCache&& other) noexcept {
  if (this != &other) {
    std::scoped_lock lock(mutex_, other.mutex_);
    capacity_ = other.capacity_;
    lru_ = std::move(other.lru_);
    by_key_ = std::move(other.by_key_);
    hits_ = other.hits_;
    misses_ = other.misses_;
    evictions_ = other.evictions_;
  }
  return *this;
}

std::optional<std::string> QueryCache::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->value;
}

void QueryCache::put(const std::string& key, std::string value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    it->second->value = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front({key, std::move(value)});
  by_key_.emplace(key, lru_.begin());
  if (lru_.size() > capacity_) {
    by_key_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

std::uint64_t QueryCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t QueryCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t QueryCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::size_t QueryCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

}  // namespace pdcu::server
