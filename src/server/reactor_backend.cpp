#include "pdcu/server/reactor_backend.hpp"

#include <chrono>
#include <string_view>
#include <utility>

#include "pdcu/obs/access_log.hpp"
#include "pdcu/server/http.hpp"
#include "pdcu/server/server.hpp"

namespace pdcu::server {

namespace {

// The Connection header is the only part of a cached answer that varies
// per request, so it travels as the writev middle segment; both variants
// are static and the blank line ending the head rides along.
constexpr std::string_view kKeepAliveTail = "Connection: keep-alive\r\n\r\n";
constexpr std::string_view kCloseTail = "Connection: close\r\n\r\n";

class ReactorHandler final : public net::Handler {
 public:
  ReactorHandler(const ServerOptions& options, ServerMetrics& metrics,
                 std::function<std::shared_ptr<const Router>()> router)
      : options_(options), metrics_(metrics), router_(std::move(router)) {}

  net::Step on_data(std::string_view buffer, bool force_close,
                    net::WireResponse& out) override {
    ParseResult parsed = parse_request(buffer, options_.max_request_bytes);
    if (parsed.status == ParseStatus::kIncomplete) {
      return {net::StepStatus::kNeedMore, 0};
    }
    if (parsed.status == ParseStatus::kBad ||
        parsed.status == ParseStatus::kTooLarge) {
      const int status = parsed.status == ParseStatus::kBad ? 400 : 431;
      out.owned_head = serialize(error_response(status));
      out.head = out.owned_head;
      out.close = true;
      out.status = status;
      metrics_.record(Route::kOther, status, out.owned_head.size(),
                      std::chrono::microseconds{0});
      // Nothing consumed: the buffer is poisoned and the connection is
      // closing; there is no next request to find in it.
      return {net::StepStatus::kRespond, 0};
    }

    const auto handle_start = std::chrono::steady_clock::now();
    // One snapshot per request, exactly like the pool backend: a reload
    // that lands mid-request swaps the next request onto the new site.
    std::shared_ptr<const Router> snapshot = router_();

    // A request body would poison keep-alive framing (bodies are never
    // routed), so answer and close rather than misread body bytes as the
    // next request head.
    const std::string* content_length =
        parsed.request.header("content-length");
    const bool has_body = content_length != nullptr && *content_length != "0";
    const bool close_after =
        !parsed.request.keep_alive() || has_body || force_close;
    const bool head_only = parsed.request.method == "HEAD";

    int status = 0;
    if (const auto fast = snapshot->try_fast(parsed.request)) {
      out.head = fast->head;
      out.tail = close_after ? kCloseTail : kKeepAliveTail;
      out.body = fast->body;
      out.guard = std::move(snapshot);  // keeps the views alive to last byte
      status = fast->status;
    } else {
      Response response = snapshot->handle(parsed.request);
      response.set("Connection", close_after ? "close" : "keep-alive");
      out.owned_head = serialize(response, head_only);
      out.head = out.owned_head;
      status = response.status;
    }
    out.close = close_after;
    out.status = status;

    const Route route = route_for_path(parsed.request.path());
    const auto latency = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - handle_start);
    metrics_.record(route, status, out.wire_bytes(), latency);
    if (options_.access_log != nullptr) {
      obs::AccessEntry entry;
      entry.time = std::chrono::system_clock::now();
      entry.method = parsed.request.method;
      entry.target = parsed.request.target;
      entry.status = status;
      entry.bytes = out.wire_bytes();
      entry.latency_us = static_cast<std::uint64_t>(latency.count());
      entry.route = std::string(route_label(route));
      options_.access_log->log(std::move(entry));
    }
    return {net::StepStatus::kRespond, parsed.consumed};
  }

  std::string timeout_response() const override {
    return serialize(error_response(408));
  }

  std::string overload_response() const override {
    return serialize(error_response(503));
  }

  void on_connection_error(int status, std::size_t bytes) override {
    metrics_.record(Route::kOther, status, bytes,
                    std::chrono::microseconds{0});
  }

  void on_write_error() override { metrics_.record_write_error(); }

 private:
  const ServerOptions& options_;
  ServerMetrics& metrics_;
  std::function<std::shared_ptr<const Router>()> router_;
};

}  // namespace

std::unique_ptr<net::Handler> make_reactor_handler(
    const ServerOptions& options, ServerMetrics& metrics,
    std::function<std::shared_ptr<const Router>()> router) {
  return std::make_unique<ReactorHandler>(options, metrics,
                                          std::move(router));
}

}  // namespace pdcu::server
