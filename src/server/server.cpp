#include "pdcu/server/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>

#include "pdcu/obs/access_log.hpp"
#include "pdcu/server/reactor_backend.hpp"

namespace pdcu::server {

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

extern "C" void on_stop_signal(int) { g_stop_requested = 1; }

/// Writes all of `data`, riding out EINTR and short writes uniformly (a
/// short send is just a smaller next iteration, never an error). A hard
/// failure — EPIPE or ECONNRESET from a peer that hung up mid-response —
/// is counted into pdcu_write_errors_total so dead-peer writes are
/// observable instead of silently folded into "sent".
bool send_all(int fd, std::string_view data, ServerMetrics* metrics) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (metrics != nullptr) metrics->record_write_error();
      return false;
    }
    if (n == 0) {  // should not happen on a stream socket; treat as dead
      if (metrics != nullptr) metrics->record_write_error();
      return false;
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// Canned close-the-connection error answer (400/408/431/503) on the wire.
std::string error_wire(int status) { return serialize(error_response(status)); }

}  // namespace

HttpServer::HttpServer(Router router, ServerOptions options,
                       rt::TraceLog* trace)
    : options_(std::move(options)), trace_(trace) {
  swap_router(std::move(router));
}

void HttpServer::swap_router(Router router) {
  // Wire the server's counters in before the snapshot becomes visible to
  // any request thread; once published the Router is only ever read
  // (handle() is const), so requests never contend beyond the pointer
  // copy in router().
  router.set_metrics(&metrics_);
  if (options_.backend == Backend::kReactor) {
    router.set_net_metrics(&net_metrics_);
  }
  auto snapshot = std::make_shared<const Router>(std::move(router));
  std::lock_guard lock(router_mutex_);
  router_ = std::move(snapshot);
}

HttpServer::~HttpServer() { stop(); }

Status HttpServer::start() {
  if (running_.load()) {
    return Error::make("server.start", "server is already running");
  }
  if (options_.backend == Backend::kReactor) return start_reactor();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Error::make("server.socket", std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error::make("server.host", "not an IPv4 address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof address) != 0) {
    const Error error = Error::make("server.bind", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return error;
  }
  if (::listen(listen_fd_, 128) != 0) {
    const Error error = Error::make("server.listen", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return error;
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  bound_port_ = ntohs(bound.sin_port);

  if (options_.threads == 0) {
    pool_ = &rt::default_pool();
  } else {
    owned_pool_ = std::make_unique<rt::ThreadPool>(options_.threads);
    pool_ = owned_pool_.get();
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });

  if (trace_ != nullptr) {
    const std::shared_ptr<const Router> snapshot = router();
    trace_->narrate("server: listening on " + options_.host + ":" +
                    std::to_string(bound_port_) + " with " +
                    std::to_string(pool_->size()) + " workers, " +
                    std::to_string(snapshot->cache().size()) +
                    " cached pages (" +
                    std::to_string(snapshot->cache().total_bytes()) +
                    " bytes)");
  }
  return Status::ok();
}

Status HttpServer::start_reactor() {
  reactor_handler_ = make_reactor_handler(options_, metrics_,
                                          [this] { return router(); });
  net::ReactorOptions net_options;
  net_options.host = options_.host;
  net_options.port = options_.port;
  net_options.shards = options_.net_shards == 0 ? 1 : options_.net_shards;
  net_options.max_connections = options_.max_connections;
  net_options.read_timeout = options_.read_timeout;
  net_options.max_requests_per_connection =
      options_.max_requests_per_connection;
  net_options.drain_timeout = options_.drain_timeout;
  // The net-layer buffer cap is a backstop behind the handler's 431
  // (which fires at max_request_bytes); keep it comfortably above so the
  // polite response always wins over a silent close.
  net_options.max_buffer_bytes =
      std::max<std::size_t>(options_.max_request_bytes * 2, 64 * 1024);
  net_options.metrics = &net_metrics_;
  reactor_ =
      std::make_unique<net::ReactorServer>(net_options, *reactor_handler_);
  if (const Status status = reactor_->start(); !status) {
    reactor_.reset();
    reactor_handler_.reset();
    return status;
  }
  bound_port_ = reactor_->port();
  running_.store(true, std::memory_order_release);

  if (trace_ != nullptr) {
    const std::shared_ptr<const Router> snapshot = router();
    trace_->narrate("server: listening on " + options_.host + ":" +
                    std::to_string(bound_port_) + " with " +
                    std::to_string(net_options.shards) +
                    " reactor shards, " +
                    std::to_string(snapshot->cache().size()) +
                    " cached pages (" +
                    std::to_string(snapshot->cache().total_bytes()) +
                    " bytes)");
  }
  return Status::ok();
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  if (reactor_ != nullptr) {
    reactor_->stop();  // graceful drain, then joins the shard threads
    reactor_.reset();
    reactor_handler_.reset();
    if (trace_ != nullptr) {
      trace_->narrate("server: stopped after " +
                      std::to_string(metrics_.requests_total()) +
                      " requests (" +
                      std::to_string(metrics_.bytes_sent_total()) +
                      " bytes sent)");
    }
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drain in-flight connections. The pool may be the shared default pool,
  // so it cannot be torn down to force the drain; handle_connection exits
  // promptly once running_ is false, and the counter reaches zero only
  // after every submitted connection task has finished.
  while (active_connections_.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  owned_pool_.reset();
  pool_ = nullptr;
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (trace_ != nullptr) {
    trace_->narrate("server: stopped after " +
                    std::to_string(metrics_.requests_total()) + " requests (" +
                    std::to_string(metrics_.bytes_sent_total()) +
                    " bytes sent)");
  }
}

void HttpServer::request_stop() { g_stop_requested = 1; }

void HttpServer::run_until_signalled() {
  g_stop_requested = 0;
  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);
  while (running_.load(std::memory_order_acquire) && g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  if (trace_ != nullptr && g_stop_requested != 0) {
    trace_->narrate("server: received shutdown signal");
  }
  stop();
}

void HttpServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd waiter{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&waiter, 1, 100);
    if (!running_.load(std::memory_order_acquire)) break;
    if (ready <= 0) continue;

    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      const std::string wire = error_wire(503);
      send_all(fd, wire, &metrics_);
      metrics_.record(Route::kOther, 503, wire.size(),
                      std::chrono::microseconds{0});
      ::close(fd);
      continue;
    }

    active_connections_.fetch_add(1, std::memory_order_relaxed);
    pool_->submit([this, fd] {
      handle_connection(fd);
      // Release pairs with the acquire drain loop in stop(): once the
      // counter reads zero there, every connection's effects are visible.
      active_connections_.fetch_sub(1, std::memory_order_release);
    });
  }
}

void HttpServer::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  unsigned served = 0;
  bool open = true;

  while (open && running_.load(std::memory_order_acquire)) {
    // Read one request head, polling in short slices so the per-request
    // read timeout is enforced and stop() is noticed promptly.
    ParseResult parsed = parse_request(buffer, options_.max_request_bytes);
    const auto deadline =
        std::chrono::steady_clock::now() + options_.read_timeout;
    while (parsed.status == ParseStatus::kIncomplete) {
      if (!running_.load(std::memory_order_acquire)) {
        open = false;
        break;
      }
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline -
                                     std::chrono::steady_clock::now());
      if (remaining.count() <= 0) {
        // The peer started a request but never finished it.
        if (!buffer.empty()) {
          const std::string wire = error_wire(408);
          send_all(fd, wire, &metrics_);
          metrics_.record(Route::kOther, 408, wire.size(),
                          std::chrono::microseconds{0});
        }
        open = false;
        break;
      }
      pollfd waiter{fd, POLLIN, 0};
      const int slice =
          static_cast<int>(std::min<std::int64_t>(remaining.count(), 100));
      const int ready = ::poll(&waiter, 1, slice);
      if (ready < 0 && errno != EINTR) {
        open = false;
        break;
      }
      if (ready <= 0) continue;
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) {  // peer closed (or hard error) mid-request
        open = false;
        break;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      parsed = parse_request(buffer, options_.max_request_bytes);
    }
    if (!open) break;

    if (parsed.status == ParseStatus::kBad ||
        parsed.status == ParseStatus::kTooLarge) {
      const int status = parsed.status == ParseStatus::kBad ? 400 : 431;
      const std::string wire = error_wire(status);
      send_all(fd, wire, &metrics_);
      metrics_.record(Route::kOther, status, wire.size(),
                      std::chrono::microseconds{0});
      break;
    }

    const auto handle_start = std::chrono::steady_clock::now();
    // One snapshot per request: a reload that lands mid-request swaps the
    // next request onto the new site, never this one mid-flight.
    const std::shared_ptr<const Router> snapshot = router();
    Response response = snapshot->handle(parsed.request);
    ++served;

    // Request bodies are never routed, so a request that carries one
    // (unexpected for GET/HEAD) poisons keep-alive framing: answer, then
    // close instead of misreading body bytes as the next request.
    const std::string* content_length =
        parsed.request.header("content-length");
    const bool has_body =
        content_length != nullptr && *content_length != "0";
    const bool close_after =
        !parsed.request.keep_alive() || has_body ||
        served >= options_.max_requests_per_connection ||
        !running_.load(std::memory_order_acquire);
    response.set("Connection", close_after ? "close" : "keep-alive");

    const std::string wire =
        serialize(response, parsed.request.method == "HEAD");
    open = send_all(fd, wire, &metrics_) && !close_after;
    const Route route = route_for_path(parsed.request.path());
    const auto latency =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - handle_start);
    metrics_.record(route, response.status, wire.size(), latency);
    if (options_.access_log != nullptr) {
      obs::AccessEntry entry;
      entry.time = std::chrono::system_clock::now();
      entry.method = parsed.request.method;
      entry.target = parsed.request.target;
      entry.status = response.status;
      entry.bytes = wire.size();
      entry.latency_us = static_cast<std::uint64_t>(latency.count());
      entry.route = std::string(route_label(route));
      options_.access_log->log(std::move(entry));
    }
    buffer.erase(0, parsed.consumed);
  }
  ::close(fd);
}

}  // namespace pdcu::server
