#include "pdcu/curriculum/terms.hpp"

#include <algorithm>

namespace pdcu::cur {

namespace {
bool contains(const std::vector<std::string>& v, std::string_view term) {
  return std::any_of(v.begin(), v.end(),
                     [&](const std::string& s) { return s == term; });
}
}  // namespace

const std::vector<std::string>& course_terms() {
  static const std::vector<std::string> kTerms = {"K_12", "CS0", "CS1",
                                                  "CS2",  "DSA", "Systems"};
  return kTerms;
}

const std::vector<std::string>& sense_terms() {
  static const std::vector<std::string> kTerms = {
      "visual", "touch", "movement", "sound", "accessible"};
  return kTerms;
}

const std::vector<std::string>& medium_terms() {
  static const std::vector<std::string> kTerms = {
      "analogy", "role-play", "game",  "paper", "board",
      "cards",   "pens",      "coins", "food",  "instruments"};
  return kTerms;
}

bool is_course_term(std::string_view term) {
  return contains(course_terms(), term);
}
bool is_sense_term(std::string_view term) {
  return contains(sense_terms(), term);
}
bool is_medium_term(std::string_view term) {
  return contains(medium_terms(), term);
}

std::string course_display_name(std::string_view term) {
  if (term == "K_12") return "K-12";
  return std::string(term);
}

}  // namespace pdcu::cur
