#include "pdcu/curriculum/cs2013.hpp"

#include <cctype>

namespace pdcu::cur {

std::vector<std::string> KnowledgeUnit::all_detail_terms() const {
  std::vector<std::string> out;
  out.reserve(outcomes.size());
  for (const auto& lo : outcomes) out.push_back(detail_term(lo.number));
  return out;
}

namespace {

KnowledgeUnit make_unit(std::string abbrev, std::string term,
                        std::string name, bool elective,
                        std::vector<std::pair<std::string, Tier>> outcomes) {
  KnowledgeUnit unit;
  unit.abbrev = std::move(abbrev);
  unit.term = std::move(term);
  unit.name = std::move(name);
  unit.elective = elective;
  int n = 1;
  for (auto& [text, tier] : outcomes) {
    unit.outcomes.push_back(LearningOutcome{n++, std::move(text), tier});
  }
  return unit;
}

}  // namespace

Cs2013Catalog::Cs2013Catalog() {
  using T = Tier;
  // 1. Parallelism Fundamentals — 3 outcomes (Table I row 1).
  units_.push_back(make_unit(
      "PF", "PD_ParallelFundamentals", "Parallel Fundamentals", false,
      {{"Distinguish using computational resources for a faster answer from "
        "managing efficient access to a shared resource.",
        T::kTier1},
       {"Distinguish multiple sufficient programming constructs for "
        "synchronization that may be inter-implementable but have "
        "complementary advantages.",
        T::kTier1},
       {"Distinguish data races from higher level races.", T::kTier1}}));

  // 2. Parallel Decomposition — 6 outcomes.
  units_.push_back(make_unit(
      "PD", "PD_ParallelDecomposition", "Parallel Decomposition", false,
      {{"Explain why synchronization is necessary in a specific parallel "
        "program.",
        T::kTier1},
       {"Identify opportunities to partition a serial program into "
        "independent parallel modules.",
        T::kTier1},
       {"Write a correct and scalable parallel algorithm.", T::kTier2},
       {"Parallelize an algorithm by applying task-based decomposition.",
        T::kTier2},
       {"Parallelize an algorithm by applying data-parallel decomposition.",
        T::kTier2},
       {"Write a program using actors and/or reactive processes.",
        T::kTier2}}));

  // 3. Communication and Coordination — 12 outcomes.
  units_.push_back(make_unit(
      "PCC", "PD_CommunicationCoordination",
      "Parallel Communication and Coordination", false,
      {{"Use mutual exclusion to avoid a given race condition.", T::kTier1},
       {"Give an example of an ordering of accesses among concurrent "
        "activities that is not sequentially consistent.",
        T::kTier1},
       {"Give an example of a scenario in which blocking message sends can "
        "deadlock.",
        T::kTier2},
       {"Explain when and why multicast or event-based messaging can be "
        "preferable to alternatives.",
        T::kTier2},
       {"Write a program that correctly terminates when all of a set of "
        "concurrent tasks have completed.",
        T::kTier2},
       {"Give an example of a scenario in which an attempted optimistic "
        "update may never complete.",
        T::kTier2},
       {"Use semaphores or condition variables to block threads until a "
        "necessary precondition holds.",
        T::kTier2},
       {"Explain the differences between shared and distributed memory "
        "communication styles.",
        T::kElective},
       {"Describe the general structure of consensus algorithms and their "
        "uses.",
        T::kElective},
       {"Explain why no deterministic algorithm can reach consensus in an "
        "asynchronous setting with failures.",
        T::kElective},
       {"Describe how message passing middleware provides delivery "
        "guarantees.",
        T::kElective},
       {"Explain the tradeoff between latency and bandwidth in "
        "communication-intensive programs.",
        T::kElective}}));

  // 4. Parallel Algorithms, Analysis, and Programming — 11 outcomes.
  units_.push_back(make_unit(
      "PAAP", "PD_ParallelAlgorithms",
      "Parallel Algorithms, Analysis, and Programming", false,
      {{"Define 'critical path', 'work', and 'span'.", T::kTier1},
       {"Compute the work and span, and determine the critical path with "
        "respect to a parallel execution diagram.",
        T::kTier1},
       {"Define 'speed-up' and explain the notion of an algorithm's "
        "scalability in this regard.",
        T::kTier2},
       {"Identify independent tasks in a program that may be parallelized.",
        T::kTier2},
       {"Characterize features of a workload that allow or prevent it from "
        "being naturally parallelized.",
        T::kTier2},
       {"Implement a parallel divide-and-conquer or graph algorithm and "
        "empirically measure its performance relative to its sequential "
        "analog.",
        T::kTier2},
       {"Decompose a problem via map and reduce operations.", T::kTier2},
       {"Provide an example of a problem that fits the producer-consumer "
        "paradigm.",
        T::kElective},
       {"Give examples of problems where pipelining would be an effective "
        "means of parallelization.",
        T::kElective},
       {"Implement a parallel matrix algorithm.", T::kElective},
       {"Identify issues that arise in producer-consumer algorithms and "
        "mechanisms that may be used for addressing them.",
        T::kElective}}));

  // 5. Parallel Architecture — 8 outcomes.
  units_.push_back(make_unit(
      "PA", "PD_ParallelArchitecture", "Parallel Architecture", false,
      {{"Explain the differences between shared and distributed memory.",
        T::kTier1},
       {"Describe the SMP architecture and note its key features.",
        T::kTier2},
       {"Characterize the kinds of tasks that are a natural match for SIMD "
        "machines.",
        T::kTier2},
       {"Describe the advantages and limitations of GPUs vs. CPUs.",
        T::kElective},
       {"Explain the features of each classification in Flynn's taxonomy.",
        T::kElective},
       {"Describe classic multicore cache-coherence challenges such as "
        "false sharing.",
        T::kElective},
       {"Describe the challenges in maintaining cache coherence.",
        T::kElective},
       {"Describe the key performance challenges in different memory and "
        "distributed system topologies.",
        T::kElective}}));

  // 6. Parallel Performance (elective) — 7 outcomes.
  units_.push_back(make_unit(
      "PP", "PD_ParallelPerformance", "Parallel Performance", true,
      {{"Detect and correct a load imbalance.", T::kElective},
       {"Calculate the implications of Amdahl's law for a particular "
        "parallel algorithm.",
        T::kElective},
       {"Describe how data distribution/layout can affect an algorithm's "
        "communication costs.",
        T::kElective},
       {"Detect and correct an instance of false sharing.", T::kElective},
       {"Explain the impact of scheduling on parallel performance.",
        T::kElective},
       {"Explain performance impacts of data locality.", T::kElective},
       {"Explain the impact and tradeoff related to power usage on parallel "
        "performance.",
        T::kElective}}));

  // 7. Distributed Systems (elective) — 9 outcomes.
  units_.push_back(make_unit(
      "DS", "PD_DistributedSystems", "Distributed Systems", true,
      {{"Distinguish network faults from other kinds of failures.",
        T::kElective},
       {"Explain why synchronization constructs such as simple locks are "
        "not useful in the presence of distributed faults.",
        T::kElective},
       {"Write a program that performs any required marshaling and "
        "conversion into message units to communicate with another process.",
        T::kElective},
       {"Measure the observed throughput and response latency across hosts "
        "in a given network.",
        T::kElective},
       {"Explain why no distributed system can be simultaneously consistent, "
        "available, and partition tolerant.",
        T::kElective},
       {"Implement a simple server and a client that interacts with it.",
        T::kElective},
       {"Give examples of problems for which consensus algorithms such as "
        "leader election are required.",
        T::kElective},
       {"Implement a distributed-system design using a reliable messaging "
        "library.",
        T::kElective},
       {"Describe the relationship between consistency models and the "
        "guarantees they provide.",
        T::kElective}}));

  // 8. Cloud Computing (elective) — 5 outcomes.
  units_.push_back(make_unit(
      "CC", "PD_CloudComputing", "Cloud Computing", true,
      {{"Discuss the importance of elasticity and resource management in "
        "cloud computing.",
        T::kElective},
       {"Explain strategies to synchronize a common view of shared data "
        "across a collection of devices.",
        T::kElective},
       {"Explain the advantages and disadvantages of using virtualized "
        "infrastructure.",
        T::kElective},
       {"Deploy an application that uses cloud infrastructure for computing "
        "or data resources.",
        T::kElective},
       {"Appropriately partition an application between a client and "
        "resources provided by a cloud service.",
        T::kElective}}));

  // 9. Formal Models and Semantics (elective) — 6 outcomes.
  units_.push_back(make_unit(
      "FM", "PD_FormalModels", "Formal Models and Semantics", true,
      {{"Model a concurrent process using a formal model such as pi-calculus "
        "or a transition system.",
        T::kElective},
       {"Explain the difference between safety properties and liveness "
        "properties, giving an invariant for a concurrent algorithm.",
        T::kElective},
       {"Use a model to show that a concurrent algorithm is free of a given "
        "defect such as deadlock.",
        T::kElective},
       {"Explain the semantics of conflict, enabling, and scheduling in a "
        "formal model of concurrency.",
        T::kElective},
       {"State and prove correctness properties of a concurrent algorithm "
        "using assertional reasoning.",
        T::kElective},
       {"Describe how a formal memory model constrains compiler and "
        "hardware reordering.",
        T::kElective}}));
}

const Cs2013Catalog& Cs2013Catalog::instance() {
  static const Cs2013Catalog catalog;
  return catalog;
}

const KnowledgeUnit* Cs2013Catalog::find_by_term(std::string_view term) const {
  for (const auto& unit : units_) {
    if (unit.term == term) return &unit;
  }
  return nullptr;
}

const KnowledgeUnit* Cs2013Catalog::find_by_abbrev(
    std::string_view abbrev) const {
  for (const auto& unit : units_) {
    if (unit.abbrev == abbrev) return &unit;
  }
  return nullptr;
}

std::optional<Cs2013Catalog::OutcomeRef> Cs2013Catalog::resolve_detail_term(
    std::string_view term) const {
  std::size_t underscore = term.rfind('_');
  if (underscore == std::string_view::npos) return std::nullopt;
  std::string_view prefix = term.substr(0, underscore);
  std::string_view digits = term.substr(underscore + 1);
  if (digits.empty()) return std::nullopt;
  int number = 0;
  for (char c : digits) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    number = number * 10 + (c - '0');
  }
  const KnowledgeUnit* unit = find_by_abbrev(prefix);
  if (unit == nullptr) return std::nullopt;
  for (const auto& outcome : unit->outcomes) {
    if (outcome.number == number) return OutcomeRef{unit, &outcome};
  }
  return std::nullopt;
}

std::size_t Cs2013Catalog::total_outcomes() const {
  std::size_t n = 0;
  for (const auto& unit : units_) n += unit.outcomes.size();
  return n;
}

}  // namespace pdcu::cur
