// Machine-readable catalog of the CS2013 "Parallel and Distributed
// Computing" (PD) knowledge area.
//
// Knowledge-unit names, elective flags, and learning-outcome counts
// (3/6/12/11/8/7/9/5/6) are taken from the paper's Table I; outcome texts
// are reconstructed from the CS2013 curriculum guidelines. The catalog is
// the denominator side of Table I: the curation provides the numerators.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pdcu::cur {

/// CS2013 outcome tiers (Tier1 required, Tier2 80%+, Elective significant).
enum class Tier { kTier1, kTier2, kElective };

/// One learning outcome within a knowledge unit.
struct LearningOutcome {
  int number = 0;      ///< 1-based position within the unit
  std::string text;    ///< outcome statement
  Tier tier = Tier::kTier1;
};

/// One knowledge unit of the PD knowledge area.
struct KnowledgeUnit {
  std::string abbrev;  ///< detail-term prefix, e.g. "PF", "PD", "PCC"
  std::string term;    ///< cs2013 taxonomy term, e.g. "PD_ParallelDecomposition"
  std::string name;    ///< display name, e.g. "Parallel Decomposition"
  bool elective = false;
  std::vector<LearningOutcome> outcomes;

  /// Detail-taxonomy term for outcome n, e.g. "PD_3" (§II.B of the paper).
  std::string detail_term(int outcome_number) const {
    return abbrev + "_" + std::to_string(outcome_number);
  }

  /// All detail terms for this unit, in outcome order.
  std::vector<std::string> all_detail_terms() const;
};

/// The full PD knowledge area.
class Cs2013Catalog {
 public:
  /// The singleton catalog (immutable after construction).
  static const Cs2013Catalog& instance();

  const std::vector<KnowledgeUnit>& units() const { return units_; }

  const KnowledgeUnit* find_by_term(std::string_view term) const;
  const KnowledgeUnit* find_by_abbrev(std::string_view abbrev) const;

  /// Parses a detail term like "PCC_4" into (unit, outcome); nullopt when
  /// the prefix or the outcome number is unknown.
  struct OutcomeRef {
    const KnowledgeUnit* unit;
    const LearningOutcome* outcome;
  };
  std::optional<OutcomeRef> resolve_detail_term(std::string_view term) const;

  /// Total learning outcomes across all units (67 in this catalog).
  std::size_t total_outcomes() const;

 private:
  Cs2013Catalog();
  std::vector<KnowledgeUnit> units_;
};

}  // namespace pdcu::cur
