// Controlled vocabularies for the courses, senses, and medium taxonomies
// (§II.B of the paper), plus validation helpers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pdcu::cur {

/// Course terms: K-12 activities use "K_12"; college courses have their own
/// terms. Order matches the paper's §III.A reporting order.
const std::vector<std::string>& course_terms();

/// Sense terms engaged by an activity. "accessible" marks activities judged
/// presentable to a diverse range of populations with minimal modification.
const std::vector<std::string>& sense_terms();

/// Medium terms: communication medium used by the activity (hidden taxonomy).
const std::vector<std::string>& medium_terms();

bool is_course_term(std::string_view term);
bool is_sense_term(std::string_view term);
bool is_medium_term(std::string_view term);

/// Display names for course terms ("K_12" -> "K-12").
std::string course_display_name(std::string_view term);

}  // namespace pdcu::cur
