// Machine-readable catalog of the 2012 NSF/IEEE-TCPP PDC curriculum topics
// recommended for core courses (CS1, CS2, DSA, Systems).
//
// Topic-area names and core-topic counts (Architecture 22, Programming 37,
// Algorithms 26, Crosscutting 12) are taken from the paper's Table II; the
// sub-category structure follows §III.C (Architecture: Classes / Memory
// Hierarchy / Floating-Point Representation / Performance Metrics;
// Programming: Paradigms and Notations / Correctness / Performance;
// Algorithms: PD Models and Complexity / Algorithmic Paradigms / Algorithmic
// Problems). Topic wording is reconstructed from the TCPP 2012 report.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pdcu::cur {

/// Bloom classification used by the TCPP report and the tcppdetails
/// taxonomy: K = Know, C = Comprehend, A = Apply (§II.B).
enum class Bloom { kKnow, kComprehend, kApply };

/// The Bloom prefix letter used in tcppdetails terms ("C_Speedup").
char bloom_letter(Bloom bloom);

/// One TCPP topic recommended for core courses.
struct TcppTopic {
  std::string short_name;  ///< CamelCase id, unique, e.g. "Speedup"
  Bloom bloom = Bloom::kKnow;
  std::string description;
  std::vector<std::string> courses;  ///< recommended core courses

  /// tcppdetails taxonomy term, e.g. "C_Speedup".
  std::string term() const {
    return std::string(1, bloom_letter(bloom)) + "_" + short_name;
  }
};

/// A sub-category within a topic area (e.g. "Memory Hierarchy").
struct TcppCategory {
  std::string name;
  std::vector<TcppTopic> topics;
};

/// One of the four TCPP topic areas.
struct TcppArea {
  std::string term;  ///< tcpp taxonomy term, e.g. "TCPP_Algorithms"
  std::string name;  ///< display name, e.g. "Algorithms"
  std::vector<TcppCategory> categories;

  std::size_t topic_count() const;
  std::vector<const TcppTopic*> all_topics() const;
};

/// The four-area TCPP core-course catalog.
class TcppCatalog {
 public:
  static const TcppCatalog& instance();

  const std::vector<TcppArea>& areas() const { return areas_; }

  const TcppArea* find_area(std::string_view term) const;

  struct TopicRef {
    const TcppArea* area;
    const TcppCategory* category;
    const TcppTopic* topic;
  };
  /// Resolves a tcppdetails term like "C_Speedup"; nullptr members when
  /// unknown.
  const TcppTopic* resolve_detail_term(std::string_view term) const;
  /// Full resolution including area and category.
  TopicRef resolve_detail_term_full(std::string_view term) const;

  /// Total topics across all areas (97 in this catalog).
  std::size_t total_topics() const;

 private:
  TcppCatalog();
  std::vector<TcppArea> areas_;
};

}  // namespace pdcu::cur
