#include "pdcu/curriculum/tcpp.hpp"

namespace pdcu::cur {

char bloom_letter(Bloom bloom) {
  switch (bloom) {
    case Bloom::kKnow: return 'K';
    case Bloom::kComprehend: return 'C';
    case Bloom::kApply: return 'A';
  }
  return '?';
}

std::size_t TcppArea::topic_count() const {
  std::size_t n = 0;
  for (const auto& cat : categories) n += cat.topics.size();
  return n;
}

std::vector<const TcppTopic*> TcppArea::all_topics() const {
  std::vector<const TcppTopic*> out;
  for (const auto& cat : categories) {
    for (const auto& topic : cat.topics) out.push_back(&topic);
  }
  return out;
}

namespace {

TcppTopic topic(std::string short_name, Bloom bloom, std::string description,
                std::vector<std::string> courses) {
  return TcppTopic{std::move(short_name), bloom, std::move(description),
                   std::move(courses)};
}

}  // namespace

TcppCatalog::TcppCatalog() {
  using B = Bloom;
  const std::vector<std::string> kSys = {"Systems"};
  const std::vector<std::string> kCs2Sys = {"CS2", "Systems"};
  const std::vector<std::string> kCore = {"CS1", "CS2", "DSA", "Systems"};
  const std::vector<std::string> kAlgo = {"CS2", "DSA"};
  const std::vector<std::string> kIntro = {"CS1", "CS2"};

  // --- Architecture: 22 core topics --------------------------------------
  TcppArea arch;
  arch.term = "TCPP_Architecture";
  arch.name = "Architecture";
  arch.categories.push_back(
      {"Classes",
       {topic("FlynnTaxonomy", B::kKnow,
              "Flynn's taxonomy: SISD, SIMD, MISD, MIMD.", kSys),
        topic("DataVsControlParallelism", B::kComprehend,
              "Data parallelism versus control parallelism.", kCs2Sys),
        topic("Superscalar", B::kKnow,
              "Superscalar and instruction-level parallelism.", kSys),
        topic("SIMD", B::kKnow, "SIMD and vector units.", kSys),
        topic("Pipelines", B::kComprehend,
              "Pipelined functional units and processors.", kSys),
        topic("MIMD", B::kKnow, "MIMD multiprocessors and clusters.", kSys),
        topic("Multicore", B::kKnow, "Multicore processors.", kCore),
        topic("Heterogeneous", B::kKnow,
              "Heterogeneous processing elements (CPU + accelerator).",
              kSys)}});
  arch.categories.push_back(
      {"Memory Hierarchy",
       {topic("CacheOrganization", B::kComprehend,
              "Cache levels and organization.", kSys),
        topic("LatencyBandwidth", B::kComprehend,
              "Memory and interconnect latency versus bandwidth.", kSys),
        topic("SharedVsDistributedMemory", B::kComprehend,
              "Shared-memory versus distributed-memory organizations.",
              kCs2Sys),
        topic("Atomicity", B::kKnow,
              "Atomic memory operations and their hardware support.", kSys),
        topic("CacheCoherence", B::kKnow,
              "The cache-coherence problem and protocols.", kSys),
        topic("FalseSharing", B::kKnow,
              "False sharing and its performance impact.", kSys)}});
  arch.categories.push_back(
      {"Floating-Point Representation",
       {topic("FloatRange", B::kKnow, "Range of representable values.", kSys),
        topic("FloatPrecision", B::kKnow,
              "Precision and machine epsilon.", kSys),
        topic("FloatRounding", B::kKnow,
              "Rounding modes and accumulated rounding error.", kSys),
        topic("Ieee754", B::kKnow, "The IEEE 754 standard formats.", kSys)}});
  arch.categories.push_back(
      {"Performance Metrics",
       {topic("CyclesPerInstruction", B::kKnow,
              "Cycles per instruction as a performance measure.", kSys),
        topic("Benchmarks", B::kKnow,
              "Benchmark suites (e.g. LINPACK-style) and their use.", kSys),
        topic("PeakPerformance", B::kKnow,
              "Peak performance and its marketing pitfalls.", kSys),
        topic("SustainedPerformance", B::kKnow,
              "Sustained versus peak performance (MIPS/FLOPS).", kSys)}});
  areas_.push_back(std::move(arch));

  // --- Programming: 37 core topics ---------------------------------------
  TcppArea prog;
  prog.term = "TCPP_Programming";
  prog.name = "Programming";
  prog.categories.push_back(
      {"Paradigms and Notations",
       {topic("SIMDNotation", B::kKnow,
              "Programming SIMD units via intrinsics or array notation.",
              kSys),
        topic("SharedMemoryCompilerDirectives", B::kComprehend,
              "Shared-memory programming with compiler directives "
              "(OpenMP-style pragmas).",
              kCs2Sys),
        topic("SharedMemoryLibraries", B::kComprehend,
              "Shared-memory programming with threading libraries "
              "(TBB-style tasks, thread pools).",
              kCs2Sys),
        topic("SharedMemoryLanguageExtensions", B::kKnow,
              "Shared-memory language extensions (e.g. parallel blocks).",
              kCs2Sys),
        topic("MessagePassing", B::kComprehend,
              "Distributed-memory message passing (MPI-style send/receive).",
              kCs2Sys),
        topic("ClientServer", B::kComprehend,
              "Client-server and remote-procedure structuring.", kCs2Sys),
        topic("Hybrid", B::kKnow,
              "Hybrid shared/distributed-memory programs.", kSys),
        topic("FunctionalDataflow", B::kKnow,
              "Functional and dataflow parallel programming.", kAlgo),
        topic("GpuOffload", B::kKnow,
              "Offloading kernels to accelerators.", kSys),
        topic("TaskSpawn", B::kComprehend,
              "Creating tasks and threads (spawn/join).", kIntro),
        topic("ParallelLoops", B::kComprehend,
              "Parallel loops and iteration-space partitioning.", kIntro),
        topic("SPMD", B::kComprehend,
              "The single-program multiple-data execution style.", kCs2Sys),
        topic("VectorExtensions", B::kKnow,
              "Processor vector extensions and their compilers.", kSys),
        topic("DataParallelNotation", B::kComprehend,
              "Data-parallel collective notation (map over collections).",
              kIntro)}});
  prog.categories.push_back(
      {"Correctness",
       {topic("TasksAndThreads", B::kComprehend,
              "Tasks and threads as units of concurrent execution.", kCore),
        topic("Synchronization", B::kComprehend,
              "Synchronization constructs and when each applies.", kCore),
        topic("CriticalRegions", B::kComprehend,
              "Critical regions and mutual exclusion.", kCore),
        topic("ProducerConsumer", B::kComprehend,
              "Producer-consumer coordination and bounded buffers.", kAlgo),
        topic("Monitors", B::kKnow,
              "Monitors, semaphores, and condition synchronization.",
              kCs2Sys),
        topic("Deadlock", B::kComprehend,
              "Deadlock: conditions, avoidance, and detection.", kCs2Sys),
        topic("DataRaces", B::kComprehend,
              "Data races and how to eliminate them.", kCore),
        topic("HigherLevelRaces", B::kKnow,
              "Higher-level races (atomicity violations beyond data races).",
              kCs2Sys),
        topic("MemoryModels", B::kKnow,
              "Memory models and visibility of writes.", kSys),
        topic("SequentialConsistency", B::kKnow,
              "Sequential consistency as a reasoning model.", kSys),
        topic("ConcurrencyDefects", B::kComprehend,
              "Recognizing and documenting concurrency defects.", kCs2Sys)}});
  prog.categories.push_back(
      {"Performance",
       {topic("ComputationDecomposition", B::kComprehend,
              "Decomposing computation into concurrent units.", kCore),
        topic("StaticLoadBalancing", B::kComprehend,
              "Static work distribution.", kAlgo),
        topic("DynamicLoadBalancing", B::kComprehend,
              "Dynamic work distribution and work queues.", kAlgo),
        topic("Scheduling", B::kKnow,
              "Scheduling policies and their performance effects.", kSys),
        topic("DataLocality", B::kKnow,
              "Exploiting data locality in parallel programs.", kSys),
        topic("CommunicationOverhead", B::kComprehend,
              "Communication overhead: latency, bandwidth, and message "
              "aggregation.",
              kCs2Sys),
        topic("Speedup", B::kComprehend,
              "Speedup and what limits it.", kCore),
        topic("Efficiency", B::kKnow,
              "Parallel efficiency and resource utilization.", kAlgo),
        topic("AmdahlsLaw", B::kComprehend,
              "Amdahl's law and serial fractions.", kCs2Sys),
        topic("Scalability", B::kKnow,
              "Strong and weak scalability.", kSys),
        topic("PerformanceMeasurement", B::kKnow,
              "Measuring parallel performance credibly.", kSys),
        topic("EnergyEfficiency", B::kKnow,
              "Energy as a performance constraint.", kSys)}});
  areas_.push_back(std::move(prog));

  // --- Algorithms: 26 core topics ----------------------------------------
  TcppArea algo;
  algo.term = "TCPP_Algorithms";
  algo.name = "Algorithms";
  algo.categories.push_back(
      {"Parallel and Distributed Models and Complexity",
       {topic("CostsOfComputation", B::kComprehend,
              "Costs of computation: time, space, energy, communication.",
              kAlgo),
        topic("Asymptotics", B::kComprehend,
              "Asymptotic analysis of parallel algorithms.", kAlgo),
        topic("Work", B::kKnow, "Total work of a parallel computation.",
              kAlgo),
        topic("SpanMakespan", B::kKnow,
              "Span / makespan and the critical path.", kAlgo),
        topic("CostReduction", B::kKnow,
              "Cost reduction via parallelism (work-optimal designs).",
              kAlgo),
        topic("PRAM", B::kKnow, "The PRAM model and its variants.", kAlgo),
        topic("BSP", B::kKnow, "Bulk-synchronous and CTA-style models.",
              kAlgo),
        topic("DependenciesDAG", B::kComprehend,
              "Dependency graphs and what they permit to run in parallel.",
              kAlgo),
        topic("CommunicationCost", B::kComprehend,
              "Counting communication as a first-class algorithmic cost.",
              kAlgo),
        topic("Nondeterminism", B::kComprehend,
              "Nondeterminism in parallel executions and correctness "
              "arguments that tolerate it.",
              kAlgo),
        topic("SchedulingTheory", B::kKnow,
              "Scheduling theory: greedy schedulers and bounds.", kAlgo)}});
  algo.categories.push_back(
      {"Algorithmic Paradigms",
       {topic("DivideAndConquer", B::kApply,
              "Parallel divide and conquer.", kAlgo),
        topic("MasterWorker", B::kComprehend,
              "Master-worker task distribution.", kAlgo),
        topic("PipelineParadigm", B::kComprehend,
              "Pipelined algorithm organization.", kAlgo),
        topic("ParallelRecursion", B::kKnow,
              "Parallel aspects of recursion.", kAlgo),
        topic("Reduction", B::kComprehend,
              "Reduction as an algorithmic paradigm.", kAlgo),
        topic("BarrierParadigm", B::kKnow,
              "Bulk-synchronous phases separated by barriers.", kAlgo),
        topic("Scan", B::kKnow, "Parallel prefix (scan).", kAlgo)}});
  algo.categories.push_back(
      {"Algorithmic Problems",
       {topic("Sorting", B::kApply, "Parallel sorting.", kAlgo),
        topic("Search", B::kApply, "Parallel search.", kAlgo),
        topic("MinMaxFinding", B::kApply,
              "Finding a minimum or maximum in parallel.", kIntro),
        topic("MatrixComputations", B::kComprehend,
              "Parallel matrix computations.", kAlgo),
        topic("LeaderElection", B::kComprehend,
              "Leader election in rings and general networks.", kAlgo),
        topic("MutualExclusionProblem", B::kComprehend,
              "Mutual exclusion as a distributed problem.", kAlgo),
        topic("BroadcastMulticast", B::kComprehend,
              "Broadcast and multicast communication constructs.", kAlgo),
        topic("ScatterGather", B::kComprehend,
              "Scatter/gather communication constructs.", kAlgo)}});
  areas_.push_back(std::move(algo));

  // --- Crosscutting and Advanced Topics: 12 core topics ------------------
  TcppArea cross;
  cross.term = "TCPP_Crosscutting";
  cross.name = "Crosscutting and Advanced Topics";
  cross.categories.push_back(
      {"Crosscutting",
       {topic("WhyAndWhatIsPDC", B::kKnow,
              "Know why and what is parallel/distributed computing.", kCore),
        topic("CrosscuttingConcurrency", B::kComprehend,
              "Concurrency as a pervasive phenomenon.", kCore),
        topic("CrosscuttingNondeterminism", B::kKnow,
              "Nondeterminism across the computing stack.", kAlgo),
        topic("Locality", B::kKnow,
              "Locality as a crosscutting concern.", kSys),
        topic("FaultTolerance", B::kKnow,
              "Fault tolerance and self-stabilization.", kAlgo),
        topic("SafetyLiveness", B::kComprehend,
              "Safety and liveness properties of concurrent systems.",
              kAlgo)}});
  cross.categories.push_back(
      {"Advanced (core-course recommended)",
       {topic("ConsensusAgreement", B::kComprehend,
              "Agreement in the presence of faulty processes.", kAlgo),
        topic("DistributedCoordination", B::kComprehend,
              "Coordinating distributed replicas of shared state.", kCs2Sys),
        topic("SelfStabilization", B::kKnow,
              "Self-stabilizing algorithms.", kAlgo),
        topic("WebSearch", B::kKnow,
              "How parallel/distributed web search works.", kIntro),
        topic("PeerToPeer", B::kKnow,
              "Peer-to-peer system organization.", kCs2Sys),
        topic("CloudGrid", B::kKnow,
              "Cloud and grid computing models.", kCs2Sys)}});
  areas_.push_back(std::move(cross));
}

const TcppCatalog& TcppCatalog::instance() {
  static const TcppCatalog catalog;
  return catalog;
}

const TcppArea* TcppCatalog::find_area(std::string_view term) const {
  for (const auto& area : areas_) {
    if (area.term == term) return &area;
  }
  return nullptr;
}

const TcppTopic* TcppCatalog::resolve_detail_term(
    std::string_view term) const {
  return resolve_detail_term_full(term).topic;
}

TcppCatalog::TopicRef TcppCatalog::resolve_detail_term_full(
    std::string_view term) const {
  for (const auto& area : areas_) {
    for (const auto& cat : area.categories) {
      for (const auto& t : cat.topics) {
        if (t.term() == term) return TopicRef{&area, &cat, &t};
      }
    }
  }
  return TopicRef{nullptr, nullptr, nullptr};
}

std::size_t TcppCatalog::total_topics() const {
  std::size_t n = 0;
  for (const auto& area : areas_) n += area.topic_count();
  return n;
}

}  // namespace pdcu::cur
