// The virtual-time cost model.
//
// Unplugged dramatizations count *rounds* of classroom action, not wall
// time; likewise, this host may have a single CPU core, so speedup-shaped
// results are measured on a deterministic virtual clock. The model is
// LogP-flavoured: local work advances a rank's clock by a per-step cost;
// a message delivers at sender_time + latency + size * per_item cost; a
// barrier aligns every participant to the maximum clock.
#pragma once

#include <algorithm>
#include <cstdint>

namespace pdcu::rt {

/// Cost parameters (arbitrary but fixed units; think "seconds of classroom
/// time").
struct CostModel {
  std::int64_t work_per_step = 1;    ///< one unit of local computation
  std::int64_t msg_latency = 4;      ///< fixed per-message overhead (alpha)
  std::int64_t msg_per_item = 1;     ///< per-element transfer cost (beta)
  /// Per-message processing time at EACH endpoint (LogP's o): the sender
  /// pays it before the message leaves, the receiver after it arrives.
  /// Default 0: handing off a card is free in the dramatizations; the
  /// collectives ablation sets it nonzero to model a root that must
  /// address each student in turn.
  std::int64_t msg_send_overhead = 0;

  /// Cost of transferring `items` payload elements.
  std::int64_t transfer(std::int64_t items) const {
    return msg_latency + msg_per_item * items;
  }
};

/// A rank's virtual clock plus operation counters.
class VirtualClock {
 public:
  explicit VirtualClock(CostModel model = {}) : model_(model) {}

  std::int64_t now() const { return now_; }
  const CostModel& model() const { return model_; }

  /// Advances by `steps` units of local work.
  void work(std::int64_t steps = 1) {
    now_ += steps * model_.work_per_step;
    work_steps_ += steps;
  }

  /// Timestamp a message leaves with; counts the send and charges the
  /// sender the per-send overhead.
  std::int64_t stamp_send(std::int64_t items) {
    now_ += model_.msg_send_overhead;
    ++messages_sent_;
    items_sent_ += items;
    return now_;
  }

  /// Applies the arrival of a message stamped at `sent_at` with `items`
  /// payload elements: the receiver cannot proceed before it arrives, and
  /// pays the per-message overhead to take it.
  void apply_recv(std::int64_t sent_at, std::int64_t items) {
    now_ = std::max(now_, sent_at + model_.transfer(items)) +
           model_.msg_send_overhead;
    ++messages_received_;
  }

  /// Barrier alignment: jump forward to the group maximum.
  void align(std::int64_t group_max) { now_ = std::max(now_, group_max); }

  std::int64_t work_steps() const { return work_steps_; }
  std::int64_t messages_sent() const { return messages_sent_; }
  std::int64_t messages_received() const { return messages_received_; }
  std::int64_t items_sent() const { return items_sent_; }

 private:
  CostModel model_;
  std::int64_t now_ = 0;
  std::int64_t work_steps_ = 0;
  std::int64_t messages_sent_ = 0;
  std::int64_t messages_received_ = 0;
  std::int64_t items_sent_ = 0;
};

/// Aggregate of a parallel run under the virtual cost model.
struct RunCost {
  std::int64_t makespan = 0;      ///< max final clock over ranks
  std::int64_t total_work = 0;    ///< sum of work steps over ranks
  std::int64_t total_messages = 0;
  std::int64_t total_items = 0;

  /// Speedup of this run relative to a serial run of `serial_work` steps.
  double speedup_vs(std::int64_t serial_work) const {
    return makespan == 0 ? 0.0
                         : static_cast<double>(serial_work) /
                               static_cast<double>(makespan);
  }
};

}  // namespace pdcu::rt
