// A fixed-size thread pool with futures and a blocked-range parallel_for.
#pragma once

#include <algorithm>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "pdcu/runtime/channel.hpp"

namespace pdcu::rt {

/// Fixed worker pool. Tasks are std::function<void()>; submit() returns a
/// future. Destruction drains outstanding tasks, then joins.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads = std::thread::hardware_concurrency());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Schedules a callable; the future carries its result or exception.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    auto future = task->get_future();
    tasks_.send([task] { (*task)(); });
    return future;
  }

  /// Splits [begin, end) into roughly equal blocks, one task per worker,
  /// and blocks until all complete. body(block_begin, block_end) runs on
  /// pool threads.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Blocked parallel reduction: `leaf(lo, hi)` reduces one block, `op`
  /// combines block results (must be associative), `identity` seeds the
  /// fold. Deterministic: blocks combine in index order.
  template <typename T, typename Leaf, typename Op>
  T parallel_reduce(std::size_t begin, std::size_t end, T identity,
                    Leaf&& leaf, Op&& op) {
    if (begin >= end) return identity;
    const std::size_t n = end - begin;
    const std::size_t blocks = std::min<std::size_t>(size(), n);
    const std::size_t chunk = (n + blocks - 1) / blocks;
    std::vector<std::future<T>> futures;
    for (std::size_t b = 0; b < blocks; ++b) {
      std::size_t lo = begin + b * chunk;
      std::size_t hi = std::min(end, lo + chunk);
      if (lo >= hi) break;
      futures.push_back(submit([&leaf, lo, hi] { return leaf(lo, hi); }));
    }
    T result = identity;
    for (auto& future : futures) result = op(result, future.get());
    return result;
  }

  /// Blocked inclusive scan (Blelloch-style two passes over blocks):
  /// values[i] becomes op(values[begin], ..., values[i]). Deterministic.
  template <typename T, typename Op>
  void parallel_scan(std::vector<T>& values, T identity, Op&& op) {
    const std::size_t n = values.size();
    if (n == 0) return;
    const std::size_t blocks = std::min<std::size_t>(size(), n);
    const std::size_t chunk = (n + blocks - 1) / blocks;

    // Pass 1: scan each block locally, collect block totals.
    std::vector<T> block_total(blocks, identity);
    parallel_for(0, blocks, [&](std::size_t block_lo, std::size_t block_hi) {
      for (std::size_t b = block_lo; b < block_hi; ++b) {
        std::size_t lo = b * chunk;
        std::size_t hi = std::min(n, lo + chunk);
        T acc = identity;
        for (std::size_t i = lo; i < hi; ++i) {
          acc = op(acc, values[i]);
          values[i] = acc;
        }
        block_total[b] = acc;
      }
    });

    // Serial exclusive scan of the (few) block totals.
    std::vector<T> offset(blocks, identity);
    T running = identity;
    for (std::size_t b = 0; b < blocks; ++b) {
      offset[b] = running;
      running = op(running, block_total[b]);
    }

    // Pass 2: add each block's offset.
    parallel_for(0, blocks, [&](std::size_t block_lo, std::size_t block_hi) {
      for (std::size_t b = block_lo; b < block_hi; ++b) {
        std::size_t lo = b * chunk;
        std::size_t hi = std::min(n, lo + chunk);
        for (std::size_t i = lo; i < hi; ++i) {
          values[i] = op(offset[b], values[i]);
        }
      }
    });
  }

  /// Parallel merge sort: blocks sort concurrently, then merge pairwise
  /// (log(blocks) sequential merge levels, each level's merges running
  /// concurrently). Stable within blocks; deterministic result.
  template <typename T, typename Less = std::less<T>>
  void parallel_sort(std::vector<T>& values, Less less = {}) {
    const std::size_t n = values.size();
    if (n < 2) return;
    std::size_t blocks = std::min<std::size_t>(size(), n);
    const std::size_t chunk = (n + blocks - 1) / blocks;

    // Block boundaries (the last block may be short).
    std::vector<std::size_t> bounds;
    for (std::size_t lo = 0; lo < n; lo += chunk) bounds.push_back(lo);
    bounds.push_back(n);

    parallel_for(0, bounds.size() - 1, [&](std::size_t b_lo,
                                           std::size_t b_hi) {
      for (std::size_t b = b_lo; b < b_hi; ++b) {
        std::sort(values.begin() + static_cast<std::ptrdiff_t>(bounds[b]),
                  values.begin() + static_cast<std::ptrdiff_t>(bounds[b + 1]),
                  less);
      }
    });

    // Merge adjacent runs until one remains.
    std::vector<T> buffer(n);
    while (bounds.size() > 2) {
      std::vector<std::size_t> next_bounds;
      const std::size_t runs = bounds.size() - 1;
      std::vector<std::future<void>> merges;
      for (std::size_t r = 0; r + 1 < runs; r += 2) {
        const std::size_t lo = bounds[r];
        const std::size_t mid = bounds[r + 1];
        const std::size_t hi = bounds[r + 2];
        next_bounds.push_back(lo);
        merges.push_back(submit([&values, &buffer, &less, lo, mid, hi] {
          std::merge(values.begin() + static_cast<std::ptrdiff_t>(lo),
                     values.begin() + static_cast<std::ptrdiff_t>(mid),
                     values.begin() + static_cast<std::ptrdiff_t>(mid),
                     values.begin() + static_cast<std::ptrdiff_t>(hi),
                     buffer.begin() + static_cast<std::ptrdiff_t>(lo), less);
          std::copy(buffer.begin() + static_cast<std::ptrdiff_t>(lo),
                    buffer.begin() + static_cast<std::ptrdiff_t>(hi),
                    values.begin() + static_cast<std::ptrdiff_t>(lo));
        }));
      }
      if (runs % 2 == 1) next_bounds.push_back(bounds[runs - 1]);
      next_bounds.push_back(n);
      for (auto& merge : merges) merge.get();
      bounds = std::move(next_bounds);
    }
  }

 private:
  void worker_loop();

  Channel<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
};

/// The shared, process-lifetime pool (hardware_concurrency workers,
/// created on first use). Modules that need parallelism but have no
/// caller-provided pool — the site builder, the search indexer, the
/// repository loader, the server's connection layer — share this instance
/// instead of constructing a private pool per call. Tasks running on the
/// pool must not block on nested parallel_for/submit against the same
/// pool (they would occupy the very workers they wait for).
ThreadPool& default_pool();

}  // namespace pdcu::rt
