// A bounded, thread-safe channel: the runtime's basic communication pipe.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace pdcu::rt {

/// Multi-producer multi-consumer FIFO channel with optional capacity bound
/// and close semantics. send() blocks when full; recv() blocks when empty
/// and returns nullopt once the channel is closed and drained.
template <typename T>
class Channel {
 public:
  /// capacity == 0 means unbounded.
  explicit Channel(std::size_t capacity = 0) : capacity_(capacity) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Blocks while the channel is full. Returns false if the channel was
  /// closed (the value is dropped).
  bool send(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] {
      return closed_ || capacity_ == 0 || queue_.size() < capacity_;
    });
    if (closed_) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking send; false when full or closed.
  bool try_send(T value) {
    std::lock_guard lock(mutex_);
    if (closed_ || (capacity_ != 0 && queue_.size() >= capacity_)) {
      return false;
    }
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until a value is available or the channel is closed and empty.
  std::optional<T> recv() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking receive.
  std::optional<T> try_recv() {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Closes the channel: senders fail, receivers drain then get nullopt.
  void close() {
    std::lock_guard lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace pdcu::rt
