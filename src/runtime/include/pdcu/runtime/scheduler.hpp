// Deterministic agent-step scheduler.
//
// Many unplugged activities are "students act in arbitrary order" protocols
// (Dijkstra token ring, nondeterministic sorting, leader election). The
// StepScheduler executes such protocols single-threadedly under a chosen,
// reproducible schedule so properties can be checked over many adversarial
// interleavings — the executable analogue of assertional reasoning.
#pragma once

#include <cstddef>
#include <functional>

#include "pdcu/support/rng.hpp"

namespace pdcu::rt {

/// Order in which agents are offered steps.
enum class SchedulePolicy {
  kRoundRobin,  ///< 0,1,...,n-1 repeatedly
  kReversed,    ///< n-1,...,0 repeatedly
  kRandom,      ///< uniformly random agent each step
  kShuffled     ///< a random permutation per round
};

/// Result of driving a protocol under a schedule.
struct ScheduleResult {
  bool converged = false;   ///< done() became true within the step budget
  std::size_t steps = 0;    ///< agent steps taken (enabled or not)
  std::size_t rounds = 0;   ///< completed passes over all agents
};

/// Runs `step(agent)` under the given policy until `done()` or the budget
/// is exhausted. `step` should be a no-op for agents with no enabled move.
ScheduleResult run_schedule(std::size_t agents,
                            const std::function<void(std::size_t)>& step,
                            const std::function<bool()>& done,
                            SchedulePolicy policy, Rng& rng,
                            std::size_t max_steps);

}  // namespace pdcu::rt
