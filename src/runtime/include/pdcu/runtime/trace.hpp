// The classroom script: a thread-safe trace of who did what, when (in
// virtual time). Each simulation can emit its dramatization as a script an
// instructor could act out.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pdcu::rt {

/// One scripted event.
struct TraceEvent {
  std::int64_t vtime = 0;  ///< virtual time of the action
  int rank = -1;           ///< acting student/processor (-1 = narrator)
  std::string text;
};

/// Thread-safe event collector.
class TraceLog {
 public:
  void record(std::int64_t vtime, int rank, std::string text);

  /// Narrator line (rank -1, time 0 unless given).
  void narrate(std::string text, std::int64_t vtime = 0);

  /// Events sorted by (vtime, arrival order).
  std::vector<TraceEvent> events() const;

  std::size_t size() const;

  /// Renders as an indented script:
  ///   [t= 12] student 3: compares 7 with 4, swaps
  std::string render_script() const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

}  // namespace pdcu::rt
