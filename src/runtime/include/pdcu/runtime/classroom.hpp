// The classroom: an MPI-flavoured message-passing runtime where each rank
// is a student (a std::thread). This is the substrate on which the
// operational unplugged activities execute ("people act as processes or
// processors", §III.A of the paper).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "pdcu/runtime/trace.hpp"
#include "pdcu/runtime/virtual_cost.hpp"
#include "pdcu/support/expected.hpp"

namespace pdcu::rt {

/// Wildcard for Comm::recv source/tag matching.
inline constexpr int kAny = -1;

/// Thrown out of a blocked recv/barrier when a peer rank has failed and
/// the classroom is being torn down. Classroom::run treats it as
/// secondary damage: the peer's exception becomes the run's error, not
/// this one. User bodies normally let it propagate.
class ClassroomAbort : public std::runtime_error {
 public:
  ClassroomAbort()
      : std::runtime_error("classroom aborted: a peer rank failed") {}
};

/// A message between ranks: integer payload plus virtual send timestamp.
struct ClassMessage {
  int src = 0;
  int tag = 0;
  std::vector<std::int64_t> payload;
  std::int64_t sent_at = 0;
};

namespace detail {

/// Selective-receive mailbox: recv matches on (src, tag) with wildcards,
/// searching delivered-but-unmatched messages first (MPI matching order).
class Mailbox {
 public:
  void put(ClassMessage message);
  ClassMessage get(int src, int tag);
  bool try_get(int src, int tag, ClassMessage& out);
  std::size_t pending() const;

  /// Poisons the mailbox: a blocked or future get() with no matching
  /// message throws ClassroomAbort instead of waiting forever. Already
  /// delivered messages still match (teardown must not lose a message a
  /// rank was about to consume).
  void shutdown();

 private:
  bool match_locked(int src, int tag, ClassMessage& out);

  mutable std::mutex mutex_;
  std::condition_variable arrived_;
  std::deque<ClassMessage> queue_;
  bool shutdown_ = false;
};

/// Reusable barrier that additionally aligns virtual clocks to the group
/// maximum.
class ClockBarrier {
 public:
  explicit ClockBarrier(int parties) : parties_(parties) {}

  /// Returns the aligned (maximum) virtual time.
  std::int64_t arrive_and_wait(std::int64_t my_time);

  /// Poisons the barrier: current and future waiters throw
  /// ClassroomAbort. A barrier can never complete again once a rank has
  /// died — its party count is permanently short.
  void abort();

 private:
  std::mutex mutex_;
  std::condition_variable released_;
  int parties_;
  int waiting_ = 0;
  std::uint64_t generation_ = 0;
  std::int64_t group_max_ = 0;
  std::int64_t released_max_ = 0;
  bool aborted_ = false;
};

struct Shared;

}  // namespace detail

/// Per-rank handle used inside a classroom body.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Local computation: advances this rank's virtual clock.
  void work(std::int64_t steps = 1) { clock_.work(steps); }

  /// Point-to-point. User tags must be >= 0: the negative range is
  /// reserved for the collectives' internal traffic (and -1 is kAny, so a
  /// user send tagged -1 could never be matched). send/recv with a
  /// negative tag (other than recv's kAny wildcard) throws
  /// std::invalid_argument instead of silently colliding.
  void send(int dst, std::vector<std::int64_t> payload, int tag = 0);
  ClassMessage recv(int src = kAny, int tag = kAny);
  bool try_recv(int src, int tag, ClassMessage& out);

  /// Collectives (tree-structured where it matters for cost).
  void barrier();
  std::vector<std::int64_t> bcast(int root,
                                  std::vector<std::int64_t> payload);
  std::vector<std::int64_t> gather(int root, std::int64_t value);
  std::int64_t reduce(int root, std::int64_t value,
                      const std::function<std::int64_t(std::int64_t,
                                                       std::int64_t)>& op);
  std::int64_t allreduce(std::int64_t value,
                         const std::function<std::int64_t(std::int64_t,
                                                          std::int64_t)>& op);
  std::vector<std::int64_t> scatter(int root,
                                    const std::vector<std::int64_t>& all);

  /// Scripted narration at this rank's current virtual time.
  void log(std::string text);

  VirtualClock& clock() { return clock_; }
  const VirtualClock& clock() const { return clock_; }

 private:
  friend class Classroom;
  Comm(int rank, detail::Shared& shared, CostModel model)
      : rank_(rank), shared_(shared), clock_(model) {}

  /// Unvalidated transport used by the collectives (reserved tag range).
  void send_impl(int dst, std::vector<std::int64_t> payload, int tag);
  ClassMessage recv_impl(int src, int tag);

  /// The internal tag for operation `op` of the current collective call.
  /// Collective tags live in [INT_MIN, -2] and fold in a per-communicator
  /// sequence number, so a straggler in collective call N can never match
  /// a same-operation message from call N+1 — even when the roots (and
  /// therefore the senders behind the wildcard-source receives) differ.
  /// Every rank calls collectives in the same order, so the per-rank
  /// counters agree without synchronization.
  int collective_tag(int op) const;
  int next_collective();  ///< bumps the sequence, returns the new value

  int rank_;
  detail::Shared& shared_;
  VirtualClock clock_;
  int collective_seq_ = 0;
};

/// Result of a classroom run.
struct ClassroomResult {
  RunCost cost;
  std::vector<std::int64_t> final_clocks;  ///< per-rank
  std::string error;  ///< first exception message, "" on success

  bool ok() const { return error.empty(); }
};

/// Spawns `ranks` student threads, each running `body`, and aggregates the
/// virtual-time cost.
class Classroom {
 public:
  static ClassroomResult run(int ranks,
                             const std::function<void(Comm&)>& body,
                             CostModel model = {},
                             TraceLog* trace = nullptr);
};

}  // namespace pdcu::rt
