#include "pdcu/runtime/scheduler.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace pdcu::rt {

ScheduleResult run_schedule(std::size_t agents,
                            const std::function<void(std::size_t)>& step,
                            const std::function<bool()>& done,
                            SchedulePolicy policy, Rng& rng,
                            std::size_t max_steps) {
  ScheduleResult result;
  if (agents == 0 || done()) {
    result.converged = done();
    return result;
  }
  std::vector<std::size_t> order(agents);
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (policy == SchedulePolicy::kReversed) {
    std::reverse(order.begin(), order.end());
  }

  while (result.steps < max_steps) {
    if (policy == SchedulePolicy::kShuffled) rng.shuffle(order);
    std::size_t taken = 0;
    for (std::size_t i = 0; i < agents && result.steps < max_steps; ++i) {
      std::size_t agent = policy == SchedulePolicy::kRandom
                              ? rng.below(agents)
                              : order[i];
      step(agent);
      ++result.steps;
      ++taken;
      if (done()) {
        result.converged = true;
        return result;
      }
    }
    if (taken == agents) ++result.rounds;  // only completed passes count
  }
  result.converged = done();
  return result;
}

}  // namespace pdcu::rt
