#include "pdcu/runtime/classroom.hpp"

#include <algorithm>
#include <thread>

namespace pdcu::rt {

namespace detail {

bool Mailbox::match_locked(int src, int tag, ClassMessage& out) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if ((src == kAny || it->src == src) && (tag == kAny || it->tag == tag)) {
      out = std::move(*it);
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

void Mailbox::put(ClassMessage message) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(message));
  }
  arrived_.notify_all();
}

ClassMessage Mailbox::get(int src, int tag) {
  std::unique_lock lock(mutex_);
  ClassMessage out;
  arrived_.wait(lock, [&] { return match_locked(src, tag, out); });
  return out;
}

bool Mailbox::try_get(int src, int tag, ClassMessage& out) {
  std::lock_guard lock(mutex_);
  return match_locked(src, tag, out);
}

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

std::int64_t ClockBarrier::arrive_and_wait(std::int64_t my_time) {
  std::unique_lock lock(mutex_);
  group_max_ = std::max(group_max_, my_time);
  if (++waiting_ == parties_) {
    released_max_ = group_max_;
    group_max_ = 0;
    waiting_ = 0;
    ++generation_;
    released_.notify_all();
    return released_max_;
  }
  const std::uint64_t my_generation = generation_;
  released_.wait(lock, [&] { return generation_ != my_generation; });
  return released_max_;
}

struct Shared {
  int ranks = 0;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::unique_ptr<ClockBarrier> barrier;
  TraceLog* trace = nullptr;
};

}  // namespace detail

int Comm::size() const { return shared_.ranks; }

void Comm::send(int dst, std::vector<std::int64_t> payload, int tag) {
  ClassMessage message;
  message.src = rank_;
  message.tag = tag;
  message.sent_at =
      clock_.stamp_send(static_cast<std::int64_t>(payload.size()));
  message.payload = std::move(payload);
  shared_.mailboxes[static_cast<std::size_t>(dst)]->put(std::move(message));
}

ClassMessage Comm::recv(int src, int tag) {
  ClassMessage message =
      shared_.mailboxes[static_cast<std::size_t>(rank_)]->get(src, tag);
  clock_.apply_recv(message.sent_at,
                    static_cast<std::int64_t>(message.payload.size()));
  return message;
}

bool Comm::try_recv(int src, int tag, ClassMessage& out) {
  if (!shared_.mailboxes[static_cast<std::size_t>(rank_)]->try_get(src, tag,
                                                                   out)) {
    return false;
  }
  clock_.apply_recv(out.sent_at,
                    static_cast<std::int64_t>(out.payload.size()));
  return true;
}

void Comm::barrier() {
  clock_.align(shared_.barrier->arrive_and_wait(clock_.now()));
}

std::vector<std::int64_t> Comm::bcast(int root,
                                      std::vector<std::int64_t> payload) {
  // Binomial tree rooted at `root`: a node's parent is its relative rank
  // with the lowest set bit cleared; it forwards to rel + m for every
  // m = 2^k below its lowest set bit.
  const int n = size();
  const int rel = (rank_ - root + n) % n;
  int mask = 1;
  while (mask < n && (rel & mask) == 0) mask <<= 1;
  if (rel != 0) {
    ClassMessage message = recv(kAny, /*tag=*/-42);
    payload = std::move(message.payload);
  }
  for (int m = mask >> 1; m > 0; m >>= 1) {
    if (rel + m < n) {
      send((rel + m + root) % n, payload, /*tag=*/-42);
    }
  }
  return payload;
}

std::vector<std::int64_t> Comm::gather(int root, std::int64_t value) {
  const int n = size();
  if (rank_ != root) {
    send(root, {static_cast<std::int64_t>(rank_), value}, /*tag=*/-43);
    return {};
  }
  std::vector<std::int64_t> all(static_cast<std::size_t>(n), 0);
  all[static_cast<std::size_t>(rank_)] = value;
  for (int i = 0; i < n - 1; ++i) {
    ClassMessage message = recv(kAny, /*tag=*/-43);
    all[static_cast<std::size_t>(message.payload[0])] = message.payload[1];
  }
  return all;
}

std::int64_t Comm::reduce(
    int root, std::int64_t value,
    const std::function<std::int64_t(std::int64_t, std::int64_t)>& op) {
  const int n = size();
  const int rel = (rank_ - root + n) % n;
  std::int64_t acc = value;
  // Binomial tree reduction: at round k, relative ranks with bit k set send
  // to rel - 2^k; others receive if they have a partner.
  for (int mask = 1; mask < n; mask <<= 1) {
    if ((rel & mask) != 0) {
      send((rel - mask + root) % n, {acc}, /*tag=*/-1000 - mask);
      return 0;  // contributed and done; only root's value is meaningful
    }
    if (rel + mask < n) {
      ClassMessage message = recv(kAny, /*tag=*/-1000 - mask);
      clock_.work(1);  // the combine step
      acc = op(acc, message.payload[0]);
    }
  }
  return acc;
}

std::int64_t Comm::allreduce(
    std::int64_t value,
    const std::function<std::int64_t(std::int64_t, std::int64_t)>& op) {
  std::int64_t reduced = reduce(0, value, op);
  std::vector<std::int64_t> payload =
      bcast(0, rank_ == 0 ? std::vector<std::int64_t>{reduced}
                          : std::vector<std::int64_t>{});
  return payload[0];
}

std::vector<std::int64_t> Comm::scatter(
    int root, const std::vector<std::int64_t>& all) {
  const int n = size();
  const std::size_t chunk = (all.size() + static_cast<std::size_t>(n) - 1) /
                            static_cast<std::size_t>(n);
  if (rank_ == root) {
    for (int dst = 0; dst < n; ++dst) {
      if (dst == root) continue;
      std::size_t lo =
          std::min(all.size(), chunk * static_cast<std::size_t>(dst));
      std::size_t hi = std::min(all.size(), lo + chunk);
      send(dst, std::vector<std::int64_t>(all.begin() + static_cast<long>(lo),
                                          all.begin() + static_cast<long>(hi)),
           /*tag=*/-45);
    }
    std::size_t lo =
        std::min(all.size(), chunk * static_cast<std::size_t>(root));
    std::size_t hi = std::min(all.size(), lo + chunk);
    return {all.begin() + static_cast<long>(lo),
            all.begin() + static_cast<long>(hi)};
  }
  return recv(root, /*tag=*/-45).payload;
}

void Comm::log(std::string text) {
  if (shared_.trace != nullptr) {
    shared_.trace->record(clock_.now(), rank_, std::move(text));
  }
}

ClassroomResult Classroom::run(int ranks,
                               const std::function<void(Comm&)>& body,
                               CostModel model, TraceLog* trace) {
  detail::Shared shared;
  shared.ranks = ranks;
  shared.trace = trace;
  shared.barrier = std::make_unique<detail::ClockBarrier>(ranks);
  shared.mailboxes.reserve(static_cast<std::size_t>(ranks));
  for (int i = 0; i < ranks; ++i) {
    shared.mailboxes.push_back(std::make_unique<detail::Mailbox>());
  }

  std::vector<std::unique_ptr<Comm>> comms;
  comms.reserve(static_cast<std::size_t>(ranks));
  for (int i = 0; i < ranks; ++i) {
    comms.push_back(
        std::unique_ptr<Comm>(new Comm(i, shared, model)));
  }

  std::vector<std::string> errors(static_cast<std::size_t>(ranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int i = 0; i < ranks; ++i) {
    threads.emplace_back([&, i] {
      try {
        body(*comms[static_cast<std::size_t>(i)]);
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(i)] = e.what();
      } catch (...) {
        errors[static_cast<std::size_t>(i)] = "unknown exception";
      }
    });
  }
  for (auto& thread : threads) thread.join();

  ClassroomResult result;
  for (const auto& error : errors) {
    if (!error.empty()) {
      result.error = error;
      break;
    }
  }
  for (const auto& comm : comms) {
    const VirtualClock& clock = comm->clock();
    result.final_clocks.push_back(clock.now());
    result.cost.makespan = std::max(result.cost.makespan, clock.now());
    result.cost.total_work += clock.work_steps();
    result.cost.total_messages += clock.messages_sent();
    result.cost.total_items += clock.items_sent();
  }
  return result;
}

}  // namespace pdcu::rt
