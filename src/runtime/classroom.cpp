#include "pdcu/runtime/classroom.hpp"

#include <algorithm>
#include <thread>

namespace pdcu::rt {

namespace detail {

bool Mailbox::match_locked(int src, int tag, ClassMessage& out) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    // The tag wildcard matches user traffic only (tags >= 0): a user
    // recv(kAny, kAny) must never swallow an internal collective message
    // that happens to be sitting in the queue. Internal receives always
    // name their exact reserved tag.
    const bool tag_ok = tag == kAny ? it->tag >= 0 : it->tag == tag;
    if ((src == kAny || it->src == src) && tag_ok) {
      out = std::move(*it);
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

void Mailbox::put(ClassMessage message) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(message));
  }
  arrived_.notify_all();
}

ClassMessage Mailbox::get(int src, int tag) {
  std::unique_lock lock(mutex_);
  ClassMessage out;
  bool matched = false;
  // Already-delivered messages win over shutdown: a message the rank was
  // about to consume must not be dropped by a concurrent teardown.
  arrived_.wait(lock, [&] {
    matched = match_locked(src, tag, out);
    return matched || shutdown_;
  });
  if (!matched) throw ClassroomAbort();
  return out;
}

bool Mailbox::try_get(int src, int tag, ClassMessage& out) {
  std::lock_guard lock(mutex_);
  return match_locked(src, tag, out);
}

std::size_t Mailbox::pending() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void Mailbox::shutdown() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  arrived_.notify_all();
}

std::int64_t ClockBarrier::arrive_and_wait(std::int64_t my_time) {
  std::unique_lock lock(mutex_);
  if (aborted_) throw ClassroomAbort();
  group_max_ = std::max(group_max_, my_time);
  if (++waiting_ == parties_) {
    released_max_ = group_max_;
    group_max_ = 0;
    waiting_ = 0;
    ++generation_;
    released_.notify_all();
    return released_max_;
  }
  const std::uint64_t my_generation = generation_;
  released_.wait(lock,
                 [&] { return generation_ != my_generation || aborted_; });
  if (generation_ == my_generation) throw ClassroomAbort();
  return released_max_;
}

void ClockBarrier::abort() {
  {
    std::lock_guard lock(mutex_);
    aborted_ = true;
  }
  released_.notify_all();
}

struct Shared {
  int ranks = 0;
  std::vector<std::unique_ptr<Mailbox>> mailboxes;
  std::unique_ptr<ClockBarrier> barrier;
  TraceLog* trace = nullptr;

  /// First-failure poisoning: wakes every rank blocked in recv or
  /// barrier so Classroom::run can join instead of deadlocking.
  void poison() {
    for (auto& mailbox : mailboxes) mailbox->shutdown();
    barrier->abort();
  }
};

}  // namespace detail

int Comm::size() const { return shared_.ranks; }

void Comm::send_impl(int dst, std::vector<std::int64_t> payload, int tag) {
  ClassMessage message;
  message.src = rank_;
  message.tag = tag;
  message.sent_at =
      clock_.stamp_send(static_cast<std::int64_t>(payload.size()));
  message.payload = std::move(payload);
  shared_.mailboxes[static_cast<std::size_t>(dst)]->put(std::move(message));
}

ClassMessage Comm::recv_impl(int src, int tag) {
  ClassMessage message =
      shared_.mailboxes[static_cast<std::size_t>(rank_)]->get(src, tag);
  clock_.apply_recv(message.sent_at,
                    static_cast<std::int64_t>(message.payload.size()));
  return message;
}

void Comm::send(int dst, std::vector<std::int64_t> payload, int tag) {
  if (tag < 0) {
    throw std::invalid_argument(
        "Comm::send: tag " + std::to_string(tag) +
        " is negative; tags < 0 are reserved for internal collective "
        "traffic (and -1 is the kAny wildcard, so it could never match)");
  }
  send_impl(dst, std::move(payload), tag);
}

ClassMessage Comm::recv(int src, int tag) {
  if (tag < 0 && tag != kAny) {
    throw std::invalid_argument(
        "Comm::recv: tag " + std::to_string(tag) +
        " is negative; tags < 0 are reserved for internal collective "
        "traffic (use kAny to match any tag)");
  }
  return recv_impl(src, tag);
}

bool Comm::try_recv(int src, int tag, ClassMessage& out) {
  if (tag < 0 && tag != kAny) {
    throw std::invalid_argument(
        "Comm::try_recv: tag " + std::to_string(tag) +
        " is negative; tags < 0 are reserved for internal collective "
        "traffic (use kAny to match any tag)");
  }
  if (!shared_.mailboxes[static_cast<std::size_t>(rank_)]->try_get(src, tag,
                                                                   out)) {
    return false;
  }
  clock_.apply_recv(out.sent_at,
                    static_cast<std::int64_t>(out.payload.size()));
  return true;
}

void Comm::barrier() {
  clock_.align(shared_.barrier->arrive_and_wait(clock_.now()));
}

namespace {

// Internal collective tag layout: tags are < -1 (so they can never equal
// kAny or collide with the validated user range), carved as
//   tag = -2 - (seq * kOpSpace + op)
// with `seq` the per-communicator collective sequence number and `op` the
// operation slot below. Folding the sequence in keeps back-to-back
// collectives apart: a slow rank still draining call N can never match a
// same-operation message from call N+1, even when the roots differ and
// the receive uses a wildcard source.
constexpr int kOpSpace = 64;
constexpr int kOpBcast = 0;
constexpr int kOpGather = 1;
constexpr int kOpScatter = 2;
constexpr int kOpReduceRound0 = 3;  // round k uses slot kOpReduceRound0 + k

}  // namespace

int Comm::collective_tag(int op) const {
  return -2 - (collective_seq_ * kOpSpace + op);
}

int Comm::next_collective() { return ++collective_seq_; }

std::vector<std::int64_t> Comm::bcast(int root,
                                      std::vector<std::int64_t> payload) {
  // Binomial tree rooted at `root`: a node's parent is its relative rank
  // with the lowest set bit cleared; it forwards to rel + m for every
  // m = 2^k below its lowest set bit.
  next_collective();
  const int tag = collective_tag(kOpBcast);
  const int n = size();
  const int rel = (rank_ - root + n) % n;
  int mask = 1;
  while (mask < n && (rel & mask) == 0) mask <<= 1;
  if (rel != 0) {
    ClassMessage message = recv_impl(kAny, tag);
    payload = std::move(message.payload);
  }
  for (int m = mask >> 1; m > 0; m >>= 1) {
    if (rel + m < n) {
      send_impl((rel + m + root) % n, payload, tag);
    }
  }
  return payload;
}

std::vector<std::int64_t> Comm::gather(int root, std::int64_t value) {
  next_collective();
  const int tag = collective_tag(kOpGather);
  const int n = size();
  if (rank_ != root) {
    send_impl(root, {static_cast<std::int64_t>(rank_), value}, tag);
    return {};
  }
  std::vector<std::int64_t> all(static_cast<std::size_t>(n), 0);
  all[static_cast<std::size_t>(rank_)] = value;
  for (int i = 0; i < n - 1; ++i) {
    ClassMessage message = recv_impl(kAny, tag);
    all[static_cast<std::size_t>(message.payload[0])] = message.payload[1];
  }
  return all;
}

std::int64_t Comm::reduce(
    int root, std::int64_t value,
    const std::function<std::int64_t(std::int64_t, std::int64_t)>& op) {
  next_collective();
  const int n = size();
  const int rel = (rank_ - root + n) % n;
  std::int64_t acc = value;
  // Binomial tree reduction: at round k, relative ranks with bit k set send
  // to rel - 2^k; others receive if they have a partner.
  int round = 0;
  for (int mask = 1; mask < n; mask <<= 1, ++round) {
    const int tag = collective_tag(kOpReduceRound0 + round);
    if ((rel & mask) != 0) {
      send_impl((rel - mask + root) % n, {acc}, tag);
      return 0;  // contributed and done; only root's value is meaningful
    }
    if (rel + mask < n) {
      ClassMessage message = recv_impl(kAny, tag);
      clock_.work(1);  // the combine step
      acc = op(acc, message.payload[0]);
    }
  }
  return acc;
}

std::int64_t Comm::allreduce(
    std::int64_t value,
    const std::function<std::int64_t(std::int64_t, std::int64_t)>& op) {
  std::int64_t reduced = reduce(0, value, op);
  std::vector<std::int64_t> payload =
      bcast(0, rank_ == 0 ? std::vector<std::int64_t>{reduced}
                          : std::vector<std::int64_t>{});
  return payload[0];
}

std::vector<std::int64_t> Comm::scatter(
    int root, const std::vector<std::int64_t>& all) {
  next_collective();
  const int tag = collective_tag(kOpScatter);
  const int n = size();
  const std::size_t chunk = (all.size() + static_cast<std::size_t>(n) - 1) /
                            static_cast<std::size_t>(n);
  if (rank_ == root) {
    for (int dst = 0; dst < n; ++dst) {
      if (dst == root) continue;
      std::size_t lo =
          std::min(all.size(), chunk * static_cast<std::size_t>(dst));
      std::size_t hi = std::min(all.size(), lo + chunk);
      send_impl(dst,
                std::vector<std::int64_t>(all.begin() + static_cast<long>(lo),
                                          all.begin() + static_cast<long>(hi)),
                tag);
    }
    std::size_t lo =
        std::min(all.size(), chunk * static_cast<std::size_t>(root));
    std::size_t hi = std::min(all.size(), lo + chunk);
    return {all.begin() + static_cast<long>(lo),
            all.begin() + static_cast<long>(hi)};
  }
  return recv_impl(root, tag).payload;
}

void Comm::log(std::string text) {
  if (shared_.trace != nullptr) {
    shared_.trace->record(clock_.now(), rank_, std::move(text));
  }
}

ClassroomResult Classroom::run(int ranks,
                               const std::function<void(Comm&)>& body,
                               CostModel model, TraceLog* trace) {
  detail::Shared shared;
  shared.ranks = ranks;
  shared.trace = trace;
  shared.barrier = std::make_unique<detail::ClockBarrier>(ranks);
  shared.mailboxes.reserve(static_cast<std::size_t>(ranks));
  for (int i = 0; i < ranks; ++i) {
    shared.mailboxes.push_back(std::make_unique<detail::Mailbox>());
  }

  std::vector<std::unique_ptr<Comm>> comms;
  comms.reserve(static_cast<std::size_t>(ranks));
  for (int i = 0; i < ranks; ++i) {
    comms.push_back(
        std::unique_ptr<Comm>(new Comm(i, shared, model)));
  }

  std::vector<std::string> errors(static_cast<std::size_t>(ranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int i = 0; i < ranks; ++i) {
    threads.emplace_back([&, i] {
      try {
        body(*comms[static_cast<std::size_t>(i)]);
      } catch (const ClassroomAbort&) {
        // Secondary damage from another rank's failure: this rank was
        // woken out of a blocked recv/barrier by poison(). Not recorded —
        // the rank that actually threw carries the run's error.
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(i)] = e.what();
        shared.poison();
      } catch (...) {
        errors[static_cast<std::size_t>(i)] = "unknown exception";
        shared.poison();
      }
    });
  }
  // Safe to join unconditionally: the first failing rank poisons the
  // shared state, which wakes any peer blocked in Mailbox::get or the
  // barrier with a ClassroomAbort instead of leaving it (and this join)
  // waiting forever.
  for (auto& thread : threads) thread.join();

  ClassroomResult result;
  for (const auto& error : errors) {
    if (!error.empty()) {
      result.error = error;
      break;
    }
  }
  for (const auto& comm : comms) {
    const VirtualClock& clock = comm->clock();
    result.final_clocks.push_back(clock.now());
    result.cost.makespan = std::max(result.cost.makespan, clock.now());
    result.cost.total_work += clock.work_steps();
    result.cost.total_messages += clock.messages_sent();
    result.cost.total_items += clock.items_sent();
  }
  return result;
}

}  // namespace pdcu::rt
