#include "pdcu/runtime/thread_pool.hpp"

#include <algorithm>

namespace pdcu::rt {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  tasks_.close();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  while (auto task = tasks_.recv()) {
    (*task)();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t blocks = std::min<std::size_t>(size(), n);
  const std::size_t chunk = (n + blocks - 1) / blocks;
  std::vector<std::future<void>> futures;
  futures.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    std::size_t lo = begin + b * chunk;
    std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(submit([&body, lo, hi] { body(lo, hi); }));
  }
  for (auto& future : futures) future.get();
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pdcu::rt
