#include "pdcu/runtime/trace.hpp"

#include <algorithm>

#include "pdcu/support/strings.hpp"

namespace pdcu::rt {

void TraceLog::record(std::int64_t vtime, int rank, std::string text) {
  std::lock_guard lock(mutex_);
  events_.push_back({vtime, rank, std::move(text)});
}

void TraceLog::narrate(std::string text, std::int64_t vtime) {
  record(vtime, -1, std::move(text));
}

std::vector<TraceEvent> TraceLog::events() const {
  std::lock_guard lock(mutex_);
  std::vector<TraceEvent> out = events_;
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.vtime < b.vtime;
                   });
  return out;
}

std::size_t TraceLog::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::string TraceLog::render_script() const {
  std::string out;
  for (const auto& event : events()) {
    out += "[t=" + strings::pad_left(std::to_string(event.vtime), 5) + "] ";
    if (event.rank < 0) {
      out += "narrator: ";
    } else {
      out += "student " + std::to_string(event.rank) + ": ";
    }
    out += event.text;
    out += '\n';
  }
  return out;
}

}  // namespace pdcu::rt
