#include "pdcu/search/index.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>

#include "pdcu/obs/span.hpp"
#include "pdcu/search/tokenizer.hpp"

namespace pdcu::search {

namespace {

// BM25 constants (standard Robertson defaults).
constexpr double kK1 = 1.2;
constexpr double kB = 0.75;

/// Saturating uint16 increment: term frequencies above 65535 are all
/// equally "a lot" under BM25 saturation anyway.
void bump(std::uint16_t& tf) {
  if (tf != UINT16_MAX) ++tf;
}

/// The plain-text snippet/body source of one activity: every prose section
/// plus variation and citation text, newline-joined.
std::string body_text(const core::Activity& activity) {
  std::string text = activity.details;
  const auto append = [&text](std::string_view piece) {
    if (piece.empty()) return;
    if (!text.empty()) text += '\n';
    text += piece;
  };
  append(activity.accessibility);
  append(activity.assessment);
  for (const auto& variation : activity.variations) {
    append(variation.name);
    append(variation.description);
  }
  for (const auto& citation : activity.citations) append(citation.text);
  for (const auto& author : activity.authors) append(author);
  return text;
}

/// All taxonomy terms of one activity as one tag string ("PD-Communication
/// CS2 sight ...") so tag matching goes through the same tokenizer.
std::string tag_text(const core::Activity& activity) {
  std::string text;
  for (const auto& [key, terms] : activity.tags()) {
    for (const auto& term : terms) {
      if (!text.empty()) text += ' ';
      text += term;
    }
  }
  return text;
}

using BlockMap = std::map<std::string, std::vector<Posting>>;

/// Indexes documents [lo, hi), writing DocEntry rows in place and returning
/// the block's term map. Safe to run concurrently on disjoint ranges.
BlockMap index_block(const core::Repository& repo, std::vector<DocEntry>& docs,
                     std::size_t lo, std::size_t hi) {
  BlockMap block;
  const auto& activities = repo.activities();
  for (std::size_t d = lo; d < hi; ++d) {
    const auto& activity = activities[d];
    DocEntry& entry = docs[d];
    entry.slug = activity.slug;
    entry.title = activity.title;
    entry.body = body_text(activity);

    const auto title_terms = tokenize(activity.title);
    const auto tag_terms = tokenize(tag_text(activity));
    const auto body_terms = tokenize(entry.body);
    entry.len_title = static_cast<std::uint32_t>(title_terms.size());
    entry.len_tags = static_cast<std::uint32_t>(tag_terms.size());
    entry.len_body = static_cast<std::uint32_t>(body_terms.size());

    std::map<std::string, Posting> per_doc;
    const auto doc_id = static_cast<std::uint32_t>(d);
    for (const auto& term : title_terms) {
      auto& posting = per_doc[term];
      posting.doc = doc_id;
      bump(posting.tf_title);
    }
    for (const auto& term : tag_terms) {
      auto& posting = per_doc[term];
      posting.doc = doc_id;
      bump(posting.tf_tags);
    }
    for (const auto& term : body_terms) {
      auto& posting = per_doc[term];
      posting.doc = doc_id;
      bump(posting.tf_body);
    }
    for (auto& [term, posting] : per_doc) {
      block[term].push_back(posting);
    }
  }
  return block;
}

/// Appends `right` onto `left`. Blocks cover ascending document ranges and
/// parallel_reduce combines in index order, so postings stay sorted by doc.
BlockMap merge_blocks(BlockMap left, BlockMap right) {
  for (auto& [term, postings] : right) {
    auto& target = left[term];
    target.insert(target.end(), postings.begin(), postings.end());
  }
  return left;
}

}  // namespace

SearchIndex SearchIndex::build(const core::Repository& repo,
                               rt::ThreadPool* pool,
                               obs::SpanRegistry* spans) {
  const auto started = std::chrono::steady_clock::now();
  SearchIndex index;
  const std::size_t n = repo.activities().size();
  index.docs_.resize(n);

  BlockMap merged;
  if (pool != nullptr && pool->size() > 1 && n > 1) {
    merged = pool->parallel_reduce<BlockMap>(
        0, n, BlockMap{},
        [&repo, &index](std::size_t lo, std::size_t hi) {
          return index_block(repo, index.docs_, lo, hi);
        },
        [](BlockMap left, BlockMap right) {
          return merge_blocks(std::move(left), std::move(right));
        });
  } else {
    merged = index_block(repo, index.docs_, 0, n);
  }

  const auto indexed = std::chrono::steady_clock::now();
  index.terms_.reserve(merged.size());
  for (auto& [term, postings] : merged) {
    index.terms_.push_back({term, std::move(postings)});
  }
  index.finalize();

  if (spans != nullptr) {
    const auto finished = std::chrono::steady_clock::now();
    const auto us = [](std::chrono::steady_clock::duration d) {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(d).count());
    };
    spans->record("search.build", us(finished - started));
    spans->record("search.merge", us(finished - indexed));
  }
  return index;
}

Expected<SearchIndex> SearchIndex::from_parts(
    std::vector<DocEntry> docs, std::vector<TermPostings> terms) {
  for (std::size_t t = 0; t < terms.size(); ++t) {
    if (t > 0 && !(terms[t - 1].term < terms[t].term)) {
      return Error::make("search.index.order",
                         "terms out of order at '" + terms[t].term + "'");
    }
    if (terms[t].postings.empty()) {
      return Error::make("search.index.postings",
                         "term '" + terms[t].term + "' has no postings");
    }
    std::uint32_t last_doc = 0;
    bool first = true;
    for (const auto& posting : terms[t].postings) {
      if (posting.doc >= docs.size() ||
          (!first && posting.doc <= last_doc)) {
        return Error::make("search.index.postings",
                           "bad posting list for '" + terms[t].term + "'");
      }
      last_doc = posting.doc;
      first = false;
    }
  }
  SearchIndex index;
  index.docs_ = std::move(docs);
  index.terms_ = std::move(terms);
  index.finalize();
  return index;
}

void SearchIndex::finalize() {
  doc_by_slug_.clear();
  doc_by_slug_.reserve(docs_.size());
  double total = 0.0;
  for (std::size_t d = 0; d < docs_.size(); ++d) {
    doc_by_slug_.emplace(docs_[d].slug, static_cast<std::uint32_t>(d));
    total += boosts_.title * docs_[d].len_title +
             boosts_.tags * docs_[d].len_tags +
             boosts_.body * docs_[d].len_body;
  }
  avg_weighted_len_ = docs_.empty() ? 0.0 : total / double(docs_.size());
}

const TermPostings* SearchIndex::find_term(std::string_view term) const {
  const auto it = std::lower_bound(
      terms_.begin(), terms_.end(), term,
      [](const TermPostings& entry, std::string_view t) {
        return entry.term < t;
      });
  if (it == terms_.end() || it->term != term) return nullptr;
  return &*it;
}

std::vector<Hit> SearchIndex::search(const Query& query,
                                     const tax::TermIndex* taxonomy,
                                     std::size_t limit) const {
  std::vector<Hit> hits;
  if (docs_.empty() || query.empty() || limit == 0) return hits;

  // Resolve filters to an allowed-document mask. An unresolvable filter
  // (unknown term, ambiguous prefix, or no taxonomy index) matches nothing:
  // silently ignoring a filter would return confidently wrong results.
  std::vector<char> allowed(docs_.size(), 1);
  for (const auto& filter : query.filters) {
    if (taxonomy == nullptr) return hits;
    const auto term = taxonomy->resolve_term(filter.taxonomy, filter.value);
    if (!term.has_value()) return hits;
    std::vector<char> with_term(docs_.size(), 0);
    for (const auto& page : taxonomy->pages(filter.taxonomy, *term)) {
      const auto it = doc_by_slug_.find(page.slug);
      if (it != doc_by_slug_.end()) with_term[it->second] = 1;
    }
    for (std::size_t d = 0; d < allowed.size(); ++d) {
      allowed[d] = allowed[d] && with_term[d];
    }
  }

  // BM25F accumulation. query.terms is deduplicated by parse_query, and
  // postings iterate ascending by doc, so scores sum in a fixed order and
  // rankings are deterministic.
  std::vector<double> scores(docs_.size(), 0.0);
  std::vector<char> matched(docs_.size(), 0);
  const double n = double(docs_.size());
  for (const auto& term : query.terms) {
    const TermPostings* entry = find_term(term);
    if (entry == nullptr) continue;
    const double df = double(entry->postings.size());
    const double idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
    for (const auto& posting : entry->postings) {
      if (!allowed[posting.doc]) continue;
      const DocEntry& doc = docs_[posting.doc];
      const double wtf = boosts_.title * posting.tf_title +
                         boosts_.tags * posting.tf_tags +
                         boosts_.body * posting.tf_body;
      const double doc_len = boosts_.title * doc.len_title +
                             boosts_.tags * doc.len_tags +
                             boosts_.body * doc.len_body;
      const double norm =
          kK1 * (1.0 - kB + kB * doc_len / avg_weighted_len_);
      scores[posting.doc] += idf * wtf * (kK1 + 1.0) / (wtf + norm);
      matched[posting.doc] = 1;
    }
  }

  // Candidates: term matches when there is free text, otherwise every
  // filter-allowed document (a pure taxonomy browse).
  std::vector<std::uint32_t> candidates;
  for (std::size_t d = 0; d < docs_.size(); ++d) {
    if (query.terms.empty() ? allowed[d] : matched[d]) {
      candidates.push_back(static_cast<std::uint32_t>(d));
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [&scores](std::uint32_t a, std::uint32_t b) {
              if (scores[a] != scores[b]) return scores[a] > scores[b];
              return a < b;
            });
  if (candidates.size() > limit) candidates.resize(limit);

  hits.reserve(candidates.size());
  for (const std::uint32_t d : candidates) {
    Hit hit;
    hit.doc = d;
    hit.slug = docs_[d].slug;
    hit.title = docs_[d].title;
    hit.score = scores[d];
    hit.snippet = make_snippet(docs_[d].body, query.terms);
    hits.push_back(std::move(hit));
  }
  return hits;
}

}  // namespace pdcu::search
