#include "pdcu/search/index.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <iterator>
#include <limits>
#include <map>
#include <numeric>
#include <utility>

#include "pdcu/obs/span.hpp"
#include "pdcu/search/tokenizer.hpp"
#include "pdcu/support/hash.hpp"

namespace pdcu::search {

namespace {

// BM25 constants (standard Robertson defaults).
constexpr double kK1 = 1.2;
constexpr double kB = 0.75;

// Relative padding applied to upper bounds before a prune decision. Bounds
// are mathematically >= any achievable score, but the running sums compared
// against them accumulate in a different order than the canonical
// query-order score, so they can differ by a few ulps; inflating the bound
// keeps every skip decision conservative and the top-k bit-identical to
// exhaustive scoring.
constexpr double kBoundPad = 1.0 + 1e-9;

constexpr std::uint32_t kNoDoc = std::numeric_limits<std::uint32_t>::max();

inline std::uint32_t load_u16(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8);
}

inline std::uint32_t load_u32(const char* p) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
  }
  return value;
}

void put_u16(std::string& out, std::uint16_t value) {
  out.push_back(static_cast<char>(value & 0xff));
  out.push_back(static_cast<char>((value >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void put_str(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Encodes documents and posting lists into the canonical payload layout
/// (the post-header section of the on-disk format, see serialize.hpp).
std::string encode_payload(const std::vector<DocEntry>& docs,
                           const std::vector<TermPostings>& terms) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(docs.size()));
  for (const auto& doc : docs) {
    put_str(out, doc.slug);
    put_str(out, doc.title);
    put_str(out, doc.body);
    put_u32(out, doc.len_title);
    put_u32(out, doc.len_tags);
    put_u32(out, doc.len_body);
  }
  put_u32(out, static_cast<std::uint32_t>(terms.size()));
  for (const auto& entry : terms) {
    put_str(out, entry.term);
    put_u32(out, static_cast<std::uint32_t>(entry.postings.size()));
    for (const auto& posting : entry.postings) {
      put_u32(out, posting.doc);
      put_u16(out, posting.tf_title);
      put_u16(out, posting.tf_tags);
      put_u16(out, posting.tf_body);
    }
  }
  return out;
}

/// Bounds-checked reader that hands out views into the payload instead of
/// copying strings, so an mmap-backed index never materializes text.
class ViewReader {
 public:
  explicit ViewReader(std::string_view bytes) : bytes_(bytes) {}

  bool read_u32(std::uint32_t& value) {
    if (bytes_.size() - pos_ < 4) return fail();
    value = load_u32(bytes_.data() + pos_);
    pos_ += 4;
    return true;
  }

  bool read_view(std::string_view& value) {
    std::uint32_t size = 0;
    if (!read_u32(size) || bytes_.size() - pos_ < size) return fail();
    value = bytes_.substr(pos_, size);
    pos_ += size;
    return true;
  }

  /// A raw view of exactly `size` bytes (the packed postings of one term).
  bool read_bytes(std::size_t size, std::string_view& value) {
    if (bytes_.size() - pos_ < size) return fail();
    value = bytes_.substr(pos_, size);
    pos_ += size;
    return true;
  }

  bool exhausted() const { return pos_ == bytes_.size(); }
  bool ok() const { return ok_; }

 private:
  bool fail() {
    ok_ = false;
    return false;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// First posting index in [lo, hi) whose document id is >= doc.
std::size_t lower_bound_doc(const PostingsView& postings, std::size_t lo,
                            std::size_t hi, std::uint32_t doc) {
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (postings.doc_at(mid) < doc) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double weighted_tf(const FieldBoosts& boosts, const Posting& posting) {
  return boosts.title * posting.tf_title + boosts.tags * posting.tf_tags +
         boosts.body * posting.tf_body;
}

/// The BM25F contribution of one posting; the exact same expression the
/// original exhaustive scorer used, so precomputed-metadata paths reproduce
/// its doubles bit for bit.
double contribution(double idf, double wtf, double norm) {
  return idf * wtf * (kK1 + 1.0) / (wtf + norm);
}

/// Saturating uint16 increment: term frequencies above 65535 are all
/// equally "a lot" under BM25 saturation anyway.
void bump(std::uint16_t& tf) {
  if (tf != UINT16_MAX) ++tf;
}

/// The plain-text snippet/body source of one activity: every prose section
/// plus variation and citation text, newline-joined.
std::string body_text(const core::Activity& activity) {
  std::string text = activity.details;
  const auto append = [&text](std::string_view piece) {
    if (piece.empty()) return;
    if (!text.empty()) text += '\n';
    text += piece;
  };
  append(activity.accessibility);
  append(activity.assessment);
  for (const auto& variation : activity.variations) {
    append(variation.name);
    append(variation.description);
  }
  for (const auto& citation : activity.citations) append(citation.text);
  for (const auto& author : activity.authors) append(author);
  return text;
}

/// All taxonomy terms of one activity as one tag string ("PD-Communication
/// CS2 sight ...") so tag matching goes through the same tokenizer.
std::string tag_text(const core::Activity& activity) {
  std::string text;
  for (const auto& [key, terms] : activity.tags()) {
    for (const auto& term : terms) {
      if (!text.empty()) text += ' ';
      text += term;
    }
  }
  return text;
}

using BlockMap = std::map<std::string, std::vector<Posting>, std::less<>>;

/// Indexes documents [lo, hi), writing DocEntry rows in place and returning
/// the block's term map. Safe to run concurrently on disjoint ranges.
/// Tokenization streams through TokenWalker and term maps use heterogeneous
/// lookup, so a term's text is only copied to the heap the first time the
/// block sees it — tokenizing dominates build time at corpus scale.
BlockMap index_block(const core::Repository& repo, std::vector<DocEntry>& docs,
                     std::size_t lo, std::size_t hi) {
  BlockMap block;
  const auto& activities = repo.activities();
  std::map<std::string, Posting, std::less<>> per_doc;
  for (std::size_t d = lo; d < hi; ++d) {
    const auto& activity = activities[d];
    DocEntry& entry = docs[d];
    entry.slug = activity.slug;
    entry.title = activity.title;
    entry.body = body_text(activity);

    per_doc.clear();
    const auto doc_id = static_cast<std::uint32_t>(d);
    const auto index_field = [&per_doc, doc_id](std::string_view text,
                                                std::uint16_t Posting::*tf) {
      std::uint32_t length = 0;
      TokenWalker walker(text);
      while (walker.next()) {
        ++length;
        auto it = per_doc.find(walker.term());
        if (it == per_doc.end()) {
          it = per_doc.emplace(std::string(walker.term()), Posting{}).first;
        }
        it->second.doc = doc_id;
        bump(it->second.*tf);
      }
      return length;
    };
    entry.len_title = index_field(activity.title, &Posting::tf_title);
    entry.len_tags = index_field(tag_text(activity), &Posting::tf_tags);
    entry.len_body = index_field(entry.body, &Posting::tf_body);

    for (const auto& [term, posting] : per_doc) {
      const auto it = block.find(term);
      if (it != block.end()) {
        it->second.push_back(posting);
      } else {
        block.emplace(term, std::vector<Posting>{posting});
      }
    }
  }
  return block;
}

/// Appends `right` onto `left`. Blocks cover ascending document ranges and
/// parallel_reduce combines in index order, so postings stay sorted by doc.
BlockMap merge_blocks(BlockMap left, BlockMap right) {
  for (auto& [term, postings] : right) {
    auto& target = left[term];
    target.insert(target.end(), postings.begin(), postings.end());
  }
  return left;
}

}  // namespace

Posting PostingsView::operator[](std::size_t i) const {
  const char* p = data_ + i * kPostingBytes;
  Posting posting;
  posting.doc = load_u32(p);
  posting.tf_title = static_cast<std::uint16_t>(load_u16(p + 4));
  posting.tf_tags = static_cast<std::uint16_t>(load_u16(p + 6));
  posting.tf_body = static_cast<std::uint16_t>(load_u16(p + 8));
  return posting;
}

std::uint32_t PostingsView::doc_at(std::size_t i) const {
  return load_u32(data_ + i * kPostingBytes);
}

/// Per-shard ranking state: a bounded top-k heap ordered so the *worst*
/// kept entry sits at the front and is evicted first. Ordering is total and
/// deterministic: higher score wins, equal scores break toward the lower
/// document id (curation order).
struct SearchIndex::Ranked {
  struct Entry {
    double score = 0.0;
    std::uint32_t doc = 0;
  };

  static bool better(const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  }

  explicit Ranked(std::size_t limit) : limit_(limit) {}

  bool full() const { return heap_.size() >= limit_; }
  /// Score of the worst kept entry; only meaningful when full(). A new
  /// candidate whose score is strictly below this can never enter.
  double threshold() const { return heap_.front().score; }

  void offer(double score, std::uint32_t doc) {
    const Entry entry{score, doc};
    if (heap_.size() < limit_) {
      heap_.push_back(entry);
      std::push_heap(heap_.begin(), heap_.end(), better);
    } else if (better(entry, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), better);
      heap_.back() = entry;
      std::push_heap(heap_.begin(), heap_.end(), better);
    }
  }

  std::vector<Entry> sorted() && {
    std::sort(heap_.begin(), heap_.end(), better);
    return std::move(heap_);
  }

 private:
  std::size_t limit_ = 0;
  std::vector<Entry> heap_;
};

SearchIndex::SearchIndex() {
  // Canonical empty payload: zero documents, zero terms.
  std::string payload;
  put_u32(payload, 0);
  put_u32(payload, 0);
  auto storage = std::make_shared<const std::string>(std::move(payload));
  payload_ = *storage;
  owned_ = std::move(storage);
  const Status status = attach();
  (void)status;  // the canonical empty payload always attaches
}

SearchIndex SearchIndex::build(const core::Repository& repo,
                               rt::ThreadPool* pool,
                               obs::SpanRegistry* spans) {
  const auto started = std::chrono::steady_clock::now();
  const std::size_t n = repo.activities().size();
  std::vector<DocEntry> docs(n);

  BlockMap merged;
  if (pool != nullptr && pool->size() > 1 && n > 1) {
    merged = pool->parallel_reduce<BlockMap>(
        0, n, BlockMap{},
        [&repo, &docs](std::size_t lo, std::size_t hi) {
          return index_block(repo, docs, lo, hi);
        },
        [](BlockMap left, BlockMap right) {
          return merge_blocks(std::move(left), std::move(right));
        });
  } else {
    merged = index_block(repo, docs, 0, n);
  }

  const auto indexed = std::chrono::steady_clock::now();
  std::vector<TermPostings> terms;
  terms.reserve(merged.size());
  for (auto& [term, postings] : merged) {
    terms.push_back({term, std::move(postings)});
  }
  auto index = from_payload(encode_payload(docs, terms));
  // A freshly built index satisfies every invariant by construction.
  SearchIndex result = std::move(index).value();

  if (spans != nullptr) {
    const auto finished = std::chrono::steady_clock::now();
    const auto us = [](std::chrono::steady_clock::duration d) {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(d).count());
    };
    spans->record("search.build", us(finished - started));
    spans->record("search.merge", us(finished - indexed));
  }
  return result;
}

Expected<SearchIndex> SearchIndex::from_parts(std::vector<DocEntry> docs,
                                              std::vector<TermPostings> terms) {
  return from_payload(encode_payload(docs, terms));
}

Expected<SearchIndex> SearchIndex::from_payload(std::string payload) {
  SearchIndex index;
  auto storage = std::make_shared<const std::string>(std::move(payload));
  index.payload_ = *storage;
  index.owned_ = std::move(storage);
  index.mapping_.reset();
  const Status status = index.attach();
  if (!status) return status.error();
  return index;
}

Expected<SearchIndex> SearchIndex::from_mapped(
    std::shared_ptr<const fs::MappedFile> file, std::size_t payload_offset) {
  SearchIndex index;
  if (file == nullptr || payload_offset > file->size()) {
    return Error::make("search.index.truncated",
                       "index payload truncated or trailing bytes");
  }
  index.payload_ = file->view().substr(payload_offset);
  index.mapping_ = std::move(file);
  index.owned_.reset();
  const Status status = index.attach();
  if (!status) return status.error();
  return index;
}

Status SearchIndex::attach() {
  docs_.clear();
  terms_.clear();
  doc_by_slug_.clear();
  doc_norm_.clear();
  term_idf_.clear();
  term_max_.clear();
  block_offset_.clear();
  block_last_doc_.clear();
  block_max_.clear();

  // Parse the payload into directory views (zero-copy).
  ViewReader reader(payload_);
  std::uint32_t doc_count = 0;
  reader.read_u32(doc_count);
  for (std::uint32_t d = 0; reader.ok() && d < doc_count; ++d) {
    DocView doc;
    reader.read_view(doc.slug);
    reader.read_view(doc.title);
    reader.read_view(doc.body);
    reader.read_u32(doc.len_title);
    reader.read_u32(doc.len_tags);
    reader.read_u32(doc.len_body);
    if (reader.ok()) docs_.push_back(doc);
  }
  std::uint32_t term_count = 0;
  reader.read_u32(term_count);
  for (std::uint32_t t = 0; reader.ok() && t < term_count; ++t) {
    std::string_view term;
    reader.read_view(term);
    std::uint32_t posting_count = 0;
    reader.read_u32(posting_count);
    std::string_view packed;
    reader.read_bytes(std::size_t(posting_count) * kPostingBytes, packed);
    if (reader.ok()) {
      terms_.push_back({term, PostingsView(packed.data(), posting_count)});
    }
  }
  if (!reader.ok() || !reader.exhausted()) {
    return Error::make("search.index.truncated",
                       "index payload truncated or trailing bytes");
  }

  // Validate structural invariants (same guarantees the builder provides).
  for (std::size_t t = 0; t < terms_.size(); ++t) {
    if (t > 0 && !(terms_[t - 1].term < terms_[t].term)) {
      return Error::make(
          "search.index.order",
          "terms out of order at '" + std::string(terms_[t].term) + "'");
    }
    if (terms_[t].postings.empty()) {
      return Error::make(
          "search.index.postings",
          "term '" + std::string(terms_[t].term) + "' has no postings");
    }
    std::uint32_t last_doc = 0;
    bool first = true;
    for (std::size_t p = 0; p < terms_[t].postings.size(); ++p) {
      const std::uint32_t doc = terms_[t].postings.doc_at(p);
      if (doc >= docs_.size() || (!first && doc <= last_doc)) {
        return Error::make(
            "search.index.postings",
            "bad posting list for '" + std::string(terms_[t].term) + "'");
      }
      last_doc = doc;
      first = false;
    }
  }

  // BM25 length normalization per document.
  doc_by_slug_.reserve(docs_.size());
  double total = 0.0;
  for (std::size_t d = 0; d < docs_.size(); ++d) {
    doc_by_slug_.emplace(docs_[d].slug, static_cast<std::uint32_t>(d));
    total += boosts_.title * docs_[d].len_title +
             boosts_.tags * docs_[d].len_tags +
             boosts_.body * docs_[d].len_body;
  }
  avg_weighted_len_ = docs_.empty() ? 0.0 : total / double(docs_.size());
  doc_norm_.resize(docs_.size());
  for (std::size_t d = 0; d < docs_.size(); ++d) {
    const double doc_len = boosts_.title * docs_[d].len_title +
                           boosts_.tags * docs_[d].len_tags +
                           boosts_.body * docs_[d].len_body;
    doc_norm_[d] = kK1 * (1.0 - kB + kB * doc_len / avg_weighted_len_);
  }

  // Per-term idf plus the MaxScore metadata: the maximum contribution of
  // any posting of the term, and the same maximum per 128-posting block
  // alongside each block's last document id (for seek-time block lookup).
  const double n = double(docs_.size());
  term_idf_.resize(terms_.size());
  term_max_.resize(terms_.size());
  block_offset_.reserve(terms_.size() + 1);
  block_offset_.push_back(0);
  for (std::size_t t = 0; t < terms_.size(); ++t) {
    const PostingsView& postings = terms_[t].postings;
    const double df = double(postings.size());
    const double idf = std::log(1.0 + (n - df + 0.5) / (df + 0.5));
    term_idf_[t] = idf;
    double max_term = 0.0;
    double max_block = 0.0;
    for (std::size_t p = 0; p < postings.size(); ++p) {
      const Posting posting = postings[p];
      const double value = contribution(idf, weighted_tf(boosts_, posting),
                                        doc_norm_[posting.doc]);
      max_term = std::max(max_term, value);
      max_block = std::max(max_block, value);
      const bool block_end =
          (p + 1) % kBlockPostings == 0 || p + 1 == postings.size();
      if (block_end) {
        block_last_doc_.push_back(posting.doc);
        block_max_.push_back(max_block);
        max_block = 0.0;
      }
    }
    term_max_[t] = max_term;
    block_offset_.push_back(static_cast<std::uint32_t>(block_max_.size()));
  }

  fingerprint_ = hash::fnv1a_64(payload_);
  return Status::ok();
}

const TermView* SearchIndex::find_term(std::string_view term) const {
  const auto it =
      std::lower_bound(terms_.begin(), terms_.end(), term,
                       [](const TermView& entry, std::string_view t) {
                         return entry.term < t;
                       });
  if (it == terms_.end() || it->term != term) return nullptr;
  return &*it;
}

double SearchIndex::posting_contribution(std::size_t term_index,
                                         const Posting& posting) const {
  return contribution(term_idf_[term_index], weighted_tf(boosts_, posting),
                      doc_norm_[posting.doc]);
}

double SearchIndex::term_max_contribution(std::size_t term_index) const {
  return term_max_[term_index];
}

void SearchIndex::rank_exhaustive(const Query& query,
                                  const std::vector<char>* allowed,
                                  std::size_t lo, std::size_t hi,
                                  std::size_t limit, Ranked& out) const {
  // BM25F accumulation over the shard. query.terms is deduplicated by
  // parse_query, and postings iterate ascending by doc, so per-document
  // scores sum in a fixed order and rankings are deterministic.
  std::vector<double> scores(hi - lo, 0.0);
  std::vector<char> matched(hi - lo, 0);
  for (const auto& term : query.terms) {
    const TermView* entry = find_term(term);
    if (entry == nullptr) continue;
    const std::size_t t = static_cast<std::size_t>(entry - terms_.data());
    const double idf = term_idf_[t];
    const PostingsView& postings = entry->postings;
    std::size_t p = lower_bound_doc(postings, 0, postings.size(),
                                    static_cast<std::uint32_t>(lo));
    const std::size_t p_end = lower_bound_doc(postings, p, postings.size(),
                                              static_cast<std::uint32_t>(hi));
    for (; p < p_end; ++p) {
      const Posting posting = postings[p];
      if (allowed != nullptr && !(*allowed)[posting.doc]) continue;
      scores[posting.doc - lo] += contribution(
          idf, weighted_tf(boosts_, posting), doc_norm_[posting.doc]);
      matched[posting.doc - lo] = 1;
    }
  }
  (void)limit;
  for (std::size_t d = lo; d < hi; ++d) {
    if (matched[d - lo]) {
      out.offer(scores[d - lo], static_cast<std::uint32_t>(d));
    }
  }
}

void SearchIndex::rank_maxscore(const Query& query,
                                const std::vector<char>* allowed,
                                std::size_t lo, std::size_t hi,
                                std::size_t limit, Ranked& out) const {
  // Document-at-a-time block-max WAND. Documents whose whole-list (and then
  // whole-block) upper bounds cannot beat the current top-k threshold are
  // skipped without being scored; every surviving candidate is scored
  // exactly, in query-term order, so results match the exhaustive scorer
  // bit for bit.
  struct Cur {
    std::uint32_t term = 0;  ///< index into terms_
    PostingsView postings;
    std::size_t pos = 0;
    std::size_t end = 0;
    std::uint32_t doc = kNoDoc;  ///< doc at pos; kNoDoc when exhausted
    /// Cached bounds of the block containing pos, refreshed lazily when the
    /// cursor crosses block_end_pos — block lookups happen per block, never
    /// per document. (Single-list fast path only.)
    std::size_t block_end_pos = 0;  ///< first position past the cached block
    double block_max = 0.0;
    std::uint32_t block_last = 0;  ///< last doc id of the cached block
    /// Shallow block pointer for block-max pivoting: index of the first
    /// block whose last document reaches the current pivot. Monotone.
    std::size_t sb = 0;
  };
  const auto refresh_block = [this](Cur& c) {
    const std::size_t b = block_offset_[c.term] + c.pos / kBlockPostings;
    c.block_end_pos = (c.pos / kBlockPostings + 1) * kBlockPostings;
    c.block_max = block_max_[b];
    c.block_last = block_last_doc_[b];
  };

  // Cursors in query-term order — the canonical score summation order.
  std::vector<Cur> cursors;
  cursors.reserve(query.terms.size());
  for (const auto& term : query.terms) {
    const TermView* entry = find_term(term);
    if (entry == nullptr) continue;
    Cur cursor;
    cursor.term = static_cast<std::uint32_t>(entry - terms_.data());
    cursor.postings = entry->postings;
    cursor.pos = lower_bound_doc(cursor.postings, 0, cursor.postings.size(),
                                 static_cast<std::uint32_t>(lo));
    cursor.end = lower_bound_doc(cursor.postings, cursor.pos,
                                 cursor.postings.size(),
                                 static_cast<std::uint32_t>(hi));
    if (cursor.pos == cursor.end) continue;
    cursor.doc = cursor.postings.doc_at(cursor.pos);
    cursor.sb = block_offset_[cursor.term] + cursor.pos / kBlockPostings;
    cursors.push_back(cursor);
  }
  const std::size_t m = cursors.size();
  if (m == 0) return;

  if (m == 1) {
    // Single-list fast path: no pivoting, no contribution reordering — walk
    // the list block by block, dropping every block whose maximum cannot
    // beat the current top-k threshold. The common head-of-Zipf single-term
    // query touches only the strongest few blocks this way.
    Cur& c = cursors[0];
    while (c.pos < c.end) {
      if (c.pos >= c.block_end_pos) refresh_block(c);
      const std::size_t stop = std::min(c.block_end_pos, c.end);
      if (out.full() && c.block_max * kBoundPad < out.threshold()) {
        c.pos = stop;
        continue;
      }
      for (; c.pos < stop; ++c.pos) {
        const Posting posting = c.postings[c.pos];
        if (allowed != nullptr && !(*allowed)[posting.doc]) continue;
        out.offer(posting_contribution(c.term, posting), posting.doc);
      }
    }
    return;
  }

  // Block-max WAND over the remaining lists. Cursors stay in query order
  // (their index is the canonical score-summation position); a doc-sorted
  // view `sorted` drives pivoting. Each round:
  //
  //   1. Sort cursors by current document. The *pivot* is the first sorted
  //      position where the cumulative whole-list maxima reach the top-k
  //      threshold — no document before the pivot's can make the heap, so
  //      the lists behind it leapfrog straight to the pivot document.
  //   2. Before scoring, re-check with *block* maxima: each list's bound
  //      shrinks to the max of the block that would contain the pivot
  //      document. When even that cannot reach the threshold, every
  //      document up to the nearest block boundary is dead and the cursors
  //      jump the whole stretch without touching a posting.
  //
  // Doc-sorted pivoting is what keeps dense two-term queries cheap: the
  // pivot alternates between the lists, so each round gallops over the run
  // of documents the other list does not contain — where min-doc pivoting
  // would score every candidate in either list.
  const auto advance = [](Cur& c) {
    ++c.pos;
    c.doc = c.pos < c.end ? c.postings.doc_at(c.pos) : kNoDoc;
  };
  // First posting at or past `target`: gallop, then binary-search the last
  // doubled span. Adjacent targets cost O(1), far ones O(log distance) —
  // the right shape for leapfrogging intersections.
  const auto seek = [](Cur& c, std::uint32_t target) {
    if (c.doc >= target) return;  // also covers exhausted (doc == kNoDoc)
    std::size_t s_lo = c.pos;     // invariant: doc_at(s_lo) < target
    std::size_t step = 1;
    while (s_lo + step < c.end && c.postings.doc_at(s_lo + step) < target) {
      s_lo += step;
      step <<= 1;
    }
    std::size_t s_hi = std::min(s_lo + step, c.end);
    ++s_lo;
    while (s_lo < s_hi) {
      const std::size_t mid = s_lo + (s_hi - s_lo) / 2;
      if (c.postings.doc_at(mid) < target) {
        s_lo = mid + 1;
      } else {
        s_hi = mid;
      }
    }
    c.pos = s_lo;
    c.doc = s_lo < c.end ? c.postings.doc_at(s_lo) : kNoDoc;
  };
  // Advances the cursor's shallow block pointer to the block that would
  // hold `target` (the first block whose last document reaches it). The
  // pointer only moves forward, so the walk is amortized O(1) per query.
  const auto shallow_to = [this](Cur& c, std::uint32_t target) {
    const std::size_t sb_end = block_offset_[c.term + 1];
    while (c.sb < sb_end && block_last_doc_[c.sb] < target) ++c.sb;
  };

  // Doc-sorted view of the cursors. Re-sorted by insertion each round: the
  // order barely changes between rounds, so this is effectively linear.
  std::vector<std::uint32_t> sorted(m);
  std::iota(sorted.begin(), sorted.end(), 0);

  // Contributions of the pivot document, as (query position, value); the
  // final score sums them sorted by position — the canonical order.
  std::vector<std::pair<std::uint32_t, double>> parts;
  parts.reserve(m);

  (void)limit;
  while (true) {
    for (std::size_t i = 1; i < m; ++i) {
      const std::uint32_t v = sorted[i];
      const std::uint32_t doc = cursors[v].doc;
      std::size_t j = i;
      for (; j > 0 && cursors[sorted[j - 1]].doc > doc; --j) {
        sorted[j] = sorted[j - 1];
      }
      sorted[j] = v;
    }
    const bool full = out.full();
    const double theta = full ? out.threshold() : 0.0;

    // Pivot: first sorted position where the cumulative whole-list maxima
    // could reach the threshold. Documents seen only by lists before it
    // are bounded below theta, so skipping them is rank-safe.
    std::size_t p = 0;
    if (full) {
      double acc = 0.0;
      for (p = 0; p < m; ++p) {
        acc += term_max_[cursors[sorted[p]].term];
        if (acc * kBoundPad >= theta) break;
      }
      if (p == m) break;  // no remaining document can displace the top-k
    }
    const std::uint32_t pivot_doc = cursors[sorted[p]].doc;
    if (pivot_doc == kNoDoc) break;  // the lists that matter are exhausted
    // Fold in every further list already sitting on the pivot document, so
    // the block-max skip target below lands strictly past it.
    while (p + 1 < m && cursors[sorted[p + 1]].doc == pivot_doc) ++p;
    const std::uint32_t next_doc =
        p + 1 < m ? cursors[sorted[p + 1]].doc : kNoDoc;

    if (full) {
      // Block-max refinement over the pivot-relevant lists. The bound is
      // valid for every document in [pivot_doc, block_end]: each list's
      // postings there stay inside its shallow block, and the remaining
      // lists only start at next_doc, past any target we would skip to.
      double block_sum = 0.0;
      std::uint32_t block_end = kNoDoc;
      for (std::size_t i = 0; i <= p; ++i) {
        Cur& c = cursors[sorted[i]];
        shallow_to(c, pivot_doc);
        if (c.sb < block_offset_[c.term + 1]) {
          block_sum += block_max_[c.sb];
          block_end = std::min(block_end, block_last_doc_[c.sb]);
        }
      }
      if (block_sum * kBoundPad < theta) {
        std::uint32_t target = next_doc;
        if (block_end != kNoDoc && block_end + 1 < target) {
          target = block_end + 1;
        }
        for (std::size_t i = 0; i <= p; ++i) seek(cursors[sorted[i]], target);
        continue;
      }
    }

    if (cursors[sorted[0]].doc == pivot_doc) {
      // Aligned: lists sorted[0..p] all sit on the pivot document. Score it
      // exactly, summing in query-term order so the result matches the
      // exhaustive scorer bit for bit.
      if (allowed == nullptr || (*allowed)[pivot_doc]) {
        parts.clear();
        for (std::size_t i = 0; i <= p; ++i) {
          const Cur& c = cursors[sorted[i]];
          parts.emplace_back(sorted[i],
                             posting_contribution(c.term, c.postings[c.pos]));
        }
        std::sort(parts.begin(), parts.end());
        double score = 0.0;
        for (const auto& [pos, value] : parts) score += value;
        out.offer(score, pivot_doc);
      }
      for (std::size_t i = 0; i <= p; ++i) advance(cursors[sorted[i]]);
    } else {
      // Not aligned yet: leapfrog the lagging lists to the pivot. The
      // documents they jump over live only in lists whose combined maxima
      // sit below the threshold.
      for (std::size_t i = 0; i < p; ++i) seek(cursors[sorted[i]], pivot_doc);
    }
  }
}

std::vector<Hit> SearchIndex::search(const Query& query,
                                     const tax::TermIndex* taxonomy,
                                     std::size_t limit) const {
  SearchOptions options;
  options.limit = limit;
  return search(query, taxonomy, options);
}

std::vector<Hit> SearchIndex::search(const Query& query,
                                     const tax::TermIndex* taxonomy,
                                     const SearchOptions& options) const {
  std::vector<Hit> hits;
  const std::size_t limit = options.limit;
  if (docs_.empty() || query.empty() || limit == 0) return hits;

  // Resolve filters to an allowed-document mask. An unresolvable filter
  // (unknown term, ambiguous prefix, or no taxonomy index) matches nothing:
  // silently ignoring a filter would return confidently wrong results.
  //
  // Resolution is the expensive half of a filtered query — every tagged
  // page's slug hashes through doc_by_slug_ — so resolved sets memoize in
  // options.filter_cache when the caller provides one. The single-filter
  // case (the common one) then borrows the cached mask without copying.
  std::vector<char> allowed_mask;
  const std::vector<char>* allowed = nullptr;
  std::shared_ptr<const FilterCache::Entry> cached;  // keeps the mask alive
  if (!query.filters.empty()) {
    for (std::size_t f = 0; f < query.filters.size(); ++f) {
      const auto& filter = query.filters[f];
      if (taxonomy == nullptr) return hits;
      const auto term = taxonomy->resolve_term(filter.taxonomy, filter.value);
      if (!term.has_value()) return hits;
      const auto compute = [&] {
        FilterCache::Entry entry;
        entry.mask.assign(docs_.size(), 0);
        const auto* pages = taxonomy->find_pages(filter.taxonomy, *term);
        if (pages != nullptr) {
          entry.docs.reserve(pages->size());
          for (const auto& page : *pages) {
            const auto it = doc_by_slug_.find(page.slug);
            if (it == doc_by_slug_.end() || entry.mask[it->second]) continue;
            entry.mask[it->second] = 1;
            entry.docs.push_back(it->second);
          }
          std::sort(entry.docs.begin(), entry.docs.end());
        }
        return entry;
      };
      std::shared_ptr<const FilterCache::Entry> entry;
      if (options.filter_cache != nullptr) {
        entry = options.filter_cache->get(filter.taxonomy, *term, compute);
      } else {
        entry = std::make_shared<const FilterCache::Entry>(compute());
      }
      if (f == 0) {
        cached = std::move(entry);
        allowed = &cached->mask;
      } else {
        if (allowed != &allowed_mask) {  // second filter: switch to a copy
          allowed_mask = *allowed;
          allowed = &allowed_mask;
        }
        for (std::size_t d = 0; d < allowed_mask.size(); ++d) {
          allowed_mask[d] = allowed_mask[d] && entry->mask[d];
        }
      }
    }
  }

  std::vector<Ranked::Entry> top;
  if (query.terms.empty()) {
    // Pure taxonomy browse: filter-allowed documents in curation order,
    // score 0 (equal scores order by doc id, i.e. curation order).
    for (std::size_t d = 0; d < docs_.size() && top.size() < limit; ++d) {
      if ((*allowed)[d]) {
        top.push_back({0.0, static_cast<std::uint32_t>(d)});
      }
    }
  } else {
    const bool exhaustive = options.algo == SearchOptions::Algo::kExhaustive;
    const auto run_range = [&](std::size_t lo, std::size_t hi) {
      Ranked ranked(limit);
      if (exhaustive) {
        rank_exhaustive(query, allowed, lo, hi, limit, ranked);
      } else {
        rank_maxscore(query, allowed, lo, hi, limit, ranked);
      }
      return std::move(ranked).sorted();
    };
    rt::ThreadPool* pool = options.pool;
    if (pool != nullptr && pool->size() > 1 &&
        docs_.size() >= 2 * options.min_shard_docs) {
      // Per-shard top-k on the pool, merged in index order. Per-document
      // scores are identical in every shard layout (canonical summation),
      // and the merge keeps the globally best `limit` entries under the
      // same total order, so the result is bit-identical to a serial run.
      top = pool->parallel_reduce<std::vector<Ranked::Entry>>(
          0, docs_.size(), {},
          [&run_range](std::size_t lo, std::size_t hi) {
            return run_range(lo, hi);
          },
          [limit](std::vector<Ranked::Entry> left,
                  std::vector<Ranked::Entry> right) {
            std::vector<Ranked::Entry> merged;
            merged.reserve(std::min(left.size() + right.size(), limit));
            std::merge(left.begin(), left.end(), right.begin(), right.end(),
                       std::back_inserter(merged), Ranked::better);
            if (merged.size() > limit) merged.resize(limit);
            return merged;
          });
    } else {
      top = run_range(0, docs_.size());
    }
  }

  hits.reserve(top.size());
  for (const auto& entry : top) {
    Hit hit;
    hit.doc = entry.doc;
    hit.slug = std::string(docs_[entry.doc].slug);
    hit.title = std::string(docs_[entry.doc].title);
    hit.score = entry.score;
    if (options.snippets) {
      hit.snippet = make_snippet(docs_[entry.doc].body, query.terms);
    }
    hits.push_back(std::move(hit));
  }
  return hits;
}

}  // namespace pdcu::search
