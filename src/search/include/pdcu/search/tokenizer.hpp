// Text normalization for the search index and queries. Both sides of the
// match (indexing and querying) must tokenize identically, so this is the
// single definition: ASCII-alnum runs, lowercased, stopwords dropped, and a
// light suffix-stripping stem (plurals, -ing, -ed) so "sorting networks"
// matches "sorted network".
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace pdcu::search {

/// One token with its byte span in the original text (for highlighting).
/// `term` is the normalized form; `begin`/`end` delimit the raw word.
struct TokenSpan {
  std::string term;
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// True for words too common to be worth indexing ("the", "and", ...).
/// Expects an already-lowercased word.
bool is_stopword(std::string_view word);

/// Light stemming of an already-lowercased word: -ies/-sses/-s plurals,
/// then -ing/-ed verb suffixes when enough stem remains. Deliberately
/// weaker than Porter: it never rewrites short words, so taxonomy codes
/// like "pd" and "c" survive untouched.
std::string stem(std::string word);

/// Normalized index terms of `text`, in order of appearance. Stopwords and
/// empty tokens are dropped; duplicates are preserved (term frequency).
std::vector<std::string> tokenize(std::string_view text);

/// Allocation-free tokenization: next() scans the following token into an
/// internal reused buffer. Produces exactly the token sequence of
/// tokenize_spans() without a heap allocation per token, which is what the
/// indexing and snippet hot paths want.
///
///   TokenWalker walker(text);
///   while (walker.next()) use(walker.term(), walker.begin(), walker.end());
class TokenWalker {
 public:
  explicit TokenWalker(std::string_view text) : text_(text) {}

  /// Advances to the next surviving token; false at end of text.
  bool next();

  /// The normalized term; a view into an internal buffer that the next
  /// next() call overwrites.
  std::string_view term() const { return word_; }
  std::size_t begin() const { return begin_; }
  std::size_t end() const { return end_; }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  std::string word_;
  std::size_t begin_ = 0;
  std::size_t end_ = 0;
};

/// Like tokenize(), but keeps the byte span of every surviving token so
/// snippets can highlight the raw text.
std::vector<TokenSpan> tokenize_spans(std::string_view text);

}  // namespace pdcu::search
