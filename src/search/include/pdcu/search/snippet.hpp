// Snippet extraction: given a document body and the query's normalized
// terms, pick the window of text that covers the most distinct terms and
// report the byte spans of every match so renderers can highlight them
// (the HTML API wraps them in <mark>, the CLI underlines).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pdcu::search {

/// A snippet of document text with highlight spans relative to `text`.
struct Snippet {
  std::string text;
  std::vector<std::pair<std::size_t, std::size_t>> highlights;
  bool clipped_front = false;  ///< text starts mid-document (render "...")
  bool clipped_back = false;   ///< text ends mid-document

  /// Renders with every highlight wrapped in open/close markers and every
  /// non-marker segment passed through `escape` (e.g. html_escape); pass
  /// an identity function for plain output.
  std::string render(std::string_view open, std::string_view close,
                     std::string (*escape)(std::string_view)) const;
};

/// Extracts the best window of roughly `window` bytes. With no matching
/// term the snippet is simply the head of the body.
Snippet make_snippet(std::string_view body,
                     const std::vector<std::string>& terms,
                     std::size_t window = 160);

}  // namespace pdcu::search
