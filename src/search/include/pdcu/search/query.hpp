// The query language: free text plus taxonomy filter prefixes.
//
//   message passing cs2013:PD-Communication course:CS2 sense:sight
//
// Words carrying a known prefix become filters against the taxonomy index;
// everything else is tokenized exactly like indexed text and ranked with
// BM25. Unknown prefixes ("foo:bar") fall through to free text so a query
// containing a literal colon still searches.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pdcu::search {

/// One taxonomy restriction: `taxonomy` is the canonical front-matter key
/// ("cs2013", "tcpp", "courses", "senses"), `value` the user's spelling of
/// the term (resolved case-insensitively at query time).
struct Filter {
  std::string taxonomy;
  std::string value;

  bool operator==(const Filter&) const = default;
};

/// A parsed query.
struct Query {
  std::vector<std::string> terms;    ///< normalized free-text terms, deduped
  std::vector<Filter> filters;       ///< taxonomy restrictions, ANDed
  std::string raw;                   ///< the original input, for echoing

  bool empty() const { return terms.empty() && filters.empty(); }
};

/// Maps a filter prefix ("cs2013", "course", "courses", "sense", ...) to
/// its canonical taxonomy key; empty view when the prefix is unknown.
std::string_view taxonomy_for_prefix(std::string_view prefix);

/// Parses user input into terms and filters. Never fails: unparseable
/// pieces degrade to free text.
Query parse_query(std::string_view input);

}  // namespace pdcu::search
