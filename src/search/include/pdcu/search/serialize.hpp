// Binary index persistence, so `pdcu serve` can cold-start from a prebuilt
// index instead of re-tokenizing the corpus. The format is a fixed header
// (magic, version, FNV-1a checksum of the payload) followed by
// length-prefixed little-endian records; load verifies all three before
// parsing and bounds-checks every read, so a truncated or corrupted file is
// an Error, never undefined behavior.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>

#include "pdcu/search/index.hpp"
#include "pdcu/support/expected.hpp"

namespace pdcu::search {

/// Current on-disk format version; bumped on any layout change.
inline constexpr std::uint32_t kIndexFormatVersion = 1;

/// Serializes the index to its binary form (header + payload).
std::string serialize_index(const SearchIndex& index);

/// Parses a serialized index, verifying magic, version, and checksum.
Expected<SearchIndex> deserialize_index(std::string_view bytes);

/// Writes the serialized index to `path` (creating parent directories).
Status save_index(const SearchIndex& index, const std::filesystem::path& path);

/// Reads and deserializes an index file (payload copied to the heap).
Expected<SearchIndex> load_index(const std::filesystem::path& path);

/// Memory-maps an index file and serves from the mapping in place: the
/// same header verification as load_index, but postings and document text
/// stay in the page cache instead of being copied into heap vectors. The
/// returned index (and every copy of it) keeps the mapping alive.
Expected<SearchIndex> mmap_index(const std::filesystem::path& path);

}  // namespace pdcu::search
