// The search index: a field-weighted inverted index over the curated
// activities with BM25 ranking. Three fields per document — title, taxonomy
// tags, and body (details, accessibility, assessment, variations,
// citations) — each with its own boost, folded BM25F-style into one weighted
// term frequency per posting.
//
// Storage model: the index always serves from its *serialized payload* —
// one contiguous byte buffer holding the document table and the packed
// posting lists — with small directory vectors of views pointing into it.
// The buffer is either heap-owned (built or deserialized) or a shared
// memory-mapped file (`mmap_index` in serialize.hpp), and the query path is
// identical either way: postings decode on the fly from the packed
// little-endian records, so `pdcu serve --index --mmap` serves straight
// from the page cache without materializing a single heap posting.
//
// Construction can run in parallel on the existing rt::ThreadPool: each
// block of documents builds a local term map, and blocks merge in document
// order, so the result is bit-identical to a serial build. Queries are
// const and lock-free on the index itself (an optional FilterCache takes a
// shared lock), so any number of server threads can search one index
// concurrently; with a pool in SearchOptions, one query additionally
// shards across workers (per-shard top-k, deterministic merge).
//
// Ranked retrieval runs document-at-a-time block-max WAND by default: per
// term the index keeps the maximum BM25F contribution of any posting and
// of every kBlockPostings-posting block, so documents whose bounds cannot
// reach the current top-k threshold are skipped without scoring — often a
// whole block at a time. Early termination is rank-safe — candidate
// documents are always scored with the exact BM25F sum in query-term
// order, so the returned top-k (documents, scores, and order) is
// bit-identical to exhaustive scoring; the property suite in
// tests/search/scale_test.cpp locks this in across synthetic corpora.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "pdcu/core/repository.hpp"
#include "pdcu/runtime/thread_pool.hpp"
#include "pdcu/search/query.hpp"
#include "pdcu/search/snippet.hpp"
#include "pdcu/support/expected.hpp"
#include "pdcu/support/mmap.hpp"
#include "pdcu/taxonomy/term_index.hpp"

namespace pdcu::obs {
class SpanRegistry;
}  // namespace pdcu::obs

namespace pdcu::search {

/// Per-field term frequencies of one term in one document.
struct Posting {
  std::uint32_t doc = 0;
  std::uint16_t tf_title = 0;
  std::uint16_t tf_tags = 0;
  std::uint16_t tf_body = 0;

  bool operator==(const Posting&) const = default;
};

/// One posting's packed on-disk footprint: doc u32 + three tf u16, all
/// little-endian, no padding.
inline constexpr std::size_t kPostingBytes = 10;

/// Postings per block-max block: each block of this many postings carries
/// the maximum BM25F contribution any of its documents can score, which is
/// what lets the pruned scorer skip whole blocks without decoding them.
/// Small blocks make the bounds sharp: with field boosts, one title hit is
/// enough to pin a whole block's bound at the title level, so coarse
/// blocks rarely skip. 16 postings costs 16 metadata bytes per 160 payload
/// bytes (derived at attach, never serialized) and skips 3-10x more
/// postings than 128 did on the synthetic corpus.
inline constexpr std::size_t kBlockPostings = 16;

/// All postings of one term, ascending by document id (builder/loader
/// exchange format; the index itself serves packed views).
struct TermPostings {
  std::string term;
  std::vector<Posting> postings;

  bool operator==(const TermPostings&) const = default;
};

/// One indexed document in builder/loader exchange form.
struct DocEntry {
  std::string slug;
  std::string title;
  std::string body;  ///< plain text snippet source
  std::uint32_t len_title = 0;
  std::uint32_t len_tags = 0;
  std::uint32_t len_body = 0;

  bool operator==(const DocEntry&) const = default;
};

/// A term's postings as a view over the packed payload records; decodes
/// lazily, so iterating an mmap-backed list touches only the mapped pages.
class PostingsView {
 public:
  PostingsView() = default;
  PostingsView(const char* data, std::uint32_t count)
      : data_(data), count_(count) {}

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  Posting operator[](std::size_t i) const;
  /// Just the document id of posting `i` (the hot field during seeks).
  std::uint32_t doc_at(std::size_t i) const;

  /// Forward iterator yielding decoded postings by value.
  class iterator {
   public:
    using value_type = Posting;
    using difference_type = std::ptrdiff_t;

    iterator(const PostingsView* view, std::size_t pos)
        : view_(view), pos_(pos) {}
    Posting operator*() const { return (*view_)[pos_]; }
    iterator& operator++() {
      ++pos_;
      return *this;
    }
    bool operator==(const iterator& other) const = default;

   private:
    const PostingsView* view_;
    std::size_t pos_ = 0;
  };
  iterator begin() const { return {this, 0}; }
  iterator end() const { return {this, count_}; }

 private:
  const char* data_ = nullptr;
  std::uint32_t count_ = 0;
};

/// Directory row for one term: the term text and its packed postings, both
/// views into the index's payload storage.
struct TermView {
  std::string_view term;
  PostingsView postings;
};

/// Directory row for one document: identity plus the plain text used for
/// snippets and the per-field token counts BM25 needs for normalization.
struct DocView {
  std::string_view slug;
  std::string_view title;
  std::string_view body;
  std::uint32_t len_title = 0;
  std::uint32_t len_tags = 0;
  std::uint32_t len_body = 0;
};

/// One ranked result.
struct Hit {
  std::uint32_t doc = 0;
  std::string slug;
  std::string title;
  double score = 0.0;
  Snippet snippet;
};

/// BM25F field boosts; title matches dominate, tags beat body prose.
struct FieldBoosts {
  double title = 4.0;
  double tags = 2.5;
  double body = 1.0;
};

/// Memoizes resolved taxonomy-filter document sets for one immutable
/// (index, taxonomy) snapshot. Resolving a filter like `cs2013:PD_1` walks
/// every tagged page and hashes its slug — tens of thousands of lookups on
/// a large corpus — so the server caches the resulting doc set per
/// (taxonomy, term) pair. Thread-safe; entries are immutable once built.
///
/// Invalidation is by ownership, not by eviction: the cache describes one
/// index snapshot, so the server keeps it next to the index in the same
/// RCU snapshot and a reload swaps in a fresh empty cache with the fresh
/// index. Never share one FilterCache across different indexes.
class FilterCache {
 public:
  /// One resolved filter: the matching documents both ways around —
  /// ascending ids for intersection, a doc_count-size byte mask for O(1)
  /// membership during ranking.
  struct Entry {
    std::vector<std::uint32_t> docs;
    std::vector<char> mask;
  };

  FilterCache() = default;
  // Movable so owners (Router) stay movable. Moving while other threads
  // still query the source is a caller bug, same contract as QueryCache.
  FilterCache(FilterCache&& other) noexcept
      : entries_(std::move(other.entries_)) {}
  FilterCache& operator=(FilterCache&& other) noexcept {
    if (this != &other) entries_ = std::move(other.entries_);
    return *this;
  }
  FilterCache(const FilterCache&) = delete;
  FilterCache& operator=(const FilterCache&) = delete;

  /// The entry for a resolved (taxonomy, term) filter, computing and
  /// inserting it on first use. `compute` must be pure: the same key must
  /// map to the same entry for the cache's whole lifetime.
  template <typename Compute>
  std::shared_ptr<const Entry> get(std::string_view taxonomy,
                                   std::string_view term, Compute&& compute) {
    std::string key;
    key.reserve(taxonomy.size() + 1 + term.size());
    key.append(taxonomy);
    key.push_back('\0');  // unambiguous separator: tags never contain NUL
    key.append(term);
    {
      std::shared_lock lock(mutex_);
      const auto it = entries_.find(key);
      if (it != entries_.end()) return it->second;
    }
    auto entry = std::make_shared<const Entry>(compute());
    std::unique_lock lock(mutex_);
    // Losing a race just means both sides computed the same entry; keep
    // the first so every caller sees one pointer value per key.
    return entries_.try_emplace(std::move(key), std::move(entry))
        .first->second;
  }

  std::size_t size() const {
    std::shared_lock lock(mutex_);
    return entries_.size();
  }

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, std::shared_ptr<const Entry>, std::less<>> entries_;
};

/// How one query executes. The default — MaxScore with block-max bounds,
/// serial — is correct at every corpus size; a pool adds per-shard top-k
/// fan-out for large corpora, and kExhaustive forces the reference
/// scan-everything scorer (benchmarks, parity tests).
struct SearchOptions {
  std::size_t limit = 10;

  /// Shard query execution across this pool's workers when the corpus is
  /// large enough (>= 2 * min_shard_docs). Results are bit-identical to a
  /// serial query. The pool must not be the pool the caller is currently
  /// running on (nested blocking would deadlock a busy pool).
  rt::ThreadPool* pool = nullptr;

  enum class Algo {
    kAuto,        ///< kMaxScore
    kExhaustive,  ///< score every posting of every query term
    kMaxScore,    ///< block-max early termination (rank-safe)
  };
  Algo algo = Algo::kAuto;

  /// Smallest per-shard document range worth a task dispatch.
  std::size_t min_shard_docs = 8192;

  /// Memoizes taxonomy-filter resolution across queries. Must describe
  /// this index + taxonomy snapshot (see FilterCache). Null recomputes the
  /// filter per query.
  FilterCache* filter_cache = nullptr;

  /// Generate a highlighted snippet per hit. The snippet walks the whole
  /// document body, a per-hit cost independent of corpus size — benchmarks
  /// isolating ranking turn it off; Hit::snippet comes back empty.
  bool snippets = true;
};

class SearchIndex {
 public:
  /// An empty index (canonical empty payload).
  SearchIndex();

  /// Indexes every activity of `repo` in curation order. With a pool the
  /// build shards across its workers; the result is identical either way.
  /// With `spans`, the wall time lands there as a "search.build" span (and
  /// "search.merge" for the shard-merge tail), so repeated builds — watch
  /// mode reloads, benchmarks — accumulate a latency histogram.
  static SearchIndex build(const core::Repository& repo,
                           rt::ThreadPool* pool = nullptr,
                           obs::SpanRegistry* spans = nullptr);

  /// Reassembles an index from builder parts, validating invariants
  /// (terms sorted and unique, postings sorted, doc ids in range).
  static Expected<SearchIndex> from_parts(std::vector<DocEntry> docs,
                                          std::vector<TermPostings> terms);

  /// Adopts serialized payload bytes (the post-header section of the
  /// on-disk format), validating the same invariants as from_parts.
  static Expected<SearchIndex> from_payload(std::string payload);

  /// Serves directly from a mapped index file: `payload_offset` is where
  /// the payload starts inside the mapping. No posting or document text is
  /// copied to the heap; the mapping stays alive for as long as any copy
  /// of the returned index (or a Hit-producing call on it) needs it.
  static Expected<SearchIndex> from_mapped(
      std::shared_ptr<const fs::MappedFile> file, std::size_t payload_offset);

  /// Ranked search. Filters resolve against `taxonomy` (pass
  /// repo.index()); a query with filters but a null taxonomy, or with a
  /// filter that resolves to no term, matches nothing. A filter-only query
  /// returns the filtered documents in curation order with score 0.
  std::vector<Hit> search(const Query& query, const tax::TermIndex* taxonomy,
                          std::size_t limit = 10) const;

  /// Ranked search with explicit execution options (algorithm choice and
  /// optional query-time sharding). Every option combination returns the
  /// same hits in the same order with the same scores.
  std::vector<Hit> search(const Query& query, const tax::TermIndex* taxonomy,
                          const SearchOptions& options) const;

  std::size_t doc_count() const { return docs_.size(); }
  std::size_t term_count() const { return terms_.size(); }
  const std::vector<DocView>& docs() const { return docs_; }
  const std::vector<TermView>& terms() const { return terms_; }

  /// Postings of one normalized term; nullptr when absent.
  const TermView* find_term(std::string_view term) const;

  /// The serialized payload this index serves from (no file header).
  std::string_view payload() const { return payload_; }

  /// True when the payload is a view into a memory-mapped file.
  bool mapped() const { return mapping_ != nullptr; }

  /// FNV-1a fingerprint of the payload — stable identity of the served
  /// corpus, used to key caches across reloads.
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// The exact per-posting BM25F contribution, exposed so the scale suite
  /// can verify the stored block bounds really dominate every posting.
  double posting_contribution(std::size_t term_index,
                              const Posting& posting) const;
  /// The stored upper bound of one term (max over its postings).
  double term_max_contribution(std::size_t term_index) const;

  bool operator==(const SearchIndex& other) const {
    return payload_ == other.payload_;
  }

 private:
  /// Parses payload_ into the directory views, validating invariants,
  /// then precomputes the scoring metadata (norms, idf, block maxima).
  Status attach();

  struct Ranked;  // internal per-shard execution state

  /// Exhaustively scores documents [lo, hi) into `out` (top-k only).
  void rank_exhaustive(const Query& query, const std::vector<char>* allowed,
                       std::size_t lo, std::size_t hi, std::size_t limit,
                       Ranked& out) const;
  /// MaxScore with block-max bounds over [lo, hi); identical results.
  void rank_maxscore(const Query& query, const std::vector<char>* allowed,
                     std::size_t lo, std::size_t hi, std::size_t limit,
                     Ranked& out) const;

  /// Byte storage: exactly one of owned_/mapping_ is set (or neither for
  /// the canonical empty index before attach).
  std::shared_ptr<const std::string> owned_;
  std::shared_ptr<const fs::MappedFile> mapping_;
  std::string_view payload_;
  std::uint64_t fingerprint_ = 0;

  /// Directories into payload_.
  std::vector<DocView> docs_;
  std::vector<TermView> terms_;  ///< sorted by term
  std::unordered_map<std::string_view, std::uint32_t> doc_by_slug_;

  /// Scoring metadata, derived from the payload on attach.
  double avg_weighted_len_ = 0.0;
  FieldBoosts boosts_;
  std::vector<double> doc_norm_;   ///< BM25 length normalization per doc
  std::vector<double> term_idf_;   ///< per term
  std::vector<double> term_max_;   ///< max contribution per term
  std::vector<std::uint32_t> block_offset_;    ///< per term, into block_*
  std::vector<std::uint32_t> block_last_doc_;  ///< last doc id per block
  std::vector<double> block_max_;  ///< max contribution per block
};

}  // namespace pdcu::search
