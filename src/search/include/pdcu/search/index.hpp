// The search index: a field-weighted inverted index over the curated
// activities with BM25 ranking. Three fields per document — title, taxonomy
// tags, and body (details, accessibility, assessment, variations,
// citations) — each with its own boost, folded BM25F-style into one weighted
// term frequency per posting.
//
// Construction can run in parallel on the existing rt::ThreadPool: each
// block of documents builds a local term map, and blocks merge in document
// order, so the result is bit-identical to a serial build. Queries are
// const and lock-free, so any number of server threads can search one
// index concurrently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "pdcu/core/repository.hpp"
#include "pdcu/runtime/thread_pool.hpp"
#include "pdcu/search/query.hpp"
#include "pdcu/search/snippet.hpp"
#include "pdcu/support/expected.hpp"
#include "pdcu/taxonomy/term_index.hpp"

namespace pdcu::obs {
class SpanRegistry;
}  // namespace pdcu::obs

namespace pdcu::search {

/// Per-field term frequencies of one term in one document.
struct Posting {
  std::uint32_t doc = 0;
  std::uint16_t tf_title = 0;
  std::uint16_t tf_tags = 0;
  std::uint16_t tf_body = 0;

  bool operator==(const Posting&) const = default;
};

/// All postings of one term, ascending by document id.
struct TermPostings {
  std::string term;
  std::vector<Posting> postings;

  bool operator==(const TermPostings&) const = default;
};

/// One indexed document: identity plus the plain text used for snippets and
/// the per-field token counts BM25 needs for length normalization.
struct DocEntry {
  std::string slug;
  std::string title;
  std::string body;  ///< plain text snippet source
  std::uint32_t len_title = 0;
  std::uint32_t len_tags = 0;
  std::uint32_t len_body = 0;

  bool operator==(const DocEntry&) const = default;
};

/// One ranked result.
struct Hit {
  std::uint32_t doc = 0;
  std::string slug;
  std::string title;
  double score = 0.0;
  Snippet snippet;
};

/// BM25F field boosts; title matches dominate, tags beat body prose.
struct FieldBoosts {
  double title = 4.0;
  double tags = 2.5;
  double body = 1.0;
};

class SearchIndex {
 public:
  SearchIndex() = default;

  /// Indexes every activity of `repo` in curation order. With a pool the
  /// build shards across its workers; the result is identical either way.
  /// With `spans`, the wall time lands there as a "search.build" span (and
  /// "search.merge" for the shard-merge tail), so repeated builds — watch
  /// mode reloads, benchmarks — accumulate a latency histogram.
  static SearchIndex build(const core::Repository& repo,
                           rt::ThreadPool* pool = nullptr,
                           obs::SpanRegistry* spans = nullptr);

  /// Reassembles an index from deserialized parts, validating invariants
  /// (terms sorted and unique, postings sorted, doc ids in range).
  static Expected<SearchIndex> from_parts(std::vector<DocEntry> docs,
                                          std::vector<TermPostings> terms);

  /// Ranked search. Filters resolve against `taxonomy` (pass
  /// repo.index()); a query with filters but a null taxonomy, or with a
  /// filter that resolves to no term, matches nothing. A filter-only query
  /// returns the filtered documents in curation order with score 0.
  std::vector<Hit> search(const Query& query, const tax::TermIndex* taxonomy,
                          std::size_t limit = 10) const;

  std::size_t doc_count() const { return docs_.size(); }
  std::size_t term_count() const { return terms_.size(); }
  const std::vector<DocEntry>& docs() const { return docs_; }
  const std::vector<TermPostings>& terms() const { return terms_; }

  /// Postings of one normalized term; nullptr when absent.
  const TermPostings* find_term(std::string_view term) const;

  bool operator==(const SearchIndex& other) const {
    return docs_ == other.docs_ && terms_ == other.terms_;
  }

 private:
  /// Recomputes the slug map and weighted-length statistics from
  /// docs_/terms_ after a build or load.
  void finalize();

  std::vector<DocEntry> docs_;
  std::vector<TermPostings> terms_;  ///< sorted by term
  std::unordered_map<std::string, std::uint32_t> doc_by_slug_;
  double avg_weighted_len_ = 0.0;
  FieldBoosts boosts_;
};

}  // namespace pdcu::search
