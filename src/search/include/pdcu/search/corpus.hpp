// Deterministic synthetic corpora, so search can be exercised at 10k–1M
// documents without 10k curated activities existing. The generator emits
// core::Activity values — the same type the curated repository holds — so a
// synthetic corpus flows through the whole real pipeline: tokenizer, BM25F
// index build, taxonomy filters, serialization, serving.
//
// Realism knobs follow what query engines actually face: term frequencies
// are Zipfian (a few very common words, a long tail of rare ones) over a
// vocabulary of PDC-flavored words, document lengths vary, and taxonomy
// tags are drawn rank-skewed from the curation's real term sets, so
// `cs2013:PD_2`-style filters resolve against the synthetic repository's
// own index.
//
// Everything derives from CorpusOptions::seed with a per-document seed
// (SplitMix64 of seed and doc id), so the corpus for a given (docs, seed)
// pair is bit-identical on every platform, every run, and independent of
// generation order — tests, benches, and `pdcu loadgen` can all name the
// same corpus by two integers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "pdcu/core/repository.hpp"

namespace pdcu::search::corpus {

struct CorpusOptions {
  std::size_t docs = 10'000;
  std::uint64_t seed = 42;
};

/// The generator's word list: a PDC-flavored base vocabulary extended with
/// deterministic syllable words. Index 0 is the most frequent word; draws
/// are Zipfian by rank.
const std::vector<std::string>& vocabulary();

/// One synthetic activity (document `doc` of the corpus seeded by `seed`).
/// Pure function of its arguments.
core::Activity synthetic_activity(std::uint64_t seed, std::size_t doc);

/// The full corpus, in document order. Slugs are unique ("syn-000042").
std::vector<core::Activity> synthetic_activities(const CorpusOptions& options);

/// The corpus wrapped in a Repository (taxonomy index included), ready for
/// SearchIndex::build and filter resolution.
core::Repository synthetic_repository(const CorpusOptions& options);

/// `count` query terms drawn Zipfian from the vocabulary — the same skew
/// the corpus bodies use, so hot query terms hit long posting lists and
/// rare ones hit short lists, like production traffic.
std::vector<std::string> sample_query_terms(std::uint64_t seed,
                                            std::size_t count);

/// The vocabulary word at a Zipf rank (0 = most frequent; clamped to the
/// vocabulary size). Benchmarks build queries with known posting-list
/// shapes from this: head ranks hit dense lists covering most of the
/// corpus, mid ranks (~100+) are discriminative terms with short lists.
const std::string& term_at_rank(std::size_t rank);

}  // namespace pdcu::search::corpus
