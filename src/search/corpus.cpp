#include "pdcu/search/corpus.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <string_view>

#include "pdcu/support/rng.hpp"

namespace pdcu::search::corpus {

namespace {

/// Zipf exponent for word-rank draws; ~1.07 matches natural-language text
/// closely enough that posting-list lengths span several orders of
/// magnitude, which is the regime early termination must handle.
constexpr double kZipfExponent = 1.07;

/// Total vocabulary size (base words + generated syllable words).
constexpr std::size_t kVocabularyWords = 4096;

/// PDC-flavored base vocabulary, most-frequent-first. These carry the bulk
/// of the probability mass under the Zipf draw, so synthetic documents read
/// like (scrambled) activity descriptions.
constexpr std::string_view kBaseWords[] = {
    "parallel", "students", "activity", "sorting", "computing", "algorithm",
    "cards", "round", "compare", "distributed", "network", "message",
    "processor", "unplugged", "pipeline", "reduction", "broadcast", "sum",
    "minimum", "maximum", "array", "tree", "graph", "node", "edge", "token",
    "deadlock", "race", "mutual", "exclusion", "barrier", "speedup", "work",
    "span", "latency", "throughput", "scaling", "efficiency", "load",
    "balance", "scheduling", "task", "thread", "process", "memory", "shared",
    "cache", "locality", "communication", "synchronization", "concurrency",
    "sequential", "classroom", "instructor", "pairs", "groups", "rounds",
    "relay", "bucket", "merge", "split", "partition", "shuffle", "exchange",
    "transposition", "comparison", "tournament", "elimination", "binary",
    "logarithmic", "linear", "quadratic", "cost", "analysis", "dramatize",
    "simulation", "protocol", "routing", "packet", "topology", "ring",
    "mesh", "hypercube", "cluster", "supercomputer", "mapreduce", "shards",
    "fault", "tolerance", "replication", "consensus", "leader", "election",
    "clock", "ordering", "snapshot", "checkpoint", "recovery", "failure",
    "bandwidth", "contention", "bottleneck", "granularity", "decomposition",
    "dependency", "critical", "path", "amdahl", "gustafson", "sieve",
    "prime", "matrix", "vector", "stencil", "histogram", "prefix", "scan",
    "gather", "scatter", "pipeline", "stage", "buffer", "queue", "stack",
};

/// Real taxonomy term sets (subsets of the curation's), most-common-first;
/// tag draws are rank-skewed so filters see realistic selectivities.
constexpr std::string_view kCs2013[] = {
    "PD_1", "PD_2", "PD_3", "PD_4", "PD_5",
    "PAAP_1", "PAAP_4", "PAAP_7", "SF_2", "CN_1",
};
constexpr std::string_view kTcpp[] = {
    "A_MinMaxFinding", "A_Sorting", "A_Broadcast", "A_Reduction",
    "C_CostsOfComputation", "C_ComputationDecomposition", "C_Speedup",
    "P_DataParallel", "P_TaskParallel", "A_PathSelection",
};
constexpr std::string_view kCourses[] = {
    "CS1", "CS2", "DSA", "CS0", "Systems", "ParallelComputing",
};
constexpr std::string_view kSenses[] = {
    "touch", "visual", "hearing", "movement",
};
constexpr std::string_view kMediums[] = {
    "cards", "people", "paper", "rope", "dice", "tokens",
};
constexpr std::string_view kAuthors[] = {
    "Alex Rivers", "Sam Chen", "Priya Natarajan", "Jordan Blake",
    "Maria Ortega", "Liu Wei", "Tomas Novak", "Aisha Bello",
    "Grace Okafor", "Daniel Kim", "Elena Petrova", "Omar Haddad",
};

/// A distinct per-document seed: SplitMix64 over the corpus seed and doc
/// id, so documents are independent of generation order (and could be
/// generated in parallel without changing a byte).
std::uint64_t doc_seed(std::uint64_t seed, std::uint64_t doc) {
  SplitMix64 sm(seed ^ (doc * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
  return sm.next();
}

/// Cumulative Zipf table over `size` ranks; sampled by binary search.
class ZipfTable {
 public:
  explicit ZipfTable(std::size_t size) {
    cumulative_.reserve(size);
    double total = 0.0;
    for (std::size_t r = 0; r < size; ++r) {
      total += 1.0 / std::pow(double(r + 1), kZipfExponent);
      cumulative_.push_back(total);
    }
  }

  std::size_t sample(Rng& rng) const {
    const double u = rng.uniform() * cumulative_.back();
    const auto it =
        std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    return std::size_t(it - cumulative_.begin());
  }

 private:
  std::vector<double> cumulative_;
};

const ZipfTable& word_table() {
  static const ZipfTable table(kVocabularyWords);
  return table;
}

/// Rank-skewed pick of `count` distinct terms from a fixed term set.
template <std::size_t N>
std::vector<std::string> pick_terms(Rng& rng,
                                    const std::string_view (&set)[N],
                                    std::size_t count) {
  std::vector<std::string> out;
  while (out.size() < count && out.size() < N) {
    // Squaring the uniform draw skews toward low ranks (common terms).
    const double u = rng.uniform();
    const auto rank = std::size_t(u * u * double(N));
    std::string term(set[std::min(rank, N - 1)]);
    if (std::find(out.begin(), out.end(), term) == out.end()) {
      out.push_back(std::move(term));
    }
  }
  return out;
}

/// `count` Zipf-drawn words joined into sentence-ish prose.
std::string prose(Rng& rng, std::size_t count) {
  const auto& words = vocabulary();
  std::string text;
  std::size_t sentence = 0;
  for (std::size_t w = 0; w < count; ++w) {
    std::string word = words[word_table().sample(rng)];
    if (sentence == 0 && !word.empty()) {
      word[0] = static_cast<char>(std::toupper(word[0]));
    }
    if (!text.empty()) text += ' ';
    text += word;
    ++sentence;
    if (sentence >= 6 + rng.below(9)) {
      text += '.';
      sentence = 0;
    }
  }
  if (!text.empty() && text.back() != '.') text += '.';
  return text;
}

}  // namespace

const std::vector<std::string>& vocabulary() {
  static const std::vector<std::string> words = [] {
    std::vector<std::string> out;
    out.reserve(kVocabularyWords);
    for (const auto word : kBaseWords) out.emplace_back(word);
    // Extend with deterministic syllable words ("kedrotula") for the long
    // tail; generated from a fixed seed, not from any corpus seed, so
    // every corpus shares one vocabulary.
    constexpr std::string_view kOnsets[] = {"k",  "dr", "t",  "l", "m",
                                            "pr", "s",  "gr", "v", "n"};
    constexpr std::string_view kVowels[] = {"a", "e", "i", "o", "u"};
    Rng rng(0xc0ffee);
    while (out.size() < kVocabularyWords) {
      std::string word;
      const std::size_t syllables = 2 + rng.below(3);
      for (std::size_t s = 0; s < syllables; ++s) {
        word += kOnsets[rng.below(std::size(kOnsets))];
        word += kVowels[rng.below(std::size(kVowels))];
      }
      if (std::find(out.begin(), out.end(), word) == out.end()) {
        out.push_back(std::move(word));
      }
    }
    return out;
  }();
  return words;
}

core::Activity synthetic_activity(std::uint64_t seed, std::size_t doc) {
  Rng rng(doc_seed(seed, doc));
  core::Activity activity;

  char slug[32];
  std::snprintf(slug, sizeof(slug), "syn-%06zu", doc);
  activity.slug = slug;
  activity.title = prose(rng, 2 + rng.below(4));
  if (!activity.title.empty() && activity.title.back() == '.') {
    activity.title.pop_back();
  }
  activity.year = int(1990 + rng.below(35));

  const std::size_t author_count = rng.below(3);
  for (std::size_t a = 0; a < author_count; ++a) {
    activity.authors.emplace_back(kAuthors[rng.below(std::size(kAuthors))]);
  }

  // Body sections; lengths vary so BM25 length normalization matters.
  activity.details = prose(rng, 20 + rng.below(60));
  if (rng.chance(0.5)) activity.accessibility = prose(rng, 5 + rng.below(15));
  if (rng.chance(0.4)) activity.assessment = prose(rng, 5 + rng.below(10));
  const std::size_t variations = rng.below(3);
  for (std::size_t v = 0; v < variations; ++v) {
    activity.variations.push_back(
        {prose(rng, 2), prose(rng, 8 + rng.below(12))});
  }
  const std::size_t citations = rng.below(3);
  for (std::size_t c = 0; c < citations; ++c) {
    activity.citations.push_back({prose(rng, 6 + rng.below(8)), ""});
  }

  activity.cs2013 = pick_terms(rng, kCs2013, 1 + rng.below(3));
  activity.tcpp = pick_terms(rng, kTcpp, 1 + rng.below(3));
  activity.courses = pick_terms(rng, kCourses, 1 + rng.below(2));
  activity.senses = pick_terms(rng, kSenses, 1 + rng.below(2));
  activity.mediums = pick_terms(rng, kMediums, rng.below(3));
  return activity;
}

std::vector<core::Activity> synthetic_activities(
    const CorpusOptions& options) {
  std::vector<core::Activity> activities;
  activities.reserve(options.docs);
  for (std::size_t d = 0; d < options.docs; ++d) {
    activities.push_back(synthetic_activity(options.seed, d));
  }
  return activities;
}

core::Repository synthetic_repository(const CorpusOptions& options) {
  return core::Repository(synthetic_activities(options));
}

std::vector<std::string> sample_query_terms(std::uint64_t seed,
                                            std::size_t count) {
  Rng rng(doc_seed(seed, 0x517e));
  const auto& words = vocabulary();
  std::vector<std::string> terms;
  terms.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    terms.push_back(words[word_table().sample(rng)]);
  }
  return terms;
}

const std::string& term_at_rank(std::size_t rank) {
  const auto& words = vocabulary();
  return words[std::min(rank, words.size() - 1)];
}

}  // namespace pdcu::search::corpus
