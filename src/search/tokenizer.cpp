#include "pdcu/search/tokenizer.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace pdcu::search {

namespace {

// Branchy ASCII classification instead of std::isalnum/std::tolower: the
// libc versions indirect through the locale per character, which at corpus
// scale is most of tokenization. Tokens are defined as ASCII-alnum runs
// regardless of locale, so this is also the more deterministic choice.
bool is_word_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9');
}

char lower(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

bool is_stopword(std::string_view word) {
  // Sorted so membership is a binary search; the list is intentionally
  // small — over-aggressive stoplists hurt short pedagogical queries like
  // "how many messages".
  static constexpr std::array<std::string_view, 42> kStopwords = {
      "a",    "an",   "and",  "are",   "as",    "at",   "be",    "but",
      "by",   "can",  "each", "for",   "from",  "has",  "have",  "if",
      "in",   "into", "is",   "it",    "its",   "of",   "on",    "or",
      "such", "than", "that", "the",   "their", "then", "there", "these",
      "they", "this", "to",   "using", "was",   "we",   "were",  "which",
      "will", "with"};
  return std::binary_search(kStopwords.begin(), kStopwords.end(), word);
}

std::string stem(std::string word) {
  if (word.size() <= 3) return word;

  // Plural suffixes first, so "processes" -> "process", "copies" -> "copy".
  if (ends_with(word, "ies") && word.size() > 4) {
    word.replace(word.size() - 3, 3, "y");
  } else if (ends_with(word, "sses")) {
    word.erase(word.size() - 2);
  } else if (word.back() == 's' && !ends_with(word, "ss") &&
             !ends_with(word, "us") && !ends_with(word, "is")) {
    word.pop_back();
  }

  // Verb suffixes, only when a reasonable stem remains ("sorting" ->
  // "sort", but "ring" and "bed" survive).
  if (ends_with(word, "ing") && word.size() >= 6) {
    word.erase(word.size() - 3);
  } else if (ends_with(word, "ed") && word.size() >= 5) {
    word.erase(word.size() - 2);
  }
  // Collapse a doubled final consonant left by -ing/-ed ("passing" ->
  // "pass" keeps "ss"; "stopped" -> "stopp" -> "stop").
  if (word.size() >= 4 && word[word.size() - 1] == word[word.size() - 2] &&
      word.back() != 's' && word.back() != 'l') {
    word.pop_back();
  }
  return word;
}

bool TokenWalker::next() {
  while (pos_ < text_.size()) {
    if (!is_word_char(text_[pos_])) {
      ++pos_;
      continue;
    }
    begin_ = pos_;
    word_.clear();  // keeps capacity: no allocation after the first token
    while (pos_ < text_.size() && is_word_char(text_[pos_])) {
      word_.push_back(lower(text_[pos_]));
      ++pos_;
    }
    end_ = pos_;
    if (is_stopword(word_)) continue;
    word_ = stem(std::move(word_));  // moves through; shrinks in place
    if (word_.empty()) continue;
    return true;
  }
  return false;
}

std::vector<TokenSpan> tokenize_spans(std::string_view text) {
  std::vector<TokenSpan> out;
  TokenWalker walker(text);
  while (walker.next()) {
    out.push_back(
        {std::string(walker.term()), walker.begin(), walker.end()});
  }
  return out;
}

std::vector<std::string> tokenize(std::string_view text) {
  std::vector<std::string> out;
  TokenWalker walker(text);
  while (walker.next()) out.emplace_back(walker.term());
  return out;
}

}  // namespace pdcu::search
