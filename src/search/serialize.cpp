#include "pdcu/search/serialize.hpp"

#include "pdcu/support/fs.hpp"
#include "pdcu/support/hash.hpp"

namespace pdcu::search {

namespace {

constexpr std::string_view kMagic = "PDCUIDX\x01";  // 8 bytes

void put_u16(std::string& out, std::uint16_t value) {
  out.push_back(static_cast<char>(value & 0xff));
  out.push_back(static_cast<char>((value >> 8) & 0xff));
}

void put_u32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void put_str(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked little-endian reader over the payload.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool read_u16(std::uint16_t& value) {
    if (bytes_.size() - pos_ < 2) return fail();
    value = static_cast<std::uint16_t>(byte(0) | (byte(1) << 8));
    pos_ += 2;
    return true;
  }

  bool read_u32(std::uint32_t& value) {
    if (bytes_.size() - pos_ < 4) return fail();
    value = 0;
    for (int i = 0; i < 4; ++i) value |= byte(i) << (8 * i);
    pos_ += 4;
    return true;
  }

  bool read_u64(std::uint64_t& value) {
    if (bytes_.size() - pos_ < 8) return fail();
    value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(byte(i)) << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool read_str(std::string& value) {
    std::uint32_t size = 0;
    if (!read_u32(size) || bytes_.size() - pos_ < size) return fail();
    value.assign(bytes_.substr(pos_, size));
    pos_ += size;
    return true;
  }

  bool exhausted() const { return pos_ == bytes_.size(); }
  bool ok() const { return ok_; }

 private:
  std::uint32_t byte(int offset) const {
    return static_cast<unsigned char>(bytes_[pos_ + std::size_t(offset)]);
  }
  bool fail() {
    ok_ = false;
    return false;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::string serialize_payload(const SearchIndex& index) {
  std::string out;
  put_u32(out, static_cast<std::uint32_t>(index.doc_count()));
  for (const auto& doc : index.docs()) {
    put_str(out, doc.slug);
    put_str(out, doc.title);
    put_str(out, doc.body);
    put_u32(out, doc.len_title);
    put_u32(out, doc.len_tags);
    put_u32(out, doc.len_body);
  }
  put_u32(out, static_cast<std::uint32_t>(index.term_count()));
  for (const auto& entry : index.terms()) {
    put_str(out, entry.term);
    put_u32(out, static_cast<std::uint32_t>(entry.postings.size()));
    for (const auto& posting : entry.postings) {
      put_u32(out, posting.doc);
      put_u16(out, posting.tf_title);
      put_u16(out, posting.tf_tags);
      put_u16(out, posting.tf_body);
    }
  }
  return out;
}

}  // namespace

std::string serialize_index(const SearchIndex& index) {
  const std::string payload = serialize_payload(index);
  std::string out;
  out.reserve(kMagic.size() + 12 + payload.size());
  out.append(kMagic);
  put_u32(out, kIndexFormatVersion);
  put_u64(out, hash::fnv1a_64(payload));
  out.append(payload);
  return out;
}

Expected<SearchIndex> deserialize_index(std::string_view bytes) {
  if (bytes.size() < kMagic.size() + 12 ||
      bytes.substr(0, kMagic.size()) != kMagic) {
    return Error::make("search.index.magic", "not a pdcu search index");
  }
  Reader header(bytes.substr(kMagic.size()));
  std::uint32_t version = 0;
  std::uint64_t checksum = 0;
  header.read_u32(version);
  header.read_u64(checksum);
  if (version != kIndexFormatVersion) {
    return Error::make("search.index.version",
                       "unsupported index version " + std::to_string(version) +
                           " (expected " +
                           std::to_string(kIndexFormatVersion) + ")");
  }
  const std::string_view payload = bytes.substr(kMagic.size() + 12);
  if (hash::fnv1a_64(payload) != checksum) {
    return Error::make("search.index.checksum",
                       "index checksum mismatch (corrupted file?)");
  }

  Reader reader(payload);
  std::uint32_t doc_count = 0;
  reader.read_u32(doc_count);
  std::vector<DocEntry> docs;
  for (std::uint32_t d = 0; reader.ok() && d < doc_count; ++d) {
    DocEntry doc;
    reader.read_str(doc.slug);
    reader.read_str(doc.title);
    reader.read_str(doc.body);
    reader.read_u32(doc.len_title);
    reader.read_u32(doc.len_tags);
    reader.read_u32(doc.len_body);
    docs.push_back(std::move(doc));
  }
  std::uint32_t term_count = 0;
  reader.read_u32(term_count);
  std::vector<TermPostings> terms;
  for (std::uint32_t t = 0; reader.ok() && t < term_count; ++t) {
    TermPostings entry;
    reader.read_str(entry.term);
    std::uint32_t posting_count = 0;
    reader.read_u32(posting_count);
    for (std::uint32_t p = 0; reader.ok() && p < posting_count; ++p) {
      Posting posting;
      reader.read_u32(posting.doc);
      reader.read_u16(posting.tf_title);
      reader.read_u16(posting.tf_tags);
      reader.read_u16(posting.tf_body);
      entry.postings.push_back(posting);
    }
    terms.push_back(std::move(entry));
  }
  if (!reader.ok() || !reader.exhausted()) {
    return Error::make("search.index.truncated",
                       "index payload truncated or trailing bytes");
  }
  return SearchIndex::from_parts(std::move(docs), std::move(terms));
}

Status save_index(const SearchIndex& index,
                  const std::filesystem::path& path) {
  return fs::write_file(path, serialize_index(index));
}

Expected<SearchIndex> load_index(const std::filesystem::path& path) {
  return fs::read_file(path).and_then(
      [](const std::string& bytes) { return deserialize_index(bytes); });
}

}  // namespace pdcu::search
