#include "pdcu/search/serialize.hpp"

#include <memory>
#include <utility>

#include "pdcu/support/fs.hpp"
#include "pdcu/support/hash.hpp"
#include "pdcu/support/mmap.hpp"

namespace pdcu::search {

namespace {

constexpr std::string_view kMagic = "PDCUIDX\x01";  // 8 bytes
constexpr std::size_t kHeaderBytes = 8 + 4 + 8;     // magic + version + hash

void put_u32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

std::uint32_t load_u32(std::string_view bytes, std::size_t pos) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(bytes[pos + std::size_t(i)]))
             << (8 * i);
  }
  return value;
}

std::uint64_t load_u64(std::string_view bytes, std::size_t pos) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes[pos + std::size_t(i)]))
             << (8 * i);
  }
  return value;
}

/// Verifies magic, version, and checksum; on success the payload (the
/// post-header bytes) is bytes.substr(kHeaderBytes).
Status check_header(std::string_view bytes) {
  if (bytes.size() < kHeaderBytes ||
      bytes.substr(0, kMagic.size()) != kMagic) {
    return Error::make("search.index.magic", "not a pdcu search index");
  }
  const std::uint32_t version = load_u32(bytes, kMagic.size());
  if (version != kIndexFormatVersion) {
    return Error::make("search.index.version",
                       "unsupported index version " + std::to_string(version) +
                           " (expected " +
                           std::to_string(kIndexFormatVersion) + ")");
  }
  const std::uint64_t checksum = load_u64(bytes, kMagic.size() + 4);
  if (hash::fnv1a_64(bytes.substr(kHeaderBytes)) != checksum) {
    return Error::make("search.index.checksum",
                       "index checksum mismatch (corrupted file?)");
  }
  return Status::ok();
}

}  // namespace

std::string serialize_index(const SearchIndex& index) {
  // The index already holds its canonical payload; persisting is just
  // prefixing the header.
  const std::string_view payload = index.payload();
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  out.append(kMagic);
  put_u32(out, kIndexFormatVersion);
  put_u64(out, hash::fnv1a_64(payload));
  out.append(payload);
  return out;
}

Expected<SearchIndex> deserialize_index(std::string_view bytes) {
  const Status header = check_header(bytes);
  if (!header) return header.error();
  return SearchIndex::from_payload(std::string(bytes.substr(kHeaderBytes)));
}

Status save_index(const SearchIndex& index,
                  const std::filesystem::path& path) {
  return fs::write_file(path, serialize_index(index));
}

Expected<SearchIndex> load_index(const std::filesystem::path& path) {
  return fs::read_file(path).and_then(
      [](const std::string& bytes) { return deserialize_index(bytes); });
}

Expected<SearchIndex> mmap_index(const std::filesystem::path& path) {
  auto mapped = fs::MappedFile::open(path);
  if (!mapped) return mapped.error();
  auto file =
      std::make_shared<const fs::MappedFile>(std::move(mapped).value());
  const Status header = check_header(file->view());
  if (!header) return header.error();
  return SearchIndex::from_mapped(std::move(file), kHeaderBytes);
}

}  // namespace pdcu::search
