#include "pdcu/search/query.hpp"

#include <cctype>
#include <unordered_set>

#include "pdcu/search/tokenizer.hpp"
#include "pdcu/taxonomy/taxonomy.hpp"

namespace pdcu::search {

std::string_view taxonomy_for_prefix(std::string_view prefix) {
  if (prefix == "cs2013") return tax::keys::kCs2013;
  if (prefix == "tcpp") return tax::keys::kTcpp;
  if (prefix == "course" || prefix == "courses") return tax::keys::kCourses;
  if (prefix == "sense" || prefix == "senses") return tax::keys::kSenses;
  return {};
}

Query parse_query(std::string_view input) {
  Query query;
  query.raw = std::string(input);

  std::string free_text;
  std::size_t i = 0;
  while (i <= input.size()) {
    // Split on whitespace by hand: filter values ("PD-Communication") must
    // survive intact, so word-level splitting happens before tokenization.
    const std::size_t begin = i;
    while (i < input.size() && input[i] != ' ' && input[i] != '\t') ++i;
    const std::string_view word = input.substr(begin, i - begin);
    ++i;
    if (word.empty()) continue;

    const std::size_t colon = word.find(':');
    if (colon != std::string_view::npos && colon > 0) {
      std::string prefix;
      for (const char c : word.substr(0, colon)) {
        prefix.push_back(
            static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
      }
      const std::string_view taxonomy = taxonomy_for_prefix(prefix);
      const std::string_view value = word.substr(colon + 1);
      if (!taxonomy.empty() && !value.empty()) {
        query.filters.push_back(
            {std::string(taxonomy), std::string(value)});
        continue;
      }
    }
    free_text += word;
    free_text += ' ';
  }

  // Dedup preserving first-occurrence order. A hash set keeps this linear;
  // adversarial inputs (thousands of repeated words) used to go quadratic
  // through a std::find over the growing terms vector.
  std::unordered_set<std::string> seen;
  for (auto& term : tokenize(free_text)) {
    if (seen.insert(term).second) {
      query.terms.push_back(std::move(term));
    }
  }
  return query;
}

}  // namespace pdcu::search
