#include "pdcu/search/snippet.hpp"

#include <algorithm>
#include <cstdint>

#include "pdcu/search/tokenizer.hpp"

namespace pdcu::search {

namespace {

/// Clamps a window edge outward to the nearest whitespace so snippets never
/// cut a word in half; gives up after 24 bytes and cuts anyway.
std::size_t snap_back(std::string_view body, std::size_t pos) {
  for (std::size_t i = 0; i < 24 && pos > 0; ++i, --pos) {
    if (body[pos - 1] == ' ' || body[pos - 1] == '\n') return pos;
  }
  return pos;
}

std::size_t snap_forward(std::string_view body, std::size_t pos) {
  for (std::size_t i = 0; i < 24 && pos < body.size(); ++i, ++pos) {
    if (body[pos] == ' ' || body[pos] == '\n') return pos;
  }
  return pos;
}

}  // namespace

std::string Snippet::render(std::string_view open, std::string_view close,
                            std::string (*escape)(std::string_view)) const {
  std::string out;
  if (clipped_front) out += "...";
  std::size_t cursor = 0;
  for (const auto& [begin, end] : highlights) {
    out += escape(std::string_view(text).substr(cursor, begin - cursor));
    out += open;
    out += escape(std::string_view(text).substr(begin, end - begin));
    out += close;
    cursor = end;
  }
  out += escape(std::string_view(text).substr(cursor));
  if (clipped_back) out += "...";
  return out;
}

Snippet make_snippet(std::string_view body,
                     const std::vector<std::string>& terms,
                     std::size_t window) {
  Snippet snippet;

  // Byte spans of tokens whose normalized form matches a query term, each
  // tagged with the index of the term it matched. The walk never
  // materializes non-matching tokens — snippets run per hit on the query
  // hot path.
  struct Match {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::uint32_t term = 0;
  };
  std::vector<Match> matches;
  TokenWalker walker(body);
  while (walker.next()) {
    const auto it = std::find(terms.begin(), terms.end(), walker.term());
    if (it == terms.end()) continue;
    matches.push_back({walker.begin(), walker.end(),
                       static_cast<std::uint32_t>(it - terms.begin())});
  }

  std::size_t begin = 0;
  std::size_t end = std::min(body.size(), window);
  if (!matches.empty()) {
    // Slide a window anchored at each match; keep the one covering the most
    // *distinct* terms (ties break to the earliest, keeping output stable).
    std::size_t best_anchor = 0;
    std::size_t best_covered = 0;
    std::vector<char> covered(terms.size(), 0);
    for (std::size_t anchor = 0; anchor < matches.size(); ++anchor) {
      const std::size_t window_end = matches[anchor].begin + window;
      std::fill(covered.begin(), covered.end(), 0);
      std::size_t covered_count = 0;
      for (const Match& m : matches) {
        if (m.begin < matches[anchor].begin) continue;
        if (m.end > window_end) break;
        if (!covered[m.term]) {
          covered[m.term] = 1;
          ++covered_count;
        }
      }
      if (covered_count > best_covered) {
        best_covered = covered_count;
        best_anchor = anchor;
      }
    }
    // Lead in with a little context before the anchor word.
    const std::size_t lead = window / 8;
    const std::size_t anchor_begin = matches[best_anchor].begin;
    begin = anchor_begin > lead ? snap_back(body, anchor_begin - lead) : 0;
    end = std::min(body.size(), begin + window);
  }
  if (end < body.size()) end = snap_forward(body, end);

  snippet.text = std::string(body.substr(begin, end - begin));
  snippet.clipped_front = begin > 0;
  snippet.clipped_back = end < body.size();
  for (const Match& m : matches) {
    if (m.begin >= begin && m.end <= end) {
      snippet.highlights.emplace_back(m.begin - begin, m.end - begin);
    }
  }
  return snippet;
}

}  // namespace pdcu::search
