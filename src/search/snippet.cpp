#include "pdcu/search/snippet.hpp"

#include <algorithm>

#include "pdcu/search/tokenizer.hpp"

namespace pdcu::search {

namespace {

/// Clamps a window edge outward to the nearest whitespace so snippets never
/// cut a word in half; gives up after 24 bytes and cuts anyway.
std::size_t snap_back(std::string_view body, std::size_t pos) {
  for (std::size_t i = 0; i < 24 && pos > 0; ++i, --pos) {
    if (body[pos - 1] == ' ' || body[pos - 1] == '\n') return pos;
  }
  return pos;
}

std::size_t snap_forward(std::string_view body, std::size_t pos) {
  for (std::size_t i = 0; i < 24 && pos < body.size(); ++i, ++pos) {
    if (body[pos] == ' ' || body[pos] == '\n') return pos;
  }
  return pos;
}

}  // namespace

std::string Snippet::render(std::string_view open, std::string_view close,
                            std::string (*escape)(std::string_view)) const {
  std::string out;
  if (clipped_front) out += "...";
  std::size_t cursor = 0;
  for (const auto& [begin, end] : highlights) {
    out += escape(std::string_view(text).substr(cursor, begin - cursor));
    out += open;
    out += escape(std::string_view(text).substr(begin, end - begin));
    out += close;
    cursor = end;
  }
  out += escape(std::string_view(text).substr(cursor));
  if (clipped_back) out += "...";
  return out;
}

Snippet make_snippet(std::string_view body,
                     const std::vector<std::string>& terms,
                     std::size_t window) {
  Snippet snippet;
  const auto spans = tokenize_spans(body);

  // Positions of tokens whose normalized form matches a query term.
  std::vector<std::size_t> matches;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (std::find(terms.begin(), terms.end(), spans[i].term) != terms.end()) {
      matches.push_back(i);
    }
  }

  std::size_t begin = 0;
  std::size_t end = std::min(body.size(), window);
  if (!matches.empty()) {
    // Slide a window anchored at each match; keep the one covering the most
    // *distinct* terms (ties break to the earliest, keeping output stable).
    std::size_t best_anchor = matches.front();
    std::size_t best_covered = 0;
    for (const std::size_t anchor : matches) {
      const std::size_t window_end = spans[anchor].begin + window;
      std::vector<std::string_view> covered;
      for (const std::size_t m : matches) {
        if (spans[m].begin < spans[anchor].begin) continue;
        if (spans[m].end > window_end) break;
        if (std::find(covered.begin(), covered.end(), spans[m].term) ==
            covered.end()) {
          covered.push_back(spans[m].term);
        }
      }
      if (covered.size() > best_covered) {
        best_covered = covered.size();
        best_anchor = anchor;
      }
    }
    // Lead in with a little context before the anchor word.
    const std::size_t lead = window / 8;
    const std::size_t anchor_begin = spans[best_anchor].begin;
    begin = anchor_begin > lead ? snap_back(body, anchor_begin - lead) : 0;
    end = std::min(body.size(), begin + window);
  }
  if (end < body.size()) end = snap_forward(body, end);

  snippet.text = std::string(body.substr(begin, end - begin));
  snippet.clipped_front = begin > 0;
  snippet.clipped_back = end < body.size();
  for (const std::size_t m : matches) {
    if (spans[m].begin >= begin && spans[m].end <= end) {
      snippet.highlights.emplace_back(spans[m].begin - begin,
                                      spans[m].end - begin);
    }
  }
  return snippet;
}

}  // namespace pdcu::search
