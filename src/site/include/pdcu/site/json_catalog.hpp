// Machine-readable catalog emission: an index.json alongside the HTML
// site, so downstream tools (course planners, other repositories) can
// consume the curation without scraping pages.
#pragma once

#include <string>

#include "pdcu/core/repository.hpp"

namespace pdcu::site {

/// Escapes a string for inclusion in a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(std::string_view text);

/// Renders one activity as a JSON object.
std::string activity_json(const core::Activity& activity);

/// Renders the whole catalog: {"activities": [...], "coverage": {...},
/// "stats": {...}} with the Table I/II numbers embedded.
std::string render_json_catalog(const core::Repository& repo);

}  // namespace pdcu::site
