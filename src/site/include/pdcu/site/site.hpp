// The static-site generator: what Hugo does for pdcunplugged.org (§II).
// Renders the repository to a set of HTML pages: an index, one page per
// activity (Fig. 3 header + body), one listing page per taxonomy term, and
// the four views of §II.C.
#pragma once

#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "pdcu/core/repository.hpp"
#include "pdcu/support/expected.hpp"

namespace pdcu::site {

/// One generated page.
struct Page {
  std::string path;  ///< site-relative, e.g. "activities/findsmallestcard/index.html"
  std::string html;
};

/// Result of a site build.
struct Site {
  std::vector<Page> pages;
  std::chrono::microseconds build_time{0};

  const Page* find(std::string_view path) const;
};

/// Options controlling generation.
struct SiteOptions {
  std::string base_title = "PDCunplugged";
  bool include_views = true;       ///< CS2013/TCPP/Courses/Accessibility views
  bool include_term_pages = true;  ///< one listing page per term
};

/// Builds the whole site in memory.
Site build_site(const core::Repository& repo, const SiteOptions& options = {});

/// Builds and writes the site under `out_dir`.
Expected<Site> write_site(const core::Repository& repo,
                          const std::filesystem::path& out_dir,
                          const SiteOptions& options = {});

/// Renders one activity page (Fig. 3: title, colored taxonomy chips, then
/// the rendered Markdown body).
std::string render_activity_page(const core::Activity& activity);

/// Renders just the activity header (title + chips), as in Fig. 3.
std::string render_activity_header(const core::Activity& activity);

/// Renders an ANSI-colored terminal version of the activity header.
std::string render_activity_header_ansi(const core::Activity& activity);

}  // namespace pdcu::site
