// The static-site generator: what Hugo does for pdcunplugged.org (§II).
// Renders the repository to a set of HTML pages: an index, one page per
// activity (Fig. 3 header + body), one listing page per taxonomy term, and
// the four views of §II.C.
//
// Generation runs as a three-phase pipeline:
//   parse    — serialize activities and fingerprint every page's inputs
//   render   — render pages (independently, in parallel when a pool is
//              given) into pre-sized slots, so the page order — and every
//              byte — matches the serial build exactly
//   assemble — move reused pages in, refresh the cache, rebuild the index
// A BuildCache carried across builds turns the render phase incremental:
// only pages whose input fingerprints changed are re-rendered, the rest
// are reused by move.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "pdcu/core/repository.hpp"
#include "pdcu/support/expected.hpp"

namespace pdcu::rt {
class ThreadPool;
class TraceLog;
}  // namespace pdcu::rt

namespace pdcu::obs {
class SpanRegistry;
}  // namespace pdcu::obs

namespace pdcu::site {

/// One generated page.
struct Page {
  std::string path;  ///< site-relative, e.g. "activities/findsmallestcard/index.html"
  std::string html;
};

/// Result of a site build.
struct Site {
  std::vector<Page> pages;
  std::chrono::microseconds build_time{0};

  /// Lookup by site-relative path: O(1) for present pages once reindex()
  /// has run (build_site does). The index is trusted only while it
  /// provably matches `pages` — the sizes agree and the hit's stored path
  /// still matches — so a Site mutated after reindex() (append, rename,
  /// reorder) falls back to a linear scan instead of returning the wrong
  /// page.
  const Page* find(std::string_view path) const;

  /// Rebuilds the path index over the current `pages`.
  void reindex();

 private:
  struct PathHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view path) const {
      return std::hash<std::string_view>{}(path);
    }
  };
  std::unordered_map<std::string, std::size_t, PathHash, std::equal_to<>>
      index_;
};

/// Content type (with charset where textual) for a site path, chosen by
/// extension: .html, .json, .css, .js, .svg, .txt, .png; anything else is
/// served as application/octet-stream.
std::string_view content_type_for(std::string_view path);

/// Options controlling generation.
struct SiteOptions {
  std::string base_title = "PDCunplugged";
  bool include_views = true;       ///< CS2013/TCPP/Courses/Accessibility views
  bool include_term_pages = true;  ///< one listing page per term
  /// Pages render as independent tasks on this pool; nullptr renders
  /// serially. Output is byte-identical either way (same pages, same
  /// order), so callers pick purely on latency: pass &rt::default_pool()
  /// unless determinism needs to be *demonstrated* against a serial run.
  rt::ThreadPool* pool = nullptr;
  /// Build lifecycle narration (page counts, reuse, per-phase times)
  /// lands here when set.
  rt::TraceLog* trace = nullptr;
  /// Count of content files the loader quarantined before this build (see
  /// core::LoadReport); carried through into BuildStats so a degraded
  /// build is visible on /metrics and in --stats output.
  std::size_t quarantined_inputs = 0;
  /// Phase durations land here as "site.parse" / "site.render" /
  /// "site.assemble" / "site.total" spans. Across repeated builds (watch
  /// mode, --incremental) the spans accumulate into histograms, so
  /// /metrics and `pdcu build --stats` can report percentiles instead of
  /// just the last build's totals.
  obs::SpanRegistry* spans = nullptr;
};

/// What one build did: page totals split into rendered vs. reused (cache
/// hits), and wall time per pipeline phase.
struct BuildStats {
  std::size_t pages_total = 0;
  std::size_t pages_rendered = 0;
  std::size_t pages_reused = 0;
  /// Content files quarantined by the lenient loader feeding this build
  /// (0 for a healthy or strict load).
  std::size_t activities_quarantined = 0;
  std::chrono::microseconds parse_time{0};     ///< serialize + fingerprint
  std::chrono::microseconds render_time{0};    ///< render / reuse pages
  std::chrono::microseconds assemble_time{0};  ///< cache refresh + reindex

  /// One-line human summary, e.g.
  /// "218 pages (2 rendered, 216 reused) in 1234 us [parse 210, render
  /// 980, assemble 44]".
  std::string summary() const;

  /// /metrics exposition lines (pdcu_build_* gauges), same format as
  /// server::ServerMetrics::render_text().
  std::string render_text() const;
};

/// Input fingerprints and rendered pages carried from one build to the
/// next. Feed the same cache to successive rebuild() calls; pages whose
/// inputs are unchanged are reused by move instead of re-rendered.
class BuildCache {
 public:
  /// One cached page: the fingerprint of its inputs and the rendered
  /// bytes. rebuild() moves the html out on a hit and refills the cache
  /// from the finished build.
  struct Entry {
    std::uint64_t fingerprint = 0;
    std::string html;
  };
  using Map = std::unordered_map<std::string, Entry>;

  bool empty() const { return pages_.empty(); }
  std::size_t size() const { return pages_.size(); }
  void clear() { pages_.clear(); }

 private:
  Map pages_;

  friend Site rebuild(const core::Repository& repo, BuildCache& cache,
                      const SiteOptions& options, BuildStats* stats);
};

/// Builds the whole site in memory. With `options.pool`, pages render in
/// parallel; the result is byte-identical to the serial build.
Site build_site(const core::Repository& repo, const SiteOptions& options = {},
                BuildStats* stats = nullptr);

/// Incremental build: renders only pages whose input fingerprints differ
/// from `cache`, reuses the rest by moving them out of the cache, and
/// leaves the cache holding the new build. A cold cache degenerates to
/// build_site(); the produced Site is identical to a cold full build
/// either way.
Site rebuild(const core::Repository& repo, BuildCache& cache,
             const SiteOptions& options = {}, BuildStats* stats = nullptr);

/// Writes an already-built site's pages under `out_dir`.
Status write_pages(const Site& site, const std::filesystem::path& out_dir);

/// Builds and writes the site under `out_dir`.
Expected<Site> write_site(const core::Repository& repo,
                          const std::filesystem::path& out_dir,
                          const SiteOptions& options = {});

/// Renders one activity page (Fig. 3: title, colored taxonomy chips, then
/// the rendered Markdown body).
std::string render_activity_page(const core::Activity& activity);

/// Renders just the activity header (title + chips), as in Fig. 3.
std::string render_activity_header(const core::Activity& activity);

/// Renders an ANSI-colored terminal version of the activity header.
std::string render_activity_header_ansi(const core::Activity& activity);

}  // namespace pdcu::site
