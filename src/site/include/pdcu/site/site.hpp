// The static-site generator: what Hugo does for pdcunplugged.org (§II).
// Renders the repository to a set of HTML pages: an index, one page per
// activity (Fig. 3 header + body), one listing page per taxonomy term, and
// the four views of §II.C.
#pragma once

#include <chrono>
#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "pdcu/core/repository.hpp"
#include "pdcu/support/expected.hpp"

namespace pdcu::site {

/// One generated page.
struct Page {
  std::string path;  ///< site-relative, e.g. "activities/findsmallestcard/index.html"
  std::string html;
};

/// Result of a site build.
struct Site {
  std::vector<Page> pages;
  std::chrono::microseconds build_time{0};

  /// O(1) lookup by site-relative path once reindex() has run (build_site
  /// does); falls back to a linear scan while the index is stale, so
  /// hand-assembled or freshly-appended Sites still resolve correctly.
  const Page* find(std::string_view path) const;

  /// Rebuilds the path index over the current `pages`.
  void reindex();

 private:
  struct PathHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view path) const {
      return std::hash<std::string_view>{}(path);
    }
  };
  std::unordered_map<std::string, std::size_t, PathHash, std::equal_to<>>
      index_;
};

/// Content type (with charset where textual) for a site path, chosen by
/// extension: .html, .json, .css, .js, .svg, .txt, .png; anything else is
/// served as application/octet-stream.
std::string_view content_type_for(std::string_view path);

/// Options controlling generation.
struct SiteOptions {
  std::string base_title = "PDCunplugged";
  bool include_views = true;       ///< CS2013/TCPP/Courses/Accessibility views
  bool include_term_pages = true;  ///< one listing page per term
};

/// Builds the whole site in memory.
Site build_site(const core::Repository& repo, const SiteOptions& options = {});

/// Builds and writes the site under `out_dir`.
Expected<Site> write_site(const core::Repository& repo,
                          const std::filesystem::path& out_dir,
                          const SiteOptions& options = {});

/// Renders one activity page (Fig. 3: title, colored taxonomy chips, then
/// the rendered Markdown body).
std::string render_activity_page(const core::Activity& activity);

/// Renders just the activity header (title + chips), as in Fig. 3.
std::string render_activity_header(const core::Activity& activity);

/// Renders an ANSI-colored terminal version of the activity header.
std::string render_activity_header_ansi(const core::Activity& activity);

}  // namespace pdcu::site
