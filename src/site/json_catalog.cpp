#include "pdcu/site/json_catalog.hpp"

#include <cstdio>

namespace pdcu::site {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

std::string string_array(const std::vector<std::string>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(values[i]) + "\"";
  }
  out += "]";
  return out;
}

std::string field(std::string_view key, std::string_view value) {
  return "\"" + std::string(key) + "\":\"" + json_escape(value) + "\"";
}

}  // namespace

std::string activity_json(const core::Activity& a) {
  std::string out = "{";
  out += field("slug", a.slug) + ",";
  out += field("title", a.title) + ",";
  out += field("date", a.date.to_string()) + ",";
  out += "\"year\":" + std::to_string(a.year) + ",";
  out += "\"authors\":" + string_array(a.authors) + ",";
  out += field("origin_url", a.origin_url) + ",";
  out += "\"has_external_resources\":" +
         std::string(a.has_external_resources() ? "true" : "false") + ",";
  out += "\"cs2013\":" + string_array(a.cs2013) + ",";
  out += "\"cs2013details\":" + string_array(a.cs2013details) + ",";
  out += "\"tcpp\":" + string_array(a.tcpp) + ",";
  out += "\"tcppdetails\":" + string_array(a.tcppdetails) + ",";
  out += "\"courses\":" + string_array(a.courses) + ",";
  out += "\"senses\":" + string_array(a.senses) + ",";
  out += "\"medium\":" + string_array(a.mediums) + ",";
  out += field("simulation", a.simulation) + ",";
  out += "\"variations\":" + std::to_string(a.variations.size()) + ",";
  out += "\"citations\":" + std::to_string(a.citations.size());
  out += "}";
  return out;
}

std::string render_json_catalog(const core::Repository& repo) {
  std::string out = "{\n\"activities\":[\n";
  const auto& activities = repo.activities();
  for (std::size_t i = 0; i < activities.size(); ++i) {
    if (i > 0) out += ",\n";
    out += activity_json(activities[i]);
  }
  out += "\n],\n";

  out += "\"coverage\":{\"cs2013\":[";
  auto analyzer = repo.coverage();
  auto cs2013_rows = analyzer.cs2013_table();
  for (std::size_t i = 0; i < cs2013_rows.size(); ++i) {
    if (i > 0) out += ",";
    const auto& row = cs2013_rows[i];
    out += "{" + field("unit", row.unit_name) +
           ",\"outcomes\":" + std::to_string(row.num_outcomes) +
           ",\"covered\":" + std::to_string(row.covered_outcomes) +
           ",\"activities\":" + std::to_string(row.total_activities) + "}";
  }
  out += "],\"tcpp\":[";
  auto tcpp_rows = analyzer.tcpp_table();
  for (std::size_t i = 0; i < tcpp_rows.size(); ++i) {
    if (i > 0) out += ",";
    const auto& row = tcpp_rows[i];
    out += "{" + field("area", row.area_name) +
           ",\"topics\":" + std::to_string(row.num_topics) +
           ",\"covered\":" + std::to_string(row.covered_topics) +
           ",\"activities\":" + std::to_string(row.total_activities) + "}";
  }
  out += "]},\n";

  auto stats = repo.stats();
  out += "\"stats\":{\"count\":" + std::to_string(stats.activity_count()) +
         ",\"with_external_resources\":" +
         std::to_string(stats.with_external_resources()) +
         ",\"with_simulation\":" + std::to_string(stats.with_simulation()) +
         "}\n}\n";
  return out;
}

}  // namespace pdcu::site
