#include "pdcu/site/site.hpp"

#include <algorithm>

#include "pdcu/core/activity_io.hpp"
#include "pdcu/core/views.hpp"
#include "pdcu/site/json_catalog.hpp"
#include "pdcu/markdown/frontmatter.hpp"
#include "pdcu/markdown/html.hpp"
#include "pdcu/markdown/parser.hpp"
#include "pdcu/support/fs.hpp"
#include "pdcu/support/slug.hpp"
#include "pdcu/support/strings.hpp"
#include "pdcu/taxonomy/chips.hpp"

namespace pdcu::site {

namespace strs = pdcu::strings;

namespace {

/// Wraps body HTML in the shared page layout.
std::string layout(std::string_view site_title, std::string_view page_title,
                   std::string_view body) {
  std::string out;
  out += "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n";
  out += "<meta charset=\"utf-8\">\n";
  out += "<title>" + strs::html_escape(page_title) + " | " +
         strs::html_escape(site_title) + "</title>\n";
  out += "<style>.chip{color:#fff;padding:2px 6px;border-radius:4px;"
         "margin-right:4px;text-decoration:none;font-size:0.85em}</style>\n";
  out += "</head>\n<body>\n";
  out += body;
  out += "</body>\n</html>\n";
  return out;
}

const tax::TaxonomyConfig& config() {
  static const tax::TaxonomyConfig kConfig =
      tax::TaxonomyConfig::pdcunplugged();
  return kConfig;
}

std::string chips_for(const core::Activity& activity, bool ansi) {
  std::string out;
  const auto tags = activity.tags();
  for (const auto& taxonomy : config().visible()) {
    auto it = tags.find(taxonomy.key);
    if (it == tags.end()) continue;
    for (const auto& term : it->second) {
      out += ansi ? tax::ansi_chip(taxonomy, term)
                  : tax::html_chip(taxonomy, term);
      out += ansi ? " " : "\n";
    }
  }
  return out;
}

std::string activities_list_html(const std::vector<tax::PageRef>& pages) {
  std::string out = "<ul>\n";
  for (const auto& page : pages) {
    out += "<li><a href=\"/activities/" + page.slug + "/\">" +
           strs::html_escape(page.title) + "</a></li>\n";
  }
  out += "</ul>\n";
  return out;
}

}  // namespace

const Page* Site::find(std::string_view path) const {
  // The index is only trusted while it matches pages exactly; any append
  // since the last reindex() drops us back to the scan.
  if (index_.size() == pages.size()) {
    const auto it = index_.find(path);
    return it == index_.end() ? nullptr : &pages[it->second];
  }
  for (const auto& page : pages) {
    if (page.path == path) return &page;
  }
  return nullptr;
}

void Site::reindex() {
  index_.clear();
  index_.reserve(pages.size());
  for (std::size_t i = 0; i < pages.size(); ++i) {
    index_.emplace(pages[i].path, i);
  }
}

std::string_view content_type_for(std::string_view path) {
  if (strs::ends_with(path, ".html") || strs::ends_with(path, ".htm")) {
    return "text/html; charset=utf-8";
  }
  if (strs::ends_with(path, ".json")) return "application/json; charset=utf-8";
  if (strs::ends_with(path, ".css")) return "text/css; charset=utf-8";
  if (strs::ends_with(path, ".js")) return "text/javascript; charset=utf-8";
  if (strs::ends_with(path, ".svg")) return "image/svg+xml";
  if (strs::ends_with(path, ".txt")) return "text/plain; charset=utf-8";
  if (strs::ends_with(path, ".png")) return "image/png";
  return "application/octet-stream";
}

std::string render_activity_header(const core::Activity& activity) {
  std::string body = "<h1>" + strs::html_escape(activity.title) + "</h1>\n";
  body += "<div class=\"tags\">\n" + chips_for(activity, /*ansi=*/false) +
          "</div>\n";
  return body;
}

std::string render_activity_header_ansi(const core::Activity& activity) {
  return activity.title + "\n" + chips_for(activity, /*ansi=*/true) + "\n";
}

std::string render_activity_page(const core::Activity& activity) {
  std::string body = render_activity_header(activity);
  // The body sections come from the canonical Markdown serialization, so a
  // page looks identical whether the activity was loaded from disk or from
  // the built-in curation.
  auto split = md::parse_content(core::write_activity(activity));
  if (split) {
    body += md::render_html(md::parse_markdown(split.value().body));
  }
  return body;
}

Site build_site(const core::Repository& repo, const SiteOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  Site site;

  // Index page: all activities, newest first (Hugo default ordering).
  {
    std::vector<const core::Activity*> sorted;
    for (const auto& a : repo.activities()) sorted.push_back(&a);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const core::Activity* x, const core::Activity* y) {
                       return y->date < x->date;
                     });
    std::string body = "<h1>" + options.base_title + "</h1>\n<ul>\n";
    for (const auto* a : sorted) {
      body += "<li><a href=\"/activities/" + a->slug + "/\">" +
              strs::html_escape(a->title) + "</a></li>\n";
    }
    body += "</ul>\n";
    site.pages.push_back(
        {"index.html", layout(options.base_title, "Activities", body)});
  }

  // One page per activity.
  for (const auto& activity : repo.activities()) {
    site.pages.push_back({"activities/" + activity.slug + "/index.html",
                          layout(options.base_title, activity.title,
                                 render_activity_page(activity))});
  }

  // One listing page per (taxonomy, term).
  if (options.include_term_pages) {
    for (const auto& taxonomy : config().all()) {
      for (const auto& term : repo.index().terms(taxonomy.key)) {
        std::string body = "<h1>" + taxonomy.display_name + ": " +
                           strs::html_escape(term) + "</h1>\n";
        body += activities_list_html(repo.index().pages(taxonomy.key, term));
        site.pages.push_back(
            {taxonomy.key + "/" + slugify(term) + "/index.html",
             layout(options.base_title, term, body)});
      }
    }
  }

  // The four views of §II.C.
  if (options.include_views) {
    {
      std::string body = "<h1>CS2013 View</h1>\n";
      for (const auto& entry : core::cs2013_view(repo)) {
        body += "<h3>[" + entry.detail_term + "] " +
                strs::html_escape(entry.outcome_text) + "</h3>\n";
        body += activities_list_html(entry.activities);
      }
      site.pages.push_back(
          {"views/cs2013/index.html",
           layout(options.base_title, "CS2013 View", body)});
    }
    {
      std::string body = "<h1>TCPP View</h1>\n";
      for (const auto& entry : core::tcpp_view(repo)) {
        body += "<h3>[" + entry.detail_term + "] " +
                strs::html_escape(entry.description) + "</h3>\n";
        body += "<p>Recommended courses: " +
                strs::html_escape(strs::join(entry.recommended_courses,
                                             ", ")) +
                "</p>\n";
        body += activities_list_html(entry.activities);
      }
      site.pages.push_back({"views/tcpp/index.html",
                            layout(options.base_title, "TCPP View", body)});
    }
    {
      std::string body = "<h1>Courses View</h1>\n";
      for (const auto& entry : core::courses_view(repo)) {
        body += "<h3>" + entry.display_name + "</h3>\n";
        body += activities_list_html(entry.activities);
      }
      site.pages.push_back(
          {"views/courses/index.html",
           layout(options.base_title, "Courses View", body)});
    }
    {
      std::string body = "<h1>Accessibility View</h1>\n";
      for (const auto& entry : core::accessibility_view(repo)) {
        body += "<h3>" + entry.kind + ": " + entry.term + "</h3>\n";
        body += activities_list_html(entry.activities);
      }
      site.pages.push_back(
          {"views/accessibility/index.html",
           layout(options.base_title, "Accessibility View", body)});
    }
  }

  // Interactive search page: a static shell over the live /api/search
  // endpoint (only functional when served by pdcu::server; the static
  // export degrades to a visible hint).
  {
    std::string body =
        "<h1>Search</h1>\n"
        "<form id=\"search-form\">\n"
        "<input id=\"search-q\" type=\"search\" name=\"q\" "
        "placeholder=\"e.g. message passing cs2013:PD-Communication\" "
        "autofocus>\n"
        "<button type=\"submit\">Search</button>\n"
        "</form>\n"
        "<p class=\"hint\">Free text plus filters: <code>cs2013:</code> "
        "<code>tcpp:</code> <code>course:</code> <code>sense:</code></p>\n"
        "<div id=\"search-results\"></div>\n"
        "<script>\n"
        "const form = document.getElementById('search-form');\n"
        "const out = document.getElementById('search-results');\n"
        "form.addEventListener('submit', async (e) => {\n"
        "  e.preventDefault();\n"
        "  const q = document.getElementById('search-q').value;\n"
        "  if (!q.trim()) return;\n"
        "  try {\n"
        "    const r = await fetch('/api/search?q=' + "
        "encodeURIComponent(q) + '&limit=20');\n"
        "    const data = await r.json();\n"
        "    out.innerHTML = data.hits && data.hits.length\n"
        "      ? data.hits.map(h => `<div class=\"hit\"><a href=\"${h.url}\">"
        "${h.title}</a> <small>${h.score.toFixed(2)}</small>"
        "<p>${h.snippet}</p></div>`).join('')\n"
        "      : '<p>No results.</p>';\n"
        "  } catch (err) {\n"
        "    out.innerHTML = '<p>Search needs the pdcu server "
        "(<code>pdcu serve</code>).</p>';\n"
        "  }\n"
        "});\n"
        "</script>\n";
    site.pages.push_back(
        {"search/index.html", layout(options.base_title, "Search", body)});
  }

  // Machine-readable catalog alongside the HTML pages.
  site.pages.push_back({"index.json", render_json_catalog(repo)});

  site.reindex();
  site.build_time = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  return site;
}

Expected<Site> write_site(const core::Repository& repo,
                          const std::filesystem::path& out_dir,
                          const SiteOptions& options) {
  Site site = build_site(repo, options);
  for (const auto& page : site.pages) {
    auto status = fs::write_file(out_dir / page.path, page.html);
    if (!status) return status.error();
  }
  return site;
}

}  // namespace pdcu::site
