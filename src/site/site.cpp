#include "pdcu/site/site.hpp"

#include <algorithm>
#include <atomic>
#include <functional>
#include <utility>

#include "pdcu/core/activity_io.hpp"
#include "pdcu/core/views.hpp"
#include "pdcu/obs/span.hpp"
#include "pdcu/site/json_catalog.hpp"
#include "pdcu/markdown/frontmatter.hpp"
#include "pdcu/markdown/html.hpp"
#include "pdcu/markdown/parser.hpp"
#include "pdcu/runtime/thread_pool.hpp"
#include "pdcu/runtime/trace.hpp"
#include "pdcu/support/fs.hpp"
#include "pdcu/support/hash.hpp"
#include "pdcu/support/slug.hpp"
#include "pdcu/support/strings.hpp"
#include "pdcu/taxonomy/chips.hpp"

namespace pdcu::site {

namespace strs = pdcu::strings;

namespace {

/// Wraps body HTML in the shared page layout.
std::string layout(std::string_view site_title, std::string_view page_title,
                   std::string_view body) {
  std::string out;
  out.reserve(body.size() + page_title.size() + site_title.size() + 320);
  out += "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n";
  out += "<meta charset=\"utf-8\">\n";
  out += "<title>";
  strs::html_escape_append(page_title, out);
  out += " | ";
  strs::html_escape_append(site_title, out);
  out += "</title>\n";
  out += "<style>.chip{color:#fff;padding:2px 6px;border-radius:4px;"
         "margin-right:4px;text-decoration:none;font-size:0.85em}</style>\n";
  out += "</head>\n<body>\n";
  out += body;
  out += "</body>\n</html>\n";
  return out;
}

const tax::TaxonomyConfig& config() {
  static const tax::TaxonomyConfig kConfig =
      tax::TaxonomyConfig::pdcunplugged();
  return kConfig;
}

std::string chips_for(const core::Activity& activity, bool ansi) {
  std::string out;
  const auto tags = activity.tags();
  for (const auto& taxonomy : config().visible()) {
    auto it = tags.find(taxonomy.key);
    if (it == tags.end()) continue;
    for (const auto& term : it->second) {
      out += ansi ? tax::ansi_chip(taxonomy, term)
                  : tax::html_chip(taxonomy, term);
      out += ansi ? " " : "\n";
    }
  }
  return out;
}

std::string activities_list_html(const std::vector<tax::PageRef>& pages) {
  std::string out = "<ul>\n";
  for (const auto& page : pages) {
    out += "<li><a href=\"/activities/" + page.slug + "/\">" +
           strs::html_escape(page.title) + "</a></li>\n";
  }
  out += "</ul>\n";
  return out;
}

/// The activity body from a precomputed canonical serialization (the parse
/// phase serializes every activity once; fingerprints and rendering share
/// the bytes).
std::string render_activity_page_from(const core::Activity& activity,
                                      const std::string& serialized) {
  std::string body = render_activity_header(activity);
  auto split = md::parse_content(serialized);
  if (split) {
    const std::string& markdown = split.value().body;
    // HTML is the Markdown text plus tags: ~5/4 of the source plus slack
    // covers typical expansion, so the append path rarely reallocates.
    body.reserve(body.size() + markdown.size() + markdown.size() / 4 + 512);
    md::render_html_append(md::parse_markdown(markdown), body);
  }
  return body;
}

/// Streaming FNV-1a with a field separator, so ("ab","c") and ("a","bc")
/// fingerprint differently.
class Fingerprint {
 public:
  Fingerprint& mix(std::string_view bytes) {
    state_ = hash::fnv1a_64_update(state_, bytes);
    state_ = hash::fnv1a_64_update(state_, std::string_view("\x1f", 1));
    return *this;
  }
  std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_ = hash::kFnv1aInit;
};

/// One planned page: where it goes, a fingerprint of everything its bytes
/// depend on, and how to produce those bytes if the fingerprint is new.
struct PageJob {
  std::string path;
  std::uint64_t fingerprint = 0;
  std::function<std::string()> render;
};

/// The static search shell (only functional when served by pdcu::server;
/// the static export degrades to a visible hint).
std::string search_page_body() {
  return
      "<h1>Search</h1>\n"
      "<form id=\"search-form\">\n"
      "<input id=\"search-q\" type=\"search\" name=\"q\" "
      "placeholder=\"e.g. message passing cs2013:PD-Communication\" "
      "autofocus>\n"
      "<button type=\"submit\">Search</button>\n"
      "</form>\n"
      "<p class=\"hint\">Free text plus filters: <code>cs2013:</code> "
      "<code>tcpp:</code> <code>course:</code> <code>sense:</code></p>\n"
      "<div id=\"search-results\"></div>\n"
      "<script>\n"
      "const form = document.getElementById('search-form');\n"
      "const out = document.getElementById('search-results');\n"
      "form.addEventListener('submit', async (e) => {\n"
      "  e.preventDefault();\n"
      "  const q = document.getElementById('search-q').value;\n"
      "  if (!q.trim()) return;\n"
      "  try {\n"
      "    const r = await fetch('/api/search?q=' + "
      "encodeURIComponent(q) + '&limit=20');\n"
      "    const data = await r.json();\n"
      "    out.innerHTML = data.hits && data.hits.length\n"
      "      ? data.hits.map(h => `<div class=\"hit\"><a href=\"${h.url}\">"
      "${h.title}</a> <small>${h.score.toFixed(2)}</small>"
      "<p>${h.snippet}</p></div>`).join('')\n"
      "      : '<p>No results.</p>';\n"
      "  } catch (err) {\n"
      "    out.innerHTML = '<p>Search needs the pdcu server "
      "(<code>pdcu serve</code>).</p>';\n"
      "  }\n"
      "});\n"
      "</script>\n";
}

/// Plans every page of the site, in the fixed output order: index,
/// activities, term pages, views, search, catalog. Each job's fingerprint
/// covers exactly the inputs its bytes depend on, so body-only edits leave
/// term/view pages untouched while title or membership changes invalidate
/// them.
std::vector<PageJob> plan_jobs(const core::Repository& repo,
                               const SiteOptions& options,
                               const std::vector<std::string>& serialized) {
  const auto& activities = repo.activities();
  std::vector<PageJob> jobs;
  jobs.reserve(activities.size() + 256);

  Fingerprint opts_fp;
  opts_fp.mix(options.base_title);

  // Index page: all activities, newest first (Hugo default ordering).
  {
    std::vector<const core::Activity*> sorted;
    sorted.reserve(activities.size());
    for (const auto& a : activities) sorted.push_back(&a);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const core::Activity* x, const core::Activity* y) {
                       return y->date < x->date;
                     });
    Fingerprint fp = opts_fp;
    for (const auto* a : sorted) {
      fp.mix(a->slug).mix(a->title).mix(a->date.to_string());
    }
    jobs.push_back(
        {"index.html", fp.value(), [sorted = std::move(sorted), &options] {
           std::string body = "<h1>" + options.base_title + "</h1>\n<ul>\n";
           for (const auto* a : sorted) {
             body += "<li><a href=\"/activities/" + a->slug + "/\">" +
                     strs::html_escape(a->title) + "</a></li>\n";
           }
           body += "</ul>\n";
           return layout(options.base_title, "Activities", body);
         }});
  }

  // One page per activity. The canonical serialization covers every input
  // of the page body (title, tags, date, all sections).
  for (std::size_t i = 0; i < activities.size(); ++i) {
    const core::Activity* activity = &activities[i];
    const std::string* text = &serialized[i];
    Fingerprint fp = opts_fp;
    fp.mix(*text);
    jobs.push_back({"activities/" + activity->slug + "/index.html",
                    fp.value(), [activity, text, &options] {
                      return layout(options.base_title, activity->title,
                                    render_activity_page_from(*activity,
                                                              *text));
                    }});
  }

  // One listing page per (taxonomy, term); inputs are the term's
  // membership (slugs and titles, in order).
  if (options.include_term_pages) {
    for (const auto& taxonomy : config().all()) {
      for (const auto& term : repo.index().terms(taxonomy.key)) {
        Fingerprint fp = opts_fp;
        fp.mix(taxonomy.key).mix(taxonomy.display_name).mix(term);
        for (const auto& page : repo.index().pages(taxonomy.key, term)) {
          fp.mix(page.slug).mix(page.title);
        }
        jobs.push_back(
            {taxonomy.key + "/" + slugify(term) + "/index.html", fp.value(),
             [&taxonomy, term, &repo, &options] {
               std::string body = "<h1>" + taxonomy.display_name + ": " +
                                  strs::html_escape(term) + "</h1>\n";
               body += activities_list_html(
                   repo.index().pages(taxonomy.key, term));
               return layout(options.base_title, term, body);
             }});
      }
    }
  }

  // The four views of §II.C. Their bytes depend on every activity's
  // identity and tags (membership per outcome/topic/course/sense) but not
  // on body prose, so body edits never invalidate them.
  if (options.include_views) {
    Fingerprint tags_fp = opts_fp;
    for (const auto& a : activities) {
      tags_fp.mix(a.slug).mix(a.title);
      for (const auto& [key, terms] : a.tags()) {
        tags_fp.mix(key);
        for (const auto& term : terms) tags_fp.mix(term);
      }
    }
    const auto view_fp = [&tags_fp](std::string_view name) {
      Fingerprint fp = tags_fp;
      fp.mix(name);
      return fp.value();
    };
    jobs.push_back({"views/cs2013/index.html", view_fp("cs2013"),
                    [&repo, &options] {
                      std::string body = "<h1>CS2013 View</h1>\n";
                      for (const auto& entry : core::cs2013_view(repo)) {
                        body += "<h3>[" + entry.detail_term + "] " +
                                strs::html_escape(entry.outcome_text) +
                                "</h3>\n";
                        body += activities_list_html(entry.activities);
                      }
                      return layout(options.base_title, "CS2013 View", body);
                    }});
    jobs.push_back(
        {"views/tcpp/index.html", view_fp("tcpp"), [&repo, &options] {
           std::string body = "<h1>TCPP View</h1>\n";
           for (const auto& entry : core::tcpp_view(repo)) {
             body += "<h3>[" + entry.detail_term + "] " +
                     strs::html_escape(entry.description) + "</h3>\n";
             body += "<p>Recommended courses: " +
                     strs::html_escape(
                         strs::join(entry.recommended_courses, ", ")) +
                     "</p>\n";
             body += activities_list_html(entry.activities);
           }
           return layout(options.base_title, "TCPP View", body);
         }});
    jobs.push_back(
        {"views/courses/index.html", view_fp("courses"), [&repo, &options] {
           std::string body = "<h1>Courses View</h1>\n";
           for (const auto& entry : core::courses_view(repo)) {
             body += "<h3>" + entry.display_name + "</h3>\n";
             body += activities_list_html(entry.activities);
           }
           return layout(options.base_title, "Courses View", body);
         }});
    jobs.push_back({"views/accessibility/index.html",
                    view_fp("accessibility"), [&repo, &options] {
                      std::string body = "<h1>Accessibility View</h1>\n";
                      for (const auto& entry :
                           core::accessibility_view(repo)) {
                        body += "<h3>" + entry.kind + ": " + entry.term +
                                "</h3>\n";
                        body += activities_list_html(entry.activities);
                      }
                      return layout(options.base_title,
                                    "Accessibility View", body);
                    }});
  }

  // Interactive search page: static shell over the live /api/search
  // endpoint — only the site title feeds its bytes.
  jobs.push_back({"search/index.html", opts_fp.value(), [&options] {
                    return layout(options.base_title, "Search",
                                  search_page_body());
                  }});

  // Machine-readable catalog alongside the HTML pages. Its bytes cover
  // the full content of every activity plus derived coverage stats, all
  // of which the serializations capture.
  {
    Fingerprint fp;
    for (const auto& text : serialized) fp.mix(text);
    jobs.push_back({"index.json", fp.value(),
                    [&repo] { return render_json_catalog(repo); }});
  }

  return jobs;
}

/// The shared build pipeline. `cache_pages` is null for a from-scratch
/// build; with a cache, fingerprint hits reuse the cached bytes by move
/// and the cache is refilled from the finished build.
Site build_pipeline(const core::Repository& repo, const SiteOptions& options,
                    BuildCache::Map* cache_pages, BuildStats* stats) {
  const auto start = std::chrono::steady_clock::now();
  const auto& activities = repo.activities();

  // --- parse: serialize every activity, then fingerprint and plan ------
  std::vector<std::string> serialized(activities.size());
  const auto serialize_block = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      serialized[i] = core::write_activity(activities[i]);
    }
  };
  if (options.pool != nullptr) {
    options.pool->parallel_for(0, activities.size(), serialize_block);
  } else {
    serialize_block(0, activities.size());
  }
  std::vector<PageJob> jobs = plan_jobs(repo, options, serialized);
  const auto parsed = std::chrono::steady_clock::now();

  // --- render: each page is an independent task writing its own slot, so
  // the page order (and every byte) matches the serial build exactly ----
  Site site;
  site.pages.resize(jobs.size());
  std::atomic<std::size_t> reused{0};
  const auto render_block = [&](std::size_t lo, std::size_t hi) {
    std::size_t block_reused = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      PageJob& job = jobs[i];
      site.pages[i].path = job.path;
      if (cache_pages != nullptr) {
        // Distinct tasks touch distinct map entries and nothing inserts
        // or erases during the render phase, so no synchronization is
        // needed around the moves.
        const auto it = cache_pages->find(job.path);
        if (it != cache_pages->end() &&
            it->second.fingerprint == job.fingerprint) {
          site.pages[i].html = std::move(it->second.html);
          ++block_reused;
          continue;
        }
      }
      site.pages[i].html = job.render();
    }
    reused.fetch_add(block_reused, std::memory_order_relaxed);
  };
  if (options.pool != nullptr) {
    options.pool->parallel_for(0, jobs.size(), render_block);
  } else {
    render_block(0, jobs.size());
  }
  const auto rendered = std::chrono::steady_clock::now();

  // --- assemble: refill the cache from this build, index the pages -----
  if (cache_pages != nullptr) {
    cache_pages->clear();
    cache_pages->reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      (*cache_pages)[site.pages[i].path] =
          BuildCache::Entry{jobs[i].fingerprint, site.pages[i].html};
    }
  }
  site.reindex();
  const auto done = std::chrono::steady_clock::now();
  site.build_time =
      std::chrono::duration_cast<std::chrono::microseconds>(done - start);

  BuildStats result;
  result.pages_total = site.pages.size();
  result.activities_quarantined = options.quarantined_inputs;
  result.pages_reused = reused.load(std::memory_order_relaxed);
  result.pages_rendered = result.pages_total - result.pages_reused;
  result.parse_time =
      std::chrono::duration_cast<std::chrono::microseconds>(parsed - start);
  result.render_time = std::chrono::duration_cast<std::chrono::microseconds>(
      rendered - parsed);
  result.assemble_time =
      std::chrono::duration_cast<std::chrono::microseconds>(done - rendered);
  if (options.spans != nullptr) {
    options.spans->record(
        "site.parse", static_cast<std::uint64_t>(result.parse_time.count()));
    options.spans->record(
        "site.render",
        static_cast<std::uint64_t>(result.render_time.count()));
    options.spans->record(
        "site.assemble",
        static_cast<std::uint64_t>(result.assemble_time.count()));
    options.spans->record(
        "site.total", static_cast<std::uint64_t>(site.build_time.count()));
  }
  if (options.trace != nullptr) {
    options.trace->narrate("site: " + result.summary());
  }
  if (stats != nullptr) *stats = result;
  return site;
}

}  // namespace

const Page* Site::find(std::string_view path) const {
  // The index is trusted only when it provably matches `pages`: the sizes
  // agree and the hit's stored path still matches. A Site mutated since
  // the last reindex() — appended, renamed, reordered — drops to the scan
  // instead of returning the wrong page; genuine misses scan too, since a
  // same-size mutation can hide a page the stale index never saw.
  if (index_.size() == pages.size()) {
    const auto it = index_.find(path);
    if (it != index_.end() && pages[it->second].path == path) {
      return &pages[it->second];
    }
  }
  for (const auto& page : pages) {
    if (page.path == path) return &page;
  }
  return nullptr;
}

void Site::reindex() {
  index_.clear();
  index_.reserve(pages.size());
  for (std::size_t i = 0; i < pages.size(); ++i) {
    index_.emplace(pages[i].path, i);
  }
}

std::string_view content_type_for(std::string_view path) {
  if (strs::ends_with(path, ".html") || strs::ends_with(path, ".htm")) {
    return "text/html; charset=utf-8";
  }
  if (strs::ends_with(path, ".json")) return "application/json; charset=utf-8";
  if (strs::ends_with(path, ".css")) return "text/css; charset=utf-8";
  if (strs::ends_with(path, ".js")) return "text/javascript; charset=utf-8";
  if (strs::ends_with(path, ".svg")) return "image/svg+xml";
  if (strs::ends_with(path, ".txt")) return "text/plain; charset=utf-8";
  if (strs::ends_with(path, ".png")) return "image/png";
  return "application/octet-stream";
}

std::string BuildStats::summary() const {
  std::string out = std::to_string(pages_total) + " pages (" +
                    std::to_string(pages_rendered) + " rendered, " +
                    std::to_string(pages_reused) + " reused) in " +
                    std::to_string((parse_time + render_time + assemble_time)
                                       .count()) +
                    " us [parse " + std::to_string(parse_time.count()) +
                    ", render " + std::to_string(render_time.count()) +
                    ", assemble " + std::to_string(assemble_time.count()) +
                    "]";
  if (activities_quarantined > 0) {
    out += " — DEGRADED: " + std::to_string(activities_quarantined) +
           " activities quarantined";
  }
  return out;
}

std::string BuildStats::render_text() const {
  // Gauges describing the build that produced the served site. The page
  // total is deliberately named without a _total suffix: promtool reserves
  // that suffix for counters, and these reset on every build.
  std::string out;
  out += "# HELP pdcu_build_pages Pages produced by the build serving this "
         "process.\n";
  out += "# TYPE pdcu_build_pages gauge\n";
  out += "pdcu_build_pages " + std::to_string(pages_total) + "\n";
  out += "# HELP pdcu_build_pages_rendered Pages rendered (cache misses) "
         "by the last build.\n";
  out += "# TYPE pdcu_build_pages_rendered gauge\n";
  out += "pdcu_build_pages_rendered " + std::to_string(pages_rendered) + "\n";
  out += "# HELP pdcu_build_pages_reused Pages reused from the build cache "
         "by the last build.\n";
  out += "# TYPE pdcu_build_pages_reused gauge\n";
  out += "pdcu_build_pages_reused " + std::to_string(pages_reused) + "\n";
  out += "# HELP pdcu_build_phase_us Wall time of each build pipeline "
         "phase, microseconds.\n";
  out += "# TYPE pdcu_build_phase_us gauge\n";
  out += "pdcu_build_phase_us{phase=\"parse\"} " +
         std::to_string(parse_time.count()) + "\n";
  out += "pdcu_build_phase_us{phase=\"render\"} " +
         std::to_string(render_time.count()) + "\n";
  out += "pdcu_build_phase_us{phase=\"assemble\"} " +
         std::to_string(assemble_time.count()) + "\n";
  out += "# HELP pdcu_build_activities_quarantined Content files the "
         "lenient loader quarantined before the last build.\n";
  out += "# TYPE pdcu_build_activities_quarantined gauge\n";
  out += "pdcu_build_activities_quarantined " +
         std::to_string(activities_quarantined) + "\n";
  return out;
}

std::string render_activity_header(const core::Activity& activity) {
  std::string body = "<h1>" + strs::html_escape(activity.title) + "</h1>\n";
  body += "<div class=\"tags\">\n" + chips_for(activity, /*ansi=*/false) +
          "</div>\n";
  return body;
}

std::string render_activity_header_ansi(const core::Activity& activity) {
  return activity.title + "\n" + chips_for(activity, /*ansi=*/true) + "\n";
}

std::string render_activity_page(const core::Activity& activity) {
  // The body sections come from the canonical Markdown serialization, so a
  // page looks identical whether the activity was loaded from disk or from
  // the built-in curation.
  return render_activity_page_from(activity, core::write_activity(activity));
}

Site build_site(const core::Repository& repo, const SiteOptions& options,
                BuildStats* stats) {
  return build_pipeline(repo, options, nullptr, stats);
}

Site rebuild(const core::Repository& repo, BuildCache& cache,
             const SiteOptions& options, BuildStats* stats) {
  return build_pipeline(repo, options, &cache.pages_, stats);
}

Status write_pages(const Site& site, const std::filesystem::path& out_dir) {
  for (const auto& page : site.pages) {
    auto status = fs::write_file(out_dir / page.path, page.html);
    if (!status) return status;
  }
  return Status::ok();
}

Expected<Site> write_site(const core::Repository& repo,
                          const std::filesystem::path& out_dir,
                          const SiteOptions& options) {
  Site site = build_site(repo, options);
  auto status = write_pages(site, out_dir);
  if (!status) return status.error();
  return site;
}

}  // namespace pdcu::site
