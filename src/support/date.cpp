#include "pdcu/support/date.hpp"

#include <array>
#include <cstdio>

namespace pdcu {

namespace {
bool is_leap(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

int days_in_month(int year, int month) {
  static constexpr std::array<int, 13> kDays = {0,  31, 28, 31, 30, 31, 30,
                                                31, 31, 30, 31, 30, 31};
  if (month == 2 && is_leap(year)) return 29;
  return kDays[static_cast<std::size_t>(month)];
}
}  // namespace

bool Date::valid(int year, int month, int day) {
  if (year < 1 || month < 1 || month > 12 || day < 1) return false;
  return day <= days_in_month(year, month);
}

std::string Date::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
  return buf;
}

Expected<Date> Date::parse(std::string_view text) {
  const auto bad = [&] {
    return Error::make("date.parse",
                       "expected YYYY-MM-DD, got '" + std::string(text) + "'");
  };
  if (text.size() != 10 || text[4] != '-' || text[7] != '-') return bad();
  auto digits = [](std::string_view s, int& out) {
    out = 0;
    for (char c : s) {
      if (c < '0' || c > '9') return false;
      out = out * 10 + (c - '0');
    }
    return true;
  };
  int y = 0, m = 0, d = 0;
  if (!digits(text.substr(0, 4), y) || !digits(text.substr(5, 2), m) ||
      !digits(text.substr(8, 2), d)) {
    return bad();
  }
  if (!valid(y, m, d)) {
    return Error::make("date.range",
                       "impossible date '" + std::string(text) + "'");
  }
  return Date{y, m, d};
}

}  // namespace pdcu
