#include "pdcu/support/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace pdcu::strings {

namespace {
bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view trim_left(std::string_view s) {
  std::size_t i = 0;
  while (i < s.size() && is_space(s[i])) ++i;
  return s.substr(i);
}

std::string_view trim_right(std::string_view s) {
  std::size_t n = s.size();
  while (n > 0 && is_space(s[n - 1])) --n;
  return s.substr(0, n);
}

std::string_view trim(std::string_view s) { return trim_right(trim_left(s)); }

std::vector<std::string> split(std::string_view s, char sep) {
  return split(s, std::string_view(&sep, 1));
}

std::vector<std::string> split(std::string_view s, std::string_view sep) {
  std::vector<std::string> out;
  if (sep.empty()) {
    out.emplace_back(s);
    return out;
  }
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + sep.size();
  }
}

std::vector<std::string> split_lines(std::string_view s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') {
      std::size_t end = i;
      if (end > start && s[end - 1] == '\r') --end;
      out.emplace_back(s.substr(start, end - start));
      start = i + 1;
    }
  }
  if (start < s.size()) {
    std::string_view last = s.substr(start);
    if (!last.empty() && last.back() == '\r') last.remove_suffix(1);
    out.emplace_back(last);
  }
  return out;
}

std::string join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool contains(std::string_view s, std::string_view needle) {
  return s.find(needle) != std::string_view::npos;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string repeat(std::string_view s, std::size_t n) {
  std::string out;
  out.reserve(s.size() * n);
  for (std::size_t i = 0; i < n; ++i) out.append(s);
  return out;
}

std::string pad_right(std::string_view s, std::size_t width) {
  std::string out(s);
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  std::string out;
  if (s.size() < width) out.append(width - s.size(), ' ');
  out.append(s);
  return out;
}

std::vector<std::string> word_wrap(std::string_view text, std::size_t width) {
  std::vector<std::string> lines;
  std::string current;
  for (std::string_view word : split(text, ' ')) {
    if (word.empty()) continue;
    if (current.empty()) {
      current = std::string(word);
    } else if (current.size() + 1 + word.size() <= width) {
      current += ' ';
      current += word;
    } else {
      lines.push_back(current);
      current = std::string(word);
    }
  }
  if (!current.empty()) lines.push_back(current);
  if (lines.empty()) lines.emplace_back();
  return lines;
}

std::string html_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  html_escape_append(s, out);
  return out;
}

void html_escape_append(std::string_view s, std::string& out) {
  // Copy clean runs in bulk; most text contains no escapable characters.
  std::size_t run_start = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c != '&' && c != '<' && c != '>' && c != '"') continue;
    out.append(s, run_start, i - run_start);
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += "&quot;"; break;
    }
    run_start = i + 1;
  }
  out.append(s, run_start, s.size() - run_start);
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  return value;
}

std::string percent(double numerator, double denominator) {
  double pct = denominator == 0.0 ? 0.0 : 100.0 * numerator / denominator;
  // Round half away from zero at two decimals. The paper's tables mix
  // rounding (66.67%, 26.32%) with truncation (54.54%, 16.66%); we use
  // rounding uniformly and record the two truncated cells in EXPERIMENTS.md.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", pct);
  return buf;
}

}  // namespace pdcu::strings
