#include "pdcu/support/fault.hpp"

namespace pdcu::fs {

namespace {

std::atomic<FaultInjector*> g_injector{nullptr};

}  // namespace

void FaultInjector::add_rule(Rule rule) {
  std::lock_guard lock(mutex_);
  rules_.push_back(RuleState{std::move(rule), 0});
}

void FaultInjector::clear() {
  std::lock_guard lock(mutex_);
  rules_.clear();
}

FaultInjector::Action FaultInjector::intercept(
    const std::filesystem::path& path) {
  const std::string text = path.string();
  std::lock_guard lock(mutex_);
  for (auto& state : rules_) {
    if (!state.rule.path_substring.empty() &&
        text.find(state.rule.path_substring) == std::string::npos) {
      continue;
    }
    const std::uint64_t n = state.matched++;
    if (n < state.rule.skip || n - state.rule.skip >= state.rule.limit) {
      continue;
    }
    injected_.fetch_add(1, std::memory_order_relaxed);
    Action action;
    action.mode = state.rule.mode;
    action.fired = true;
    action.truncate_to = state.rule.truncate_to;
    action.latency = state.rule.latency;
    return action;
  }
  return Action{};
}

void install_fault_injector(FaultInjector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

FaultInjector* installed_fault_injector() {
  return g_injector.load(std::memory_order_acquire);
}

}  // namespace pdcu::fs
