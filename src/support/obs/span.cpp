#include "pdcu/obs/span.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace pdcu::obs {

namespace {

std::atomic<bool> g_legacy_names{false};

}  // namespace

void set_legacy_names(bool enabled) {
  g_legacy_names.store(enabled, std::memory_order_relaxed);
}

bool legacy_names() { return g_legacy_names.load(std::memory_order_relaxed); }

void SpanRegistry::record(std::string_view span, std::uint64_t duration_us) {
  {
    std::shared_lock lock(mutex_);
    const auto it = spans_.find(span);
    if (it != spans_.end()) {
      it->second->record(duration_us);
      return;
    }
  }
  std::unique_lock lock(mutex_);
  auto& slot = spans_[std::string(span)];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  slot->record(duration_us);
}

const Histogram* SpanRegistry::find(std::string_view span) const {
  std::shared_lock lock(mutex_);
  const auto it = spans_.find(span);
  return it == spans_.end() ? nullptr : it->second.get();
}

std::vector<std::string> SpanRegistry::names() const {
  std::shared_lock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(spans_.size());
  for (const auto& [name, histogram] : spans_) out.push_back(name);
  return out;
}

std::string SpanRegistry::render_text() const {
  std::shared_lock lock(mutex_);
  if (spans_.empty()) return {};
  std::string out;
  out += "# HELP pdcu_span_duration_us Duration of named internal spans "
         "(build phases, index builds) in microseconds.\n";
  out += "# TYPE pdcu_span_duration_us histogram\n";
  for (const auto& [name, histogram] : spans_) {
    append_histogram_series("pdcu_span_duration_us", "span=\"" + name + "\"",
                            histogram->snapshot(), out);
  }
  return out;
}

std::string SpanRegistry::summary() const {
  std::shared_lock lock(mutex_);
  std::string out;
  for (const auto& [name, histogram] : spans_) {
    const Histogram::Snapshot snap = histogram->snapshot();
    char line[256];
    std::snprintf(line, sizeof line,
                  "%s: count=%llu p50=%lluus p95=%lluus p99=%lluus "
                  "mean=%.1fus\n",
                  name.c_str(), static_cast<unsigned long long>(snap.count),
                  static_cast<unsigned long long>(snap.percentile(50)),
                  static_cast<unsigned long long>(snap.percentile(95)),
                  static_cast<unsigned long long>(snap.percentile(99)),
                  snap.mean());
    out += line;
  }
  return out;
}

}  // namespace pdcu::obs
