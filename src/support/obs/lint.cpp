#include "pdcu/obs/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <utility>

namespace pdcu::obs {

namespace {

bool is_name_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool is_name_char(char c) {
  return is_name_start(c) || (c >= '0' && c <= '9');
}

bool valid_metric_name(std::string_view name) {
  if (name.empty() || !is_name_start(name.front())) return false;
  return std::all_of(name.begin(), name.end(), is_name_char);
}

bool valid_number(std::string_view text) {
  if (text == "+Inf" || text == "-Inf" || text == "NaN") return true;
  if (text.empty()) return false;
  char* end = nullptr;
  const std::string copy(text);
  std::strtod(copy.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// One parsed sample line.
struct Sample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;  ///< in order
  std::string value;
  std::size_t line = 0;

  std::string label(std::string_view key) const {
    for (const auto& [k, v] : labels) {
      if (k == key) return v;
    }
    return {};
  }

  /// Canonical label-set key; `drop` removes one label (used to group a
  /// histogram's buckets across le values).
  std::string label_key(std::string_view drop = {}) const {
    std::vector<std::pair<std::string, std::string>> sorted;
    for (const auto& entry : labels) {
      if (entry.first != drop) sorted.push_back(entry);
    }
    std::sort(sorted.begin(), sorted.end());
    std::string key;
    for (const auto& [k, v] : sorted) key += k + "=\"" + v + "\",";
    return key;
  }
};

/// Parses `name{label="v",...} value` (labels optional). Returns nullopt
/// and sets `problem` when malformed.
std::optional<Sample> parse_sample(std::string_view line, std::size_t number,
                                   std::string* problem) {
  Sample sample;
  sample.line = number;
  std::size_t at = 0;
  while (at < line.size() && is_name_char(line[at])) ++at;
  sample.name = std::string(line.substr(0, at));
  if (!valid_metric_name(sample.name)) {
    *problem = "invalid metric name";
    return std::nullopt;
  }
  if (at < line.size() && line[at] == '{') {
    ++at;
    while (at < line.size() && line[at] != '}') {
      std::size_t name_end = at;
      while (name_end < line.size() && is_name_char(line[name_end])) {
        ++name_end;
      }
      const std::string label_name(line.substr(at, name_end - at));
      if (label_name.empty() || name_end >= line.size() ||
          line[name_end] != '=' || name_end + 1 >= line.size() ||
          line[name_end + 1] != '"') {
        *problem = "malformed label";
        return std::nullopt;
      }
      std::size_t cursor = name_end + 2;
      std::string value;
      bool closed = false;
      while (cursor < line.size()) {
        const char c = line[cursor];
        if (c == '\\' && cursor + 1 < line.size()) {
          value += line[cursor + 1];
          cursor += 2;
          continue;
        }
        if (c == '"') {
          closed = true;
          ++cursor;
          break;
        }
        value += c;
        ++cursor;
      }
      if (!closed) {
        *problem = "unterminated label value";
        return std::nullopt;
      }
      sample.labels.emplace_back(label_name, value);
      if (cursor < line.size() && line[cursor] == ',') ++cursor;
      at = cursor;
    }
    if (at >= line.size() || line[at] != '}') {
      *problem = "unterminated label set";
      return std::nullopt;
    }
    ++at;
  }
  if (at >= line.size() || line[at] != ' ') {
    *problem = "missing value";
    return std::nullopt;
  }
  ++at;
  // Value, optionally followed by a timestamp (which we accept and skip).
  const std::size_t value_end = line.find(' ', at);
  sample.value = std::string(line.substr(
      at, value_end == std::string_view::npos ? line.size() - at
                                              : value_end - at));
  if (!valid_number(sample.value)) {
    *problem = "invalid sample value '" + sample.value + "'";
    return std::nullopt;
  }
  return sample;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

double parse_le(std::string_view text) {
  if (text == "+Inf") return std::numeric_limits<double>::infinity();
  return std::atof(std::string(text).c_str());
}

}  // namespace

std::vector<std::string> lint_exposition(std::string_view text) {
  std::vector<std::string> problems;
  const auto report = [&problems](std::size_t line, const std::string& what) {
    problems.push_back("line " + std::to_string(line) + ": " + what);
  };

  std::map<std::string, std::string> family_type;  ///< name -> TYPE
  std::set<std::string> family_help;
  std::set<std::string> families_with_samples;
  std::set<std::string> series_seen;  ///< full name + label key
  std::vector<Sample> samples;

  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(start, end - start);
    start = end + 1;
    ++line_number;
    if (line.empty()) {
      if (start > text.size()) break;
      continue;
    }

    if (line.front() == '#') {
      // "# HELP name doc" / "# TYPE name type"; other comments pass.
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
        const bool is_type = line[2] == 'T';
        const std::string_view rest = line.substr(7);
        const std::size_t space = rest.find(' ');
        const std::string name(rest.substr(0, space));
        if (!valid_metric_name(name)) {
          report(line_number, "invalid metric name in comment");
          continue;
        }
        if (is_type) {
          const std::string type(
              space == std::string_view::npos ? "" : rest.substr(space + 1));
          if (type != "counter" && type != "gauge" && type != "histogram" &&
              type != "summary" && type != "untyped") {
            report(line_number, "unknown TYPE '" + type + "' for " + name);
          }
          if (family_type.count(name) != 0) {
            report(line_number, "duplicate TYPE for " + name);
          }
          if (families_with_samples.count(name) != 0) {
            report(line_number, "TYPE for " + name + " after its samples");
          }
          family_type[name] = type;
        } else {
          family_help.insert(name);
        }
      }
      continue;
    }

    std::string problem;
    auto sample = parse_sample(line, line_number, &problem);
    if (!sample.has_value()) {
      report(line_number, problem);
      continue;
    }

    // Resolve the owning family: _bucket/_sum/_count fold into a declared
    // histogram (or summary, for _sum/_count) family.
    std::string family = sample->name;
    for (const std::string_view suffix : {"_bucket", "_sum", "_count"}) {
      if (!ends_with(sample->name, suffix)) continue;
      const std::string base(
          sample->name.substr(0, sample->name.size() - suffix.size()));
      const auto it = family_type.find(base);
      if (it != family_type.end() &&
          (it->second == "histogram" ||
           (it->second == "summary" && suffix != "_bucket"))) {
        family = base;
        break;
      }
    }
    families_with_samples.insert(family);

    const auto type_it = family_type.find(family);
    if (type_it == family_type.end()) {
      report(line_number, "no TYPE declared for family of " + sample->name);
    } else {
      const std::string& type = type_it->second;
      if (type == "counter" && !ends_with(sample->name, "_total")) {
        report(line_number,
               "counter " + sample->name + " must end in _total");
      }
      if (type != "counter" && type != "histogram" && type != "summary" &&
          ends_with(sample->name, "_total")) {
        report(line_number,
               "non-counter " + sample->name + " must not end in _total");
      }
      if (type == "histogram" && ends_with(sample->name, "_bucket") &&
          sample->label("le").empty()) {
        report(line_number, sample->name + " bucket without an le label");
      }
    }
    if (family_help.count(family) == 0) {
      report(line_number, "no HELP declared for family of " + sample->name);
    }

    for (const auto& [label_name, value] : sample->labels) {
      if (!valid_metric_name(label_name) || label_name.front() == ':') {
        report(line_number, "invalid label name '" + label_name + "'");
      }
    }

    const std::string series_key = sample->name + "{" + sample->label_key();
    if (!series_seen.insert(series_key).second) {
      report(line_number, "duplicate series " + sample->name);
    }
    samples.push_back(std::move(*sample));
  }

  // Histogram family coherence: cumulative buckets, +Inf, _sum/_count.
  for (const auto& [family, type] : family_type) {
    if (type != "histogram") continue;
    // Group this family's buckets by their non-le label set.
    std::map<std::string, std::vector<const Sample*>> groups;
    std::set<std::string> sums;
    std::set<std::string> counts;
    std::map<std::string, double> count_values;
    for (const Sample& sample : samples) {
      if (sample.name == family + "_bucket") {
        groups[sample.label_key("le")].push_back(&sample);
      } else if (sample.name == family + "_sum") {
        sums.insert(sample.label_key());
      } else if (sample.name == family + "_count") {
        counts.insert(sample.label_key());
        count_values[sample.label_key()] = parse_le(sample.value);
      }
    }
    for (auto& [key, buckets] : groups) {
      std::stable_sort(buckets.begin(), buckets.end(),
                       [](const Sample* a, const Sample* b) {
                         return parse_le(a->label("le")) <
                                parse_le(b->label("le"));
                       });
      double previous = -1.0;
      for (const Sample* bucket : buckets) {
        const double value = parse_le(bucket->value);
        if (value < previous) {
          report(bucket->line,
                 family + " buckets are not cumulative at le=\"" +
                     bucket->label("le") + "\"");
        }
        previous = value;
      }
      const Sample* last = buckets.back();
      if (last->label("le") != "+Inf") {
        report(last->line, family + " is missing an le=\"+Inf\" bucket");
      } else if (counts.count(key) != 0 &&
                 parse_le(last->value) != count_values[key]) {
        report(last->line,
               family + " +Inf bucket disagrees with " + family + "_count");
      }
      if (sums.count(key) == 0) {
        report(last->line, family + " is missing " + family + "_sum");
      }
      if (counts.count(key) == 0) {
        report(last->line, family + " is missing " + family + "_count");
      }
    }
  }

  return problems;
}

}  // namespace pdcu::obs
