#include "pdcu/obs/access_log.hpp"

#include <ctime>
#include <string_view>
#include <utility>
#include <vector>

namespace pdcu::obs {

namespace {

/// Minimal JSON string escaping: quotes, backslashes, and control bytes.
void json_escape_append(std::string_view text, std::string& out) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

/// UTC ISO-8601 with milliseconds, e.g. "2026-08-06T12:34:56.789Z".
std::string format_timestamp(std::chrono::system_clock::time_point when) {
  const auto since_epoch = when.time_since_epoch();
  const auto seconds =
      std::chrono::duration_cast<std::chrono::seconds>(since_epoch);
  const auto millis =
      std::chrono::duration_cast<std::chrono::milliseconds>(since_epoch) -
      std::chrono::duration_cast<std::chrono::milliseconds>(seconds);
  const std::time_t time = seconds.count();
  std::tm utc{};
  gmtime_r(&time, &utc);
  char buffer[96];
  std::snprintf(buffer, sizeof buffer, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(millis.count()));
  return buffer;
}

}  // namespace

std::string AccessLog::format_line(const AccessEntry& entry) {
  std::string line = "{\"ts\":\"" + format_timestamp(entry.time) + "\",";
  line += "\"method\":\"";
  json_escape_append(entry.method, line);
  line += "\",\"path\":\"";
  json_escape_append(entry.target, line);
  line += "\",\"status\":" + std::to_string(entry.status);
  line += ",\"bytes\":" + std::to_string(entry.bytes);
  line += ",\"latency_us\":" + std::to_string(entry.latency_us);
  line += ",\"route\":\"";
  json_escape_append(entry.route, line);
  line += "\"}";
  return line;
}

AccessLog::AccessLog(const std::string& path, std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  if (path == "-") {
    file_ = stdout;
    owns_file_ = false;
  } else {
    file_ = std::fopen(path.c_str(), "a");
  }
  if (file_ == nullptr) return;
  writer_ = std::thread([this] { writer_loop(); });
}

AccessLog::~AccessLog() {
  if (file_ == nullptr) return;
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  writer_.join();
  if (owns_file_) {
    std::fclose(file_);
  } else {
    std::fflush(file_);
  }
}

void AccessLog::log(AccessEntry entry) {
  if (file_ == nullptr) return;
  {
    std::lock_guard lock(mutex_);
    if (ring_.size() >= capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ring_.push_back(std::move(entry));
  }
  wake_.notify_one();
}

void AccessLog::flush() {
  if (file_ == nullptr) return;
  std::unique_lock lock(mutex_);
  drained_.wait(lock, [this] { return ring_.empty() && !writing_; });
  std::fflush(file_);
}

void AccessLog::writer_loop() {
  std::vector<AccessEntry> batch;
  for (;;) {
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this] { return stop_ || !ring_.empty(); });
      if (ring_.empty() && stop_) return;
      // Move a whole batch out so formatting and fwrite run unlocked.
      batch.assign(std::make_move_iterator(ring_.begin()),
                   std::make_move_iterator(ring_.end()));
      ring_.clear();
      writing_ = true;
    }
    std::string block;
    for (const AccessEntry& entry : batch) {
      block += format_line(entry);
      block += '\n';
    }
    std::fwrite(block.data(), 1, block.size(), file_);
    written_.fetch_add(batch.size(), std::memory_order_relaxed);
    batch.clear();
    {
      std::lock_guard lock(mutex_);
      writing_ = false;
    }
    drained_.notify_all();
  }
}

}  // namespace pdcu::obs
