#include "pdcu/obs/histogram.hpp"

#include <bit>
#include <cmath>

namespace pdcu::obs {

std::size_t Histogram::bucket_index(std::uint64_t value) {
  if (value <= 1) return 0;
  // Smallest i with 2^i >= value, i.e. the bucket whose inclusive upper
  // bound covers the value; everything past 2^62 shares the last bucket.
  const auto index = static_cast<std::size_t>(std::bit_width(value - 1));
  return index < kBucketCount ? index : kBucketCount - 1;
}

std::uint64_t Histogram::bucket_upper_bound(std::size_t bucket) {
  if (bucket >= kBucketCount - 1) return UINT64_MAX;
  return std::uint64_t{1} << bucket;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::merge(const Histogram& other) {
  const Snapshot snap = other.snapshot();
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (snap.buckets[i] != 0) {
      buckets_[i].fetch_add(snap.buckets[i], std::memory_order_relaxed);
    }
  }
  sum_.fetch_add(snap.sum, std::memory_order_relaxed);
}

void Histogram::Snapshot::merge(const Snapshot& other) {
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
}

std::uint64_t Histogram::Snapshot::cumulative(std::size_t bucket) const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bucket && i < kBucketCount; ++i) {
    total += buckets[i];
  }
  return total;
}

std::uint64_t Histogram::Snapshot::percentile(double p) const {
  if (count == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the value we are after, 1-based; p=0 means the smallest.
  const auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  const std::uint64_t rank = target == 0 ? 1 : target;

  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] < rank) {
      seen += buckets[i];
      continue;
    }
    // The rank falls in this bucket; interpolate between its bounds. The
    // open-ended last bucket has no meaningful width, so report its lower
    // bound (the largest value the histogram can still resolve).
    const std::uint64_t lower = i == 0 ? 0 : bucket_upper_bound(i - 1);
    if (i == kBucketCount - 1) return lower;
    const std::uint64_t upper = bucket_upper_bound(i);
    const double fraction = static_cast<double>(rank - seen) /
                            static_cast<double>(buckets[i]);
    return lower + static_cast<std::uint64_t>(
                       std::llround(fraction *
                                    static_cast<double>(upper - lower)));
  }
  return bucket_upper_bound(kBucketCount - 2);
}

std::uint64_t Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const auto target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count)));
  const std::uint64_t rank = target == 0 ? 1 : target;

  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (buckets[i] == 0) continue;
    if (seen + buckets[i] < rank) {
      seen += buckets[i];
      continue;
    }
    const std::uint64_t lower = i == 0 ? 0 : bucket_upper_bound(i - 1);
    if (i == kBucketCount - 1) return lower;
    const std::uint64_t upper = bucket_upper_bound(i);
    const double fraction = static_cast<double>(rank - seen) /
                            static_cast<double>(buckets[i]);
    if (lower == 0) {
      // Bucket 0 holds {0, 1}: no log space to interpolate in.
      return static_cast<std::uint64_t>(
          std::llround(fraction * static_cast<double>(upper)));
    }
    // Geometric interpolation: with upper == 2 * lower this is exactly
    // lower * 2^fraction, i.e. uniform in log(value) across the bucket.
    const double ratio =
        static_cast<double>(upper) / static_cast<double>(lower);
    return static_cast<std::uint64_t>(
        std::llround(static_cast<double>(lower) * std::pow(ratio, fraction)));
  }
  return bucket_upper_bound(kBucketCount - 2);
}

void append_histogram_series(std::string_view family, std::string_view labels,
                             const Histogram::Snapshot& snapshot,
                             std::string& out) {
  const auto emit = [&](std::string_view le, std::uint64_t value) {
    out += family;
    out += "_bucket{";
    if (!labels.empty()) {
      out += labels;
      out += ',';
    }
    out += "le=\"";
    out += le;
    out += "\"} ";
    out += std::to_string(value);
    out += '\n';
  };
  // Every exposed boundary is a power of four, so it coincides exactly
  // with an internal power-of-two bucket edge: the cumulative counts are
  // exact, not interpolated.
  for (std::uint64_t bound = 1; bound <= (std::uint64_t{1} << 26);
       bound *= 4) {
    emit(std::to_string(bound),
         snapshot.cumulative(Histogram::bucket_index(bound)));
  }
  emit("+Inf", snapshot.count);
  out += family;
  if (!labels.empty()) {
    out += "_sum{" + std::string(labels) + "} ";
  } else {
    out += "_sum ";
  }
  out += std::to_string(snapshot.sum);
  out += '\n';
  out += family;
  if (!labels.empty()) {
    out += "_count{" + std::string(labels) + "} ";
  } else {
    out += "_count ";
  }
  out += std::to_string(snapshot.count);
  out += '\n';
}

}  // namespace pdcu::obs
