#include "pdcu/support/slug.hpp"

#include <cctype>

namespace pdcu {

std::string slugify(std::string_view title) {
  std::string out;
  out.reserve(title.size());
  bool pending_dash = false;
  for (unsigned char c : title) {
    if (std::isalnum(c)) {
      if (pending_dash && !out.empty()) out += '-';
      pending_dash = false;
      out += static_cast<char>(std::tolower(c));
    } else {
      pending_dash = true;
    }
  }
  return out;
}

bool is_slug(std::string_view s) {
  if (s.empty() || s.front() == '-' || s.back() == '-') return false;
  char prev = '\0';
  for (char c : s) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-';
    if (!ok) return false;
    if (c == '-' && prev == '-') return false;
    prev = c;
  }
  return true;
}

}  // namespace pdcu
