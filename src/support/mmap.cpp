#include "pdcu/support/mmap.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace pdcu::fs {

namespace {

Error errno_error(const char* what, const std::filesystem::path& path) {
  return Error::make("fs.mmap", std::string(what) + " '" + path.string() +
                                    "': " + std::strerror(errno));
}

}  // namespace

Expected<MappedFile> MappedFile::open(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return errno_error("cannot open", path);

  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Error error = errno_error("cannot stat", path);
    ::close(fd);
    return error;
  }
  MappedFile file;
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ > 0) {
    void* data = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (data == MAP_FAILED) {
      const Error error = errno_error("cannot mmap", path);
      ::close(fd);
      return error;
    }
    file.data_ = data;
  }
  // The mapping keeps the pages alive; the descriptor is no longer needed.
  ::close(fd);
  return file;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

}  // namespace pdcu::fs
