#include "pdcu/support/text_table.hpp"

#include <algorithm>
#include <cassert>

#include "pdcu/support/strings.hpp"

namespace pdcu {

TextTable::TextTable(std::vector<std::string> header,
                     std::size_t max_col_width)
    : header_(std::move(header)),
      aligns_(header_.size(), Align::kLeft),
      max_col_width_(max_col_width) {}

void TextTable::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::set_align(std::size_t column, Align align) {
  assert(column < aligns_.size());
  aligns_[column] = align;
}

std::string TextTable::render() const {
  const std::size_t ncols = header_.size();

  // Wrap every cell (header included) and record final column widths.
  auto wrap_row = [&](const std::vector<std::string>& row) {
    std::vector<std::vector<std::string>> cells(ncols);
    for (std::size_t c = 0; c < ncols; ++c) {
      cells[c] = strings::word_wrap(row[c], max_col_width_);
    }
    return cells;
  };

  std::vector<std::vector<std::vector<std::string>>> wrapped;
  wrapped.push_back(wrap_row(header_));
  for (const auto& row : rows_) wrapped.push_back(wrap_row(row));

  std::vector<std::size_t> widths(ncols, 1);
  for (const auto& row : wrapped) {
    for (std::size_t c = 0; c < ncols; ++c) {
      for (const auto& line : row[c]) {
        widths[c] = std::max(widths[c], line.size());
      }
    }
  }

  std::string border = "+";
  for (std::size_t c = 0; c < ncols; ++c) {
    border += strings::repeat("-", widths[c] + 2);
    border += '+';
  }
  border += '\n';

  auto render_row = [&](const std::vector<std::vector<std::string>>& cells) {
    std::size_t height = 0;
    for (const auto& cell : cells) height = std::max(height, cell.size());
    std::string out;
    for (std::size_t line = 0; line < height; ++line) {
      out += '|';
      for (std::size_t c = 0; c < ncols; ++c) {
        std::string text =
            line < cells[c].size() ? cells[c][line] : std::string{};
        out += ' ';
        out += aligns_[c] == Align::kLeft ? strings::pad_right(text, widths[c])
                                          : strings::pad_left(text, widths[c]);
        out += " |";
      }
      out += '\n';
    }
    return out;
  };

  std::string out = border;
  out += render_row(wrapped.front());
  out += border;
  for (std::size_t r = 1; r < wrapped.size(); ++r) {
    out += render_row(wrapped[r]);
  }
  out += border;
  return out;
}

}  // namespace pdcu
