#include "pdcu/support/fs.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <thread>

#include "pdcu/support/fault.hpp"

namespace pdcu::fs {

namespace {

/// Consults the installed FaultInjector (if any) for `path`. Sleeps any
/// injected latency here so callers see it as slow I/O; returns the action
/// for the caller to translate into its own error codes.
FaultInjector::Action intercept(const std::filesystem::path& path) {
  FaultInjector* injector = installed_fault_injector();
  if (injector == nullptr) return FaultInjector::Action{};
  FaultInjector::Action action = injector->intercept(path);
  if (action.fired && action.latency.count() > 0) {
    std::this_thread::sleep_for(action.latency);
  }
  return action;
}

}  // namespace

Expected<std::string> read_file(const std::filesystem::path& path) {
  const FaultInjector::Action action = intercept(path);
  if (action.fault() && action.mode == FaultInjector::Mode::kOpenError) {
    return Error::make("fs.open",
                       "cannot open '" + path.string() + "' (injected fault)");
  }
  if (action.fault() && action.mode == FaultInjector::Mode::kIoError) {
    return Error::make("fs.read",
                       "read error on '" + path.string() + "' (injected fault)");
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error::make("fs.open", "cannot open '" + path.string() + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Error::make("fs.read", "read error on '" + path.string() + "'");
  }
  std::string content = buf.str();
  if (action.fault() && action.mode == FaultInjector::Mode::kTruncate &&
      content.size() > action.truncate_to) {
    content.resize(action.truncate_to);
  }
  return content;
}

Status write_file(const std::filesystem::path& path,
                  const std::string& content) {
  std::error_code ec;
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path(), ec);
    if (ec) {
      return Error::make("fs.mkdir", "cannot create directories for '" +
                                         path.string() + "': " + ec.message());
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Error::make("fs.open", "cannot open '" + path.string() +
                                      "' for writing");
  }
  out << content;
  out.flush();
  if (!out) {
    return Error::make("fs.write", "write error on '" + path.string() + "'");
  }
  return Status::ok();
}

Expected<std::vector<std::filesystem::path>> list_files(
    const std::filesystem::path& dir, const std::string& extension) {
  // kTruncate has no short-read analogue for a listing, so any non-latency
  // fault on a directory is a listing error.
  const FaultInjector::Action action = intercept(dir);
  if (action.fault()) {
    return Error::make("fs.listdir", "cannot list '" + dir.string() +
                                         "' (injected fault)");
  }
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Error::make("fs.listdir",
                       "cannot list '" + dir.string() + "': " + ec.message());
  }
  std::vector<std::filesystem::path> files;
  for (const auto& entry : it) {
    if (entry.is_regular_file() && entry.path().extension() == extension) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace pdcu::fs
