#include "pdcu/support/fs.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace pdcu::fs {

Expected<std::string> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Error::make("fs.open", "cannot open '" + path.string() + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Error::make("fs.read", "read error on '" + path.string() + "'");
  }
  return buf.str();
}

Status write_file(const std::filesystem::path& path,
                  const std::string& content) {
  std::error_code ec;
  if (path.has_parent_path()) {
    std::filesystem::create_directories(path.parent_path(), ec);
    if (ec) {
      return Error::make("fs.mkdir", "cannot create directories for '" +
                                         path.string() + "': " + ec.message());
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Error::make("fs.open", "cannot open '" + path.string() +
                                      "' for writing");
  }
  out << content;
  out.flush();
  if (!out) {
    return Error::make("fs.write", "write error on '" + path.string() + "'");
  }
  return Status::ok();
}

Expected<std::vector<std::filesystem::path>> list_files(
    const std::filesystem::path& dir, const std::string& extension) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Error::make("fs.listdir",
                       "cannot list '" + dir.string() + "': " + ec.message());
  }
  std::vector<std::filesystem::path> files;
  for (const auto& entry : it) {
    if (entry.is_regular_file() && entry.path().extension() == extension) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace pdcu::fs
