// String utilities shared by the markdown, taxonomy, and site layers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pdcu::strings {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);
/// Removes leading ASCII whitespace.
std::string_view trim_left(std::string_view s);
/// Removes trailing ASCII whitespace.
std::string_view trim_right(std::string_view s);

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char sep);
/// Splits on a separator string; empty fields are preserved.
std::vector<std::string> split(std::string_view s, std::string_view sep);
/// Splits into lines, treating "\r\n" and "\n" uniformly; no trailing blank
/// line is added for a final newline.
std::vector<std::string> split_lines(std::string_view s);

/// Joins pieces with a separator.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);
bool contains(std::string_view s, std::string_view needle);

std::string to_lower(std::string_view s);
std::string to_upper(std::string_view s);

/// Replaces every occurrence of `from` with `to`.
std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to);

/// Repeats a string n times.
std::string repeat(std::string_view s, std::size_t n);

/// Pads with spaces on the right (left-aligns) to at least `width` columns.
std::string pad_right(std::string_view s, std::size_t width);
/// Pads with spaces on the left (right-aligns) to at least `width` columns.
std::string pad_left(std::string_view s, std::size_t width);

/// Greedy word-wrap to `width` columns; words longer than the width are
/// emitted on their own line unbroken.
std::vector<std::string> word_wrap(std::string_view text, std::size_t width);

/// Escapes &, <, >, and " for HTML attribute/text contexts.
std::string html_escape(std::string_view s);

/// Appends the escaped form of `s` to `out` without intermediate
/// allocations — the render hot path escapes into one reserved buffer.
void html_escape_append(std::string_view s, std::string& out);

/// Strict full-string unsigned parse: ASCII digits only — no sign, no
/// leading/trailing junk, no overflow. Rejects what std::strtoul silently
/// accepts: "10abc" (partial), "-1" (wraps), " 7" (whitespace), "".
std::optional<std::uint64_t> parse_u64(std::string_view s);

/// Formats a ratio as a percentage with two decimals, e.g. 0.8333 -> "83.33%".
/// This matches the formatting used in the paper's Tables I and II.
std::string percent(double numerator, double denominator);

}  // namespace pdcu::strings
