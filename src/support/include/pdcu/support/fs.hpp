// Filesystem helpers returning Expected instead of throwing.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

#include "pdcu/support/expected.hpp"

namespace pdcu::fs {

/// Reads a whole file into a string.
Expected<std::string> read_file(const std::filesystem::path& path);

/// Writes (creating parent directories as needed), replacing any prior file.
Status write_file(const std::filesystem::path& path,
                  const std::string& content);

/// Non-recursive listing of regular files with the given extension
/// (e.g. ".md"), sorted by filename for deterministic iteration order.
Expected<std::vector<std::filesystem::path>> list_files(
    const std::filesystem::path& dir, const std::string& extension);

}  // namespace pdcu::fs
