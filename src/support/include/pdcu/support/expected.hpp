// Minimal Expected<T> for error propagation without exceptions on hot paths.
// GCC 12 in C++20 mode has no std::expected; this is the small subset the
// project needs (value-or-Error, monadic map, and_then).
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace pdcu {

/// A structured error: a short machine-usable code plus human context.
struct Error {
  std::string code;     ///< stable identifier, e.g. "frontmatter.unterminated"
  std::string message;  ///< human-readable description

  static Error make(std::string code, std::string message) {
    return Error{std::move(code), std::move(message)};
  }

  /// Returns a copy of this error with extra context prepended to the message.
  Error context(const std::string& what) const {
    return Error{code, what + ": " + message};
  }
};

/// Result type: holds either a T or an Error.
template <typename T>
class Expected {
 public:
  Expected(T value) : storage_(std::move(value)) {}          // NOLINT(implicit)
  Expected(Error error) : storage_(std::move(error)) {}      // NOLINT(implicit)

  bool has_value() const { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const { return has_value(); }

  T& value() & {
    assert(has_value());
    return std::get<T>(storage_);
  }
  const T& value() const& {
    assert(has_value());
    return std::get<T>(storage_);
  }
  T&& value() && {
    assert(has_value());
    return std::get<T>(std::move(storage_));
  }

  const Error& error() const {
    assert(!has_value());
    return std::get<Error>(storage_);
  }

  T value_or(T fallback) const {
    return has_value() ? std::get<T>(storage_) : std::move(fallback);
  }

  /// Applies f to the contained value; propagates the error unchanged.
  template <typename F>
  auto map(F&& f) const -> Expected<decltype(f(std::declval<const T&>()))> {
    if (!has_value()) return error();
    return f(value());
  }

  /// Chains a computation that itself returns an Expected.
  template <typename F>
  auto and_then(F&& f) const -> decltype(f(std::declval<const T&>())) {
    if (!has_value()) return error();
    return f(value());
  }

 private:
  std::variant<T, Error> storage_;
};

/// Expected<void> analogue for operations with no result payload.
class Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT

  static Status ok() { return Status{}; }

  bool has_value() const { return !failed_; }
  explicit operator bool() const { return !failed_; }
  const Error& error() const {
    assert(failed_);
    return error_;
  }

 private:
  Error error_{};
  bool failed_ = false;
};

}  // namespace pdcu
