// Non-cryptographic hashing shared by the serving cache (ETags) and the
// search index (serialization checksums). FNV-1a is tiny, has published
// test vectors, and is stable across platforms, which is what an on-disk
// checksum needs.
#pragma once

#include <cstdint>
#include <string_view>

namespace pdcu::hash {

/// 64-bit FNV-1a over `bytes`.
std::uint64_t fnv1a_64(std::string_view bytes);

/// Streaming variant: folds `bytes` into a running FNV-1a state. Seed new
/// streams with kFnv1aInit.
inline constexpr std::uint64_t kFnv1aInit = 0xcbf29ce484222325ull;
std::uint64_t fnv1a_64_update(std::uint64_t state, std::string_view bytes);

}  // namespace pdcu::hash
