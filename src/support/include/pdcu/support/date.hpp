// Minimal ISO-8601 calendar dates for activity front matter.
#pragma once

#include <compare>
#include <string>
#include <string_view>

#include "pdcu/support/expected.hpp"

namespace pdcu {

/// A calendar date (proleptic Gregorian). Used for the `date:` front-matter
/// field of activities.
struct Date {
  int year = 1970;
  int month = 1;  ///< 1..12
  int day = 1;    ///< 1..31, validated against the month

  auto operator<=>(const Date&) const = default;

  /// Formats as YYYY-MM-DD.
  std::string to_string() const;

  /// Parses "YYYY-MM-DD"; rejects impossible dates (e.g. Feb 30).
  static Expected<Date> parse(std::string_view text);

  /// True when year/month/day denote a real calendar date.
  static bool valid(int year, int month, int day);
};

}  // namespace pdcu
