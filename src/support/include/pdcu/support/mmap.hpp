// Read-only memory-mapped files, so large artifacts (the serialized search
// index) can be served in place instead of being copied onto the heap at
// startup. A MappedFile owns one PROT_READ mapping for its whole lifetime;
// view() is stable for as long as the object (or any shared_ptr holding it)
// lives, which is what lets index structures hand out string_views into the
// map. Empty files map to an empty view without calling mmap (mmap of
// length 0 is EINVAL).
#pragma once

#include <cstddef>
#include <filesystem>
#include <memory>
#include <string_view>

#include "pdcu/support/expected.hpp"

namespace pdcu::fs {

class MappedFile {
 public:
  /// Maps `path` read-only. Fails with a structured error when the file
  /// cannot be opened, stat'ed, or mapped.
  static Expected<MappedFile> open(const std::filesystem::path& path);

  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// The mapped bytes; empty for an empty file or a default-constructed
  /// object.
  std::string_view view() const {
    return {static_cast<const char*>(data_), size_};
  }

  std::size_t size() const { return size_; }

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace pdcu::fs
