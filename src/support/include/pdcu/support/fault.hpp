// Test-scoped filesystem fault injection. A FaultInjector installed with
// ScopedFaultInjection is consulted by fs::read_file and fs::list_files
// before they touch the disk, so tests can make exactly the Nth read of a
// matching path fail (open error, mid-stream I/O error, short read) or run
// slow — deterministically, and without needing unreadable files (which a
// root-owned test process could read anyway).
//
// Production code never constructs one; with no injector installed the
// fs hooks cost a single relaxed atomic load.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

namespace pdcu::fs {

class FaultInjector {
 public:
  enum class Mode {
    kOpenError,  ///< the open itself fails (fs.open / fs.listdir)
    kIoError,    ///< the read fails mid-stream (fs.read / fs.listdir)
    kTruncate,   ///< the read succeeds but delivers only the first
                 ///< `truncate_to` bytes (a torn write seen by a reader)
    kLatency,    ///< no failure; the operation just takes `latency` longer
  };

  /// One injection rule. Rules are tried in insertion order; the first
  /// rule that matches the path *and* is inside its [skip, skip+limit)
  /// window fires. Counters advance per matching operation, so a given
  /// config always produces the same failure sequence for the same
  /// sequence of fs calls.
  struct Rule {
    std::string path_substring;  ///< "" matches every path
    Mode mode = Mode::kIoError;
    std::uint64_t skip = 0;      ///< let this many matching ops through first
    std::uint64_t limit = UINT64_MAX;  ///< then fault at most this many
    std::size_t truncate_to = 0;       ///< kTruncate: bytes delivered
    std::chrono::milliseconds latency{0};  ///< applied whenever firing
  };

  /// What the intercepted operation should do. kLatency reports
  /// fault() == false: the caller sleeps but proceeds normally.
  struct Action {
    Mode mode = Mode::kLatency;
    bool fired = false;  ///< a rule matched inside its window
    std::size_t truncate_to = 0;
    std::chrono::milliseconds latency{0};

    bool fault() const { return fired && mode != Mode::kLatency; }
  };

  void add_rule(Rule rule);
  /// Drops every rule — the faults "clear" and operations pass through.
  void clear();

  /// Total rule firings so far (including latency-only firings).
  std::uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  /// Consulted by the fs hooks; advances the matching counters.
  Action intercept(const std::filesystem::path& path);

 private:
  struct RuleState {
    Rule rule;
    std::uint64_t matched = 0;
  };

  mutable std::mutex mutex_;
  std::vector<RuleState> rules_;
  std::atomic<std::uint64_t> injected_{0};
};

/// Installs the process-wide injector consulted by read_file/list_files;
/// nullptr uninstalls. Prefer ScopedFaultInjection in tests.
void install_fault_injector(FaultInjector* injector);
FaultInjector* installed_fault_injector();

/// RAII install/uninstall, so a failing test cannot leak faults into the
/// tests that run after it.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultInjector& injector) {
    install_fault_injector(&injector);
  }
  ~ScopedFaultInjection() { install_fault_injector(nullptr); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace pdcu::fs
