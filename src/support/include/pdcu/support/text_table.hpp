// ASCII table rendering, used to print the paper's Tables I and II (and the
// benchmark reports) in a stable, diff-friendly layout.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pdcu {

/// Column alignment inside a TextTable.
enum class Align { kLeft, kRight };

/// Builds fixed-width ASCII tables with a header row and column wrapping.
///
/// Example output:
///   +----------------+------+
///   | Knowledge Unit | Num. |
///   +----------------+------+
///   | Parallel Fund. |    3 |
///   +----------------+------+
class TextTable {
 public:
  /// `max_col_width` caps each column; longer cells word-wrap.
  explicit TextTable(std::vector<std::string> header,
                     std::size_t max_col_width = 28);

  /// Appends a row; it must have exactly as many cells as the header.
  void add_row(std::vector<std::string> row);

  /// Sets alignment for one column (default left).
  void set_align(std::size_t column, Align align);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders the full table including borders, one trailing newline.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> aligns_;
  std::size_t max_col_width_;
};

}  // namespace pdcu
