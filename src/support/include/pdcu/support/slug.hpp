// URL slug generation, mirroring Hugo's path normalization for content pages.
#pragma once

#include <string>
#include <string_view>

namespace pdcu {

/// Converts a title to a URL slug: lower-case, alphanumerics kept, runs of
/// other characters collapsed to single '-', no leading/trailing '-'.
/// "FindSmallestCard" -> "findsmallestcard"; "Concert Tickets!" ->
/// "concert-tickets".
std::string slugify(std::string_view title);

/// True if `s` is already a valid slug (non-empty, [a-z0-9-], no edge or
/// doubled dashes).
bool is_slug(std::string_view s);

}  // namespace pdcu
