// Deterministic pseudo-random number generation for simulations and tests.
// Simulations must be reproducible across runs and platforms, so we avoid
// std::default_random_engine (implementation-defined) and distributions
// (unspecified algorithms) in favour of a fixed xoshiro256** + Lemire
// bounded-int scheme.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace pdcu {

/// SplitMix64: used to seed xoshiro from a single 64-bit value.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality, reproducible 64-bit generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5DEECE66DULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) {
    if (bound <= 1) return 0;
    while (true) {
      std::uint64_t x = next();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= (-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Fisher–Yates shuffle (deterministic given the seed).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A shuffled permutation of 0..n-1.
  std::vector<std::size_t> permutation(std::size_t n) {
    std::vector<std::size_t> p(n);
    std::iota(p.begin(), p.end(), std::size_t{0});
    shuffle(p);
    return p;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace pdcu
