// A lock-free log-bucketed latency histogram in the HdrHistogram /
// Prometheus tradition. record() is one relaxed fetch_add on a bucket plus
// one on the running sum, cheap enough for a per-request hot path; readers
// take a Snapshot (plain integers) and compute percentiles, cumulative
// bucket counts, and exposition series from that without stopping writers.
//
// Buckets are powers of two: bucket i holds values in (2^(i-1), 2^i], so
// bucket 0 is {0, 1}, bucket 1 is {2}, bucket 2 is {3, 4}, and the last
// bucket is everything above 2^62 (+Inf in exposition terms). 64 buckets
// cover the whole uint64 range with a worst-case relative error of 2x,
// which is the usual trade for a histogram this cheap.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace pdcu::obs {

class Histogram {
 public:
  static constexpr std::size_t kBucketCount = 64;

  /// One consistent view of the histogram, safe to read at leisure.
  /// "Consistent" here means each bucket was read once; a concurrent
  /// record() may or may not be included, which is fine for monitoring.
  struct Snapshot {
    std::array<std::uint64_t, kBucketCount> buckets{};
    std::uint64_t count = 0;  ///< sum of buckets
    std::uint64_t sum = 0;    ///< sum of recorded values

    /// Number of recorded values <= bucket_upper_bound(bucket).
    std::uint64_t cumulative(std::size_t bucket) const;

    /// The p-th percentile (p in [0, 100]), linearly interpolated inside
    /// the winning bucket; 0 when empty. Monotone in p.
    std::uint64_t percentile(double p) const;

    /// The q-th quantile (q in [0, 1]), interpolated in *log space* inside
    /// the winning bucket: the mass of a bucket (lo, hi] is assumed
    /// uniform in log(value), which matches the geometric bucket layout
    /// and keeps the estimator unbiased for the long-tailed latency
    /// distributions the load generator records. 0 when empty; monotone
    /// in q. Prefer this over percentile() for reported latencies.
    std::uint64_t quantile(double q) const;

    /// Adds another snapshot's counts and sum into this one. Plain
    /// integer arithmetic — this is how per-worker histograms combine
    /// without any locks: each worker snapshots its own histogram, then
    /// one thread folds the snapshots together.
    void merge(const Snapshot& other);

    double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };

  /// Records one value. Relaxed atomics only; any number of threads.
  void record(std::uint64_t value) {
    buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  Snapshot snapshot() const;

  std::uint64_t count() const { return snapshot().count; }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t percentile(double p) const { return snapshot().percentile(p); }

  /// Adds every count (and the sum) of `other` into this histogram, as if
  /// all of other's values had been recorded here too. Safe against
  /// concurrent record() on either side (each bucket is read once and
  /// added atomically).
  void merge(const Histogram& other);

  /// Older spelling of merge(); kept for call sites that read better with
  /// the directional name.
  void merge_from(const Histogram& other) { merge(other); }

  /// Bucket that record(value) lands in.
  static std::size_t bucket_index(std::uint64_t value);

  /// Inclusive upper bound of a bucket: 2^i for i < 63, UINT64_MAX
  /// (rendered "+Inf") for the last.
  static std::uint64_t bucket_upper_bound(std::size_t bucket);

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

/// Appends the Prometheus series of one histogram snapshot to `out`:
/// cumulative `<family>_bucket{...,le="..."}` lines over a fixed subset of
/// the internal boundaries (powers of four from 1 to ~6.7e7, i.e. 1us to
/// ~67s for latencies) plus le="+Inf", then `<family>_sum` and
/// `<family>_count`. `labels` is spliced before the le label — either
/// empty or a comma-terminated-free list like `route="page"`. The caller
/// emits the family's # HELP / # TYPE lines once.
void append_histogram_series(std::string_view family, std::string_view labels,
                             const Histogram::Snapshot& snapshot,
                             std::string& out);

}  // namespace pdcu::obs
