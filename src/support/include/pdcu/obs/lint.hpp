// A promtool-`check metrics`-style linter for the Prometheus text
// exposition format, used by tests and the tools/metrics_lint binary to
// keep /metrics ingestible by a stock scraper. Stricter than the wire
// format requires, matching promtool's lint rules plus house rules:
//
//   - every sample's family must declare # TYPE (and # HELP) first
//   - counters end in _total; non-counters must not
//   - _bucket/_sum/_count samples only appear under histogram families
//   - histogram buckets carry le labels, are cumulative, include +Inf,
//     and agree with _count; _sum and _count are present
//   - no duplicate series (same name and label set)
//   - names, labels, and values are syntactically valid
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pdcu::obs {

/// Lints one exposition document. Returns one human-readable problem per
/// finding, prefixed with the line number; empty means clean.
std::vector<std::string> lint_exposition(std::string_view text);

}  // namespace pdcu::obs
