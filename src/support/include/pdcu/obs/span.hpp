// Named timing spans backed by lock-free histograms. A SpanRegistry maps a
// span name ("site.parse", "search.build", ...) to a Histogram; recording
// takes a shared lock only to find the histogram (creation, the rare case,
// takes the exclusive lock once per name), so spans can be recorded from
// worker threads mid-build. ScopedSpan times a block with RAII.
//
// The registry renders as a Prometheus histogram family
// (pdcu_span_duration_us_bucket{span="...",le="..."}), so the same spans
// that narrate `pdcu build --stats` also show up on /metrics.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "pdcu/obs/histogram.hpp"

namespace pdcu::obs {

class SpanRegistry {
 public:
  /// Records one duration (microseconds) under `span`.
  void record(std::string_view span, std::uint64_t duration_us);

  /// The histogram of one span; nullptr when the span never recorded.
  /// The pointer stays valid for the registry's lifetime.
  const Histogram* find(std::string_view span) const;

  /// All span names, sorted.
  std::vector<std::string> names() const;

  /// Prometheus exposition: # HELP / # TYPE, then one
  /// pdcu_span_duration_us series per span.
  std::string render_text() const;

  /// Human summary, one line per span:
  ///   site.render: count=2 p50=1200us p95=1800us p99=1800us mean=1500.0us
  std::string summary() const;

 private:
  mutable std::shared_mutex mutex_;
  /// unique_ptr keeps histogram addresses stable across rehashing-free
  /// map growth, so record() can fetch_add outside the lock.
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> spans_;
};

/// Times a block: records the elapsed microseconds on destruction. A null
/// registry makes it a no-op, so call sites do not need to branch.
class ScopedSpan {
 public:
  ScopedSpan(SpanRegistry* registry, std::string_view span)
      : registry_(registry),
        span_(span),
        start_(std::chrono::steady_clock::now()) {}

  ~ScopedSpan() {
    if (registry_ == nullptr) return;
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start_);
    registry_->record(span_,
                      static_cast<std::uint64_t>(elapsed.count()));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanRegistry* registry_;
  std::string span_;
  std::chrono::steady_clock::time_point start_;
};

/// Compatibility switch for the pre-rename metric families: when set, the
/// old `pdcu_requests{class=...}` and bare-gauge lines are appended after
/// the promtool-clean families for one release of scrape-config migration.
void set_legacy_names(bool enabled);
bool legacy_names();

}  // namespace pdcu::obs
