// Structured JSON access log with an off-thread writer. The request hot
// path calls log(), which appends the entry to a bounded in-memory ring
// under a mutex held for a few pointer moves — it never touches the file.
// A dedicated writer thread drains the ring in batches, formats one JSON
// object per line, and does all the I/O. When producers outrun the writer
// the ring drops new entries (counted in dropped()) instead of blocking
// request threads or growing without bound.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <thread>

namespace pdcu::obs {

/// One finished request, as the access log sees it.
struct AccessEntry {
  std::chrono::system_clock::time_point time{};  ///< request completion
  std::string method;      ///< "GET", "HEAD", ...
  std::string target;      ///< path + query as received
  int status = 0;          ///< response status code
  std::uint64_t bytes = 0;       ///< bytes written to the socket
  std::uint64_t latency_us = 0;  ///< wall-clock handling latency
  std::string route;       ///< route tag ("page", "search", ...)
};

class AccessLog {
 public:
  /// Opens `path` for appending ("-" logs to stdout) and starts the writer
  /// thread. Check ok() before relying on the log; a failed open leaves a
  /// no-op logger.
  explicit AccessLog(const std::string& path, std::size_t capacity = 4096);

  /// Drains, flushes, and joins the writer.
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  bool ok() const { return file_ != nullptr; }

  /// Enqueues one entry; drops (and counts) when the ring is full. Never
  /// performs I/O on the caller's thread.
  void log(AccessEntry entry);

  /// Blocks until everything enqueued so far is on disk.
  void flush();

  std::uint64_t written() const {
    return written_.load(std::memory_order_relaxed);
  }
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// The JSON line (without trailing newline) for one entry:
  /// {"ts":"2026-08-06T12:34:56.789Z","method":"GET","path":"/x",
  ///  "status":200,"bytes":123,"latency_us":45,"route":"page"}
  static std::string format_line(const AccessEntry& entry);

 private:
  void writer_loop();

  std::FILE* file_ = nullptr;
  bool owns_file_ = true;  ///< false for stdout: flush, don't fclose
  std::size_t capacity_;

  std::mutex mutex_;
  std::condition_variable wake_;    ///< writer: work or stop
  std::condition_variable drained_; ///< flush(): ring empty, batch done
  std::deque<AccessEntry> ring_;
  bool writing_ = false;  ///< writer holds a batch outside the lock
  bool stop_ = false;

  std::atomic<std::uint64_t> written_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::thread writer_;
};

}  // namespace pdcu::obs
