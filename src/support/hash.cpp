#include "pdcu/support/hash.hpp"

namespace pdcu::hash {

std::uint64_t fnv1a_64_update(std::uint64_t state, std::string_view bytes) {
  for (const char c : bytes) {
    state ^= static_cast<unsigned char>(c);
    state *= 0x100000001b3ull;
  }
  return state;
}

std::uint64_t fnv1a_64(std::string_view bytes) {
  return fnv1a_64_update(kFnv1aInit, bytes);
}

}  // namespace pdcu::hash
