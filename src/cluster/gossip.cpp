#include "pdcu/cluster/gossip.hpp"

#include <algorithm>

#include "pdcu/support/strings.hpp"

namespace pdcu::cluster {

NodeState merge_states(const NodeState& a, const NodeState& b) {
  if (a.version != b.version) return a.version > b.version ? a : b;
  if (a.epoch != b.epoch) return a.epoch > b.epoch ? a : b;
  return a.degraded ? a : b;
}

void GossipMap::update_self(const std::string& id, std::uint64_t epoch,
                            bool degraded) {
  std::lock_guard lock(mutex_);
  const auto at = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const auto& entry, const std::string& key) { return entry.first < key; });
  if (at != entries_.end() && at->first == id) {
    // Bump past relayed rumors about ourselves, and skip the write when
    // nothing changed — a quiet node's version stays put, so gossip
    // converges instead of churning forever.
    if (at->second.epoch == epoch && at->second.degraded == degraded) return;
    at->second = {epoch, degraded, at->second.version + 1};
    return;
  }
  entries_.insert(at, {id, NodeState{epoch, degraded, 1}});
}

std::optional<NodeState> GossipMap::get(std::string_view id) const {
  std::lock_guard lock(mutex_);
  const auto at = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const auto& entry, std::string_view key) { return entry.first < key; });
  if (at == entries_.end() || at->first != id) return std::nullopt;
  return at->second;
}

std::vector<std::pair<std::string, NodeState>> GossipMap::snapshot() const {
  std::lock_guard lock(mutex_);
  return entries_;
}

std::string GossipMap::encode() const {
  std::lock_guard lock(mutex_);
  std::string digest;
  for (const auto& [id, state] : entries_) {
    digest += id;
    digest += ' ';
    digest += std::to_string(state.epoch);
    digest += ' ';
    digest += state.degraded ? '1' : '0';
    digest += ' ';
    digest += std::to_string(state.version);
    digest += '\n';
  }
  return digest;
}

std::size_t GossipMap::merge_digest(std::string_view digest) {
  std::lock_guard lock(mutex_);
  std::size_t changed = 0;
  for (const std::string& line : strings::split_lines(digest)) {
    const auto fields = strings::split(line, ' ');
    if (fields.size() != 4) continue;
    const auto epoch = strings::parse_u64(fields[1]);
    const auto degraded = strings::parse_u64(fields[2]);
    const auto version = strings::parse_u64(fields[3]);
    if (fields[0].empty() || !epoch || !degraded || !version ||
        *degraded > 1) {
      continue;
    }
    const NodeState incoming{*epoch, *degraded == 1, *version};
    const std::string id(fields[0]);
    const auto at = std::lower_bound(
        entries_.begin(), entries_.end(), id,
        [](const auto& entry, const std::string& key) {
          return entry.first < key;
        });
    if (at == entries_.end() || at->first != id) {
      entries_.insert(at, {id, incoming});
      ++changed;
      continue;
    }
    const NodeState merged = merge_states(at->second, incoming);
    if (merged != at->second) {
      at->second = merged;
      ++changed;
    }
  }
  return changed;
}

std::size_t GossipMap::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

void GossipMap::clear() {
  std::lock_guard lock(mutex_);
  entries_.clear();
}

}  // namespace pdcu::cluster
