#include "pdcu/cluster/gossip_agent.hpp"

namespace pdcu::cluster {

namespace {

constexpr std::chrono::milliseconds kExchangeConnectTimeout{250};
constexpr std::chrono::milliseconds kExchangeDeadline{1000};

bool unreserved(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.' ||
         c == '~';
}

}  // namespace

std::string url_encode_component(std::string_view text) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (unreserved(c)) {
      out += c;
      continue;
    }
    const auto byte = static_cast<unsigned char>(c);
    out += '%';
    out += kHex[byte >> 4];
    out += kHex[byte & 0xF];
  }
  return out;
}

GossipAgent::GossipAgent(std::string self_id, ClusterMetrics* metrics)
    : self_id_(std::move(self_id)), metrics_(metrics) {}

GossipAgent::~GossipAgent() { stop(); }

void GossipAgent::update_self(std::uint64_t epoch, bool degraded) {
  map_.update_self(self_id_, epoch, degraded);
}

void GossipAgent::set_self_source(
    std::function<std::pair<std::uint64_t, bool>()> source) {
  self_source_ = std::move(source);
}

void GossipAgent::refresh_self() const {
  if (!self_source_) return;
  const auto [epoch, degraded] = self_source_();
  map_.update_self(self_id_, epoch, degraded);
}

void GossipAgent::set_peers(std::vector<GossipPeer> peers) {
  std::lock_guard lock(peers_mutex_);
  peers_ = std::move(peers);
  next_peer_ = 0;
}

std::string GossipAgent::exchange(std::string_view peer_digest) const {
  refresh_self();
  const std::size_t changed = map_.merge_digest(peer_digest);
  if (metrics_ != nullptr && changed > 0) {
    metrics_->record_gossip_merge(changed);
  }
  return map_.encode();
}

bool GossipAgent::run_round() {
  refresh_self();
  GossipPeer peer;
  {
    std::lock_guard lock(peers_mutex_);
    if (peers_.empty()) return false;
    peer = peers_[next_peer_ % peers_.size()];
    next_peer_ = (next_peer_ + 1) % peers_.size();
  }
  if (metrics_ != nullptr) metrics_->record_gossip_round();

  const std::string target =
      "/cluster/gossip?digest=" + url_encode_component(map_.encode());
  auto reply = pool_.fetch(peer.host, peer.port, target, {},
                           kExchangeConnectTimeout, kExchangeDeadline);
  if (!reply || reply.value().status != 200) return false;
  const std::size_t changed = map_.merge_digest(reply.value().body);
  if (metrics_ != nullptr && changed > 0) {
    metrics_->record_gossip_merge(changed);
  }
  return true;
}

void GossipAgent::start(std::chrono::milliseconds interval) {
  stop();
  {
    std::lock_guard lock(stop_mutex_);
    stopping_ = false;
  }
  thread_ = std::thread([this, interval] {
    for (;;) {
      {
        std::unique_lock lock(stop_mutex_);
        if (stop_cv_.wait_for(lock, interval, [this] { return stopping_; })) {
          return;
        }
      }
      run_round();
    }
  });
}

void GossipAgent::stop() {
  {
    std::lock_guard lock(stop_mutex_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

}  // namespace pdcu::cluster
