#include "pdcu/cluster/metrics.hpp"

namespace pdcu::cluster {

namespace {

void counter(std::string& out, const char* name, const char* help,
             std::uint64_t value) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += " counter\n";
  out += name;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

void gauge(std::string& out, const char* name, const char* help,
           std::uint64_t value) {
  out += "# HELP ";
  out += name;
  out += ' ';
  out += help;
  out += "\n# TYPE ";
  out += name;
  out += " gauge\n";
  out += name;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

}  // namespace

std::string ClusterMetrics::render_text() const {
  std::string out;
  counter(out, "pdcu_cluster_requests_total",
          "Client requests proxied by the front tier.", requests());
  counter(out, "pdcu_cluster_retries_total",
          "Upstream attempts beyond each request's first.", retries());
  counter(out, "pdcu_cluster_failovers_total",
          "Requests served by a ring successor after their owner failed.",
          failovers());
  counter(out, "pdcu_cluster_shed_total",
          "Requests routed around a degraded-epoch owner.", shed());
  counter(out, "pdcu_cluster_upstream_errors_total",
          "Upstream attempts that failed (connect, send, read, timeout, "
          "or 5xx).",
          upstream_errors());
  counter(out, "pdcu_cluster_exhausted_total",
          "Requests that failed every candidate replica (client saw an "
          "error).",
          exhausted());
  counter(out, "pdcu_cluster_gossip_rounds_total",
          "Gossip exchanges initiated.", gossip_rounds());
  counter(out, "pdcu_cluster_gossip_merges_total",
          "Gossip map entries changed by merged digests.", gossip_merges());
  counter(out, "pdcu_cluster_probe_failures_total",
          "Health probes that failed.", probe_failures());
  counter(out, "pdcu_cluster_ring_moves_total",
          "Sampled keys whose owner changed when the routable set shifted.",
          ring_moves());
  gauge(out, "pdcu_cluster_ring_nodes", "Replicas configured in the ring.",
        ring_nodes_.load(kRelaxed));
  gauge(out, "pdcu_cluster_routable_nodes",
        "Replicas currently considered routable by the front tier.",
        routable());
  return out;
}

}  // namespace pdcu::cluster
