#include "pdcu/cluster/sim.hpp"

#include <algorithm>
#include <chrono>

#include "pdcu/cluster/policy.hpp"
#include "pdcu/cluster/ring.hpp"
#include "pdcu/support/hash.hpp"
#include "pdcu/support/rng.hpp"

namespace pdcu::cluster {

namespace {

struct SimReplica {
  std::string id;
  bool alive = true;
  bool degraded = false;
  std::uint64_t epoch = 1;
  GossipMap map;
  std::size_t next_peer = 0;
};

/// Chronological merge of scripted events, probe ticks, gossip ticks, and
/// request arrivals, with a stable tie-break so identical options always
/// replay in the same order: at equal times, scripted events apply first
/// (a kill at t and a request at t sees the kill), then probes, then
/// gossip, then requests in arrival order.
enum class TickKind { kEvent = 0, kProbe = 1, kGossip = 2, kRequest = 3 };

struct Tick {
  std::uint64_t at_ms;
  TickKind kind;
  std::size_t index;  ///< into the per-kind list; also the tie-break

  bool operator<(const Tick& other) const {
    if (at_ms != other.at_ms) return at_ms < other.at_ms;
    if (kind != other.kind) return kind < other.kind;
    return index < other.index;
  }
};

const char* event_name(SimEvent::Kind kind) {
  switch (kind) {
    case SimEvent::Kind::kKill:
      return "kill";
    case SimEvent::Kind::kRestart:
      return "restart";
    case SimEvent::Kind::kDegrade:
      return "degrade";
    case SimEvent::Kind::kRecover:
      return "recover";
  }
  return "?";
}

}  // namespace

std::string SimReport::render_json() const {
  std::string json = "{\"requests\":" + std::to_string(requests_total);
  json += ",\"ok\":" + std::to_string(ok);
  json += ",\"client_errors\":" + std::to_string(client_errors);
  json += ",\"retries\":" + std::to_string(retries);
  json += ",\"failovers\":" + std::to_string(failovers);
  json += ",\"shed\":" + std::to_string(shed);
  json += ",\"upstream_errors\":" + std::to_string(upstream_errors);
  json += ",\"gossip_rounds\":" + std::to_string(gossip_rounds);
  json += ",\"max_latency_ms\":" + std::to_string(max_latency_ms);
  json += ",\"checksum\":\"" + std::to_string(checksum) + "\"}\n";
  return json;
}

SimReport run_sim(const SimOptions& options) {
  SimReport report;
  if (options.replicas == 0) return report;

  net::FaultInjector fault = options.fault;  // private copy: counters advance
  Rng rng(options.seed);
  const int front = static_cast<int>(options.front_node());

  std::vector<SimReplica> replicas(options.replicas);
  HashRing ring(options.vnodes);
  for (unsigned i = 0; i < options.replicas; ++i) {
    replicas[i].id = "replica-" + std::to_string(i);
    replicas[i].map.update_self(replicas[i].id, 1, false);
    ring.add_node(replicas[i].id);
  }
  GossipMap front_map;
  std::vector<std::pair<std::string, ProbeState>> probes;
  for (const SimReplica& replica : replicas) {
    probes.push_back({replica.id, ProbeState{}});
  }
  std::size_t front_next_peer = 0;

  // Build the schedule: uniform request arrivals (keys drawn from the rng
  // per request, in arrival order, so the stream is seed-stable).
  std::vector<Tick> ticks;
  std::vector<SimEvent> events = options.events;
  std::stable_sort(events.begin(), events.end(),
                   [](const SimEvent& a, const SimEvent& b) {
                     return a.at_ms < b.at_ms;
                   });
  for (std::size_t i = 0; i < events.size(); ++i) {
    ticks.push_back({events[i].at_ms, TickKind::kEvent, i});
  }
  if (options.probe_interval_ms > 0) {
    std::size_t n = 0;
    for (std::uint64_t t = options.probe_interval_ms; t <= options.duration_ms;
         t += options.probe_interval_ms) {
      ticks.push_back({t, TickKind::kProbe, n++});
    }
  }
  if (options.gossip_interval_ms > 0) {
    std::size_t n = 0;
    for (std::uint64_t t = options.gossip_interval_ms;
         t <= options.duration_ms; t += options.gossip_interval_ms) {
      ticks.push_back({t, TickKind::kGossip, n++});
    }
  }
  for (std::uint64_t i = 0; i < options.requests; ++i) {
    const std::uint64_t at =
        options.requests <= 1
            ? 0
            : (i * options.duration_ms) / options.requests;
    ticks.push_back({at, TickKind::kRequest, static_cast<std::size_t>(i)});
  }
  std::sort(ticks.begin(), ticks.end());

  auto note = [&report](std::string line) {
    report.checksum =
        hash::fnv1a_64_update(report.checksum ? report.checksum
                                              : hash::kFnv1aInit,
                              line);
    report.log.push_back(std::move(line));
  };

  // One gossip exchange between two nodes' maps over the faulty network.
  // Both directions travel (digest out, digest back), so both links are
  // consulted; either drop loses the whole round.
  auto exchange = [&](GossipMap& a, int a_node, GossipMap& b, int b_node,
                      std::uint64_t now) -> bool {
    ++report.gossip_rounds;
    if (!fault.alive(a_node, static_cast<std::int64_t>(now)) ||
        !fault.alive(b_node, static_cast<std::int64_t>(now))) {
      return false;
    }
    const auto out = fault.intercept(a_node, b_node,
                                     static_cast<std::int64_t>(now));
    if (out.drop) return false;
    b.merge_digest(a.encode());
    const auto back = fault.intercept(b_node, a_node,
                                      static_cast<std::int64_t>(now));
    if (back.drop) return false;
    a.merge_digest(b.encode());
    return true;
  };

  auto probe_all = [&](std::uint64_t now) {
    for (unsigned i = 0; i < options.replicas; ++i) {
      SimReplica& replica = replicas[i];
      auto& state = probes[i].second;
      const bool reachable =
          replica.alive &&
          fault.alive(static_cast<int>(i), static_cast<std::int64_t>(now)) &&
          !fault.intercept(front, static_cast<int>(i),
                           static_cast<std::int64_t>(now))
               .drop &&
          !fault.intercept(static_cast<int>(i), front,
                           static_cast<std::int64_t>(now))
               .drop;
      state.alive = reachable;
      if (reachable) {
        state.degraded = replica.degraded;
        state.epoch = replica.epoch;
      }
    }
  };

  for (const Tick& tick : ticks) {
    const std::uint64_t now = tick.at_ms;
    switch (tick.kind) {
      case TickKind::kEvent: {
        const SimEvent& event = events[tick.index];
        SimReplica& replica = replicas[event.replica % replicas.size()];
        switch (event.kind) {
          case SimEvent::Kind::kKill:
            replica.alive = false;
            break;
          case SimEvent::Kind::kRestart:
            replica.alive = true;
            replica.map.clear();  // fresh process, fresh rumors
            replica.map.update_self(replica.id, replica.epoch,
                                    replica.degraded);
            break;
          case SimEvent::Kind::kDegrade:
            // Failed rebuild: keeps serving last-known-good at the same
            // epoch, and says so.
            replica.degraded = true;
            replica.map.update_self(replica.id, replica.epoch, true);
            break;
          case SimEvent::Kind::kRecover:
            replica.degraded = false;
            ++replica.epoch;
            replica.map.update_self(replica.id, replica.epoch, false);
            break;
        }
        note("t=" + std::to_string(now) + " event " +
             event_name(event.kind) + " " + replica.id);
        break;
      }
      case TickKind::kProbe:
        probe_all(now);
        break;
      case TickKind::kGossip: {
        // Every live replica exchanges with its next round-robin peer;
        // the front exchanges with its next replica. Order is fixed
        // (replica index, then front), so the round is deterministic.
        for (unsigned i = 0; i < options.replicas; ++i) {
          SimReplica& replica = replicas[i];
          if (!replica.alive || options.replicas < 2) continue;
          std::size_t peer = replica.next_peer % (options.replicas - 1);
          replica.next_peer = peer + 1;
          const unsigned j = (i + 1 + static_cast<unsigned>(peer)) %
                             options.replicas;
          if (!replicas[j].alive) continue;
          exchange(replica.map, static_cast<int>(i), replicas[j].map,
                   static_cast<int>(j), now);
        }
        const unsigned j =
            static_cast<unsigned>(front_next_peer++ % options.replicas);
        if (replicas[j].alive) {
          exchange(front_map, front, replicas[j].map, static_cast<int>(j),
                   now);
        }
        break;
      }
      case TickKind::kRequest: {
        ++report.requests_total;
        const std::string key =
            "/activities/a" + std::to_string(rng.below(256)) + "/";
        const std::string owner = ring.owner(key);
        const auto plan =
            plan_route(ring, key, options.max_attempts, probes, front_map);
        if (!plan.empty() && plan.front().id != owner) {
          for (const Candidate& c : plan) {
            if (c.id == owner && c.cls == CandidateClass::kDegraded) {
              ++report.shed;
              break;
            }
          }
        }
        std::uint64_t clock = now;
        bool served = false;
        std::string served_by;
        std::size_t attempts = 0;
        for (std::size_t i = 0; i < plan.size(); ++i) {
          if (clock - now >= options.budget_ms) break;
          if (i > 0) {
            ++report.retries;
            clock += backoff_for(static_cast<unsigned>(i - 1),
                                 std::chrono::milliseconds(
                                     options.backoff_initial_ms),
                                 std::chrono::milliseconds(
                                     options.backoff_cap_ms))
                         .count();
            if (clock - now >= options.budget_ms) break;
          }
          ++attempts;
          const unsigned index = static_cast<unsigned>(
              std::stoul(plan[i].id.substr(plan[i].id.rfind('-') + 1)));
          SimReplica& replica = replicas[index];
          const bool node_up =
              replica.alive &&
              fault.alive(static_cast<int>(index),
                          static_cast<std::int64_t>(clock));
          if (!node_up) {
            // Connection refused: fast failure, and the front learns
            // immediately (same as the real proxy's mark-dead-on-connect).
            clock += 1;
            ++report.upstream_errors;
            probes[index].second.alive = false;
            continue;
          }
          const auto action = fault.intercept(
              front, static_cast<int>(index),
              static_cast<std::int64_t>(clock));
          if (action.drop) {
            clock += options.attempt_timeout_ms;
            ++report.upstream_errors;
            continue;
          }
          clock += options.service_ms +
                   static_cast<std::uint64_t>(action.delay_ms);
          served = true;
          served_by = plan[i].id;
          probes[index].second.alive = true;
          break;
        }
        const std::uint64_t latency = clock - now;
        report.max_latency_ms = std::max(report.max_latency_ms, latency);
        if (served) {
          ++report.ok;
          if (served_by != owner) ++report.failovers;
          note("t=" + std::to_string(now) + " req " + key + " -> " +
               served_by + " attempts=" + std::to_string(attempts) +
               " lat=" + std::to_string(latency));
        } else {
          ++report.client_errors;
          note("t=" + std::to_string(now) + " req " + key +
               " -> FAIL attempts=" + std::to_string(attempts) +
               " lat=" + std::to_string(latency));
        }
        break;
      }
    }
  }
  if (report.checksum == 0) report.checksum = hash::kFnv1aInit;
  return report;
}

}  // namespace pdcu::cluster
