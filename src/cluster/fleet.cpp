#include "pdcu/cluster/fleet.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <utility>

namespace pdcu::cluster {

ReplicaProcess::ReplicaProcess(ReplicaProcess&& other) noexcept
    : pid_(std::exchange(other.pid_, -1)),
      port_(std::exchange(other.port_, 0)) {}

ReplicaProcess& ReplicaProcess::operator=(ReplicaProcess&& other) noexcept {
  if (this != &other) {
    terminate();
    pid_ = std::exchange(other.pid_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

Status ReplicaProcess::spawn(const std::vector<std::string>& argv) {
  if (argv.empty()) {
    return Error::make("cluster.fleet.spawn", "empty argv");
  }
  int fds[2];
  if (::pipe(fds) != 0) {
    return Error::make("cluster.fleet.spawn", "pipe failed");
  }
  pid_ = ::fork();
  if (pid_ < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return Error::make("cluster.fleet.spawn", "fork failed");
  }
  if (pid_ == 0) {
    ::dup2(fds[1], STDOUT_FILENO);
    ::close(fds[0]);
    ::close(fds[1]);
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const std::string& arg : argv) {
      args.push_back(const_cast<char*>(arg.c_str()));
    }
    args.push_back(nullptr);
    ::execv(args[0], args.data());
    std::_Exit(127);
  }
  ::close(fds[1]);
  std::FILE* out = ::fdopen(fds[0], "r");
  if (out == nullptr) {
    ::close(fds[0]);
    kill_hard();
    return Error::make("cluster.fleet.spawn", "fdopen failed");
  }
  char line[512];
  port_ = 0;
  while (std::fgets(line, sizeof line, out) != nullptr) {
    if (std::sscanf(line, "listening port=%hu", &port_) == 1) break;
  }
  // The child keeps writing into a broken pipe later; SIGPIPE is ignored
  // there, so closing now is harmless.
  std::fclose(out);
  if (port_ == 0) {
    kill_hard();
    return Error::make("cluster.fleet.spawn",
                       argv[0] + " never reported a listening port");
  }
  return Status::ok();
}

void ReplicaProcess::reap() {
  if (pid_ <= 0) return;
  int status = 0;
  ::waitpid(pid_, &status, 0);
  pid_ = -1;
  port_ = 0;
}

void ReplicaProcess::kill_hard() {
  if (pid_ <= 0) return;
  ::kill(pid_, SIGKILL);
  reap();
}

void ReplicaProcess::terminate() {
  if (pid_ <= 0) return;
  ::kill(pid_, SIGTERM);
  reap();
}

std::vector<std::string> Fleet::replica_argv(std::size_t i) const {
  std::vector<std::string> argv;
  argv.push_back(options_.cli_path);
  argv.push_back("serve");
  argv.push_back("--host");
  argv.push_back(options_.host);
  argv.push_back("--port");
  const std::uint16_t port =
      options_.base_port == 0
          ? 0
          : static_cast<std::uint16_t>(options_.base_port + i);
  argv.push_back(std::to_string(port));
  argv.push_back("--cluster-id");
  argv.push_back("replica-" + std::to_string(i));
  // A private worker pool per replica. The front parks keep-alive
  // connections (proxy + probe + gossip) on pool-backend workers; on a
  // small machine the shared-default-pool sizing (hardware concurrency)
  // would leave a replica with one worker, and a single idle keep-alive
  // connection would starve every new accept for its read_timeout.
  argv.push_back("--threads");
  argv.push_back(std::to_string(options_.replica_threads));
  if (options_.base_port != 0 && options_.replicas > 1) {
    std::string peers;
    for (unsigned j = 0; j < options_.replicas; ++j) {
      if (j == i) continue;
      if (!peers.empty()) peers += ',';
      peers += options_.host + ":" +
               std::to_string(options_.base_port + j);
    }
    argv.push_back("--gossip-peers");
    argv.push_back(peers);
  }
  if (options_.watch) argv.push_back("--watch");
  for (const std::string& extra : options_.extra_args) {
    argv.push_back(extra);
  }
  if (!options_.content_dir.empty()) argv.push_back(options_.content_dir);
  return argv;
}

Status Fleet::start() {
  processes_.clear();
  processes_.resize(options_.replicas);
  for (std::size_t i = 0; i < options_.replicas; ++i) {
    const Status status = processes_[i].spawn(replica_argv(i));
    if (!status) {
      stop_all();
      return status.error().context("replica-" + std::to_string(i));
    }
  }
  return Status::ok();
}

std::vector<ReplicaTarget> Fleet::targets() const {
  std::vector<ReplicaTarget> targets;
  targets.reserve(processes_.size());
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    targets.push_back({"replica-" + std::to_string(i), options_.host,
                       processes_[i].port()});
  }
  return targets;
}

void Fleet::kill_replica(std::size_t i) {
  if (i < processes_.size()) processes_[i].kill_hard();
}

Status Fleet::restart_replica(std::size_t i) {
  if (i >= processes_.size()) {
    return Error::make("cluster.fleet.restart", "no such replica");
  }
  processes_[i].terminate();
  return processes_[i].spawn(replica_argv(i));
}

void Fleet::stop_all() {
  for (ReplicaProcess& process : processes_) process.terminate();
}

}  // namespace pdcu::cluster
