#include "pdcu/cluster/policy.hpp"

#include "pdcu/support/strings.hpp"

namespace pdcu::cluster {

namespace {

const ProbeState* find_probe(
    const std::vector<std::pair<std::string, ProbeState>>& probes,
    const std::string& id) {
  for (const auto& [probe_id, state] : probes) {
    if (probe_id == id) return &state;
  }
  return nullptr;
}

CandidateClass classify(const std::string& id,
                        const std::vector<std::pair<std::string, ProbeState>>&
                            probes,
                        const GossipMap& gossip) {
  const ProbeState* probe = find_probe(probes, id);
  if (probe != nullptr && !probe->alive) return CandidateClass::kDead;
  const auto rumor = gossip.get(id);
  const bool degraded = (probe != nullptr && probe->degraded) ||
                        (rumor.has_value() && rumor->degraded);
  return degraded ? CandidateClass::kDegraded : CandidateClass::kHealthy;
}

}  // namespace

std::vector<Candidate> plan_route(
    const HashRing& ring, std::string_view key, std::size_t max_attempts,
    const std::vector<std::pair<std::string, ProbeState>>& probes,
    const GossipMap& gossip) {
  std::vector<Candidate> out;
  const std::vector<std::string> order = ring.route(key, max_attempts);
  out.reserve(order.size());
  for (const std::string& id : order) {
    out.push_back({id, classify(id, probes, gossip)});
  }
  // Stable partition: healthy < degraded < dead, ring order within each
  // class. std::stable_partition twice keeps the walk deterministic.
  const auto healthy_end = std::stable_partition(
      out.begin(), out.end(),
      [](const Candidate& c) { return c.cls == CandidateClass::kHealthy; });
  std::stable_partition(healthy_end, out.end(), [](const Candidate& c) {
    return c.cls == CandidateClass::kDegraded;
  });
  return out;
}

std::chrono::milliseconds effective_budget(
    std::chrono::milliseconds configured, const std::string* client_header) {
  if (client_header == nullptr) return configured;
  const auto requested = strings::parse_u64(strings::trim(*client_header));
  if (!requested || *requested == 0) return configured;
  const auto asked = std::chrono::milliseconds(*requested);
  return std::min(configured, asked);
}

}  // namespace pdcu::cluster
