#include "pdcu/cluster/upstream.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "pdcu/support/strings.hpp"

namespace pdcu::cluster {

namespace {

using Clock = std::chrono::steady_clock;
using std::chrono::milliseconds;

milliseconds remaining(Clock::time_point deadline) {
  const auto left =
      std::chrono::duration_cast<milliseconds>(deadline - Clock::now());
  return left.count() > 0 ? left : milliseconds{0};
}

/// Waits for `events` on fd until `deadline`. Returns false on timeout or
/// poll error.
bool wait_for(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    const auto left = remaining(deadline);
    if (left.count() == 0) return false;
    pollfd pfd{fd, events, 0};
    const int n = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (n > 0) return true;
    if (n == 0) return false;
    if (errno != EINTR) return false;
  }
}

/// Non-blocking connect with a poll-bounded handshake. A peer that
/// accepts the SYN but never completes (or a full SYN queue) surfaces
/// here as connect_timeout, not as a hung worker.
Expected<int> connect_within(const std::string& host, std::uint16_t port,
                             milliseconds connect_timeout,
                             Clock::time_point deadline) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) return Error::make("cluster.upstream.connect", "socket failed");
  const int nodelay = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof nodelay);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    ::close(fd);
    return Error::make("cluster.upstream.connect", "bad address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof address) !=
      0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      return Error::make("cluster.upstream.connect",
                         std::string("connect: ") + std::strerror(errno));
    }
    const auto handshake_deadline =
        std::min(deadline, Clock::now() + connect_timeout);
    if (!wait_for(fd, POLLOUT, handshake_deadline)) {
      ::close(fd);
      return Error::make("cluster.upstream.connect_timeout",
                         "handshake exceeded " +
                             std::to_string(connect_timeout.count()) + "ms");
    }
    int so_error = 0;
    socklen_t len = sizeof so_error;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      ::close(fd);
      return Error::make("cluster.upstream.connect",
                         std::string("connect: ") +
                             std::strerror(so_error ? so_error : errno));
    }
  }
  return fd;
}

Status send_all(int fd, std::string_view bytes, Clock::time_point deadline) {
  while (!bytes.empty()) {
    const ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n > 0) {
      bytes.remove_prefix(static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_for(fd, POLLOUT, deadline)) {
        return Error::make("cluster.upstream.timeout", "send stalled");
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Error::make("cluster.upstream.send",
                       std::string("send: ") + std::strerror(errno));
  }
  return Status::ok();
}

std::string lowercase_header_value(std::string_view head,
                                   std::string_view name) {
  std::string lowered;
  lowered.reserve(head.size());
  for (const char c : head) {
    lowered +=
        static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  }
  std::string needle = "\n";
  needle.append(name);
  needle += ':';
  const auto at = lowered.find(needle);
  if (at == std::string::npos) return {};
  auto end = lowered.find('\n', at + needle.size());
  if (end == std::string::npos) end = lowered.size();
  return std::string(
      strings::trim(lowered.substr(at + needle.size(),
                                   end - (at + needle.size()))));
}

}  // namespace

UpstreamPool::~UpstreamPool() { clear(); }

int UpstreamPool::take_idle(const std::string& key) {
  std::lock_guard lock(mutex_);
  const auto at = idle_.find(key);
  if (at == idle_.end() || at->second.empty()) return -1;
  const int fd = at->second.back();
  at->second.pop_back();
  return fd;
}

void UpstreamPool::give_back(const std::string& key, int fd) {
  std::lock_guard lock(mutex_);
  auto& stack = idle_[key];
  if (stack.size() >= max_idle_per_target_) {
    ::close(fd);
    return;
  }
  stack.push_back(fd);
}

std::size_t UpstreamPool::idle_count(const std::string& host,
                                     std::uint16_t port) const {
  std::lock_guard lock(mutex_);
  const auto at = idle_.find(host + ":" + std::to_string(port));
  return at == idle_.end() ? 0 : at->second.size();
}

void UpstreamPool::clear() {
  std::lock_guard lock(mutex_);
  for (auto& [key, stack] : idle_) {
    for (const int fd : stack) ::close(fd);
    stack.clear();
  }
  idle_.clear();
}

Expected<UpstreamReply> UpstreamPool::fetch(
    const std::string& host, std::uint16_t port, const std::string& target,
    const HeaderList& headers, milliseconds connect_timeout,
    milliseconds deadline) {
  const auto give_up = Clock::now() + deadline;
  const std::string key = host + ":" + std::to_string(port);

  // A pooled socket may have been closed by the peer while idle; that
  // surfaces as an immediate send/read failure, and we retry once on a
  // fresh connection rather than charging the replica with an error.
  bool reused = true;
  int fd = take_idle(key);
  for (;;) {
    if (fd < 0) {
      reused = false;
      auto fresh = connect_within(host, port, connect_timeout, give_up);
      if (!fresh) return fresh.error();
      fd = fresh.value();
    }

    std::string request = "GET ";
    request += target;
    request += " HTTP/1.1\r\nHost: ";
    request += host;
    request += "\r\n";
    for (const auto& [name, value] : headers) {
      request += name;
      request += ": ";
      request += value;
      request += "\r\n";
    }
    request += "\r\n";

    const Status sent = send_all(fd, request, give_up);
    if (!sent) {
      ::close(fd);
      fd = -1;
      if (reused) {
        reused = false;
        continue;  // stale pooled socket — one retry on a fresh connect
      }
      return sent.error();
    }

    std::string buffer;
    std::size_t head_end;
    bool stale_eof = false;
    while ((head_end = buffer.find("\r\n\r\n")) == std::string::npos) {
      char chunk[8192];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n > 0) {
        buffer.append(chunk, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (wait_for(fd, POLLIN, give_up)) continue;
        ::close(fd);
        return Error::make("cluster.upstream.timeout",
                           "response header timed out");
      }
      if (n < 0 && errno == EINTR) continue;
      // EOF or hard error before any bytes on a reused socket: stale.
      stale_eof = reused && buffer.empty();
      break;
    }
    if (head_end == std::string::npos) {
      ::close(fd);
      fd = -1;
      if (stale_eof) {
        reused = false;
        continue;
      }
      return Error::make("cluster.upstream.read",
                         "connection closed before response head");
    }

    const std::string_view head(buffer.data(), head_end + 2);
    if (buffer.size() < 12 || buffer.compare(0, 5, "HTTP/") != 0) {
      ::close(fd);
      return Error::make("cluster.upstream.read", "malformed status line");
    }
    UpstreamReply reply;
    reply.status = std::atoi(buffer.c_str() + 9);
    reply.content_type = lowercase_header_value(head, "content-type");
    const std::string length_text =
        lowercase_header_value(head, "content-length");
    const auto body_length = strings::parse_u64(length_text);
    const bool keep_alive =
        body_length.has_value() &&
        lowercase_header_value(head, "connection") != "close";

    const std::size_t body_start = head_end + 4;
    if (body_length) {
      while (buffer.size() < body_start + *body_length) {
        char chunk[8192];
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n > 0) {
          buffer.append(chunk, static_cast<std::size_t>(n));
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          if (wait_for(fd, POLLIN, give_up)) continue;
          ::close(fd);
          return Error::make("cluster.upstream.timeout",
                             "response body timed out");
        }
        if (n < 0 && errno == EINTR) continue;
        ::close(fd);
        return Error::make("cluster.upstream.read",
                           "connection closed mid-body");
      }
      reply.body = buffer.substr(body_start, *body_length);
    } else {
      // Unframed: drain to EOF; the server is closing this connection.
      for (;;) {
        char chunk[8192];
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n > 0) {
          buffer.append(chunk, static_cast<std::size_t>(n));
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          if (wait_for(fd, POLLIN, give_up)) continue;
          ::close(fd);
          return Error::make("cluster.upstream.timeout",
                             "response body timed out");
        }
        if (n < 0 && errno == EINTR) continue;
        break;
      }
      reply.body = buffer.substr(body_start);
    }

    if (keep_alive) {
      give_back(key, fd);
    } else {
      ::close(fd);
    }
    return reply;
  }
}

}  // namespace pdcu::cluster
