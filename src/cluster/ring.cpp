#include "pdcu/cluster/ring.hpp"

#include <algorithm>

#include "pdcu/support/hash.hpp"

namespace pdcu::cluster {

namespace {

/// splitmix64 finalizer over the fnv1a state. FNV alone clusters badly
/// here: vnode ids differ only in a short "#v" suffix, and without the
/// avalanche the points bunch up and some node ends with a third of its
/// fair share of the circle.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

void HashRing::add_node(const std::string& id) {
  if (contains(id)) return;
  nodes_.insert(std::lower_bound(nodes_.begin(), nodes_.end(), id), id);
  rebuild();
}

void HashRing::remove_node(std::string_view id) {
  const auto at = std::lower_bound(nodes_.begin(), nodes_.end(), id);
  if (at == nodes_.end() || *at != id) return;
  nodes_.erase(at);
  rebuild();
}

bool HashRing::contains(std::string_view id) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), id);
}

void HashRing::rebuild() {
  points_.clear();
  points_.reserve(nodes_.size() * vnodes_);
  for (std::uint32_t n = 0; n < nodes_.size(); ++n) {
    // Hash the node id once, then fold each virtual-node ordinal into the
    // running state: cheap, and every (id, v) pair lands independently.
    const std::uint64_t base = hash::fnv1a_64(nodes_[n]);
    for (unsigned v = 0; v < vnodes_; ++v) {
      const std::string suffix = "#" + std::to_string(v);
      points_.push_back({mix64(hash::fnv1a_64_update(base, suffix)), n});
    }
  }
  std::sort(points_.begin(), points_.end(), [](const Point& a, const Point& b) {
    // Ties (astronomically unlikely) break by node index so the ring stays
    // canonical across insertion orders.
    return a.hash != b.hash ? a.hash < b.hash : a.node < b.node;
  });
}

std::string HashRing::owner(std::string_view key) const {
  const auto order = route(key, 1);
  return order.empty() ? std::string() : order.front();
}

std::vector<std::string> HashRing::route(std::string_view key,
                                         std::size_t max_nodes) const {
  std::vector<std::string> order;
  if (points_.empty() || max_nodes == 0) return order;
  max_nodes = std::min(max_nodes, nodes_.size());
  order.reserve(max_nodes);

  const std::uint64_t h = mix64(hash::fnv1a_64(key));
  auto at = std::lower_bound(
      points_.begin(), points_.end(), h,
      [](const Point& p, std::uint64_t value) { return p.hash < value; });
  std::vector<bool> seen(nodes_.size(), false);
  for (std::size_t walked = 0;
       walked < points_.size() && order.size() < max_nodes; ++walked, ++at) {
    if (at == points_.end()) at = points_.begin();  // wrap the circle
    if (seen[at->node]) continue;
    seen[at->node] = true;
    order.push_back(nodes_[at->node]);
  }
  return order;
}

std::size_t HashRing::moved_keys(const HashRing& before, const HashRing& after,
                                 const std::vector<std::string>& keys) {
  std::size_t moved = 0;
  for (const std::string& key : keys) {
    if (before.owner(key) != after.owner(key)) ++moved;
  }
  return moved;
}

}  // namespace pdcu::cluster
