#include "pdcu/cluster/front.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace pdcu::cluster {

namespace {

using Clock = std::chrono::steady_clock;
using std::chrono::milliseconds;

/// Probe and sample-key tuning: probes are short (a dead replica should
/// cost one connect timeout, not the request budget), and 64 sample keys
/// give the ring-move counter enough resolution without a full catalog.
constexpr milliseconds kProbeDeadline{500};
constexpr std::size_t kSampleKeys = 64;

bool send_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

server::Response text_response(int status, std::string body) {
  server::Response response;
  response.status = status;
  response.set("Content-Type", "text/plain; charset=utf-8");
  response.body = std::move(body);
  return response;
}

/// Crude field scan for the two /healthz fields the prober needs. The
/// bodies are machine-written by HealthTracker::render_json, so a
/// substring probe is reliable here.
bool healthz_degraded(const std::string& body) {
  return body.find("\"status\":\"degraded\"") != std::string::npos;
}

std::uint64_t healthz_epoch(const std::string& body) {
  const auto at = body.find("\"epoch\":");
  if (at == std::string::npos) return 0;
  return std::strtoull(body.c_str() + at + 8, nullptr, 10);
}

}  // namespace

FrontTier::FrontTier(FrontOptions options, std::vector<ReplicaTarget> replicas)
    : options_(std::move(options)),
      replicas_(std::move(replicas)),
      ring_(options_.vnodes),
      gossip_(options_.id, &metrics_),
      pool_(4) {
  for (const ReplicaTarget& replica : replicas_) {
    ring_.add_node(replica.id);
    probes_.push_back({replica.id, ProbeState{}});
  }
  std::sort(probes_.begin(), probes_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<GossipPeer> peers;
  peers.reserve(replicas_.size());
  for (const ReplicaTarget& replica : replicas_) {
    peers.push_back({replica.host, replica.port});
  }
  gossip_.set_peers(std::move(peers));
  metrics_.set_routable(replicas_.size(), replicas_.size());
  sample_owner_.resize(kSampleKeys);
}

FrontTier::~FrontTier() { stop(); }

Status FrontTier::start() {
  if (running_.load(std::memory_order_acquire)) {
    return Error::make("cluster.front.start", "front tier already running");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Error::make("cluster.front.socket", std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error::make("cluster.front.host",
                       "not an IPv4 address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof address) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const Error error = Error::make("cluster.front.bind", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return error;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  bound_port_ = ntohs(bound.sin_port);

  workers_ = std::make_unique<rt::ThreadPool>(options_.threads);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });

  if (options_.probe_interval.count() > 0) {
    {
      std::lock_guard lock(probe_stop_mutex_);
      probe_stopping_ = false;
    }
    probe_thread_ = std::thread([this] {
      for (;;) {
        {
          std::unique_lock lock(probe_stop_mutex_);
          if (probe_stop_cv_.wait_for(lock, options_.probe_interval,
                                      [this] { return probe_stopping_; })) {
            return;
          }
        }
        probe_once();
      }
    });
  }
  if (options_.gossip_interval.count() > 0) {
    gossip_.start(options_.gossip_interval);
  }
  return Status::ok();
}

void FrontTier::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  gossip_.stop();
  {
    std::lock_guard lock(probe_stop_mutex_);
    probe_stopping_ = true;
  }
  probe_stop_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();
  if (accept_thread_.joinable()) accept_thread_.join();
  while (active_connections_.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  workers_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  pool_.clear();
}

void FrontTier::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd waiter{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&waiter, 1, 100);
    if (!running_.load(std::memory_order_acquire)) break;
    if (ready <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      send_all(fd, serialize(server::error_response(503)));
      ::close(fd);
      continue;
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    workers_->submit([this, fd] {
      handle_connection(fd);
      active_connections_.fetch_sub(1, std::memory_order_release);
    });
  }
}

void FrontTier::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;

  while (open && running_.load(std::memory_order_acquire)) {
    server::ParseResult parsed =
        server::parse_request(buffer, options_.max_request_bytes);
    const auto deadline = Clock::now() + options_.read_timeout;
    while (parsed.status == server::ParseStatus::kIncomplete) {
      if (!running_.load(std::memory_order_acquire)) {
        open = false;
        break;
      }
      const auto remaining = std::chrono::duration_cast<milliseconds>(
          deadline - Clock::now());
      if (remaining.count() <= 0) {
        if (!buffer.empty()) {
          send_all(fd, serialize(server::error_response(408)));
        }
        open = false;
        break;
      }
      pollfd waiter{fd, POLLIN, 0};
      const int slice =
          static_cast<int>(std::min<std::int64_t>(remaining.count(), 100));
      const int ready = ::poll(&waiter, 1, slice);
      if (ready < 0 && errno != EINTR) {
        open = false;
        break;
      }
      if (ready <= 0) continue;
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) {
        open = false;
        break;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      parsed = server::parse_request(buffer, options_.max_request_bytes);
    }
    if (!open) break;

    if (parsed.status == server::ParseStatus::kBad ||
        parsed.status == server::ParseStatus::kTooLarge) {
      const int status =
          parsed.status == server::ParseStatus::kBad ? 400 : 431;
      send_all(fd, serialize(server::error_response(status)));
      break;
    }

    server::Response response = proxy(parsed.request);
    const bool close_after = !parsed.request.keep_alive() ||
                             !running_.load(std::memory_order_acquire);
    response.set("Connection", close_after ? "close" : "keep-alive");
    const std::string wire =
        serialize(response, parsed.request.method == "HEAD");
    open = send_all(fd, wire) && !close_after;
    buffer.erase(0, parsed.consumed);
  }
  ::close(fd);
}

server::Response FrontTier::front_healthz() const {
  std::size_t routable = 0;
  {
    std::lock_guard lock(probes_mutex_);
    for (const auto& [id, state] : probes_) {
      if (state.alive && !state.degraded) ++routable;
    }
  }
  std::string json = "{\"status\":\"";
  json += routable > 0 ? "ok" : "degraded";
  json += "\",\"replicas\":" + std::to_string(replicas_.size());
  json += ",\"routable\":" + std::to_string(routable);
  json += "}\n";
  server::Response response;
  response.status = routable > 0 ? 200 : 503;
  response.set("Content-Type", "application/json; charset=utf-8");
  response.body = std::move(json);
  return response;
}

void FrontTier::mark_probe(const std::string& id, bool alive, bool degraded,
                           std::uint64_t epoch) {
  {
    std::lock_guard lock(probes_mutex_);
    for (auto& [probe_id, state] : probes_) {
      if (probe_id != id) continue;
      state.alive = alive;
      state.degraded = degraded;
      if (epoch != 0) state.epoch = epoch;
      break;
    }
  }
  refresh_routable_and_moves();
}

std::vector<std::pair<std::string, ProbeState>> FrontTier::probe_snapshot()
    const {
  std::lock_guard lock(probes_mutex_);
  return probes_;
}

void FrontTier::refresh_routable_and_moves() {
  const auto probes = probe_snapshot();
  std::size_t routable = 0;
  for (const auto& [id, state] : probes) {
    if (state.alive && !state.degraded) ++routable;
  }
  metrics_.set_routable(routable, replicas_.size());

  // Sampled owner churn: for a fixed key set, count keys whose effective
  // target (first planned candidate) changed since the last refresh.
  std::lock_guard lock(probes_mutex_);
  std::uint64_t moves = 0;
  for (std::size_t i = 0; i < kSampleKeys; ++i) {
    const std::string key = "sample-" + std::to_string(i);
    const auto plan = plan_route(ring_, key, 1, probes, gossip_.map());
    const std::string target = plan.empty() ? std::string() : plan.front().id;
    if (!sample_owner_[i].empty() && sample_owner_[i] != target) ++moves;
    sample_owner_[i] = target;
  }
  if (moves > 0) metrics_.record_ring_moves(moves);
}

void FrontTier::probe_once() {
  for (const ReplicaTarget& replica : replicas_) {
    auto reply = pool_.fetch(replica.host, replica.port, "/healthz", {},
                             options_.connect_timeout, kProbeDeadline);
    if (!reply || reply.value().status != 200) {
      metrics_.record_probe_failure();
      mark_probe(replica.id, false, false, 0);
      continue;
    }
    const std::string& body = reply.value().body;
    mark_probe(replica.id, true, healthz_degraded(body),
               healthz_epoch(body));
  }
}

server::Response FrontTier::proxy(const server::Request& request) {
  const std::string_view path = request.path();
  if (path == "/_front/healthz") return front_healthz();
  if (path == "/_front/metrics") {
    server::Response response;
    response.set("Content-Type", "text/plain; version=0.0.4; charset=utf-8");
    response.body = metrics_.render_text();
    return response;
  }
  if (request.method != "GET" && request.method != "HEAD") {
    server::Response response =
        text_response(405, "405 method not allowed\n");
    response.set("Allow", "GET, HEAD");
    return response;
  }

  metrics_.record_request();
  const milliseconds budget = effective_budget(
      options_.request_budget, request.header(kDeadlineHeader));
  const auto give_up = Clock::now() + budget;

  const std::string key(path);
  const auto probes = probe_snapshot();
  const std::vector<Candidate> plan = plan_route(
      ring_, key, options_.max_attempts, probes, gossip_.map());
  if (plan.empty()) {
    metrics_.record_exhausted();
    return text_response(502, "502 no replicas configured\n");
  }
  // Shed accounting: the ring owner exists but was pushed off the front
  // of the walk because it is degraded (or dead).
  const std::string owner = ring_.owner(key);
  if (!owner.empty() && plan.front().id != owner) {
    const auto owner_in_plan =
        std::find_if(plan.begin(), plan.end(),
                     [&](const Candidate& c) { return c.id == owner; });
    if (owner_in_plan != plan.end() &&
        owner_in_plan->cls == CandidateClass::kDegraded) {
      metrics_.record_shed();
    }
  }

  for (std::size_t attempt = 0; attempt < plan.size(); ++attempt) {
    auto remaining =
        std::chrono::duration_cast<milliseconds>(give_up - Clock::now());
    if (remaining.count() <= 0) break;
    if (attempt > 0) {
      metrics_.record_retry();
      const milliseconds wait =
          backoff_for(static_cast<unsigned>(attempt - 1),
                      options_.backoff_initial, options_.backoff_cap);
      std::this_thread::sleep_for(std::min(wait, remaining));
      remaining = std::chrono::duration_cast<milliseconds>(give_up -
                                                           Clock::now());
      if (remaining.count() <= 0) break;
    }

    const Candidate& candidate = plan[attempt];
    const ReplicaTarget* target = nullptr;
    for (const ReplicaTarget& replica : replicas_) {
      if (replica.id == candidate.id) target = &replica;
    }
    if (target == nullptr) continue;

    HeaderList headers;
    headers.push_back({std::string(kDeadlineHeader),
                       std::to_string(remaining.count())});
    auto reply = pool_.fetch(target->host, target->port, request.target,
                             headers, options_.connect_timeout, remaining);
    if (!reply) {
      metrics_.record_upstream_error();
      // Connect-level failures are strong evidence the replica is gone;
      // don't wait for the next probe tick to route around it.
      if (reply.error().code == "cluster.upstream.connect" ||
          reply.error().code == "cluster.upstream.connect_timeout") {
        mark_probe(candidate.id, false, false, 0);
      }
      continue;
    }
    if (reply.value().status >= 500) {
      metrics_.record_upstream_error();
      continue;
    }

    if (candidate.id != owner) metrics_.record_failover();
    server::Response response;
    response.status = reply.value().status;
    if (!reply.value().content_type.empty()) {
      response.set("Content-Type", reply.value().content_type);
    }
    response.set("X-Pdcu-Upstream", candidate.id);
    response.body = std::move(reply.value().body);
    return response;
  }

  metrics_.record_exhausted();
  server::Response response =
      text_response(503, "503 all replicas unavailable\n");
  response.set("Retry-After", "1");
  return response;
}

}  // namespace pdcu::cluster
