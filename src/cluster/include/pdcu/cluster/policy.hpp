// The front tier's routing brain, factored out of the I/O so the real
// proxy (front.cpp, wall clock + sockets) and the virtual-time simulation
// (sim.cpp, FaultInjector + virtual clock) execute the *same* decisions:
// candidate ordering, degraded shedding, retry backoff, and deadline
// budgeting. A chaos scenario reproduced in the sim is therefore evidence
// about the shipped policy, not about a parallel reimplementation.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "pdcu/cluster/gossip.hpp"
#include "pdcu/cluster/ring.hpp"

namespace pdcu::cluster {

/// The front tier's local, probe-derived view of one replica.
struct ProbeState {
  bool alive = true;      ///< last probe (or upstream attempt) succeeded
  bool degraded = false;  ///< last /healthz said "degraded"
  std::uint64_t epoch = 0;
};

/// How a candidate was classified when the route was planned.
enum class CandidateClass {
  kHealthy,   ///< routable, believed up and serving fresh content
  kDegraded,  ///< serving last-known-good; used only after healthy ones
  kDead,      ///< probe/attempt failure; last resort (it may have healed)
};

struct Candidate {
  std::string id;
  CandidateClass cls = CandidateClass::kHealthy;
};

/// Ring-ordered candidates for `key`, stably partitioned so every healthy
/// node precedes every degraded node, which precedes every dead node.
/// Dead and degraded nodes stay on the list as a last resort: with the
/// whole fleet down it is still better to try than to fail without a
/// connection attempt. `probes` and `gossip` are consulted per node; a
/// node is degraded if either source says so (the probe may lag gossip by
/// a round, and vice versa).
std::vector<Candidate> plan_route(
    const HashRing& ring, std::string_view key, std::size_t max_attempts,
    const std::vector<std::pair<std::string, ProbeState>>& probes,
    const GossipMap& gossip);

/// Capped exponential backoff before retry `attempt` (0-based: the first
/// retry waits `initial`, doubling after that).
template <typename Duration>
Duration backoff_for(unsigned attempt, Duration initial, Duration cap) {
  if (initial.count() <= 0) return Duration{0};
  Duration wait = initial;
  for (unsigned i = 0; i < attempt && wait < cap; ++i) wait += wait;
  return std::min(wait, cap);
}

/// Header carrying the remaining per-request budget, in milliseconds,
/// hop by hop. The front tier stamps it on upstream requests (and honors
/// a client-supplied value by taking the minimum with its own budget).
inline constexpr std::string_view kDeadlineHeader = "X-Pdcu-Deadline";

/// Effective budget: the front tier's own cap, lowered by whatever the
/// client asked for. Zero or unparsable client values are ignored.
std::chrono::milliseconds effective_budget(
    std::chrono::milliseconds configured, const std::string* client_header);

}  // namespace pdcu::cluster
