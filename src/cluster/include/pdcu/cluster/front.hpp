// The cluster's front door: a proxy that consistent-hash-routes every
// request onto a replica fleet and absorbs replica failure so clients
// never see it. Per request it plans a candidate walk (ring owner, then
// distinct ring successors; healthy before degraded before dead — see
// policy.hpp), tries candidates under a single deadline budget with
// capped exponential backoff between attempts, and propagates the
// remaining budget upstream in X-Pdcu-Deadline so a replica never spends
// time the request no longer has.
//
// Failure detection is three-layered: a periodic /healthz prober, gossip
// rumors (a replica that fails its rebuild marks itself degraded and the
// rumor reaches the front within a few rounds), and the attempts
// themselves (a connect failure marks the replica dead immediately,
// without waiting for the next probe tick).
//
// The front's own surface lives under /_front/ (healthz + metrics) so it
// can never shadow a replica route. Threading mirrors HttpServer's pool
// backend: one accept thread, a private worker pool, blocking upstream
// I/O per worker. Tests run deterministically by setting probe_interval
// and gossip_interval to zero and driving probe_once() / gossip rounds
// by hand.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pdcu/cluster/gossip_agent.hpp"
#include "pdcu/cluster/metrics.hpp"
#include "pdcu/cluster/policy.hpp"
#include "pdcu/cluster/ring.hpp"
#include "pdcu/cluster/upstream.hpp"
#include "pdcu/runtime/thread_pool.hpp"
#include "pdcu/server/http.hpp"
#include "pdcu/support/expected.hpp"

namespace pdcu::cluster {

struct ReplicaTarget {
  std::string id;
  std::string host;
  std::uint16_t port = 0;
};

struct FrontOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 picks an ephemeral port (see port())
  std::string id = "front";
  unsigned threads = 4;
  unsigned vnodes = 64;
  std::size_t max_attempts = 3;  ///< candidate replicas tried per request
  std::chrono::milliseconds connect_timeout{250};
  std::chrono::milliseconds request_budget{2000};  ///< default deadline
  std::chrono::milliseconds backoff_initial{10};
  std::chrono::milliseconds backoff_cap{200};
  /// 0 disables the background prober; tests call probe_once().
  std::chrono::milliseconds probe_interval{200};
  /// 0 disables the background gossip loop; tests drive rounds by hand.
  std::chrono::milliseconds gossip_interval{200};
  std::chrono::milliseconds read_timeout{5000};
  std::size_t max_request_bytes = 16 * 1024;
  std::size_t max_connections = 256;
};

class FrontTier {
 public:
  FrontTier(FrontOptions options, std::vector<ReplicaTarget> replicas);
  ~FrontTier();

  FrontTier(const FrontTier&) = delete;
  FrontTier& operator=(const FrontTier&) = delete;

  Status start();
  void stop();

  /// The actually-bound port (useful with options.port == 0).
  std::uint16_t port() const { return bound_port_; }

  ClusterMetrics& metrics() { return metrics_; }
  GossipAgent& gossip() { return gossip_; }

  /// One synchronous probe sweep over every replica (test hook; the
  /// background prober calls this on its interval).
  void probe_once();

  /// Proxies one already-parsed request (test hook — exactly what a
  /// worker does for a connection's request, minus the socket).
  server::Response proxy(const server::Request& request);

 private:
  void accept_loop();
  void handle_connection(int fd);
  server::Response front_healthz() const;
  void mark_probe(const std::string& id, bool alive, bool degraded,
                  std::uint64_t epoch);
  std::vector<std::pair<std::string, ProbeState>> probe_snapshot() const;
  void refresh_routable_and_moves();

  const FrontOptions options_;
  const std::vector<ReplicaTarget> replicas_;
  HashRing ring_;
  ClusterMetrics metrics_;
  GossipAgent gossip_;
  UpstreamPool pool_;

  mutable std::mutex probes_mutex_;
  std::vector<std::pair<std::string, ProbeState>> probes_;
  std::vector<std::string> sample_owner_;  ///< last chosen target per sample key

  std::atomic<bool> running_{false};
  std::atomic<std::size_t> active_connections_{0};
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::unique_ptr<rt::ThreadPool> workers_;
  std::thread accept_thread_;

  std::mutex probe_stop_mutex_;
  std::condition_variable probe_stop_cv_;
  bool probe_stopping_ = false;
  std::thread probe_thread_;
};

}  // namespace pdcu::cluster
