// Real-process fleet orchestration: spawns M `pdcu serve` replicas as
// subprocesses, reads each one's machine-parseable "listening port=" line
// to learn its (possibly ephemeral) port, and exposes kill/restart so
// chaos tests and `pdcu cluster` can SIGKILL a replica mid-run and bring
// it back. With a fixed --base-port every replica also gets the full
// --gossip-peers list, so replicas rumor among themselves; with
// ephemeral ports (base_port == 0) peer ports are unknowable at spawn
// time and rumors route through the front tier instead (it exchanges
// with every replica round-robin and relays what it heard).
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "pdcu/cluster/front.hpp"
#include "pdcu/support/expected.hpp"

namespace pdcu::cluster {

struct FleetOptions {
  std::string cli_path;     ///< path to the pdcu binary
  unsigned replicas = 3;
  std::uint16_t base_port = 0;  ///< replica i listens on base+i; 0=ephemeral
  std::string host = "127.0.0.1";
  std::string content_dir;  ///< empty serves the builtin curation
  bool watch = false;       ///< pass --watch (live reload) to replicas
  /// --threads for every replica: each gets a private worker pool so the
  /// front's parked keep-alive connections can never starve accepts.
  unsigned replica_threads = 4;
  std::vector<std::string> extra_args;  ///< appended to every replica
};

/// One `pdcu serve` subprocess.
class ReplicaProcess {
 public:
  ReplicaProcess() = default;
  ~ReplicaProcess() { terminate(); }

  ReplicaProcess(const ReplicaProcess&) = delete;
  ReplicaProcess& operator=(const ReplicaProcess&) = delete;
  ReplicaProcess(ReplicaProcess&& other) noexcept;
  ReplicaProcess& operator=(ReplicaProcess&& other) noexcept;

  /// fork/execs `argv` (argv[0] is the binary) and blocks until the child
  /// prints its "listening port=" line.
  Status spawn(const std::vector<std::string>& argv);

  /// SIGKILL — the no-goodbye death chaos tests need. Reaps the child.
  void kill_hard();

  /// SIGTERM and reap (graceful).
  void terminate();

  bool running() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }
  std::uint16_t port() const { return port_; }

 private:
  void reap();

  pid_t pid_ = -1;
  std::uint16_t port_ = 0;
};

/// The replica fleet. start() spawns every replica; targets() feeds the
/// result straight into FrontTier.
class Fleet {
 public:
  explicit Fleet(FleetOptions options) : options_(std::move(options)) {}

  Status start();

  std::size_t size() const { return processes_.size(); }
  const ReplicaProcess& replica(std::size_t i) const { return processes_[i]; }

  /// ReplicaTargets (id, host, port) for FrontTier construction.
  std::vector<ReplicaTarget> targets() const;

  void kill_replica(std::size_t i);
  Status restart_replica(std::size_t i);
  void stop_all();

 private:
  std::vector<std::string> replica_argv(std::size_t i) const;

  FleetOptions options_;
  std::vector<ReplicaProcess> processes_;
};

}  // namespace pdcu::cluster
