// Cluster membership state and the gossip digest that carries it. Every
// node (replica or front tier) keeps a GossipMap: for each node id, the
// latest known (epoch, degraded, version) triple, where `epoch` is the
// node's reload generation, `degraded` says its last rebuild failed (it
// is serving last-known-good), and `version` is a per-node sequence
// number bumped every time the node changes its own entry. Rumors spread
// by exchanging digests: merge() keeps, per node, the entry with the
// higher version — so state flows in every direction, third parties relay
// what they heard, and a partition heals to the newest truth as soon as
// any path exists. This is PR 4's last-known-good guarantee made
// fleet-wide: a replica that fails its rebuild keeps serving, marks
// itself degraded at its current epoch, and the front tier routes around
// it within a few gossip rounds.
//
// The digest wire format is one line per node — "id epoch degraded
// version\n" — small enough to ride in a query parameter, and stable so
// the virtual-time simulation and the real HTTP transport share it.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pdcu::cluster {

struct NodeState {
  std::uint64_t epoch = 0;
  bool degraded = false;
  std::uint64_t version = 0;

  bool operator==(const NodeState&) const = default;
};

/// Newer-version-wins merge of two states for the same node. Equal
/// versions (same node observed twice) tie-break deterministically on
/// (epoch, degraded) so every merge order converges to the same map.
NodeState merge_states(const NodeState& a, const NodeState& b);

class GossipMap {
 public:
  /// Replaces this node's own entry, bumping its version past anything
  /// already recorded for it (including relayed rumors about ourselves).
  void update_self(const std::string& id, std::uint64_t epoch, bool degraded);

  std::optional<NodeState> get(std::string_view id) const;

  /// Sorted-by-id snapshot of every known entry.
  std::vector<std::pair<std::string, NodeState>> snapshot() const;

  /// One "id epoch degraded version" line per node, sorted by id.
  std::string encode() const;

  /// Merges a peer's digest; malformed lines are skipped (a truncated
  /// gossip message must never poison the map). Returns how many entries
  /// changed.
  std::size_t merge_digest(std::string_view digest);

  std::size_t size() const;

  /// Drops every entry — what a freshly restarted process's map looks
  /// like (rumors do not survive a SIGKILL).
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<std::pair<std::string, NodeState>> entries_;  ///< sorted by id
};

}  // namespace pdcu::cluster
