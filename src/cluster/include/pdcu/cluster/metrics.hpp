// Front-tier and gossip counters, exposed as the pdcu_cluster_* family on
// the front tier's /_front/metrics endpoint (lint-clean exposition, same
// conventions as ServerMetrics). All relaxed atomics: every proxy worker
// and the prober/gossip threads bump them concurrently, and a scrape only
// needs a consistent-enough snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace pdcu::cluster {

class ClusterMetrics {
 public:
  void record_request() { requests_.fetch_add(1, kRelaxed); }
  void record_retry() { retries_.fetch_add(1, kRelaxed); }
  void record_failover() { failovers_.fetch_add(1, kRelaxed); }
  void record_shed() { shed_.fetch_add(1, kRelaxed); }
  void record_upstream_error() { upstream_errors_.fetch_add(1, kRelaxed); }
  void record_exhausted() { exhausted_.fetch_add(1, kRelaxed); }
  void record_gossip_round() { gossip_rounds_.fetch_add(1, kRelaxed); }
  void record_gossip_merge(std::uint64_t changed) {
    gossip_merges_.fetch_add(changed, kRelaxed);
  }
  void record_probe_failure() { probe_failures_.fetch_add(1, kRelaxed); }
  void record_ring_moves(std::uint64_t moves) {
    ring_moves_.fetch_add(moves, kRelaxed);
  }
  void set_routable(std::uint64_t routable, std::uint64_t total) {
    routable_.store(routable, kRelaxed);
    ring_nodes_.store(total, kRelaxed);
  }

  std::uint64_t requests() const { return requests_.load(kRelaxed); }
  std::uint64_t retries() const { return retries_.load(kRelaxed); }
  std::uint64_t failovers() const { return failovers_.load(kRelaxed); }
  std::uint64_t shed() const { return shed_.load(kRelaxed); }
  std::uint64_t upstream_errors() const {
    return upstream_errors_.load(kRelaxed);
  }
  std::uint64_t exhausted() const { return exhausted_.load(kRelaxed); }
  std::uint64_t gossip_rounds() const { return gossip_rounds_.load(kRelaxed); }
  std::uint64_t gossip_merges() const { return gossip_merges_.load(kRelaxed); }
  std::uint64_t probe_failures() const {
    return probe_failures_.load(kRelaxed);
  }
  std::uint64_t ring_moves() const { return ring_moves_.load(kRelaxed); }
  std::uint64_t routable() const { return routable_.load(kRelaxed); }

  /// pdcu_cluster_* exposition lines (lint-clean).
  std::string render_text() const;

 private:
  static constexpr std::memory_order kRelaxed = std::memory_order_relaxed;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> upstream_errors_{0};
  std::atomic<std::uint64_t> exhausted_{0};
  std::atomic<std::uint64_t> gossip_rounds_{0};
  std::atomic<std::uint64_t> gossip_merges_{0};
  std::atomic<std::uint64_t> probe_failures_{0};
  std::atomic<std::uint64_t> ring_moves_{0};
  std::atomic<std::uint64_t> ring_nodes_{0};
  std::atomic<std::uint64_t> routable_{0};
};

}  // namespace pdcu::cluster
