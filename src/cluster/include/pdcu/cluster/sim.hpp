// Deterministic virtual-time cluster simulation. Replays the front
// tier's exact routing policy (policy.hpp: plan_route + backoff_for),
// the real gossip merge (GossipMap), and the real ring (HashRing) over a
// discrete-event virtual clock, with failures injected by net's
// FaultInjector and scripted SimEvents. No sockets, no threads, no wall
// clock: the whole run is a pure function of SimOptions, so a seed that
// exposes a failover bug replays bit-identically (the report carries an
// fnv1a checksum of the event log to prove it).
//
// Node numbering for FaultInjector rules: replica i is node i; the front
// tier is node `replicas` (see SimOptions::front_node()).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pdcu/net/fault.hpp"

namespace pdcu::cluster {

/// A scripted state change at a virtual time.
struct SimEvent {
  enum class Kind {
    kKill,     ///< replica process dies (connect refused from now on)
    kRestart,  ///< replica comes back with a fresh gossip map
    kDegrade,  ///< reload fails: keeps serving last-known-good, gossips
               ///< its degraded epoch
    kRecover,  ///< reload succeeds: epoch advances, degraded clears
  };
  std::uint64_t at_ms = 0;
  Kind kind = Kind::kKill;
  unsigned replica = 0;
};

struct SimOptions {
  unsigned replicas = 3;
  std::uint64_t seed = 1;
  std::uint64_t duration_ms = 10'000;
  std::uint64_t requests = 500;
  std::size_t max_attempts = 3;
  std::uint64_t budget_ms = 2'000;
  std::uint64_t backoff_initial_ms = 10;
  std::uint64_t backoff_cap_ms = 200;
  std::uint64_t attempt_timeout_ms = 250;  ///< cost of a dropped link
  std::uint64_t service_ms = 2;            ///< healthy replica latency
  std::uint64_t probe_interval_ms = 200;
  std::uint64_t gossip_interval_ms = 200;
  unsigned vnodes = 64;
  std::vector<SimEvent> events;
  net::FaultInjector fault;  ///< link drop/delay/partition rules

  unsigned front_node() const { return replicas; }
};

struct SimReport {
  std::uint64_t requests_total = 0;
  std::uint64_t ok = 0;
  std::uint64_t client_errors = 0;  ///< requests the client saw fail
  std::uint64_t retries = 0;
  std::uint64_t failovers = 0;
  std::uint64_t shed = 0;  ///< requests routed around a degraded owner
  std::uint64_t upstream_errors = 0;
  std::uint64_t gossip_rounds = 0;
  std::uint64_t max_latency_ms = 0;
  /// fnv1a_64 over every event-log line; equal seeds ⇒ equal checksums.
  std::uint64_t checksum = 0;
  std::vector<std::string> log;

  std::string render_json() const;
};

SimReport run_sim(const SimOptions& options);

}  // namespace pdcu::cluster
