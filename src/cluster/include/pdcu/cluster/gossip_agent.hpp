// The per-node gossip driver. Owns the node's GossipMap, answers inbound
// exchanges through server::GossipEndpoint (wired into the Router as
// GET /cluster/gossip), and initiates outbound rounds against a peer
// list — round-robin, one peer per round, digest in the query string.
// Rumors therefore flow both ways on every exchange, and a node learns
// fleet state even if it can only reach one peer.
//
// Tests and the CLI can drive run_round() directly (deterministic, no
// thread); start() spawns the periodic background loop for real fleets.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pdcu/cluster/gossip.hpp"
#include "pdcu/cluster/metrics.hpp"
#include "pdcu/cluster/upstream.hpp"
#include "pdcu/server/gossip_hook.hpp"

namespace pdcu::cluster {

struct GossipPeer {
  std::string host;
  std::uint16_t port = 0;
};

class GossipAgent final : public server::GossipEndpoint {
 public:
  explicit GossipAgent(std::string self_id, ClusterMetrics* metrics = nullptr);
  ~GossipAgent() override;

  GossipAgent(const GossipAgent&) = delete;
  GossipAgent& operator=(const GossipAgent&) = delete;

  const std::string& self_id() const { return self_id_; }
  GossipMap& map() { return map_; }
  const GossipMap& map() const { return map_; }

  /// Refreshes this node's own entry (epoch + degraded flag) before it
  /// spreads. Call after the initial load and after every reload attempt.
  void update_self(std::uint64_t epoch, bool degraded);

  /// Optional pull-based alternative to update_self: called before every
  /// exchange (inbound and outbound) to re-read (epoch, degraded) from
  /// the source of truth — e.g. the serve CLI wires a HealthTracker read
  /// here, so a reload's outcome gossips without the reload path knowing
  /// gossip exists. Must be thread-safe.
  void set_self_source(std::function<std::pair<std::uint64_t, bool>()> source);

  void set_peers(std::vector<GossipPeer> peers);

  /// Inbound half: merge the sender's digest, answer with ours.
  std::string exchange(std::string_view peer_digest) const override;

  /// Outbound half: one exchange with the next peer in round-robin
  /// order. Returns false when there are no peers or the peer was
  /// unreachable (the round is skipped, not retried — gossip tolerates
  /// lost rounds by design).
  bool run_round();

  /// Spawns the periodic outbound loop. stop() joins it; the destructor
  /// stops implicitly.
  void start(std::chrono::milliseconds interval);
  void stop();

 private:
  void refresh_self() const;

  const std::string self_id_;
  mutable GossipMap map_;
  ClusterMetrics* metrics_;
  std::function<std::pair<std::uint64_t, bool>()> self_source_;

  mutable std::mutex peers_mutex_;
  std::vector<GossipPeer> peers_;
  std::size_t next_peer_ = 0;

  UpstreamPool pool_{2};

  std::mutex stop_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread thread_;
};

/// Percent-encodes a gossip digest for the ?digest= query parameter.
std::string url_encode_component(std::string_view text);

}  // namespace pdcu::cluster
