// Consistent-hash ring with virtual nodes. Every node contributes
// `vnodes` points at mix64(fnv1a_64(id + "#" + v)) on a 64-bit circle (a
// splitmix64 finalizer — raw FNV clusters for ids differing only in a
// short suffix); a request key routes to the first point clockwise of
// the same hash of the key, and its
// failover order is the subsequent *distinct* nodes in ring order. The
// classic properties follow: keys spread over nodes roughly evenly (the
// virtual nodes smooth the variance), and removing a node remaps only the
// keys that node owned — every other key keeps both its owner and its
// successor list prefix, which is what keeps a replica loss from
// reshuffling the whole fleet's working sets.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pdcu::cluster {

class HashRing {
 public:
  explicit HashRing(unsigned vnodes = 64) : vnodes_(vnodes) {}

  /// Adds a node; duplicate ids are ignored. O(n log n) rebuild — the
  /// membership set changes rarely (deploys), lookups happen per request.
  void add_node(const std::string& id);
  void remove_node(std::string_view id);
  bool contains(std::string_view id) const;

  std::size_t size() const { return nodes_.size(); }
  const std::vector<std::string>& nodes() const { return nodes_; }

  /// The owning node for `key`, empty when the ring is empty.
  std::string owner(std::string_view key) const;

  /// The owner followed by up to `max_nodes - 1` distinct failover
  /// successors, in ring order. This is the order the front tier tries
  /// replicas in; it is a pure function of (membership, vnodes, key).
  std::vector<std::string> route(std::string_view key,
                                 std::size_t max_nodes) const;

  /// How many of `keys` change owner between `before` and `after` — the
  /// ring-move count the front tier reports when membership shifts.
  static std::size_t moved_keys(const HashRing& before, const HashRing& after,
                                const std::vector<std::string>& keys);

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t node;  ///< index into nodes_
  };

  void rebuild();

  unsigned vnodes_;
  std::vector<std::string> nodes_;  ///< sorted, so the ring is canonical
  std::vector<Point> points_;       ///< sorted by hash
};

}  // namespace pdcu::cluster
