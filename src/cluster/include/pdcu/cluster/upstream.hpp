// Proxy-grade blocking HTTP client for the front tier's hot path. Two
// properties matter here that loadgen's Connection doesn't need:
//
//  * Connect timeouts via non-blocking connect + poll. A replica that is
//    SYN-reachable but never completes the handshake (half-open peer,
//    dropped by a fault rule, or a SYN queue full after SIGKILL) must
//    cost one bounded attempt, not hang a proxy worker.
//  * Connection reuse keyed by target. The front re-contacts the same M
//    replicas for every request; a per-target stack of idle keep-alive
//    sockets keeps the proxy hop at one RTT instead of three.
//
// Every call carries its remaining deadline budget so a slow upstream
// cannot spend time the request no longer has.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "pdcu/support/expected.hpp"

namespace pdcu::cluster {

/// A parsed upstream response, ready to re-serialize toward the client.
struct UpstreamReply {
  int status = 0;
  std::string content_type;
  std::string body;
};

/// Extra request headers, e.g. the propagated deadline budget.
using HeaderList = std::vector<std::pair<std::string, std::string>>;

class UpstreamPool {
 public:
  explicit UpstreamPool(std::size_t max_idle_per_target = 4)
      : max_idle_per_target_(max_idle_per_target) {}
  ~UpstreamPool();

  UpstreamPool(const UpstreamPool&) = delete;
  UpstreamPool& operator=(const UpstreamPool&) = delete;

  /// One GET against host:port. `connect_timeout` bounds the handshake;
  /// `deadline` is the total remaining budget for the whole exchange
  /// (connect included). Error codes: cluster.upstream.connect,
  /// .connect_timeout, .send, .read, .timeout.
  Expected<UpstreamReply> fetch(const std::string& host, std::uint16_t port,
                                const std::string& target,
                                const HeaderList& headers,
                                std::chrono::milliseconds connect_timeout,
                                std::chrono::milliseconds deadline);

  /// Idle sockets currently pooled for host:port (test hook).
  std::size_t idle_count(const std::string& host, std::uint16_t port) const;

  /// Closes every pooled socket (e.g. after a replica was killed).
  void clear();

 private:
  int take_idle(const std::string& key);
  void give_back(const std::string& key, int fd);

  const std::size_t max_idle_per_target_;
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<int>> idle_;
};

}  // namespace pdcu::cluster
