#include "pdcu/net/connection.hpp"

#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <array>
#include <cerrno>

namespace pdcu::net {
namespace {

/// Per-event read ceiling, so one fire-hosing connection cannot starve
/// the rest of its shard: after this much the loop yields back to epoll
/// (level-triggered, so leftover socket data re-triggers immediately).
constexpr std::size_t kReadBudget = 64 * 1024;
constexpr std::size_t kReadChunk = 16 * 1024;

}  // namespace

Connection::Connection(int fd, Handler& handler, NetMetrics* metrics,
                       ConnectionLimits limits)
    : fd_(fd), handler_(handler), metrics_(metrics), limits_(limits) {}

Connection::Flush Connection::flush() {
  while (written_ < pending_response_.wire_bytes()) {
    // Rebuild the iovec from the remaining tail of each segment; writev
    // moves the offset, partial writes just re-enter with a shorter view.
    std::array<iovec, 3> vecs{};
    int count = 0;
    std::size_t skip = written_;
    for (std::string_view segment :
         {pending_response_.head, pending_response_.tail,
          pending_response_.body}) {
      if (skip >= segment.size()) {
        skip -= segment.size();
        continue;
      }
      segment.remove_prefix(skip);
      skip = 0;
      vecs[static_cast<std::size_t>(count)].iov_base =
          const_cast<char*>(segment.data());
      vecs[static_cast<std::size_t>(count)].iov_len = segment.size();
      ++count;
    }
    if (count == 0) break;
    const ssize_t n = ::writev(fd_, vecs.data(), count);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (metrics_ != nullptr) metrics_->record_writev(/*partial=*/true);
        return Flush::kAgain;
      }
      if (metrics_ != nullptr) {
        metrics_->record_writev(/*partial=*/true);
        metrics_->record_write_error();
      }
      handler_.on_write_error();
      return Flush::kError;
    }
    written_ += static_cast<std::size_t>(n);
    if (metrics_ != nullptr) {
      metrics_->record_writev(written_ < pending_response_.wire_bytes());
    }
  }
  return Flush::kDone;
}

Connection::Event Connection::process(bool draining) {
  while (true) {
    if (pending_) {
      switch (flush()) {
        case Flush::kAgain:
          return Event::kKeep;  // want_write() now true; reactor flips to OUT
        case Flush::kError:
          return Event::kClose;
        case Flush::kDone:
          break;
      }
      pending_ = false;
      written_ = 0;
      ++responses_done_;
      if (metrics_ != nullptr) metrics_->record_requests(1);
      const bool close_now = close_after_write_;
      pending_response_ = WireResponse{};  // releases the guard
      close_after_write_ = false;
      if (close_now) return Event::kClose;
    }
    if (buffer_.empty()) return Event::kKeep;

    // The response to the last allowed request (or any request served
    // while draining or after the peer half-closed) is framed close,
    // mirroring the pool backend's max_requests_per_connection semantics.
    const bool force_close =
        draining || peer_eof_ ||
        (limits_.max_requests != 0 && served_ + 1 >= limits_.max_requests);
    // The handler writes into the response's final resting place: its
    // views may point into the owned_* strings, and moving a short
    // (SSO) std::string relocates its bytes, so a fill-then-move here
    // would leave head/body dangling.
    pending_response_ = WireResponse{};
    const Step step =
        handler_.on_data(buffer_, force_close, pending_response_);
    if (step.status == StepStatus::kNeedMore) {
      if (buffer_.size() > limits_.max_buffer_bytes) return Event::kClose;
      return Event::kKeep;
    }
    buffer_.erase(0, std::min(step.consumed, buffer_.size()));
    ++served_;
    pending_ = true;
    written_ = 0;
    close_after_write_ = pending_response_.close || force_close;
  }
}

Connection::Event Connection::on_readable(bool draining) {
  std::size_t taken = 0;
  while (taken < kReadBudget) {
    const std::size_t old_size = buffer_.size();
    buffer_.resize(old_size + kReadChunk);
    const ssize_t n = ::recv(fd_, buffer_.data() + old_size, kReadChunk, 0);
    if (n > 0) {
      buffer_.resize(old_size + static_cast<std::size_t>(n));
      taken += static_cast<std::size_t>(n);
      continue;
    }
    buffer_.resize(old_size);
    if (n == 0) {
      // Peer half-closed its write side; it may still be reading. Serve
      // any complete buffered request (close-framed), then hang up.
      peer_eof_ = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return Event::kClose;
  }
  const Event event = process(draining);
  if (event == Event::kClose) return event;
  if (peer_eof_) {
    // Nothing more will arrive: an incomplete buffer is abandoned, and a
    // response still draining finishes (close_after_write_ is set via
    // force_close) before the fd closes.
    if (!pending_) return Event::kClose;
  }
  return event;
}

Connection::Event Connection::on_writable(bool draining) {
  const Event event = process(draining);
  if (event == Event::kClose) return event;
  if (peer_eof_ && !pending_) return Event::kClose;
  return event;
}

Connection::Event Connection::on_timeout() {
  if (pending_) {
    // Deadline hit while a response was still draining to a slow reader:
    // nothing sensible to say, just stop.
    if (metrics_ != nullptr) metrics_->record_read_timeout();
    return Event::kClose;
  }
  if (buffer_.empty()) {
    // Keep-alive connection that simply went quiet between requests.
    if (metrics_ != nullptr) metrics_->record_idle_close();
    return Event::kClose;
  }
  // The peer started a request and stalled: answer with the protocol's
  // canned timeout (best effort — the wire is about to close anyway).
  const std::string wire = handler_.timeout_response();
  if (!wire.empty()) {
    const ssize_t n = ::send(fd_, wire.data(), wire.size(), MSG_NOSIGNAL);
    if (n == static_cast<ssize_t>(wire.size())) {
      handler_.on_connection_error(408, wire.size());
    }
  }
  if (metrics_ != nullptr) metrics_->record_read_timeout();
  return Event::kClose;
}

}  // namespace pdcu::net
