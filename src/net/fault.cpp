#include "pdcu/net/fault.hpp"

namespace pdcu::net {

namespace {

bool link_matches(const FaultInjector::Rule& rule, int src, int dst) {
  const bool forward = (rule.src == kAnyNode || rule.src == src) &&
                       (rule.dst == kAnyNode || rule.dst == dst);
  if (forward) return true;
  if (!rule.symmetric) return false;
  return (rule.src == kAnyNode || rule.src == dst) &&
         (rule.dst == kAnyNode || rule.dst == src);
}

}  // namespace

void FaultInjector::add_rule(Rule rule) { rules_.push_back({rule, 0}); }

void FaultInjector::partition(const std::vector<int>& group_a,
                              const std::vector<int>& group_b,
                              std::int64_t from_ms, std::int64_t until_ms) {
  for (const int a : group_a) {
    for (const int b : group_b) {
      Rule rule;
      rule.src = a;
      rule.dst = b;
      rule.mode = Mode::kDrop;
      rule.from_ms = from_ms;
      rule.until_ms = until_ms;
      rule.symmetric = true;
      add_rule(rule);
    }
  }
}

void FaultInjector::kill(int node, std::int64_t at_ms, std::int64_t until_ms) {
  kills_.push_back({node, at_ms, until_ms});
}

bool FaultInjector::alive(int node, std::int64_t now_ms) const {
  for (const KillWindow& window : kills_) {
    if (window.node == node && now_ms >= window.from_ms &&
        now_ms < window.until_ms) {
      return false;
    }
  }
  return true;
}

FaultInjector::Action FaultInjector::intercept(int src, int dst,
                                               std::int64_t now_ms) {
  for (RuleState& state : rules_) {
    const Rule& rule = state.rule;
    if (!link_matches(rule, src, dst)) continue;
    if (now_ms < rule.from_ms || now_ms >= rule.until_ms) continue;
    const std::uint64_t index = state.matched++;
    if (index < rule.skip || index >= rule.skip + rule.limit) continue;
    ++injected_;
    Action action;
    action.drop = rule.mode == Mode::kDrop;
    action.delay_ms = rule.mode == Mode::kDelay ? rule.delay_ms : 0;
    return action;
  }
  return {};
}

void FaultInjector::clear() {
  rules_.clear();
  kills_.clear();
  injected_ = 0;
}

}  // namespace pdcu::net
