#include "pdcu/net/metrics.hpp"

#include <algorithm>
#include <string_view>

namespace pdcu::net {

void NetMetrics::set_shard_count(std::size_t shards) {
  shards_.store(std::min(shards, kMaxShards), std::memory_order_relaxed);
}

void NetMetrics::record_accept(std::size_t shard) {
  accepted_.fetch_add(1, std::memory_order_relaxed);
  if (shard < kMaxShards) {
    by_shard_[shard].fetch_add(1, std::memory_order_relaxed);
  }
  const std::uint64_t now =
      active_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
}

std::uint64_t NetMetrics::accepted_by_shard(std::size_t shard) const {
  if (shard >= kMaxShards) return 0;
  return by_shard_[shard].load(std::memory_order_relaxed);
}

std::string NetMetrics::render_text() const {
  std::string out;
  const auto counter = [&out](std::string_view name, std::string_view help,
                              std::uint64_t value) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += " counter\n";
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };
  const auto gauge = [&out](std::string_view name, std::string_view help,
                            std::uint64_t value) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += " gauge\n";
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };

  out += "# HELP pdcu_net_accepted_total Connections accepted, by reactor "
         "shard.\n";
  out += "# TYPE pdcu_net_accepted_total counter\n";
  const std::size_t shards = shard_count();
  for (std::size_t shard = 0; shard < shards; ++shard) {
    out += "pdcu_net_accepted_total{shard=\"" + std::to_string(shard) +
           "\"} " + std::to_string(accepted_by_shard(shard)) + "\n";
  }
  if (shards == 0) {
    out += "pdcu_net_accepted_total{shard=\"0\"} " +
           std::to_string(accepted_total()) + "\n";
  }

  gauge("pdcu_net_connections_active",
        "Connections currently open on the reactor.",
        active_connections());
  gauge("pdcu_net_connections_peak",
        "Highest concurrent connection count observed.",
        peak_connections());
  counter("pdcu_net_requests_total",
          "Requests answered through the reactor hot path.",
          requests_total());
  counter("pdcu_net_overload_total",
          "Connections rejected with the overload answer (503).",
          overload_total());
  counter("pdcu_net_read_timeouts_total",
          "Connections that timed out mid-request (answered 408).",
          read_timeouts_total());
  counter("pdcu_net_idle_closes_total",
          "Idle keep-alive connections reaped by the timeout wheel.",
          idle_closes_total());
  counter("pdcu_net_writev_calls_total",
          "Vectored writes issued on the response path.",
          writev_calls_total());
  counter("pdcu_net_partial_writes_total",
          "writev calls that could not flush the whole response.",
          partial_writes_total());
  counter("pdcu_net_write_errors_total",
          "Responses lost to a dead peer (EPIPE/ECONNRESET).",
          write_errors_total());
  return out;
}

}  // namespace pdcu::net
