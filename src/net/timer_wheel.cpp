#include "pdcu/net/timer_wheel.hpp"

#include <algorithm>

namespace pdcu::net {

TimerWheel::TimerWheel(Clock::time_point epoch,
                       std::chrono::milliseconds tick, std::size_t slots)
    : epoch_(epoch),
      tick_(tick.count() > 0 ? tick : std::chrono::milliseconds(1)),
      slots_(std::max<std::size_t>(slots, 2)) {}

std::uint64_t TimerWheel::tick_of(Clock::time_point when) const {
  if (when <= epoch_) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(when - epoch_)
          .count() /
      tick_.count());
}

void TimerWheel::push(std::uint64_t id, std::uint64_t seq,
                      Clock::time_point deadline) {
  // Never file into a slot the cursor already passed: a deadline in the
  // past belongs to the next advance(), i.e. the cursor's own slot.
  const std::uint64_t tick = std::max(tick_of(deadline), cursor_);
  slots_[tick % slots_.size()].push_back({id, seq});
}

void TimerWheel::schedule(std::uint64_t id, Clock::time_point deadline) {
  // Each (re)schedule bumps the sequence number, orphaning any slot entry
  // the previous deadline filed — stale entries are dropped when their
  // slot fires instead of lingering for revolutions.
  Entry& entry = deadlines_[id];
  entry.deadline = deadline;
  ++entry.seq;
  push(id, entry.seq, deadline);
}

void TimerWheel::cancel(std::uint64_t id) { deadlines_.erase(id); }

std::vector<std::uint64_t> TimerWheel::advance(Clock::time_point now) {
  std::vector<std::uint64_t> expired;
  if (deadlines_.empty()) {
    cursor_ = tick_of(now) + 1;
    return expired;
  }
  const std::uint64_t upto = tick_of(now);
  // Crossing more than a full revolution visits every slot once; clamp so
  // a long sleep costs O(slots), not O(elapsed ticks).
  const std::uint64_t first =
      upto >= cursor_ + slots_.size()
          ? upto - static_cast<std::uint64_t>(slots_.size()) + 1
          : cursor_;
  std::vector<Filed> survivors;
  for (std::uint64_t tick = first; tick <= upto; ++tick) {
    auto& slot = slots_[tick % slots_.size()];
    for (const Filed& filed : slot) {
      const auto entry = deadlines_.find(filed.id);
      if (entry == deadlines_.end()) continue;  // cancelled: drop lazily
      if (entry->second.seq != filed.seq) continue;  // rescheduled: stale
      if (entry->second.deadline <= now) {
        deadlines_.erase(entry);
        expired.push_back(filed.id);
      } else {
        survivors.push_back(filed);
      }
    }
    slot.clear();
  }
  cursor_ = upto + 1;
  // Refile after the cursor moved so a survivor whose deadline falls
  // inside the just-advanced window lands in the cursor's slot (fires on
  // the next advance) instead of waiting a full revolution.
  for (const Filed& filed : survivors) {
    push(filed.id, filed.seq, deadlines_[filed.id].deadline);
  }
  return expired;
}

TimerWheel::Clock::time_point TimerWheel::next_deadline() const {
  Clock::time_point earliest = Clock::time_point::max();
  for (const auto& [id, entry] : deadlines_) {
    earliest = std::min(earliest, entry.deadline);
  }
  return earliest;
}

}  // namespace pdcu::net
