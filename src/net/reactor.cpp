#include "pdcu/net/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <thread>
#include <unordered_map>

#include "pdcu/net/connection.hpp"
#include "pdcu/net/socket.hpp"
#include "pdcu/net/timer_wheel.hpp"

namespace pdcu::net {
namespace {

constexpr int kMaxEvents = 64;
/// Heartbeat ceiling on epoll_wait so shards notice drain promptly even
/// if an eventfd wake is lost to a race with loop entry.
constexpr int kMaxWaitMs = 200;

}  // namespace

struct ReactorServer::Shard {
  struct Slot {
    std::unique_ptr<Connection> conn;
    std::uint64_t done_mark = 0;  ///< responses_done at last deadline reset
    std::uint32_t interest = EPOLLIN;
  };

  ReactorServer& parent;
  std::size_t index;
  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;
  std::unordered_map<int, Slot> conns;

  Shard(ReactorServer& parent_in, std::size_t index_in)
      : parent(parent_in), index(index_in) {}

  ~Shard() {
    if (listen_fd >= 0) ::close(listen_fd);
    if (wake_fd >= 0) ::close(wake_fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
  }

  bool add_fd(int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    return ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) == 0;
  }

  void set_interest(int fd, Slot& slot, std::uint32_t events) {
    if (slot.interest == events) return;
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, fd, &ev);
    slot.interest = events;
  }

  void close_conn(int fd, TimerWheel& wheel) {
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    conns.erase(fd);
    wheel.cancel(static_cast<std::uint64_t>(fd));
    parent.active_.fetch_sub(1, std::memory_order_relaxed);
    if (parent.options_.metrics != nullptr) {
      parent.options_.metrics->record_close();
    }
  }

  /// Applies a Connection event verdict: close, or refresh epoll interest
  /// and (when a response completed) the read deadline.
  void settle(int fd, Connection::Event event, TimerWheel& wheel,
              TimerWheel::Clock::time_point now) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    Slot& slot = it->second;
    if (event == Connection::Event::kClose) {
      close_conn(fd, wheel);
      return;
    }
    set_interest(fd, slot, slot.conn->want_write() ? EPOLLOUT : EPOLLIN);
    if (slot.conn->responses_done() != slot.done_mark) {
      slot.done_mark = slot.conn->responses_done();
      wheel.schedule(static_cast<std::uint64_t>(fd),
                     now + parent.options_.read_timeout);
    }
  }

  void accept_all(TimerWheel& wheel, TimerWheel::Clock::time_point now) {
    while (true) {
      const int fd =
          ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN: drained; anything else: give up for this wake
      }
      if (!admit()) {
        // Over the global cap: answer 503 (best effort on a socket that
        // was just accepted, so the buffer is empty) and hang up.
        const std::string wire = parent.handler_.overload_response();
        if (!wire.empty()) {
          const ssize_t n =
              ::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
          if (n == static_cast<ssize_t>(wire.size())) {
            parent.handler_.on_connection_error(503, wire.size());
          }
        }
        if (parent.options_.metrics != nullptr) {
          parent.options_.metrics->record_overload();
        }
        ::close(fd);
        continue;
      }
      if (parent.options_.metrics != nullptr) {
        parent.options_.metrics->record_accept(index);
      }
      ConnectionLimits limits;
      limits.max_buffer_bytes = parent.options_.max_buffer_bytes;
      limits.max_requests = parent.options_.max_requests_per_connection;
      Slot slot;
      slot.conn = std::make_unique<Connection>(
          fd, parent.handler_, parent.options_.metrics, limits);
      if (!add_fd(fd, EPOLLIN)) {
        ::close(fd);
        parent.active_.fetch_sub(1, std::memory_order_relaxed);
        if (parent.options_.metrics != nullptr) {
          parent.options_.metrics->record_close();
        }
        continue;
      }
      wheel.schedule(static_cast<std::uint64_t>(fd),
                     now + parent.options_.read_timeout);
      conns.emplace(fd, std::move(slot));
    }
  }

  bool admit() {
    const std::uint64_t cap = parent.options_.max_connections;
    std::uint64_t current = parent.active_.load(std::memory_order_relaxed);
    while (current < cap) {
      if (parent.active_.compare_exchange_weak(current, current + 1,
                                               std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  void run() {
    TimerWheel wheel(TimerWheel::Clock::now());
    bool draining = false;
    TimerWheel::Clock::time_point drain_deadline{};
    std::array<epoll_event, kMaxEvents> events{};

    while (true) {
      auto now = TimerWheel::Clock::now();
      if (!draining &&
          parent.draining_.load(std::memory_order_acquire)) {
        draining = true;
        drain_deadline = now + parent.options_.drain_timeout;
        if (listen_fd >= 0) {
          ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
          ::close(listen_fd);
          listen_fd = -1;
        }
      }
      if (draining) {
        // Idle keep-alive connections have nothing owed to them; anything
        // mid-request or mid-response gets until the drain deadline.
        for (auto it = conns.begin(); it != conns.end();) {
          const int fd = it->first;
          const bool expired = now >= drain_deadline;
          if (expired || it->second.conn->idle()) {
            ++it;  // advance before close_conn erases
            close_conn(fd, wheel);
          } else {
            ++it;
          }
        }
        if (conns.empty()) return;
      }

      int timeout_ms = kMaxWaitMs;
      const auto next = wheel.next_deadline();
      if (next != TimerWheel::Clock::time_point::max()) {
        const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
                               next - now)
                               .count();
        timeout_ms = static_cast<int>(
            std::clamp<long long>(until + 1, 0, kMaxWaitMs));
      }

      const int ready =
          ::epoll_wait(epoll_fd, events.data(), kMaxEvents, timeout_ms);
      now = TimerWheel::Clock::now();
      for (int i = 0; i < ready; ++i) {
        const int fd = events[static_cast<std::size_t>(i)].data.fd;
        const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
        if (fd == wake_fd) {
          std::uint64_t token = 0;
          while (::read(wake_fd, &token, sizeof token) > 0) {
          }
          continue;
        }
        if (fd == listen_fd) {
          accept_all(wheel, now);
          continue;
        }
        auto it = conns.find(fd);
        if (it == conns.end()) continue;
        if ((mask & (EPOLLERR | EPOLLHUP)) != 0 &&
            (mask & (EPOLLIN | EPOLLOUT)) == 0) {
          close_conn(fd, wheel);
          continue;
        }
        Connection::Event event = Connection::Event::kKeep;
        if ((mask & EPOLLOUT) != 0) {
          event = it->second.conn->on_writable(draining);
        } else {
          event = it->second.conn->on_readable(draining);
        }
        settle(fd, event, wheel, now);
      }

      for (const std::uint64_t id : wheel.advance(now)) {
        auto it = conns.find(static_cast<int>(id));
        if (it == conns.end()) continue;
        it->second.conn->on_timeout();
        close_conn(static_cast<int>(id), wheel);
      }
    }
  }
};

ReactorServer::ReactorServer(ReactorOptions options, Handler& handler)
    : options_(std::move(options)), handler_(handler) {
  if (options_.shards == 0) options_.shards = 1;
}

ReactorServer::~ReactorServer() { stop(); }

Status ReactorServer::start() {
  if (running_.load(std::memory_order_acquire)) {
    return Error::make("net.reactor", "already running");
  }
  draining_.store(false, std::memory_order_release);
  shards_.clear();
  active_.store(0, std::memory_order_relaxed);

  std::uint16_t port = options_.port;
  for (std::size_t i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>(*this, i);
    // Every listener sets SO_REUSEPORT so N of them can share the port;
    // the first bind resolves an ephemeral request to a concrete port
    // that the remaining shards then reuse.
    auto listener =
        open_listener(options_.host, port, /*reuse_port=*/true,
                      options_.listen_backlog);
    if (!listener) {
      shards_.clear();
      return listener.error().context("reactor shard " + std::to_string(i));
    }
    shard->listen_fd = listener.value();
    if (i == 0) {
      port = bound_port(shard->listen_fd);
      if (port == 0) {
        shards_.clear();
        return Error::make("net.reactor", "could not resolve bound port");
      }
    }
    shard->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    shard->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (shard->epoll_fd < 0 || shard->wake_fd < 0 ||
        !shard->add_fd(shard->listen_fd, EPOLLIN) ||
        !shard->add_fd(shard->wake_fd, EPOLLIN)) {
      shards_.clear();
      return Error::make("net.reactor",
                         std::string("epoll setup: ") + std::strerror(errno));
    }
    shards_.push_back(std::move(shard));
  }
  port_ = port;
  if (options_.metrics != nullptr) {
    options_.metrics->set_shard_count(options_.shards);
  }
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    shard->thread = std::thread([raw] { raw->run(); });
  }
  running_.store(true, std::memory_order_release);
  return Status::ok();
}

void ReactorServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  draining_.store(true, std::memory_order_release);
  const std::uint64_t token = 1;
  for (auto& shard : shards_) {
    if (shard->wake_fd >= 0) {
      [[maybe_unused]] const ssize_t n =
          ::write(shard->wake_fd, &token, sizeof token);
    }
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  shards_.clear();
}

}  // namespace pdcu::net
