// Deterministic message-level fault injection for the cluster simulation.
// Where fs::FaultInjector breaks the Nth read of a file, net::FaultInjector
// breaks the Nth message on a (src, dst) link at a given virtual time:
// drop it, delay it, partition two node groups, or declare a node dead for
// a window. The virtual-time simulation (cluster::run_sim) consults it for
// every request attempt, health probe, and gossip exchange, so a partition
// or replica-kill scenario replays bit-identically from a seed plus a rule
// list — no wall clock, no thread scheduling, no sockets.
//
// Nodes are small integers (the simulation uses 0..replicas-1 for replicas
// and `replicas` for the front tier); kAnyNode matches every node. Rules
// are tried in insertion order; the first rule whose link, time window,
// and [skip, skip+limit) match counter all hit decides the action, and
// counters advance deterministically per matching message.
#pragma once

#include <cstdint>
#include <vector>

namespace pdcu::net {

/// Matches any node id in a FaultInjector rule.
inline constexpr int kAnyNode = -1;

class FaultInjector {
 public:
  enum class Mode {
    kDrop,   ///< the message silently disappears (receiver sees a timeout)
    kDelay,  ///< the message arrives `delay_ms` later than it would have
  };

  /// One link rule. `src`/`dst` of kAnyNode match every node; the rule is
  /// live only while from_ms <= now < until_ms, and within that window it
  /// lets `skip` matching messages through before firing on at most
  /// `limit` of them.
  struct Rule {
    int src = kAnyNode;
    int dst = kAnyNode;
    Mode mode = Mode::kDrop;
    std::int64_t from_ms = 0;
    std::int64_t until_ms = INT64_MAX;
    std::uint64_t skip = 0;
    std::uint64_t limit = UINT64_MAX;
    std::int64_t delay_ms = 0;  ///< kDelay: added latency
    bool symmetric = false;     ///< also match the reversed (dst, src) link
  };

  /// What the intercepted message should do.
  struct Action {
    bool drop = false;
    std::int64_t delay_ms = 0;
  };

  void add_rule(Rule rule);

  /// Symmetric drop of every message between the two groups while
  /// from_ms <= now < until_ms — a network partition.
  void partition(const std::vector<int>& group_a,
                 const std::vector<int>& group_b, std::int64_t from_ms,
                 std::int64_t until_ms = INT64_MAX);

  /// Declares `node` dead from `at_ms` until `until_ms`: alive() reports
  /// false and the simulation fails its connections fast (connection
  /// refused), which is what a SIGKILLed process looks like from outside.
  void kill(int node, std::int64_t at_ms, std::int64_t until_ms = INT64_MAX);

  bool alive(int node, std::int64_t now_ms) const;

  /// Consulted for every simulated message; advances matching counters.
  Action intercept(int src, int dst, std::int64_t now_ms);

  /// Total rule firings so far (drops + delays).
  std::uint64_t injected() const { return injected_; }

  void clear();

 private:
  struct RuleState {
    Rule rule;
    std::uint64_t matched = 0;
  };
  struct KillWindow {
    int node;
    std::int64_t from_ms;
    std::int64_t until_ms;
  };

  // The simulation is single-threaded by construction (that is the whole
  // point of virtual time), so no locking here.
  std::vector<RuleState> rules_;
  std::vector<KillWindow> kills_;
  std::uint64_t injected_ = 0;
};

}  // namespace pdcu::net
