// Thin, error-returning wrappers over the POSIX socket calls the reactor
// needs: non-blocking SO_REUSEPORT listeners (one per shard, so the
// kernel load-balances accepts across epoll loops by 4-tuple hash) and
// fd mode twiddling. Nothing here blocks.
#pragma once

#include <cstdint>
#include <string>

#include "pdcu/support/expected.hpp"

namespace pdcu::net {

/// Puts `fd` into non-blocking mode. Returns false on fcntl failure.
bool set_nonblocking(int fd);

/// Opens a non-blocking listening socket on host:port with SO_REUSEADDR
/// and (when `reuse_port`) SO_REUSEPORT, so N shards can each own a
/// listener on the same address. Returns the fd.
Expected<int> open_listener(const std::string& host, std::uint16_t port,
                            bool reuse_port, int backlog);

/// The locally-bound port of a listening socket (resolves port 0).
std::uint16_t bound_port(int fd);

}  // namespace pdcu::net
