// One edge connection's keep-alive state machine, factored out of the
// epoll loop so it can be driven deterministically in tests (any fd
// works — the suite uses socketpairs). The reactor calls on_readable /
// on_writable / on_timeout; the connection accumulates request bytes,
// asks the Handler to frame responses, and writes them with writev over
// up to three scatter segments (cached head, connection tail, immutable
// body) resuming cleanly across partial writes.
//
// Backpressure is structural: while a response is partially written the
// connection wants EPOLLOUT and not EPOLLIN, so a slow reader stops the
// request flow instead of ballooning buffers. Pipelined requests already
// in the buffer are served back-to-back once the write path is clear.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "pdcu/net/handler.hpp"
#include "pdcu/net/metrics.hpp"

namespace pdcu::net {

struct ConnectionLimits {
  /// Hard cap on buffered request bytes. The handler answers oversized
  /// heads itself (431) well below this; the cap only defends against a
  /// handler that keeps saying kNeedMore.
  std::size_t max_buffer_bytes = 1 << 20;
  /// Keep-alive cap: the response to request N is framed close.
  unsigned max_requests = 100;
};

class Connection {
 public:
  /// What the reactor should do with the connection after an event.
  enum class Event {
    kKeep,   ///< stay registered; poll want_write() for the interest set
    kClose,  ///< close the fd and forget the connection
  };

  Connection(int fd, Handler& handler, NetMetrics* metrics,
             ConnectionLimits limits);

  int fd() const { return fd_; }
  /// A response is mid-write: register EPOLLOUT, drop EPOLLIN.
  bool want_write() const { return pending_; }
  /// Nothing buffered in either direction (safe to drop during drain).
  bool idle() const { return !pending_ && buffer_.empty(); }
  /// Completed responses; the reactor resets the read deadline when this
  /// advances (per-request timeout, not per-byte — a drip-feeding client
  /// cannot extend its deadline).
  std::uint64_t responses_done() const { return responses_done_; }

  /// Socket readable: drain it, then serve whatever complete requests the
  /// buffer now holds. `draining` makes every response close-framed.
  Event on_readable(bool draining);

  /// Socket writable: resume the pending response, then continue with any
  /// pipelined requests already buffered.
  Event on_writable(bool draining);

  /// Read deadline fired. Sends the handler's canned timeout answer when
  /// the peer left a request unfinished (best effort, single write) and
  /// reports which case it was through NetMetrics/Handler observers.
  /// Always returns kClose.
  Event on_timeout();

 private:
  enum class Flush { kDone, kAgain, kError };

  /// Serves buffered requests until the buffer runs dry, a response
  /// backs up (kAgain), or the handler/write path closes the connection.
  Event process(bool draining);
  Flush flush();

  int fd_;
  Handler& handler_;
  NetMetrics* metrics_;
  ConnectionLimits limits_;

  std::string buffer_;       ///< unparsed request bytes
  WireResponse pending_response_;
  bool pending_ = false;     ///< pending_response_ is mid-write
  std::size_t written_ = 0;  ///< bytes of pending_response_ on the wire
  bool close_after_write_ = false;
  bool peer_eof_ = false;    ///< peer shut its write side; serve then close
  unsigned served_ = 0;
  std::uint64_t responses_done_ = 0;
};

}  // namespace pdcu::net
