// Reactor-core counters, exposed as the pdcu_net_* families on /metrics.
// Everything is a relaxed atomic so the shard loops never synchronize on
// observability; render_text() emits promtool-clean exposition (counters
// suffixed _total, gauges plain, HELP/TYPE lines) that the server layer
// appends to its own families.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace pdcu::net {

/// Upper bound on reactor shards a NetMetrics can attribute accepts to.
/// Generous: shards are epoll loops, not workers; more than this on one
/// host would be configuration error, and excess shards still count into
/// the aggregate totals.
inline constexpr std::size_t kMaxShards = 64;

class NetMetrics {
 public:
  /// How many shard series render_text() emits (accepts beyond this still
  /// land in the aggregate counter).
  void set_shard_count(std::size_t shards);
  std::size_t shard_count() const {
    return shards_.load(std::memory_order_relaxed);
  }

  void record_accept(std::size_t shard);
  void record_close() { active_.fetch_sub(1, std::memory_order_relaxed); }
  void record_overload() {
    overload_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_read_timeout() {
    read_timeouts_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_idle_close() {
    idle_closes_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_writev(bool partial) {
    writev_calls_.fetch_add(1, std::memory_order_relaxed);
    if (partial) partial_writes_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_write_error() {
    write_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_requests(std::uint64_t n) {
    requests_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t accepted_total() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t accepted_by_shard(std::size_t shard) const;
  std::uint64_t active_connections() const {
    return active_.load(std::memory_order_relaxed);
  }
  std::uint64_t peak_connections() const {
    return peak_.load(std::memory_order_relaxed);
  }
  std::uint64_t overload_total() const {
    return overload_.load(std::memory_order_relaxed);
  }
  std::uint64_t read_timeouts_total() const {
    return read_timeouts_.load(std::memory_order_relaxed);
  }
  std::uint64_t idle_closes_total() const {
    return idle_closes_.load(std::memory_order_relaxed);
  }
  std::uint64_t writev_calls_total() const {
    return writev_calls_.load(std::memory_order_relaxed);
  }
  std::uint64_t partial_writes_total() const {
    return partial_writes_.load(std::memory_order_relaxed);
  }
  std::uint64_t write_errors_total() const {
    return write_errors_.load(std::memory_order_relaxed);
  }
  std::uint64_t requests_total() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// The pdcu_net_* exposition block (promtool-clean).
  std::string render_text() const;

 private:
  std::atomic<std::size_t> shards_{0};
  std::array<std::atomic<std::uint64_t>, kMaxShards> by_shard_{};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> peak_{0};
  std::atomic<std::uint64_t> overload_{0};
  std::atomic<std::uint64_t> read_timeouts_{0};
  std::atomic<std::uint64_t> idle_closes_{0};
  std::atomic<std::uint64_t> writev_calls_{0};
  std::atomic<std::uint64_t> partial_writes_{0};
  std::atomic<std::uint64_t> write_errors_{0};
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace pdcu::net
