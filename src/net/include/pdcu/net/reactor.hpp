// The sharded epoll reactor. N shards each run one thread around one
// epoll instance with a private SO_REUSEPORT listener, so the kernel
// load-balances accepted connections across shards by 4-tuple hash and
// no shard ever touches another shard's connections — connection state
// needs no locks at all. The only cross-shard state is the global
// connection-count atomic (admission control) and the shared Handler.
//
// Lifecycle: start() binds every listener (resolving port 0 once, then
// reusing the concrete port for the rest), spawns the shard threads, and
// returns. stop() closes the listeners, lets in-flight responses finish
// (every response served while draining is framed `Connection: close`),
// and force-closes stragglers after `drain_timeout`.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pdcu/net/handler.hpp"
#include "pdcu/net/metrics.hpp"
#include "pdcu/support/expected.hpp"

namespace pdcu::net {

struct ReactorOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; port() reports the choice
  unsigned shards = 1;
  /// Global cap across all shards; accepts beyond it are answered with
  /// the handler's overload response and closed. 0 admits nothing (same
  /// semantics as server::ServerOptions; pass a huge value for
  /// "unlimited").
  unsigned max_connections = 128;
  std::chrono::milliseconds read_timeout{5000};
  unsigned max_requests_per_connection = 100;
  std::chrono::milliseconds drain_timeout{2000};
  std::size_t max_buffer_bytes = 1 << 20;
  int listen_backlog = 511;
  NetMetrics* metrics = nullptr;  ///< optional; may outlive the server
};

class ReactorServer {
 public:
  /// The handler must outlive the server and be thread-safe: every shard
  /// calls it concurrently.
  ReactorServer(ReactorOptions options, Handler& handler);
  ~ReactorServer();

  ReactorServer(const ReactorServer&) = delete;
  ReactorServer& operator=(const ReactorServer&) = delete;

  Status start();
  /// Graceful drain, then join. Safe to call twice.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  std::uint16_t port() const { return port_; }
  std::uint64_t active_connections() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard;
  friend struct Shard;

  ReactorOptions options_;
  Handler& handler_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> active_{0};
  std::atomic<bool> draining_{false};
  std::atomic<bool> running_{false};
  std::uint16_t port_ = 0;
};

}  // namespace pdcu::net
