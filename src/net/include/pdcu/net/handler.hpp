// The seam between the reactor core and the application protocol. The
// reactor owns sockets, buffers, timeouts, and the write path; it knows
// nothing about HTTP. A Handler owns the protocol: it is fed the bytes
// accumulated on a connection and answers with either "need more", or one
// wire-ready response described as up to three segments — a header block,
// a connection-control tail, and a body — so a cache hit can point
// straight into immutable, shared memory and be written with one writev
// and zero copies. The `guard` keeps whatever the views borrow alive
// until the last byte is on the wire (for the pdcu server it is the RCU
// router snapshot, so a live reload can never free a page mid-write).
//
// Handlers are shared across every shard and connection, so on_data and
// the observer hooks must be thread-safe.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

namespace pdcu::net {

/// One response, ready for the wire, as scatter/gather segments. Views
/// either point into the owned_* members or into memory kept alive by
/// `guard`; the reactor copies nothing.
struct WireResponse {
  std::string owned_head;  ///< backing store for dynamic heads
  std::string owned_body;  ///< backing store for dynamic bodies
  std::string_view head;   ///< first segment (status line + headers)
  std::string_view tail;   ///< second segment (e.g. Connection line + CRLF)
  std::string_view body;   ///< third segment, possibly empty (HEAD, 304)
  /// Keeps borrowed head/tail/body memory alive until fully written.
  std::shared_ptr<const void> guard;
  bool close = false;  ///< close the connection after writing
  int status = 0;      ///< protocol status, for observers only

  std::size_t wire_bytes() const {
    return head.size() + tail.size() + body.size();
  }
};

enum class StepStatus {
  kNeedMore,  ///< incomplete request; keep the buffer, keep reading
  kRespond,   ///< `out` is filled; `consumed` bytes leave the buffer
};

struct Step {
  StepStatus status = StepStatus::kNeedMore;
  /// Bytes of the buffer consumed by this request (kRespond only). A
  /// handler answering a malformed prefix it cannot frame sets close on
  /// the response instead of consuming.
  std::size_t consumed = 0;
};

class Handler {
 public:
  virtual ~Handler() = default;

  /// Examines the accumulated connection buffer. `force_close` warns the
  /// handler that the reactor will close after this response no matter
  /// what (per-connection request cap, server draining), so the response
  /// framing can say so.
  virtual Step on_data(std::string_view buffer, bool force_close,
                      WireResponse& out) = 0;

  /// Canned wire bytes for a request the peer started but never finished
  /// (the pdcu server answers 408). Empty = close silently.
  virtual std::string timeout_response() const = 0;

  /// Canned wire bytes when the connection cap rejects an accept (the
  /// pdcu server answers 503 + Retry-After). Empty = close silently.
  virtual std::string overload_response() const = 0;

  /// A connection-level canned response (timeout/overload) went on the
  /// wire; lets the application count it in its own metrics.
  virtual void on_connection_error(int /*status*/, std::size_t /*bytes*/) {}

  /// A response write failed mid-flight (peer reset, broken pipe).
  virtual void on_write_error() {}
};

}  // namespace pdcu::net
