// A hashed timing wheel for connection deadlines. One wheel lives inside
// each reactor shard and is touched only by that shard's thread, so there
// is no locking; the epoll loop calls advance() once per iteration and
// gets back the ids whose deadlines passed.
//
// Scheduling and cancelling are O(1); advance() is O(slots crossed +
// entries in them). Deadlines beyond the wheel horizon simply re-enter
// the wheel when their slot comes around again — the map's deadline is
// ground truth, the slots are just an index — and rescheduling an id
// moves its deadline without touching the stale slot entry (it is
// skipped lazily when its old slot fires). Time is passed in explicitly,
// which keeps tests deterministic.
#pragma once

#include <chrono>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace pdcu::net {

class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;

  explicit TimerWheel(Clock::time_point epoch,
                      std::chrono::milliseconds tick =
                          std::chrono::milliseconds(100),
                      std::size_t slots = 512);

  /// Sets (or moves) the deadline for `id`.
  void schedule(std::uint64_t id, Clock::time_point deadline);

  /// Forgets `id`; a pending slot entry is skipped lazily.
  void cancel(std::uint64_t id);

  /// Collects every id whose deadline is <= now. Each expired id is
  /// removed from the wheel before being returned.
  std::vector<std::uint64_t> advance(Clock::time_point now);

  /// The earliest scheduled deadline, or Clock::time_point::max() when
  /// the wheel is empty — what the epoll loop bounds its wait with.
  /// O(active entries); cheap at reactor scales and called once per loop.
  Clock::time_point next_deadline() const;

  std::size_t size() const { return deadlines_.size(); }

 private:
  struct Entry {
    Clock::time_point deadline;
    std::uint64_t seq = 0;  ///< bumped per schedule; stale slot entries drop
  };
  struct Filed {
    std::uint64_t id = 0;
    std::uint64_t seq = 0;
  };

  std::uint64_t tick_of(Clock::time_point when) const;
  void push(std::uint64_t id, std::uint64_t seq, Clock::time_point deadline);

  Clock::time_point epoch_;
  std::chrono::milliseconds tick_;
  std::vector<std::vector<Filed>> slots_;
  std::unordered_map<std::uint64_t, Entry> deadlines_;
  std::uint64_t cursor_ = 0;  ///< first tick not yet advanced past
};

}  // namespace pdcu::net
