#include "pdcu/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pdcu::net {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

Expected<int> open_listener(const std::string& host, std::uint16_t port,
                            bool reuse_port, int backlog) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) {
    return Error::make("net.socket", std::strerror(errno));
  }
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof enable);
  if (reuse_port &&
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &enable, sizeof enable) !=
          0) {
    const Error error = Error::make("net.reuseport", std::strerror(errno));
    ::close(fd);
    return error;
  }

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    ::close(fd);
    return Error::make("net.host", "not an IPv4 address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&address), sizeof address) !=
      0) {
    const Error error = Error::make("net.bind", std::strerror(errno));
    ::close(fd);
    return error;
  }
  if (::listen(fd, backlog) != 0) {
    const Error error = Error::make("net.listen", std::strerror(errno));
    ::close(fd);
    return error;
  }
  return fd;
}

std::uint16_t bound_port(int fd) {
  sockaddr_in bound{};
  socklen_t length = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &length) != 0) {
    return 0;
  }
  return ntohs(bound.sin_port);
}

}  // namespace pdcu::net
