#include "pdcu/activities/data_parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <mutex>

#include "pdcu/support/rng.hpp"

namespace pdcu::act {

// --- ArraySummationWithCards -----------------------------------------------------

SummationResult array_summation(std::span<const std::int64_t> cards,
                                int students, rt::TraceLog* trace) {
  assert(students >= 1);
  SummationResult result;
  std::vector<std::int64_t> deck(cards.begin(), cards.end());
  std::int64_t total = 0;

  // Adding two numbers takes longer than handing a card to a neighbour;
  // with equal costs the dramatization would never show a speedup.
  rt::CostModel model;
  model.work_per_step = 4;

  auto body = [&](rt::Comm& comm) {
    std::vector<std::int64_t> slice = comm.scatter(0, deck);
    std::int64_t partial = 0;
    for (std::int64_t v : slice) {
      comm.work(1);
      partial += v;
    }
    if (trace != nullptr) {
      comm.log("sums a slice of " + std::to_string(slice.size()) +
               " cards: " + std::to_string(partial));
    }
    std::int64_t sum = comm.reduce(
        0, partial, [](std::int64_t a, std::int64_t b) { return a + b; });
    if (comm.rank() == 0) total = sum;
  };
  rt::ClassroomResult run = rt::Classroom::run(students, body, model, trace);
  result.sum = total;
  result.cost = run.cost;
  result.speedup_vs_serial = run.cost.speedup_vs(
      static_cast<std::int64_t>(cards.size()) * model.work_per_step);
  return result;
}

// --- ParallelArraySearch -----------------------------------------------------------

SearchResult parallel_search(std::span<const std::int64_t> cards,
                             std::int64_t target, int teams,
                             rt::TraceLog* trace) {
  assert(teams >= 1);
  SearchResult result;
  std::vector<std::int64_t> row(cards.begin(), cards.end());
  std::atomic<std::int64_t> found{-1};
  std::atomic<std::int64_t> flipped{0};

  const std::size_t n = row.size();
  const std::size_t chunk =
      (n + static_cast<std::size_t>(teams) - 1) /
      static_cast<std::size_t>(teams);

  auto body = [&](rt::Comm& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    const std::size_t lo = std::min(n, rank * chunk);
    const std::size_t hi = std::min(n, lo + chunk);
    for (std::size_t i = lo; i < hi; ++i) {
      // "Shout 'found'": everyone checks the shout before the next flip.
      if (found.load(std::memory_order_acquire) >= 0) break;
      comm.work(1);
      flipped.fetch_add(1, std::memory_order_relaxed);
      if (row[i] == target) {
        std::int64_t expected = -1;
        found.compare_exchange_strong(expected,
                                      static_cast<std::int64_t>(i));
        if (trace != nullptr) {
          comm.log("shouts FOUND at card " + std::to_string(i));
        }
        break;
      }
    }
    comm.barrier();
  };
  rt::ClassroomResult run = rt::Classroom::run(teams, body, {}, trace);
  result.found_index = found.load();
  result.cards_flipped = flipped.load();
  result.cost = run.cost;
  return result;
}

// --- MatrixMultiplicationTeams -------------------------------------------------------

Matrix Matrix::random(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m;
  m.n = n;
  m.data.resize(n * n);
  for (auto& v : m.data) v = rng.between(-9, 9);
  return m;
}

Matrix Matrix::zero(std::size_t n) {
  Matrix m;
  m.n = n;
  m.data.assign(n * n, 0);
  return m;
}

Matrix matmul_serial(const Matrix& a, const Matrix& b) {
  assert(a.n == b.n);
  Matrix c = Matrix::zero(a.n);
  for (std::size_t i = 0; i < a.n; ++i) {
    for (std::size_t k = 0; k < a.n; ++k) {
      const std::int64_t aik = a.at(i, k);
      for (std::size_t j = 0; j < a.n; ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

MatmulResult matmul_teams(const Matrix& a, const Matrix& b, int teams,
                          bool blocked, rt::TraceLog* trace) {
  assert(a.n == b.n && teams >= 1);
  const std::size_t n = a.n;
  MatmulResult result;
  result.product = Matrix::zero(n);
  std::atomic<std::int64_t> fetches{0};
  std::mutex write_mutex;

  const std::size_t rows_per_team =
      (n + static_cast<std::size_t>(teams) - 1) /
      static_cast<std::size_t>(teams);

  auto body = [&](rt::Comm& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    const std::size_t lo = std::min(n, rank * rows_per_team);
    const std::size_t hi = std::min(n, lo + rows_per_team);
    std::vector<std::int64_t> block((hi - lo) * n, 0);

    if (blocked) {
      // Fetch each needed strip once: our row strip of A, all of B column
      // by column (n + (hi-lo) walks), then compute from the local copy.
      const std::int64_t walk_count =
          static_cast<std::int64_t>(hi - lo) + static_cast<std::int64_t>(n);
      fetches.fetch_add(walk_count, std::memory_order_relaxed);
      comm.work(walk_count * 2);  // walking to the wall is slow
      for (std::size_t i = lo; i < hi; ++i) {
        for (std::size_t k = 0; k < n; ++k) {
          const std::int64_t aik = a.at(i, k);
          for (std::size_t j = 0; j < n; ++j) {
            block[(i - lo) * n + j] += aik * b.at(k, j);
          }
        }
      }
      comm.work(static_cast<std::int64_t>((hi - lo) * n * n));
    } else {
      // Naive first round: every result element fetches its row and its
      // column strip again.
      for (std::size_t i = lo; i < hi; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          fetches.fetch_add(2, std::memory_order_relaxed);
          comm.work(2 * 2);
          std::int64_t acc = 0;
          for (std::size_t k = 0; k < n; ++k) {
            acc += a.at(i, k) * b.at(k, j);
          }
          comm.work(static_cast<std::int64_t>(n));
          block[(i - lo) * n + j] = acc;
        }
      }
    }
    if (trace != nullptr) {
      comm.log("fills result rows " + std::to_string(lo) + ".." +
               std::to_string(hi));
    }
    {
      std::lock_guard lock(write_mutex);
      for (std::size_t i = lo; i < hi; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          result.product.at(i, j) = block[(i - lo) * n + j];
        }
      }
    }
    comm.barrier();
  };
  rt::ClassroomResult run = rt::Classroom::run(teams, body, {}, trace);
  result.cost = run.cost;
  result.strip_fetches = fetches.load();
  return result;
}

// --- CoinFlipMonteCarlo ----------------------------------------------------------------

MonteCarloResult coin_flip_monte_carlo(std::int64_t flips_per_student,
                                       int students, std::uint64_t seed) {
  assert(students >= 1 && flips_per_student >= 1);
  MonteCarloResult result;
  std::int64_t total_heads = 0;

  auto body = [&](rt::Comm& comm) {
    Rng rng(seed + static_cast<std::uint64_t>(comm.rank()) * 7919u);
    std::int64_t both = 0;
    for (std::int64_t f = 0; f < flips_per_student; ++f) {
      comm.work(1);
      const bool heads1 = rng.chance(0.5);
      const bool heads2 = rng.chance(0.5);
      if (heads1 && heads2) ++both;
    }
    std::int64_t pooled = comm.reduce(
        0, both, [](std::int64_t a, std::int64_t b) { return a + b; });
    if (comm.rank() == 0) total_heads = pooled;
  };
  rt::ClassroomResult run = rt::Classroom::run(students, body);
  result.flips = flips_per_student * students;
  result.both_heads = total_heads;
  result.estimate = static_cast<double>(total_heads) /
                    static_cast<double>(result.flips);
  result.error = std::abs(result.estimate - 0.25);
  result.cost = run.cost;
  return result;
}

// --- BallotCounting ----------------------------------------------------------------------

BallotResult ballot_counting(std::span<const std::int64_t> ballots,
                             int counters, rt::TraceLog* trace) {
  assert(counters >= 1);
  BallotResult result;
  for (int c = counters; c > 1; c >>= 1) ++result.combine_rounds;
  std::vector<std::int64_t> box(ballots.begin(), ballots.end());
  std::int64_t total_a = 0;
  std::int64_t total_b = 0;

  auto body = [&](rt::Comm& comm) {
    std::vector<std::int64_t> pile = comm.scatter(0, box);
    std::int64_t a = 0;
    std::int64_t b = 0;
    for (std::int64_t ballot : pile) {
      comm.work(1);
      if (ballot == 0) {
        ++a;
      } else {
        ++b;
      }
    }
    if (trace != nullptr) {
      comm.log("counts a pile: " + std::to_string(a) + " for A, " +
               std::to_string(b) + " for B");
    }
    std::int64_t sum_a = comm.reduce(
        0, a, [](std::int64_t x, std::int64_t y) { return x + y; });
    std::int64_t sum_b = comm.reduce(
        0, b, [](std::int64_t x, std::int64_t y) { return x + y; });
    if (comm.rank() == 0) {
      total_a = sum_a;
      total_b = sum_b;
      if (trace != nullptr) {
        comm.log("announces the tally: A=" + std::to_string(sum_a) +
                 ", B=" + std::to_string(sum_b));
      }
    }
  };
  rt::ClassroomResult run = rt::Classroom::run(counters, body, {}, trace);
  result.votes_a = total_a;
  result.votes_b = total_b;
  result.cost = run.cost;
  return result;
}

}  // namespace pdcu::act
