#include "pdcu/activities/races.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "pdcu/support/rng.hpp"

namespace pdcu::act {

namespace {

/// A small busy delay to widen the check-then-act window, seeded per thread
/// so runs are reproducible in distribution.
void think(Rng& rng) {
  const auto spins = rng.below(64);
  for (std::uint64_t i = 0; i < spins; ++i) {
    std::atomic_signal_fence(std::memory_order_seq_cst);
  }
  std::this_thread::yield();
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// --- SweeteningTheJuice -------------------------------------------------------

JuiceResult sweeten_juice(int robots, int target, JuiceMode mode,
                          std::uint64_t seed) {
  std::atomic<int> sweetness{0};
  std::atomic<int> added{0};
  std::mutex glass;

  auto robot = [&](int id) {
    Rng rng(seed * 1315423911u + static_cast<std::uint64_t>(id));
    while (true) {
      switch (mode) {
        case JuiceMode::kUnsynchronized: {
          int seen = sweetness.load(std::memory_order_relaxed);
          if (seen >= target) return;
          think(rng);  // both robots can pass the check before either adds
          sweetness.store(seen + 1, std::memory_order_relaxed);
          added.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        case JuiceMode::kMutex: {
          std::lock_guard lock(glass);
          if (sweetness.load(std::memory_order_relaxed) >= target) return;
          sweetness.fetch_add(1, std::memory_order_relaxed);
          added.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        case JuiceMode::kCompareExchange: {
          int seen = sweetness.load(std::memory_order_relaxed);
          if (seen >= target) return;
          think(rng);
          if (sweetness.compare_exchange_strong(seen, seen + 1)) {
            added.fetch_add(1, std::memory_order_relaxed);
          }
          break;
        }
      }
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < robots; ++i) threads.emplace_back(robot, i);
  for (auto& t : threads) t.join();

  JuiceResult result;
  result.target = target;
  result.spoonfuls_added = added.load();
  // In the unsynchronized mode lost updates can make the glass *appear*
  // less sweet than the sugar actually added; the classroom moral is told
  // by spoonfuls_added exceeding the target.
  result.final_sweetness = result.spoonfuls_added;
  result.oversweetened = result.spoonfuls_added > target;
  return result;
}

int count_oversweetened(int robots, int target, int trials,
                        std::uint64_t seed) {
  int bad = 0;
  for (int t = 0; t < trials; ++t) {
    JuiceResult r = sweeten_juice(robots, target, JuiceMode::kUnsynchronized,
                                  seed + static_cast<std::uint64_t>(t));
    if (r.oversweetened) ++bad;
  }
  return bad;
}

// --- ConcertTickets -------------------------------------------------------------

TicketResult sell_tickets(int seats, int clerks, TicketStrategy strategy,
                          std::uint64_t seed) {
  // state[i]: number of times seat i has been sold (0 = free). Sales are
  // recorded with relaxed atomics so double-sales are observable, not UB.
  std::vector<std::atomic<int>> state(static_cast<std::size_t>(seats));
  for (auto& s : state) s.store(0);
  std::vector<std::atomic_flag> seat_locks(static_cast<std::size_t>(seats));
  std::mutex box_office;
  std::atomic<int> issued{0};

  auto clerk = [&](int id) {
    Rng rng(seed * 2654435761u + static_cast<std::uint64_t>(id));
    // Each clerk scans from a random start so clerks collide on seats.
    while (true) {
      bool sold_one = false;
      std::size_t start = rng.below(static_cast<std::uint64_t>(seats));
      for (int k = 0; k < seats; ++k) {
        std::size_t i = (start + static_cast<std::size_t>(k)) %
                        static_cast<std::size_t>(seats);
        switch (strategy) {
          case TicketStrategy::kNoCoordination: {
            if (state[i].load(std::memory_order_relaxed) == 0) {
              think(rng);  // collect the customer's money
              state[i].fetch_add(1, std::memory_order_relaxed);
              issued.fetch_add(1, std::memory_order_relaxed);
              sold_one = true;
            }
            break;
          }
          case TicketStrategy::kCoarseLock: {
            std::lock_guard lock(box_office);
            if (state[i].load(std::memory_order_relaxed) == 0) {
              state[i].fetch_add(1, std::memory_order_relaxed);
              issued.fetch_add(1, std::memory_order_relaxed);
              sold_one = true;
            }
            break;
          }
          case TicketStrategy::kPerSeatLock: {
            if (state[i].load(std::memory_order_relaxed) == 0 &&
                !seat_locks[i].test_and_set(std::memory_order_acquire)) {
              // The flag is the per-seat sale record; set wins the seat.
              state[i].fetch_add(1, std::memory_order_relaxed);
              issued.fetch_add(1, std::memory_order_relaxed);
              sold_one = true;
            }
            break;
          }
          case TicketStrategy::kOptimistic: {
            int expected = 0;
            if (state[i].load(std::memory_order_relaxed) == 0) {
              think(rng);
              if (state[i].compare_exchange_strong(expected, 1)) {
                issued.fetch_add(1, std::memory_order_relaxed);
                sold_one = true;
              }
            }
            break;
          }
        }
        if (sold_one) break;
      }
      if (!sold_one) return;  // no seat appears free anymore
    }
  };

  const std::int64_t t0 = now_ns();
  std::vector<std::thread> threads;
  for (int i = 0; i < clerks; ++i) threads.emplace_back(clerk, i);
  for (auto& t : threads) t.join();
  const std::int64_t t1 = now_ns();

  TicketResult result;
  result.seats = seats;
  result.clerks = clerks;
  result.nanoseconds = t1 - t0;
  result.tickets_issued = issued.load();
  for (auto& s : state) {
    if (s.load() > 1) ++result.double_sold_seats;
  }
  result.oversold = result.double_sold_seats > 0 ||
                    result.tickets_issued > result.seats;
  return result;
}

// --- IntersectionSynchronization -------------------------------------------------

IntersectionResult run_intersection(int cars, int crossings_per_car,
                                    IntersectionControl control) {
  std::atomic<int> inside{0};
  std::atomic<bool> overlap{false};
  std::vector<int> crossings(static_cast<std::size_t>(cars), 0);

  // The checked critical action: enter, verify exclusivity, leave.
  auto cross = [&](int id) {
    if (inside.fetch_add(1) != 0) overlap.store(true);
    crossings[static_cast<std::size_t>(id)] += 1;
    std::atomic_signal_fence(std::memory_order_seq_cst);
    inside.fetch_sub(1);
  };

  std::atomic_flag stop_sign = ATOMIC_FLAG_INIT;
  std::atomic<int> ticket_next{0};
  std::atomic<int> ticket_serving{0};
  std::mutex officer_mutex;
  std::condition_variable officer_signal;
  bool intersection_free = true;
  std::atomic<int> token_holder{0};

  auto car = [&](int id) {
    for (int k = 0; k < crossings_per_car; ++k) {
      switch (control) {
        case IntersectionControl::kStopSign: {
          while (stop_sign.test_and_set(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
          cross(id);
          stop_sign.clear(std::memory_order_release);
          break;
        }
        case IntersectionControl::kTrafficLight: {
          const int my_turn = ticket_next.fetch_add(1);
          while (ticket_serving.load(std::memory_order_acquire) != my_turn) {
            std::this_thread::yield();
          }
          cross(id);
          ticket_serving.fetch_add(1, std::memory_order_release);
          break;
        }
        case IntersectionControl::kPoliceOfficer: {
          std::unique_lock lock(officer_mutex);
          officer_signal.wait(lock, [&] { return intersection_free; });
          intersection_free = false;
          lock.unlock();
          cross(id);
          lock.lock();
          intersection_free = true;
          lock.unlock();
          officer_signal.notify_one();
          break;
        }
        case IntersectionControl::kTokenRoad: {
          while (token_holder.load(std::memory_order_acquire) != id) {
            std::this_thread::yield();
          }
          cross(id);
          token_holder.store((id + 1) % cars, std::memory_order_release);
          break;
        }
      }
    }
  };

  const std::int64_t t0 = now_ns();
  std::vector<std::thread> threads;
  for (int i = 0; i < cars; ++i) threads.emplace_back(car, i);
  for (auto& t : threads) t.join();
  const std::int64_t t1 = now_ns();

  IntersectionResult result;
  result.mutual_exclusion_held = !overlap.load();
  result.nanoseconds = t1 - t0;
  result.max_crossings_by_one_car = 0;
  result.min_crossings_by_one_car = crossings_per_car;
  for (int c : crossings) {
    result.total_crossings += c;
    result.max_crossings_by_one_car =
        std::max(result.max_crossings_by_one_car, c);
    result.min_crossings_by_one_car =
        std::min(result.min_crossings_by_one_car, c);
  }
  return result;
}

// --- FastAnswerVsSharedAccess ------------------------------------------------------

TwoStationsResult two_stations(int students, int work_items,
                               std::uint64_t seed) {
  TwoStationsResult result;
  Rng rng(seed);

  // Station A: count face cards across `work_items` cards, sliced evenly.
  // One card inspection = 1 unit. Perfectly parallel plus a tally round.
  std::int64_t faces = 0;
  for (int i = 0; i < work_items; ++i) {
    if (rng.below(13) < 3) ++faces;  // J/Q/K of any suit
  }
  result.station_a_count = faces;
  auto station_a = [&](int p) {
    const std::int64_t slice = (work_items + p - 1) / p;
    return slice + (p > 1 ? 1 : 0);  // counting + shouting the subtotal
  };
  result.station_a_makespan = station_a(students);
  result.station_a_speedup =
      static_cast<double>(station_a(1)) /
      static_cast<double>(result.station_a_makespan);

  // Station B: each packet takes 3 units of parallel assembly plus 1 unit
  // at the single stapler. The stapler serializes: its total demand is a
  // floor on the makespan (assembly overlaps with stapling of earlier
  // packets).
  auto station_b = [&](int p) {
    const std::int64_t assembly = (work_items + p - 1) / p * 3;
    const std::int64_t stapling = work_items;
    return std::max(assembly + 1, stapling + 3);
  };
  result.station_b_makespan = station_b(students);
  result.station_b_speedup =
      static_cast<double>(station_b(1)) /
      static_cast<double>(result.station_b_makespan);
  return result;
}

// --- DinnerPartyProducers ---------------------------------------------------------

DinnerResult dinner_party(int cooks, int waiters, int dishes_per_cook,
                          int window_capacity) {
  std::mutex window_mutex;
  std::condition_variable window_not_full;
  std::condition_variable window_not_empty;
  std::deque<int> window;  // dish ids on the serving window
  bool kitchen_closed = false;
  int full_stalls = 0;
  int empty_stalls = 0;

  const int total_dishes = cooks * dishes_per_cook;
  std::vector<std::atomic<int>> served(
      static_cast<std::size_t>(total_dishes));
  for (auto& s : served) s.store(0);

  auto cook = [&](int id) {
    for (int d = 0; d < dishes_per_cook; ++d) {
      const int dish = id * dishes_per_cook + d;
      std::unique_lock lock(window_mutex);
      if (window.size() >= static_cast<std::size_t>(window_capacity)) {
        ++full_stalls;
        window_not_full.wait(lock, [&] {
          return window.size() < static_cast<std::size_t>(window_capacity);
        });
      }
      window.push_back(dish);
      lock.unlock();
      window_not_empty.notify_one();  // ring the dinner bell
    }
  };

  auto waiter = [&] {
    while (true) {
      std::unique_lock lock(window_mutex);
      if (window.empty() && !kitchen_closed) {
        ++empty_stalls;
        window_not_empty.wait(lock,
                              [&] { return !window.empty() || kitchen_closed; });
      }
      if (window.empty()) {
        if (kitchen_closed) return;
        continue;
      }
      const int dish = window.front();
      window.pop_front();
      lock.unlock();
      window_not_full.notify_one();
      served[static_cast<std::size_t>(dish)].fetch_add(1);
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < cooks; ++i) threads.emplace_back(cook, i);
  std::vector<std::thread> waiter_threads;
  for (int i = 0; i < waiters; ++i) waiter_threads.emplace_back(waiter);
  for (auto& t : threads) t.join();
  {
    std::lock_guard lock(window_mutex);
    kitchen_closed = true;
  }
  window_not_empty.notify_all();
  for (auto& t : waiter_threads) t.join();

  DinnerResult result;
  result.dishes_cooked = total_dishes;
  result.window_full_stalls = full_stalls;
  result.window_empty_stalls = empty_stalls;
  for (auto& s : served) {
    const int times = s.load();
    result.dishes_served += times;
    if (times != 1) result.every_dish_served_once = false;
  }
  return result;
}

}  // namespace pdcu::act
