#include "pdcu/activities/distributed.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <thread>

#include "pdcu/support/rng.hpp"

namespace pdcu::act {

// --- SelfStabilizingTokenRing --------------------------------------------------

bool TokenRing::privileged(std::size_t i) const {
  const std::size_t n = states.size();
  if (i == 0) return states[0] == states[n - 1];
  return states[i] != states[i - 1];
}

int TokenRing::token_count() const {
  int count = 0;
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (privileged(i)) ++count;
  }
  return count;
}

void TokenRing::step(std::size_t i) {
  if (!privileged(i)) return;
  if (i == 0) {
    states[0] = (states[0] + 1) % k;
  } else {
    states[i] = states[i - 1];
  }
}

StabilizationResult stabilize_token_ring(std::vector<int> initial_states,
                                         int k, rt::SchedulePolicy policy,
                                         std::uint64_t seed,
                                         std::size_t max_steps,
                                         std::size_t closure_steps) {
  TokenRing ring{std::move(initial_states), k};
  StabilizationResult result;
  result.initial_tokens = ring.token_count();

  Rng rng(seed);
  auto schedule = rt::run_schedule(
      ring.states.size(), [&ring](std::size_t i) { ring.step(i); },
      [&ring] { return ring.legitimate(); }, policy, rng, max_steps);
  result.stabilized = schedule.converged;
  result.steps = schedule.steps;

  // Closure: once legitimate, every subsequent move keeps exactly one token.
  result.stayed_legitimate = result.stabilized;
  if (result.stabilized) {
    for (std::size_t s = 0; s < closure_steps; ++s) {
      ring.step(rng.below(ring.states.size()));
      if (!ring.legitimate()) {
        result.stayed_legitimate = false;
        break;
      }
    }
  }
  return result;
}

// --- StableLeaderElection ---------------------------------------------------------

ElectionResult leader_election_gossip(const std::vector<std::int64_t>& ids,
                                      rt::SchedulePolicy policy,
                                      std::uint64_t seed,
                                      std::size_t max_steps) {
  ElectionResult result;
  if (ids.empty()) return result;
  const std::int64_t expected = *std::max_element(ids.begin(), ids.end());
  std::vector<std::int64_t> candidates = ids;
  const std::size_t n = ids.size();

  Rng rng(seed);
  auto step = [&candidates, n](std::size_t i) {
    const std::size_t left = (i + n - 1) % n;
    candidates[i] = std::max(candidates[i], candidates[left]);
  };
  auto done = [&candidates, expected] {
    return std::all_of(candidates.begin(), candidates.end(),
                       [&](std::int64_t c) { return c == expected; });
  };
  auto schedule =
      rt::run_schedule(n, step, done, policy, rng, max_steps);
  result.steps = schedule.steps;
  result.leader_id = candidates[0];
  result.elected_maximum = done();

  // Stability: once converged the protocol is quiescent — extra steps must
  // change nothing.
  if (result.elected_maximum) {
    std::vector<std::int64_t> before = candidates;
    for (std::size_t s = 0; s < 4 * n; ++s) step(rng.below(n));
    result.stable = before == candidates;
  }
  return result;
}

ElectionResult leader_election_ring(const std::vector<std::int64_t>& ids) {
  ElectionResult result;
  const int n = static_cast<int>(ids.size());
  if (n == 0) return result;
  constexpr int kCandidateTag = 1;
  constexpr int kElectedTag = 2;
  std::vector<std::int64_t> elected(static_cast<std::size_t>(n), -1);

  auto body = [&](rt::Comm& comm) {
    const int rank = comm.rank();
    const int next = (rank + 1) % n;
    const std::int64_t my_id = ids[static_cast<std::size_t>(rank)];
    comm.send(next, {my_id}, kCandidateTag);
    while (true) {
      rt::ClassMessage message = comm.recv(rt::kAny, rt::kAny);
      const std::int64_t value = message.payload[0];
      if (message.tag == kCandidateTag) {
        comm.work(1);
        if (value > my_id) {
          comm.send(next, {value}, kCandidateTag);  // forward the stronger id
        } else if (value == my_id) {
          // Our id survived the whole ring: we are the leader.
          comm.send(next, {my_id}, kElectedTag);
        }
        // value < my_id: swallow the weaker candidate.
      } else {
        elected[static_cast<std::size_t>(rank)] = value;
        if (value != my_id) {
          comm.send(next, {value}, kElectedTag);
        }
        return;  // the announcement has passed through us
      }
    }
  };
  rt::ClassroomResult run = rt::Classroom::run(n, body);
  result.messages = run.cost.total_messages;
  result.leader_id = elected[0];
  const std::int64_t expected = *std::max_element(ids.begin(), ids.end());
  result.elected_maximum =
      std::all_of(elected.begin(), elected.end(),
                  [&](std::int64_t e) { return e == expected; });
  result.stable = result.elected_maximum;
  return result;
}

// --- ByzantineGenerals --------------------------------------------------------------

namespace {

/// The adversary: a traitor tells even-numbered recipients the truth and
/// odd-numbered recipients the opposite — the conflicting-messages
/// behaviour the dramatization uses, and the one that defeats OM(1) with
/// three generals.
int traitor_lie(int recipient, int value) {
  return recipient % 2 == 0 ? value : 1 - value;
}

int majority(const std::vector<int>& votes) {
  int ones = 0;
  for (int v : votes) ones += v;
  const int zeros = static_cast<int>(votes.size()) - ones;
  if (ones == zeros) return 0;  // default order: retreat
  return ones > zeros ? 1 : 0;
}

/// OM(m): returns, for each lieutenant (loyal or not), the value it ends up
/// using for this commander's order. Traitorous lieutenants' entries are
/// what they *relay*, which the algorithm needs for the majority votes.
std::map<int, int> om(int commander, int value, int m,
                      const std::vector<int>& lieutenants,
                      const std::set<int>& traitors,
                      std::int64_t& messages) {
  std::map<int, int> received;
  for (int i : lieutenants) {
    ++messages;
    received[i] =
        traitors.count(commander) != 0 ? traitor_lie(i, value) : value;
  }
  if (m == 0) return received;

  // Every lieutenant relays what it received to the others via OM(m-1).
  std::map<int, std::map<int, int>> reports;  // reports[j][i] = i's relay to j
  for (int i : lieutenants) {
    std::vector<int> rest;
    for (int j : lieutenants) {
      if (j != i) rest.push_back(j);
    }
    auto sub = om(i, received[i], m - 1, rest, traitors, messages);
    for (int j : rest) reports[j][i] = sub[j];
  }

  std::map<int, int> decision;
  for (int j : lieutenants) {
    std::vector<int> votes;
    votes.push_back(received[j]);
    for (int i : lieutenants) {
      if (i != j) votes.push_back(reports[j][i]);
    }
    decision[j] = majority(votes);
  }
  return decision;
}

}  // namespace

ByzantineResult byzantine_om(int generals, const std::set<int>& traitors,
                             int rounds, int order) {
  ByzantineResult result;
  std::vector<int> lieutenants;
  for (int i = 1; i < generals; ++i) lieutenants.push_back(i);

  auto decisions = om(0, order, rounds, lieutenants, traitors,
                      result.messages);

  bool first = true;
  int agreed = -1;
  result.agreement = true;
  for (int i : lieutenants) {
    if (traitors.count(i) != 0) continue;
    result.loyal_decisions.push_back(decisions[i]);
    if (first) {
      agreed = decisions[i];
      first = false;
    } else if (decisions[i] != agreed) {
      result.agreement = false;
    }
  }
  result.validity = traitors.count(0) != 0 ||
                    std::all_of(result.loyal_decisions.begin(),
                                result.loyal_decisions.end(),
                                [&](int d) { return d == order; });
  return result;
}

// --- ParallelGarbageCollection ---------------------------------------------------

GcResult parallel_gc(int objects, int edges, int mutator_moves,
                     bool write_barrier, std::uint64_t seed) {
  Rng rng(seed);
  const auto n = static_cast<std::size_t>(objects);
  // Edge list: fixed number of slots the mutator re-points (the strings the
  // students hold). Object 0 is the root set.
  struct Edge {
    std::size_t from;
    std::size_t to;
  };
  std::vector<Edge> graph;
  graph.reserve(static_cast<std::size_t>(edges));
  for (int e = 0; e < edges; ++e) {
    graph.push_back({rng.below(n), rng.below(n)});
  }

  std::vector<GcColor> color(n, GcColor::kWhite);
  std::vector<std::size_t> gray;
  color[0] = GcColor::kGray;
  gray.push_back(0);

  int moves_left = mutator_moves;
  GcResult result;

  auto collector_step = [&] {
    if (gray.empty()) return;
    std::size_t u = gray.back();
    gray.pop_back();
    for (const Edge& edge : graph) {
      if (edge.from == u && color[edge.to] == GcColor::kWhite) {
        color[edge.to] = GcColor::kGray;
        gray.push_back(edge.to);
      }
    }
    color[u] = GcColor::kBlack;
  };

  auto mutator_step = [&] {
    if (moves_left <= 0 || graph.empty()) return;
    --moves_left;
    // Re-point a random string to a random object.
    Edge& edge = graph[rng.below(graph.size())];
    std::size_t target = rng.below(n);
    edge.to = target;
    // Dijkstra's write barrier: inserting a pointer from a black object to
    // a white one re-shades the target ("shout when you hide a box").
    if (write_barrier && color[edge.from] == GcColor::kBlack &&
        color[target] == GcColor::kWhite) {
      color[target] = GcColor::kGray;
      gray.push_back(target);
    }
  };

  // Interleave collector and mutator moves under a random schedule until
  // the mutators are done and marking has quiesced.
  while (moves_left > 0 || !gray.empty()) {
    ++result.steps;
    if (moves_left > 0 && rng.chance(0.5)) {
      mutator_step();
    } else {
      collector_step();
    }
  }

  // Sweep: anything still white is collected.
  std::vector<bool> collected(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (color[i] == GcColor::kWhite) {
      collected[i] = true;
      ++result.collected;
    }
  }

  // Ground truth: reachability in the *final* graph.
  std::vector<bool> reachable(n, false);
  std::vector<std::size_t> stack = {0};
  reachable[0] = true;
  while (!stack.empty()) {
    std::size_t u = stack.back();
    stack.pop_back();
    for (const Edge& edge : graph) {
      if (edge.from == u && !reachable[edge.to]) {
        reachable[edge.to] = true;
        stack.push_back(edge.to);
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (reachable[i]) {
      ++result.live;
      if (collected[i]) result.lost_live_object = true;
    }
  }
  return result;
}

// --- GardenersAndSharedWork --------------------------------------------------------

GardenResult water_orchard(int gardeners, int trees, GardenScheme scheme,
                           std::uint64_t seed) {
  std::vector<std::atomic<int>> watered(static_cast<std::size_t>(trees));
  for (auto& w : watered) w.store(0);
  std::mutex gate;

  auto gardener = [&](int id) {
    Rng rng(seed * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(id));
    switch (scheme) {
      case GardenScheme::kNoCoordination: {
        // Walk the whole orchard in a personal order; water what looks dry.
        auto order = rng.permutation(static_cast<std::size_t>(trees));
        for (std::size_t t : order) {
          if (watered[t].load(std::memory_order_relaxed) == 0) {
            std::this_thread::yield();  // walk to the tree
            watered[t].fetch_add(1, std::memory_order_relaxed);
          }
        }
        break;
      }
      case GardenScheme::kStaticRows: {
        const int chunk = (trees + gardeners - 1) / gardeners;
        const int lo = id * chunk;
        const int hi = std::min(trees, lo + chunk);
        for (int t = lo; t < hi; ++t) {
          watered[static_cast<std::size_t>(t)].fetch_add(
              1, std::memory_order_relaxed);
        }
        break;
      }
      case GardenScheme::kGateNotes: {
        auto order = rng.permutation(static_cast<std::size_t>(trees));
        for (std::size_t t : order) {
          bool mine = false;
          {
            std::lock_guard lock(gate);
            if (watered[t].load(std::memory_order_relaxed) == 0) {
              watered[t].fetch_add(1, std::memory_order_relaxed);
              mine = true;
            }
          }
          (void)mine;
        }
        break;
      }
    }
  };

  std::vector<std::thread> threads;
  for (int i = 0; i < gardeners; ++i) threads.emplace_back(gardener, i);
  for (auto& t : threads) t.join();

  GardenResult result;
  result.trees = trees;
  for (auto& w : watered) {
    const int times = w.load();
    if (times == 0) {
      ++result.skipped;
    } else if (times == 1) {
      ++result.watered_exactly_once;
    } else {
      ++result.watered_twice_or_more;
    }
  }
  return result;
}

// --- TelephoneChain ------------------------------------------------------------------

TelephoneResult telephone_chain(int students, int words, int garble_percent,
                                std::uint64_t seed) {
  TelephoneResult result;
  result.chain_hops = students - 1;

  // Chain: rank 0 whispers to 1, 1 to 2, ...; each hop may garble words.
  std::vector<std::int64_t> final_message;
  auto chain_body = [&](rt::Comm& comm) {
    const int rank = comm.rank();
    std::vector<std::int64_t> message;
    if (rank == 0) {
      message.resize(static_cast<std::size_t>(words));
      for (int w = 0; w < words; ++w) message[static_cast<std::size_t>(w)] = w;
    } else {
      message = comm.recv(rank - 1, 0).payload;
      Rng rng(seed + static_cast<std::uint64_t>(rank));
      for (auto& word : message) {
        if (rng.below(100) < static_cast<std::uint64_t>(garble_percent)) {
          word = -1;  // a mangled word
        }
      }
      comm.work(static_cast<std::int64_t>(message.size()));
    }
    if (rank + 1 < comm.size()) {
      comm.send(rank + 1, message, 0);
    } else {
      final_message = message;
    }
  };
  rt::ClassroomResult chain_run = rt::Classroom::run(students, chain_body);
  result.chain_makespan = chain_run.cost.makespan;
  for (std::int64_t word : final_message) {
    if (word < 0) ++result.corrupted_words;
  }

  // Tree: the same message broadcast along a binomial tree.
  auto tree_body = [&](rt::Comm& comm) {
    std::vector<std::int64_t> message;
    if (comm.rank() == 0) {
      message.resize(static_cast<std::size_t>(words));
      for (int w = 0; w < words; ++w) message[static_cast<std::size_t>(w)] = w;
    }
    message = comm.bcast(0, std::move(message));
    comm.work(static_cast<std::int64_t>(message.size()));
  };
  rt::ClassroomResult tree_run = rt::Classroom::run(students, tree_body);
  result.tree_makespan = tree_run.cost.makespan;
  return result;
}

}  // namespace pdcu::act
