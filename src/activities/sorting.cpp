#include "pdcu/activities/sorting.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <iterator>
#include <limits>

namespace pdcu::act {

namespace {

/// Root-side reassembly of per-rank blocks sent with send(root, {rank,
/// values...}, tag): returns blocks concatenated in rank order.
std::vector<Value> gather_blocks(rt::Comm& comm, int root, int tag,
                                 std::vector<Value> own_block) {
  std::vector<std::vector<Value>> blocks(
      static_cast<std::size_t>(comm.size()));
  blocks[static_cast<std::size_t>(comm.rank())] = std::move(own_block);
  for (int i = 0; i < comm.size() - 1; ++i) {
    rt::ClassMessage message = comm.recv(rt::kAny, tag);
    auto rank = static_cast<std::size_t>(message.payload[0]);
    blocks[rank].assign(message.payload.begin() + 1, message.payload.end());
  }
  std::vector<Value> out;
  for (auto& block : blocks) {
    out.insert(out.end(), block.begin(), block.end());
  }
  (void)root;
  return out;
}

void send_block(rt::Comm& comm, int dst, int tag,
                const std::vector<Value>& block) {
  std::vector<Value> payload;
  payload.reserve(block.size() + 1);
  payload.push_back(comm.rank());
  payload.insert(payload.end(), block.begin(), block.end());
  comm.send(dst, std::move(payload), tag);
}

/// ceil(log2(n)) for n >= 1.
int ceil_log2(int n) {
  int bits = 0;
  for (int v = n - 1; v > 0; v >>= 1) ++bits;
  return bits;
}

}  // namespace

// --- FindSmallestCard -------------------------------------------------------

TournamentResult find_smallest_card(std::span<const Value> cards,
                                    int students, rt::TraceLog* trace) {
  assert(students >= 1 && !cards.empty());
  TournamentResult result;
  result.rounds = ceil_log2(students);

  // Comparing two cards takes longer than dealing one; with equal costs
  // the handout would dominate and the dramatization would show no
  // speedup.
  rt::CostModel model;
  model.work_per_step = 4;

  std::vector<Value> deck(cards.begin(), cards.end());
  std::vector<std::int64_t> minima(static_cast<std::size_t>(students), 0);
  std::vector<std::int64_t> comparisons(static_cast<std::size_t>(students),
                                        0);

  auto body = [&](rt::Comm& comm) {
    std::vector<Value> hand = comm.scatter(0, deck);
    Value local_min = hand.empty() ? std::numeric_limits<Value>::max()
                                   : hand.front();
    std::int64_t local_comparisons = 0;
    for (std::size_t i = 1; i < hand.size(); ++i) {
      comm.work(1);
      ++local_comparisons;
      local_min = std::min(local_min, hand[i]);
    }
    if (trace != nullptr && !hand.empty()) {
      comm.log("holds up smallest card " + std::to_string(local_min) +
               " from a hand of " + std::to_string(hand.size()));
    }
    // Pair up: larger card sits down (binomial-tree min reduction).
    std::int64_t tournament_min =
        comm.reduce(0, local_min,
                    [](std::int64_t a, std::int64_t b) {
                      return std::min(a, b);
                    });
    std::int64_t total_comparisons =
        comm.reduce(0, local_comparisons,
                    [](std::int64_t a, std::int64_t b) { return a + b; });
    if (comm.rank() == 0) {
      minima[0] = tournament_min;
      // Tree merges contribute one comparison per internal pairing.
      comparisons[0] = total_comparisons + (students - 1);
      if (trace != nullptr) {
        comm.log("is the last one standing with card " +
                 std::to_string(tournament_min));
      }
    }
  };
  rt::ClassroomResult run = rt::Classroom::run(students, body, model, trace);
  result.minimum = minima[0];
  result.comparisons = comparisons[0];
  result.cost = run.cost;
  return result;
}

// --- OddEvenTranspositionSort -----------------------------------------------

OddEvenResult odd_even_transposition(std::span<const Value> values,
                                     rt::TraceLog* trace) {
  const int n = static_cast<int>(values.size());
  assert(n >= 1);
  OddEvenResult result;
  result.rounds = n;
  std::vector<Value> input(values.begin(), values.end());
  std::vector<Value> sorted;

  auto body = [&](rt::Comm& comm) {
    const int i = comm.rank();
    Value v = input[static_cast<std::size_t>(i)];
    for (int phase = 0; phase < n; ++phase) {
      int partner;
      if (phase % 2 == 0) {
        partner = (i % 2 == 0) ? i + 1 : i - 1;
      } else {
        partner = (i % 2 == 1) ? i + 1 : i - 1;
      }
      if (partner >= 0 && partner < n) {
        comm.send(partner, {v}, /*tag=*/phase);
        Value other = comm.recv(partner, /*tag=*/phase).payload[0];
        comm.work(1);  // the comparison
        Value keep = (i < partner) ? std::min(v, other) : std::max(v, other);
        if (trace != nullptr && keep != v) {
          comm.log("swaps " + std::to_string(v) + " for " +
                   std::to_string(keep) + " in phase " +
                   std::to_string(phase));
        }
        v = keep;
      }
      comm.barrier();
    }
    std::vector<Value> gathered = comm.gather(0, v);
    if (comm.rank() == 0) sorted = std::move(gathered);
  };
  rt::ClassroomResult run = rt::Classroom::run(n, body, {}, trace);
  result.sorted = std::move(sorted);
  result.cost = run.cost;
  return result;
}

OddEvenResult odd_even_blocked(std::span<const Value> values, int workers,
                               rt::TraceLog* trace) {
  assert(workers >= 1);
  OddEvenResult result;
  result.rounds = workers;
  std::vector<Value> input(values.begin(), values.end());
  std::vector<Value> sorted;

  auto body = [&](rt::Comm& comm) {
    const int i = comm.rank();
    const int n = comm.size();
    std::vector<Value> block = comm.scatter(0, input);
    std::sort(block.begin(), block.end());
    comm.work(static_cast<std::int64_t>(block.size()) *
              std::max(1, ceil_log2(static_cast<int>(block.size()) + 1)));

    for (int phase = 0; phase < n; ++phase) {
      int partner;
      if (phase % 2 == 0) {
        partner = (i % 2 == 0) ? i + 1 : i - 1;
      } else {
        partner = (i % 2 == 1) ? i + 1 : i - 1;
      }
      if (partner >= 0 && partner < n) {
        comm.send(partner, block, /*tag=*/phase);
        std::vector<Value> other = comm.recv(partner, /*tag=*/phase).payload;
        std::vector<Value> merged;
        merged.reserve(block.size() + other.size());
        std::merge(block.begin(), block.end(), other.begin(), other.end(),
                   std::back_inserter(merged));
        comm.work(static_cast<std::int64_t>(merged.size()));
        std::size_t keep = block.size();
        if (i < partner) {
          block.assign(merged.begin(),
                       merged.begin() + static_cast<long>(keep));
        } else {
          block.assign(merged.end() - static_cast<long>(keep), merged.end());
        }
      }
      comm.barrier();
    }
    if (i != 0) {
      send_block(comm, 0, /*tag=*/999, block);
    } else {
      sorted = gather_blocks(comm, 0, /*tag=*/999, std::move(block));
    }
  };
  rt::ClassroomResult run = rt::Classroom::run(workers, body, {}, trace);
  result.sorted = std::move(sorted);
  result.cost = run.cost;
  return result;
}

// --- ParallelRadixSort -------------------------------------------------------

RadixResult parallel_radix_sort(std::span<const Value> values, int teams,
                                rt::TraceLog* trace) {
  assert(teams >= 1);
  RadixResult result;
  Value max_value = 0;
  for (Value v : values) {
    assert(v >= 0 && "radix dramatization uses non-negative card numbers");
    max_value = std::max(max_value, v);
  }
  int passes = 1;
  for (Value scale = 10; scale <= max_value; scale *= 10) ++passes;
  result.passes = passes;

  std::vector<Value> current(values.begin(), values.end());

  auto body = [&](rt::Comm& comm) {
    Value divisor = 1;
    for (int pass = 0; pass < passes; ++pass) {
      // Teams take slices of the current deck and bin by digit.
      std::vector<Value> slice = comm.scatter(0, current);
      std::array<std::vector<Value>, 10> bins;
      for (Value v : slice) {
        comm.work(1);
        bins[static_cast<std::size_t>((v / divisor) % 10)].push_back(v);
      }
      // Each team reports its bins to the root, digit by digit; the root
      // re-assembles the deck stably: digit-major, team order within digit.
      if (comm.rank() != 0) {
        for (int digit = 0; digit < 10; ++digit) {
          std::vector<Value> payload;
          payload.push_back(comm.rank());
          payload.insert(payload.end(), bins[static_cast<std::size_t>(digit)]
                                            .begin(),
                         bins[static_cast<std::size_t>(digit)].end());
          comm.send(0, std::move(payload), /*tag=*/1000 + digit);
        }
      } else {
        std::vector<Value> next;
        next.reserve(current.size());
        for (int digit = 0; digit < 10; ++digit) {
          std::vector<std::vector<Value>> per_team(
              static_cast<std::size_t>(comm.size()));
          per_team[0] = bins[static_cast<std::size_t>(digit)];
          for (int i = 0; i < comm.size() - 1; ++i) {
            rt::ClassMessage message = comm.recv(rt::kAny, 1000 + digit);
            per_team[static_cast<std::size_t>(message.payload[0])].assign(
                message.payload.begin() + 1, message.payload.end());
          }
          for (const auto& bin : per_team) {
            next.insert(next.end(), bin.begin(), bin.end());
          }
        }
        current = std::move(next);
        if (trace != nullptr) {
          comm.log("recombines bins after digit pass " +
                   std::to_string(pass + 1));
        }
      }
      comm.barrier();
      divisor *= 10;
    }
  };
  rt::ClassroomResult run = rt::Classroom::run(teams, body, {}, trace);
  result.sorted = std::move(current);
  result.cost = run.cost;
  return result;
}

// --- ParallelCardSort ---------------------------------------------------------

MergeSortResult parallel_card_sort(std::span<const Value> values, int groups,
                                   rt::TraceLog* trace) {
  assert(groups >= 1 && (groups & (groups - 1)) == 0 &&
         "groups must be a power of two");
  MergeSortResult result;
  result.levels = ceil_log2(groups);
  std::vector<Value> input(values.begin(), values.end());
  std::vector<Value> sorted;

  auto body = [&](rt::Comm& comm) {
    const int rank = comm.rank();
    std::vector<Value> hand = comm.scatter(0, input);
    std::sort(hand.begin(), hand.end());
    comm.work(static_cast<std::int64_t>(hand.size()) *
              std::max(1, ceil_log2(static_cast<int>(hand.size()) + 1)));
    if (trace != nullptr) {
      comm.log("sorts a hand of " + std::to_string(hand.size()) + " cards");
    }
    for (int mask = 1; mask < comm.size(); mask <<= 1) {
      if ((rank & mask) != 0) {
        send_block(comm, rank - mask, /*tag=*/2000 + mask, hand);
        return;
      }
      if (rank + mask < comm.size()) {
        rt::ClassMessage message = comm.recv(rank + mask, 2000 + mask);
        std::vector<Value> other(message.payload.begin() + 1,
                                 message.payload.end());
        std::vector<Value> merged;
        merged.reserve(hand.size() + other.size());
        std::merge(hand.begin(), hand.end(), other.begin(), other.end(),
                   std::back_inserter(merged));
        comm.work(static_cast<std::int64_t>(merged.size()));
        hand = std::move(merged);
        if (trace != nullptr) {
          comm.log("merges two decks into " + std::to_string(hand.size()) +
                   " cards");
        }
      }
    }
    if (rank == 0) sorted = std::move(hand);
  };
  rt::ClassroomResult run = rt::Classroom::run(groups, body, {}, trace);
  result.sorted = std::move(sorted);
  result.cost = run.cost;
  return result;
}

// --- SortingNetworks -----------------------------------------------------------

std::size_t SortingNetwork::comparator_count() const {
  std::size_t n = 0;
  for (const auto& layer : layers) n += layer.size();
  return n;
}

SortingNetwork cs_unplugged_network() {
  // The six-way network from the CS Unplugged playground diagram:
  // 12 comparators in 5 parallel layers.
  SortingNetwork network;
  network.wires = 6;
  network.layers = {
      {{0, 5}, {1, 3}, {2, 4}},
      {{1, 2}, {3, 4}},
      {{0, 3}, {2, 5}},
      {{0, 1}, {2, 3}, {4, 5}},
      {{1, 2}, {3, 4}},
  };
  return network;
}

SortingNetwork batcher_network(std::size_t wires) {
  SortingNetwork network;
  network.wires = wires;
  if (wires < 2) return network;
  const auto n = wires;
  for (std::size_t p = 1; p < n; p <<= 1) {
    for (std::size_t k = p; k >= 1; k >>= 1) {
      std::vector<Comparator> layer;
      for (std::size_t j = k % p; j + k < n; j += k + k) {
        for (std::size_t i = 0; i < k && i + j + k < n; ++i) {
          if ((i + j) / (p + p) == (i + j + k) / (p + p)) {
            layer.push_back({i + j, i + j + k});
          }
        }
      }
      if (!layer.empty()) network.layers.push_back(std::move(layer));
      if (k == 1) break;  // k >>= 1 on k==1 would wrap for unsigned
    }
  }
  return network;
}

std::vector<Value> run_network(const SortingNetwork& network,
                               std::span<const Value> values,
                               rt::TraceLog* trace) {
  assert(values.size() == network.wires);
  std::vector<Value> wires(values.begin(), values.end());
  std::int64_t t = 0;
  for (const auto& layer : network.layers) {
    ++t;
    for (const auto& comparator : layer) {
      Value& a = wires[comparator.a];
      Value& b = wires[comparator.b];
      if (a > b) {
        std::swap(a, b);
        if (trace != nullptr) {
          trace->record(t, static_cast<int>(comparator.a),
                        "meets student " + std::to_string(comparator.b) +
                            ", they compare and swap");
        }
      }
    }
  }
  return wires;
}

bool sorts_all_zero_one_inputs(const SortingNetwork& network) {
  assert(network.wires <= 20);
  const std::size_t combos = std::size_t{1} << network.wires;
  for (std::size_t bits = 0; bits < combos; ++bits) {
    std::vector<Value> input(network.wires);
    for (std::size_t w = 0; w < network.wires; ++w) {
      input[w] = (bits >> w) & 1;
    }
    std::vector<Value> output = run_network(network, input);
    if (!std::is_sorted(output.begin(), output.end())) return false;
  }
  return true;
}

// --- NondeterministicSorting ------------------------------------------------

NondetSortResult nondeterministic_sort(std::vector<Value> values,
                                       rt::SchedulePolicy policy,
                                       std::uint64_t seed,
                                       std::size_t max_steps) {
  NondetSortResult result;
  if (values.size() < 2) {
    result.values = std::move(values);
    result.sorted = true;
    result.schedule.converged = true;
    return result;
  }
  Rng rng(seed);
  auto step = [&values](std::size_t agent) {
    if (values[agent] > values[agent + 1]) {
      std::swap(values[agent], values[agent + 1]);
    }
  };
  auto done = [&values] {
    return std::is_sorted(values.begin(), values.end());
  };
  result.schedule = rt::run_schedule(values.size() - 1, step, done, policy,
                                     rng, max_steps);
  result.sorted = done();
  result.values = std::move(values);
  return result;
}

}  // namespace pdcu::act
