#include "pdcu/activities/stencil.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "pdcu/support/rng.hpp"
#include "stencil_kernels.hpp"

namespace pdcu::act {

std::size_t LifeGrid::alive() const {
  std::size_t n = 0;
  for (std::uint8_t cell : cells) n += cell;
  return n;
}

LifeGrid LifeGrid::random(std::size_t width, std::size_t height,
                          std::uint64_t seed, double density) {
  LifeGrid grid;
  grid.width = width;
  grid.height = height;
  grid.cells.resize(width * height);
  Rng rng(seed);
  for (auto& cell : grid.cells) {
    cell = rng.chance(density) ? 1 : 0;
  }
  return grid;
}

LifeGrid LifeGrid::parse(const std::vector<std::string>& rows) {
  LifeGrid grid;
  grid.height = rows.size();
  grid.width = rows.empty() ? 0 : rows.front().size();
  grid.cells.reserve(grid.width * grid.height);
  for (const auto& row : rows) {
    assert(row.size() == grid.width && "ragged LifeGrid::parse input");
    for (char ch : row) {
      grid.cells.push_back(ch == '#' ? 1 : 0);
    }
  }
  return grid;
}

namespace detail {

void life_row_scalar(const std::uint8_t* up, const std::uint8_t* mid,
                     const std::uint8_t* down, std::uint8_t* out,
                     std::size_t w) {
  for (std::size_t c = 0; c < w; ++c) {
    const std::size_t left = (c + w - 1) % w;
    const std::size_t right = (c + 1) % w;
    const int count = up[left] + up[c] + up[right] + mid[left] + mid[right] +
                      down[left] + down[c] + down[right];
    out[c] =
        static_cast<std::uint8_t>(count == 3 || (mid[c] != 0 && count == 2));
  }
}

void life_row_autovec(const std::uint8_t* up, const std::uint8_t* mid,
                      const std::uint8_t* down, std::uint8_t* out,
                      std::size_t w) {
  if (w < 3) {
    life_row_scalar(up, mid, down, out, w);
    return;
  }
  // Interior columns: straight-line byte arithmetic with no wraps or
  // branches — exactly the loop shape compilers autovectorize. Neighbour
  // counts peak at 8, far below the byte ceiling.
  for (std::size_t c = 1; c + 1 < w; ++c) {
    const std::uint8_t count =
        static_cast<std::uint8_t>(up[c - 1] + up[c] + up[c + 1] + mid[c - 1] +
                                  mid[c + 1] + down[c - 1] + down[c] +
                                  down[c + 1]);
    out[c] = static_cast<std::uint8_t>((count == 3) |
                                       ((count == 2) & (mid[c] != 0)));
  }
  // The two wrap columns take the scalar path.
  for (std::size_t c : {std::size_t{0}, w - 1}) {
    const std::size_t left = (c + w - 1) % w;
    const std::size_t right = (c + 1) % w;
    const int count = up[left] + up[c] + up[right] + mid[left] + mid[right] +
                      down[left] + down[c] + down[right];
    out[c] =
        static_cast<std::uint8_t>(count == 3 || (mid[c] != 0 && count == 2));
  }
}

namespace {

using RowKernel = void (*)(const std::uint8_t*, const std::uint8_t*,
                           const std::uint8_t*, std::uint8_t*, std::size_t);

/// Steps rows [row_lo, row_hi) of the torus `src` into `dst` with the
/// given row kernel, wrapping the row neighbours modulo the full height.
void step_rows(const std::uint8_t* src, std::uint8_t* dst, std::size_t w,
               std::size_t h, std::size_t row_lo, std::size_t row_hi,
               RowKernel kernel) {
  for (std::size_t r = row_lo; r < row_hi; ++r) {
    const std::uint8_t* up = src + ((r + h - 1) % h) * w;
    const std::uint8_t* mid = src + r * w;
    const std::uint8_t* down = src + ((r + 1) % h) * w;
    kernel(up, mid, down, dst + r * w, w);
  }
}

}  // namespace

}  // namespace detail

std::string_view kernel_name(LifeKernel kernel) {
  switch (kernel) {
    case LifeKernel::kSerial:
      return "serial";
    case LifeKernel::kTiled:
      return "tiled";
    case LifeKernel::kAutovec:
      return "autovec";
    case LifeKernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool kernel_available(LifeKernel kernel) {
  if (kernel != LifeKernel::kAvx2) return true;
#if defined(__x86_64__) || defined(__i386__)
  return detail::avx2_compiled() && __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

LifeKernel best_simd_kernel() {
  return kernel_available(LifeKernel::kAvx2) ? LifeKernel::kAvx2
                                             : LifeKernel::kAutovec;
}

LifeGrid life_step(const LifeGrid& grid, LifeKernel kernel,
                   rt::ThreadPool* pool) {
  LifeGrid next = grid;
  const std::size_t w = grid.width;
  const std::size_t h = grid.height;
  if (w == 0 || h == 0) return next;
  const std::uint8_t* src = grid.cells.data();
  std::uint8_t* dst = next.cells.data();

  switch (kernel) {
    case LifeKernel::kSerial:
      detail::step_rows(src, dst, w, h, 0, h, detail::life_row_scalar);
      break;
    case LifeKernel::kTiled: {
      // Disjoint row blocks, each stepped with the serial row kernel:
      // bit-identical to kSerial at any pool size by construction.
      rt::ThreadPool& workers = pool != nullptr ? *pool : rt::default_pool();
      workers.parallel_for(0, h, [&](std::size_t lo, std::size_t hi) {
        detail::step_rows(src, dst, w, h, lo, hi, detail::life_row_scalar);
      });
      break;
    }
    case LifeKernel::kAutovec:
      detail::step_rows(src, dst, w, h, 0, h, detail::life_row_autovec);
      break;
    case LifeKernel::kAvx2:
      if (!kernel_available(LifeKernel::kAvx2)) {
        // Non-AVX2 host (or non-x86 build): fall back, still bit-identical.
        detail::step_rows(src, dst, w, h, 0, h, detail::life_row_autovec);
      } else {
        detail::step_rows(src, dst, w, h, 0, h, detail::life_row_avx2);
      }
      break;
  }
  return next;
}

LifeGrid life_run(LifeGrid grid, int generations, LifeKernel kernel,
                  rt::ThreadPool* pool) {
  for (int g = 0; g < generations; ++g) {
    grid = life_step(grid, kernel, pool);
  }
  return grid;
}

namespace {

// Halo-exchange user tags (the reserved negative range belongs to the
// collectives now; activity traffic uses small non-negative tags).
constexpr int kTagToUp = 0;     ///< my top row, sent to my up neighbour
constexpr int kTagToDown = 1;   ///< my bottom row, sent to my down neighbour
constexpr int kTagCollect = 2;  ///< final block, sent to rank 0

std::vector<std::int64_t> row_payload(const std::uint8_t* row,
                                      std::size_t w) {
  return {row, row + w};
}

void fill_row(std::uint8_t* row, const std::vector<std::int64_t>& payload) {
  for (std::size_t c = 0; c < payload.size(); ++c) {
    row[c] = static_cast<std::uint8_t>(payload[c]);
  }
}

}  // namespace

std::int64_t expected_halo_messages(int ranks, int generations) {
  if (ranks <= 1) return 0;
  return 2ll * ranks * generations;
}

StencilResult stencil_classroom(const LifeGrid& start, int ranks,
                                int generations, rt::CostModel model,
                                rt::TraceLog* trace) {
  assert(ranks >= 1 && generations >= 0);
  StencilResult result;
  const std::size_t w = start.width;
  const std::size_t h = start.height;
  // A rank with no rows would have nothing to send and nothing to step;
  // clamp instead so the dramatization always casts every student.
  const int p = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(ranks), std::max<std::size_t>(h, 1)));
  result.ranks = p;
  result.generations = generations;
  result.grid = start;
  if (w == 0 || h == 0) return result;

  std::uint8_t* final_cells = result.grid.cells.data();

  auto body = [&](rt::Comm& comm) {
    const auto rank = static_cast<std::size_t>(comm.rank());
    const auto parties = static_cast<std::size_t>(comm.size());
    // Balanced contiguous row split: block r owns [r*h/p, (r+1)*h/p),
    // never empty for p <= h and ceil/floor mixed so 10 rows over 3
    // ranks come out 3/3/4.
    const std::size_t lo = rank * h / parties;
    const std::size_t hi = (rank + 1) * h / parties;
    const std::size_t rows = hi - lo;

    // Local block with one halo row above and one below.
    std::vector<std::uint8_t> block((rows + 2) * w);
    std::vector<std::uint8_t> next((rows + 2) * w);
    std::memcpy(block.data() + w, start.cells.data() + lo * w, rows * w);

    const int up = static_cast<int>((rank + parties - 1) % parties);
    const int down = static_cast<int>((rank + 1) % parties);
    if (trace != nullptr) {
      comm.log("owns torus rows " + std::to_string(lo) + ".." +
               std::to_string(hi) + " of " + std::to_string(h));
    }

    for (int gen = 0; gen < generations; ++gen) {
      if (parties > 1) {
        // Boundary rows out; matching halos in. With two ranks both
        // neighbours are the same peer, so the direction tag is what
        // keeps the two rows apart.
        comm.send(up, row_payload(block.data() + w, w), kTagToUp);
        comm.send(down, row_payload(block.data() + rows * w, w), kTagToDown);
        fill_row(block.data(), comm.recv(up, kTagToDown).payload);
        fill_row(block.data() + (rows + 1) * w,
                 comm.recv(down, kTagToUp).payload);
      } else {
        // One rank owns the whole torus: its halos are its own edges.
        std::memcpy(block.data(), block.data() + rows * w, w);
        std::memcpy(block.data() + (rows + 1) * w, block.data() + w, w);
      }
      // Step the owned rows; the halo rows provide the vertical
      // neighbours, so no row wrap is needed inside the block.
      for (std::size_t r = 1; r <= rows; ++r) {
        detail::life_row_scalar(block.data() + (r - 1) * w,
                                block.data() + r * w,
                                block.data() + (r + 1) * w,
                                next.data() + r * w, w);
      }
      comm.work(static_cast<std::int64_t>(rows * w));
      std::swap(block, next);
      comm.barrier();
    }

    // Collect the final blocks at rank 0.
    if (comm.rank() == 0) {
      std::memcpy(final_cells, block.data() + w, rows * w);
      for (int i = 0; i < static_cast<int>(parties) - 1; ++i) {
        rt::ClassMessage message = comm.recv(rt::kAny, kTagCollect);
        const auto src = static_cast<std::size_t>(message.src);
        const std::size_t src_lo = src * h / parties;
        for (std::size_t k = 0; k < message.payload.size(); ++k) {
          final_cells[src_lo * w + k] =
              static_cast<std::uint8_t>(message.payload[k]);
        }
      }
    } else {
      comm.send(0, {block.begin() + static_cast<long>(w),
                    block.begin() + static_cast<long>((rows + 1) * w)},
                kTagCollect);
    }
  };

  rt::ClassroomResult run = rt::Classroom::run(p, body, model, trace);
  result.cost = run.cost;
  result.error = run.error;
  result.halo_messages = run.cost.total_messages - (p - 1);
  result.speedup_vs_serial = run.cost.speedup_vs(
      static_cast<std::int64_t>(w * h) * generations * model.work_per_step);
  return result;
}

}  // namespace pdcu::act
