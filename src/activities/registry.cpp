#include "pdcu/activities/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "pdcu/activities/data_parallel.hpp"
#include "pdcu/activities/distributed.hpp"
#include "pdcu/activities/performance.hpp"
#include "pdcu/activities/races.hpp"
#include "pdcu/activities/sorting.hpp"
#include "pdcu/activities/stencil.hpp"
#include "pdcu/support/rng.hpp"

namespace pdcu::act {

namespace {

std::vector<Value> random_values(std::size_t n, std::uint64_t seed,
                                 std::int64_t lo = 1, std::int64_t hi = 99) {
  Rng rng(seed);
  std::vector<Value> out(n);
  for (auto& v : out) v = rng.between(lo, hi);
  return out;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::vector<Simulation> build_registry() {
  std::vector<Simulation> sims;

  sims.push_back({"find_smallest_card", "FindSmallestCard",
                  "tournament minimum with students as processors",
                  [](std::uint64_t seed) {
                    rt::TraceLog trace;
                    auto cards = random_values(16, seed);
                    auto r = find_smallest_card(cards, 8, &trace);
                    DemoReport report;
                    report.ok =
                        r.minimum ==
                        *std::min_element(cards.begin(), cards.end());
                    report.summary =
                        "minimum=" + std::to_string(r.minimum) +
                        " rounds=" + std::to_string(r.rounds) +
                        " comparisons=" + std::to_string(r.comparisons) +
                        " makespan=" + std::to_string(r.cost.makespan);
                    report.script = trace.render_script();
                    return report;
                  }});

  sims.push_back({"odd_even_transposition", "OddEvenTranspositionSort",
                  "parallel bubble sort with alternating phases",
                  [](std::uint64_t seed) {
                    rt::TraceLog trace;
                    auto values = random_values(8, seed);
                    auto r = odd_even_transposition(values, &trace);
                    DemoReport report;
                    report.ok =
                        std::is_sorted(r.sorted.begin(), r.sorted.end());
                    report.summary =
                        "n=8 rounds=" + std::to_string(r.rounds) +
                        " makespan=" + std::to_string(r.cost.makespan) +
                        " sorted=" + (report.ok ? "yes" : "NO");
                    report.script = trace.render_script();
                    return report;
                  }});

  sims.push_back({"parallel_radix_sort", "ParallelRadixSort",
                  "digit-bin card sort by teams",
                  [](std::uint64_t seed) {
                    auto values = random_values(24, seed, 0, 999);
                    auto r = parallel_radix_sort(values, 4);
                    DemoReport report;
                    report.ok =
                        std::is_sorted(r.sorted.begin(), r.sorted.end());
                    report.summary =
                        "n=24 passes=" + std::to_string(r.passes) +
                        " makespan=" + std::to_string(r.cost.makespan) +
                        " sorted=" + (report.ok ? "yes" : "NO");
                    return report;
                  }});

  sims.push_back({"parallel_card_sort", "ParallelCardSort",
                  "groups sort hands, then merge decks pairwise",
                  [](std::uint64_t seed) {
                    auto values = random_values(32, seed);
                    auto r = parallel_card_sort(values, 4);
                    DemoReport report;
                    report.ok =
                        std::is_sorted(r.sorted.begin(), r.sorted.end());
                    report.summary =
                        "n=32 levels=" + std::to_string(r.levels) +
                        " makespan=" + std::to_string(r.cost.makespan) +
                        " sorted=" + (report.ok ? "yes" : "NO");
                    return report;
                  }});

  sims.push_back({"sorting_network", "SortingNetworks",
                  "students walk the chalk network",
                  [](std::uint64_t seed) {
                    auto network = cs_unplugged_network();
                    auto values = random_values(6, seed);
                    auto sorted = run_network(network, values);
                    DemoReport report;
                    report.ok = std::is_sorted(sorted.begin(), sorted.end());
                    report.summary =
                        "wires=6 depth=" + std::to_string(network.depth()) +
                        " comparators=" +
                        std::to_string(network.comparator_count()) +
                        " sorted=" + (report.ok ? "yes" : "NO");
                    return report;
                  }});

  sims.push_back({"nondeterministic_sort", "NondeterministicSorting",
                  "any adjacent pair may swap at any time",
                  [](std::uint64_t seed) {
                    auto r = nondeterministic_sort(
                        random_values(12, seed), rt::SchedulePolicy::kRandom,
                        seed, 100000);
                    DemoReport report;
                    report.ok = r.sorted;
                    report.summary =
                        "n=12 steps=" + std::to_string(r.schedule.steps) +
                        " sorted under a random schedule: " +
                        (r.sorted ? "yes" : "NO");
                    return report;
                  }});

  sims.push_back({"juice_robots", "SweeteningTheJuice",
                  "the check-then-add race, with and without a lock",
                  [](std::uint64_t seed) {
                    int racy = count_oversweetened(2, 5, 40, seed);
                    auto safe =
                        sweeten_juice(2, 5, JuiceMode::kMutex, seed);
                    DemoReport report;
                    report.ok = !safe.oversweetened;
                    report.summary =
                        "unsynchronized: " + std::to_string(racy) +
                        "/40 runs oversweetened; with a lock: exactly " +
                        std::to_string(safe.spoonfuls_added) + "/" +
                        std::to_string(safe.target) + " spoonfuls";
                    return report;
                  }});

  sims.push_back({"concert_tickets", "ConcertTickets",
                  "box offices selling from one seat pool",
                  [](std::uint64_t seed) {
                    auto racy = sell_tickets(64, 4,
                                             TicketStrategy::kNoCoordination,
                                             seed);
                    auto locked =
                        sell_tickets(64, 4, TicketStrategy::kCoarseLock,
                                     seed);
                    DemoReport report;
                    report.ok = !locked.oversold &&
                                locked.tickets_issued == 64;
                    report.summary =
                        "no coordination: " +
                        std::to_string(racy.tickets_issued) +
                        " tickets for 64 seats (" +
                        std::to_string(racy.double_sold_seats) +
                        " double-sold); coarse lock: " +
                        std::to_string(locked.tickets_issued) +
                        " tickets, 0 double-sold";
                    return report;
                  }});

  sims.push_back({"gardeners", "GardenersAndSharedWork",
                  "watering every tree exactly once",
                  [](std::uint64_t seed) {
                    auto naive = water_orchard(
                        4, 64, GardenScheme::kNoCoordination, seed);
                    auto rows =
                        water_orchard(4, 64, GardenScheme::kStaticRows, seed);
                    DemoReport report;
                    report.ok = rows.watered_exactly_once == 64;
                    report.summary =
                        "no coordination: " +
                        std::to_string(naive.watered_twice_or_more) +
                        " trees watered twice; static rows: all " +
                        std::to_string(rows.watered_exactly_once) +
                        " exactly once";
                    return report;
                  }});

  sims.push_back({"token_ring", "SelfStabilizingTokenRing",
                  "Dijkstra K-state stabilization from arbitrary states",
                  [](std::uint64_t seed) {
                    Rng rng(seed);
                    std::vector<int> states(9);
                    for (auto& s : states) {
                      s = static_cast<int>(rng.below(10));
                    }
                    auto r = stabilize_token_ring(
                        states, 10, rt::SchedulePolicy::kRandom, seed,
                        100000);
                    DemoReport report;
                    report.ok = r.stabilized && r.stayed_legitimate;
                    report.summary =
                        "ring of 9, started with " +
                        std::to_string(r.initial_tokens) +
                        " tokens; stabilized to exactly one after " +
                        std::to_string(r.steps) +
                        " moves; closure held: " +
                        (r.stayed_legitimate ? "yes" : "NO");
                    return report;
                  }});

  sims.push_back({"leader_election", "StableLeaderElection",
                  "ring election: gossip and Chang-Roberts",
                  [](std::uint64_t seed) {
                    Rng rng(seed);
                    std::vector<std::int64_t> ids;
                    for (int i = 0; i < 8; ++i) {
                      ids.push_back(rng.between(1, 1000));
                    }
                    auto gossip = leader_election_gossip(
                        ids, rt::SchedulePolicy::kShuffled, seed, 100000);
                    auto ring = leader_election_ring(ids);
                    DemoReport report;
                    report.ok = gossip.elected_maximum && gossip.stable &&
                                ring.elected_maximum;
                    report.summary =
                        "gossip elected " + std::to_string(gossip.leader_id) +
                        " in " + std::to_string(gossip.steps) +
                        " moves (stable: " + (gossip.stable ? "yes" : "NO") +
                        "); message ring used " +
                        std::to_string(ring.messages) + " messages";
                    return report;
                  }});

  sims.push_back({"parallel_gc", "ParallelGarbageCollection",
                  "tri-color marking with mutators",
                  [](std::uint64_t seed) {
                    auto with = parallel_gc(40, 80, 60, true, seed);
                    int lost_runs = 0;
                    for (int t = 0; t < 30; ++t) {
                      auto without = parallel_gc(
                          40, 80, 60, false,
                          seed + 1000 + static_cast<std::uint64_t>(t));
                      if (without.lost_live_object) ++lost_runs;
                    }
                    DemoReport report;
                    report.ok = !with.lost_live_object;
                    report.summary =
                        "with write barrier: no live object lost; without: " +
                        std::to_string(lost_runs) +
                        "/30 schedules lost a live object";
                    return report;
                  }});

  sims.push_back({"byzantine_generals", "ByzantineGenerals",
                  "oral-messages agreement with traitors",
                  [](std::uint64_t) {
                    auto four = byzantine_om(4, {2}, 1, 1);
                    auto three = byzantine_om(3, {2}, 1, 1);
                    DemoReport report;
                    report.ok = four.agreement && four.validity &&
                                !three.validity;
                    report.summary =
                        "4 generals, 1 traitor: agreement=" +
                        std::string(four.agreement ? "yes" : "no") +
                        ", order obeyed=" +
                        std::string(four.validity ? "yes" : "no") + " (" +
                        std::to_string(four.messages) +
                        " messages); 3 generals, 1 traitor: order obeyed=" +
                        std::string(three.validity ? "yes" : "no") +
                        " (n > 3f needed)";
                    return report;
                  }});

  sims.push_back({"phone_call", "LongDistancePhoneCall",
                  "connection charges amortized by one big call",
                  [](std::uint64_t) {
                    auto r = phone_call_compare(1000, 1);
                    DemoReport report;
                    report.ok = r.many_small_cost > r.one_big_cost;
                    report.summary =
                        "1000 items one-at-a-time cost " +
                        std::to_string(r.many_small_cost) +
                        "; one call cost " +
                        std::to_string(r.one_big_cost) + " (" +
                        fmt(r.overhead_ratio) + "x)";
                    return report;
                  }});

  sims.push_back({"load_balancing", "MowingTheLawn",
                  "static strips vs take-the-next-patch",
                  [](std::uint64_t seed) {
                    auto patches = skewed_patches(64, seed);
                    auto r = balance_load(patches, 4);
                    DemoReport report;
                    report.ok = r.dynamic_makespan <= r.static_makespan;
                    report.summary =
                        "4 mowers, 64 patches: static makespan " +
                        std::to_string(r.static_makespan) +
                        ", dynamic " + std::to_string(r.dynamic_makespan) +
                        " (imbalance " + fmt(r.static_imbalance) + "x)";
                    return report;
                  }});

  sims.push_back({"pipeline", "CarAssemblyPipeline",
                  "throughput vs latency on the line",
                  [](std::uint64_t) {
                    std::vector<std::int64_t> stages = {2, 2, 4, 2};
                    auto r = run_pipeline(stages, 12);
                    DemoReport report;
                    report.ok = r.pipelined_makespan < r.serial_makespan;
                    report.summary =
                        "12 cars, stages {2,2,4,2}: serial " +
                        std::to_string(r.serial_makespan) + ", pipelined " +
                        std::to_string(r.pipelined_makespan) +
                        " (bottleneck " +
                        std::to_string(r.bottleneck_stage_cost) + ")";
                    return report;
                  }});

  sims.push_back({"amdahl_race", "HumanSpeedupRace",
                  "the checkpoint desk is Amdahl's serial fraction",
                  [](std::uint64_t) {
                    DemoReport report;
                    report.ok = true;
                    report.summary = "teams: speedup (predicted)";
                    for (int teams : {1, 2, 4, 8}) {
                      auto r = speedup_race(64, 1, teams);
                      report.summary +=
                          "\n  " + std::to_string(teams) + ": " +
                          fmt(r.simulated_speedup) + " (" +
                          fmt(r.predicted_speedup) + ")";
                      if (r.simulated_speedup >
                          1.0 / r.serial_fraction + 1e-9) {
                        report.ok = false;
                      }
                    }
                    return report;
                  }});

  sims.push_back({"sync_methods", "IntersectionSynchronization",
                  "stop sign vs traffic light vs police officer",
                  [](std::uint64_t) {
                    DemoReport report;
                    report.ok = true;
                    report.summary = "4 cars x 50 crossings:";
                    const std::pair<IntersectionControl, const char*>
                        controls[] = {
                            {IntersectionControl::kStopSign, "stop sign"},
                            {IntersectionControl::kTrafficLight,
                             "traffic light"},
                            {IntersectionControl::kPoliceOfficer,
                             "police officer"},
                        };
                    for (const auto& [control, name] : controls) {
                      auto r = run_intersection(4, 50, control);
                      if (!r.mutual_exclusion_held ||
                          r.total_crossings != 200) {
                        report.ok = false;
                      }
                      report.summary +=
                          std::string("\n  ") + name + ": exclusion " +
                          (r.mutual_exclusion_held ? "held" : "VIOLATED");
                    }
                    return report;
                  }});

  sims.push_back({"grading_exams", "GradingExamsInParallel",
                  "static split vs central pile vs per-question pipeline",
                  [](std::uint64_t seed) {
                    std::vector<std::int64_t> questions = {2, 2, 5, 2};
                    auto fixed = grade_exams(
                        4, 40, questions, GradingStrategy::kStaticSplit,
                        seed);
                    auto pile = grade_exams(
                        4, 40, questions, GradingStrategy::kCentralPile,
                        seed);
                    auto line = grade_exams(
                        4, 40, questions, GradingStrategy::kPerQuestion,
                        seed);
                    DemoReport report;
                    report.ok = fixed.all_graded && pile.all_graded &&
                                line.all_graded &&
                                pile.makespan <= fixed.makespan + 45;
                    report.summary =
                        "40 exams, 4 graders: static split " +
                        std::to_string(fixed.makespan) +
                        ", central pile " + std::to_string(pile.makespan) +
                        ", per-question line " +
                        std::to_string(line.makespan);
                    return report;
                  }});

  sims.push_back({"two_stations", "FastAnswerVsSharedAccess",
                  "more hands vs one stapler",
                  [](std::uint64_t seed) {
                    auto r = two_stations(8, 104, seed);
                    DemoReport report;
                    report.ok = r.station_a_speedup > 4.0 &&
                                r.station_b_speedup < 4.0;
                    report.summary =
                        "8 students: counting cards speeds up " +
                        fmt(r.station_a_speedup) +
                        "x; stapled packets only " +
                        fmt(r.station_b_speedup) +
                        "x (the stapler is the shared resource)";
                    return report;
                  }});

  sims.push_back({"cache_hierarchy", "LibraryCacheHierarchy",
                  "desk, shelf, library, interlibrary loan",
                  [](std::uint64_t seed) {
                    std::vector<CacheLevel> levels = {
                        {4, 1}, {32, 10}, {256, 100}};
                    auto local =
                        simulate_hierarchy(levels, looping_trace(24, 4000));
                    auto rand = simulate_hierarchy(
                        levels, random_trace(2048, 4000, seed));
                    DemoReport report;
                    report.ok = local.amat < rand.amat;
                    report.summary =
                        "looping working set AMAT " + fmt(local.amat) +
                        " vs random accesses AMAT " + fmt(rand.amat);
                    return report;
                  }});

  sims.push_back({"telephone_chain", "TelephoneChain",
                  "whisper down the line vs a broadcast tree",
                  [](std::uint64_t seed) {
                    auto r = telephone_chain(16, 8, 5, seed);
                    DemoReport report;
                    report.ok = r.tree_makespan < r.chain_makespan;
                    report.summary =
                        "16 students: chain delivered in " +
                        std::to_string(r.chain_makespan) + ", tree in " +
                        std::to_string(r.tree_makespan) + "; " +
                        std::to_string(r.corrupted_words) +
                        "/8 words garbled along the chain";
                    return report;
                  }});

  sims.push_back({"producer_consumer", "DinnerPartyProducers",
                  "cooks, waiters, and a four-plate window",
                  [](std::uint64_t) {
                    auto r = dinner_party(3, 2, 20, 4);
                    DemoReport report;
                    report.ok = r.every_dish_served_once &&
                                r.dishes_served == r.dishes_cooked;
                    report.summary =
                        std::to_string(r.dishes_served) + "/" +
                        std::to_string(r.dishes_cooked) +
                        " dishes served exactly once; cooks stalled " +
                        std::to_string(r.window_full_stalls) +
                        "x on a full window, waiters " +
                        std::to_string(r.window_empty_stalls) +
                        "x on an empty one";
                    return report;
                  }});

  sims.push_back({"array_summation", "ArraySummationWithCards",
                  "slice sums combined up a tree",
                  [](std::uint64_t seed) {
                    auto cards = random_values(256, seed);
                    auto r = array_summation(cards, 8);
                    std::int64_t expected = 0;
                    for (auto v : cards) expected += v;
                    DemoReport report;
                    report.ok = r.sum == expected;
                    report.summary =
                        "sum=" + std::to_string(r.sum) +
                        " makespan=" + std::to_string(r.cost.makespan) +
                        " speedup=" + fmt(r.speedup_vs_serial) + "x over 1";
                    return report;
                  }});

  sims.push_back({"parallel_search", "ParallelArraySearch",
                  "partitioned search with a FOUND shout",
                  [](std::uint64_t seed) {
                    auto cards = random_values(400, seed, 1, 10000);
                    cards[287] = -7;
                    auto r = parallel_search(cards, -7, 8);
                    DemoReport report;
                    report.ok = r.found_index == 287;
                    report.summary =
                        "found at index " + std::to_string(r.found_index) +
                        " after " + std::to_string(r.cards_flipped) +
                        " total card flips (serial worst case 400)";
                    return report;
                  }});

  sims.push_back({"matrix_teams", "MatrixMultiplicationTeams",
                  "walking to the memory wall: naive vs blocked",
                  [](std::uint64_t seed) {
                    auto a = Matrix::random(24, seed);
                    auto b = Matrix::random(24, seed + 1);
                    auto naive = matmul_teams(a, b, 4, false);
                    auto blocked = matmul_teams(a, b, 4, true);
                    auto reference = matmul_serial(a, b);
                    DemoReport report;
                    report.ok = naive.product.data == reference.data &&
                                blocked.product.data == reference.data;
                    report.summary =
                        "naive fetches " +
                        std::to_string(naive.strip_fetches) +
                        " strips; blocked fetches " +
                        std::to_string(blocked.strip_fetches) +
                        "; results match serial: " +
                        (report.ok ? "yes" : "NO");
                    return report;
                  }});

  sims.push_back({"monte_carlo", "CoinFlipMonteCarlo",
                  "embarrassingly parallel coin flips",
                  [](std::uint64_t seed) {
                    auto r = coin_flip_monte_carlo(4000, 8, seed);
                    DemoReport report;
                    report.ok = r.error < 0.02;
                    report.summary =
                        std::to_string(r.flips) +
                        " flips estimate P(two heads)=" + fmt(r.estimate) +
                        " (error " + fmt(r.error) + ")";
                    return report;
                  }});

  sims.push_back({"ballot_counting", "BallotCounting",
                  "deal the box into piles, combine subtotals",
                  [](std::uint64_t seed) {
                    Rng rng(seed);
                    std::vector<std::int64_t> ballots(500);
                    std::int64_t expected_a = 0;
                    for (auto& v : ballots) {
                      v = rng.chance(0.55) ? 0 : 1;
                      if (v == 0) ++expected_a;
                    }
                    auto r = ballot_counting(ballots, 8);
                    DemoReport report;
                    report.ok = r.votes_a == expected_a &&
                                r.votes_a + r.votes_b == 500;
                    report.summary =
                        "A=" + std::to_string(r.votes_a) +
                        " B=" + std::to_string(r.votes_b) +
                        " combine_rounds=" +
                        std::to_string(r.combine_rounds) +
                        " makespan=" + std::to_string(r.cost.makespan);
                    return report;
                  }});

  sims.push_back(
      {"game_of_life", "ParallelStencilGameOfLife",
       "students-as-cells torus with per-rank row tiles and halo exchange",
       [](std::uint64_t seed) {
         const LifeGrid start = LifeGrid::random(24, 24, seed);
         const int generations = 6;
         const LifeGrid oracle =
             life_run(start, generations, LifeKernel::kSerial);
         bool kernels_match = true;
         for (LifeKernel kernel : {LifeKernel::kTiled, LifeKernel::kAutovec,
                                   LifeKernel::kAvx2}) {
           kernels_match =
               kernels_match && life_run(start, generations, kernel) == oracle;
         }
         auto r = stencil_classroom(start, 4, generations);
         DemoReport report;
         report.ok = r.ok() && kernels_match && r.grid == oracle &&
                     r.halo_messages ==
                         expected_halo_messages(r.ranks, generations);
         report.summary =
             "24x24 torus, " + std::to_string(generations) +
             " generations over " + std::to_string(r.ranks) +
             " ranks: halo_messages=" + std::to_string(r.halo_messages) +
             " speedup=" + fmt(r.speedup_vs_serial) +
             " simd=" + std::string(kernel_name(best_simd_kernel())) +
             "; all kernels match serial: " + (report.ok ? "yes" : "NO");
         return report;
       }});

  return sims;
}

}  // namespace

const std::vector<Simulation>& simulations() {
  static const std::vector<Simulation> kRegistry = build_registry();
  return kRegistry;
}

const Simulation* find_simulation(std::string_view slug) {
  for (const auto& sim : simulations()) {
    if (sim.slug == slug) return &sim;
  }
  return nullptr;
}

}  // namespace pdcu::act
