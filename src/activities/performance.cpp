#include "pdcu/activities/performance.hpp"

#include <algorithm>
#include <cassert>
#include <list>
#include <queue>
#include <unordered_map>

#include "pdcu/support/rng.hpp"

namespace pdcu::act {

// --- LongDistancePhoneCall ------------------------------------------------------

PhoneCallResult phone_call_compare(std::int64_t items, std::int64_t chunk,
                                   rt::CostModel model) {
  assert(items > 0 && chunk > 0);
  PhoneCallResult result;
  const std::int64_t calls = (items + chunk - 1) / chunk;
  // Every call pays the connection charge; the per-minute charge is the
  // same in total either way.
  result.many_small_cost = calls * model.msg_latency + items * model.msg_per_item;
  result.one_big_cost = model.transfer(items);
  result.overhead_ratio =
      static_cast<double>(result.many_small_cost) /
      static_cast<double>(result.one_big_cost);
  return result;
}

// --- MowingTheLawn / GroceryCheckoutQueues ---------------------------------------

LoadBalanceResult balance_load(std::span<const std::int64_t> patch_costs,
                               int workers, std::int64_t grab_cost) {
  assert(workers >= 1);
  LoadBalanceResult result;
  for (std::int64_t c : patch_costs) result.total_work += c;

  // Static: contiguous strips of equal patch count, assigned in advance.
  {
    const std::size_t n = patch_costs.size();
    const std::size_t chunk =
        (n + static_cast<std::size_t>(workers) - 1) /
        static_cast<std::size_t>(workers);
    for (int w = 0; w < workers; ++w) {
      std::size_t lo = std::min(n, chunk * static_cast<std::size_t>(w));
      std::size_t hi = std::min(n, lo + chunk);
      std::int64_t strip = 0;
      for (std::size_t i = lo; i < hi; ++i) strip += patch_costs[i];
      result.static_makespan = std::max(result.static_makespan, strip);
    }
  }

  // Dynamic: whoever is free takes the next patch, paying grab_cost per
  // grab (greedy list scheduling).
  {
    std::priority_queue<std::int64_t, std::vector<std::int64_t>,
                        std::greater<>>
        mowers;
    for (int w = 0; w < workers; ++w) mowers.push(0);
    for (std::int64_t c : patch_costs) {
      std::int64_t free_at = mowers.top();
      mowers.pop();
      mowers.push(free_at + grab_cost + c);
      result.dynamic_overhead += grab_cost;
    }
    while (mowers.size() > 1) mowers.pop();
    result.dynamic_makespan = mowers.top();
  }

  const double ideal =
      static_cast<double>(result.total_work) / workers;
  result.static_imbalance =
      ideal == 0.0 ? 1.0
                   : static_cast<double>(result.static_makespan) / ideal;
  return result;
}

std::vector<std::int64_t> skewed_patches(int patches, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> costs;
  costs.reserve(static_cast<std::size_t>(patches));
  // The rock garden is one contiguous stretch of the lawn (that is what
  // defeats pre-partitioned strips): the first eighth of the patches are
  // heavy, the rest are easy mowing.
  const int rocks = std::max(1, patches / 8);
  for (int i = 0; i < patches; ++i) {
    if (i < rocks) {
      costs.push_back(rng.between(20, 40));
    } else {
      costs.push_back(rng.between(1, 4));
    }
  }
  return costs;
}

// --- CarAssemblyPipeline ----------------------------------------------------------

PipelineResult run_pipeline(std::span<const std::int64_t> stage_costs,
                            int items) {
  assert(!stage_costs.empty() && items >= 1);
  PipelineResult result;
  for (std::int64_t c : stage_costs) {
    result.latency += c;
    result.bottleneck_stage_cost =
        std::max(result.bottleneck_stage_cost, c);
  }
  result.serial_makespan = result.latency * items;

  // Event-driven simulation of the line: stage s can start item i when
  // stage s finished item i-1 AND stage s-1 finished item i.
  const std::size_t stages = stage_costs.size();
  std::vector<std::int64_t> stage_free(stages, 0);
  std::int64_t last_done = 0;
  for (int i = 0; i < items; ++i) {
    std::int64_t ready = 0;  // when the car arrives at the next stage
    for (std::size_t s = 0; s < stages; ++s) {
      const std::int64_t start = std::max(ready, stage_free[s]);
      const std::int64_t done = start + stage_costs[s];
      stage_free[s] = done;
      ready = done;
    }
    last_done = ready;
  }
  result.pipelined_makespan = last_done;
  result.throughput =
      static_cast<double>(items) /
      static_cast<double>(std::max<std::int64_t>(1, last_done));
  return result;
}

// --- HumanSpeedupRace (Amdahl) -------------------------------------------------------

AmdahlResult speedup_race(int tasks, std::int64_t stamp_cost, int teams) {
  assert(tasks >= 1 && teams >= 1);
  AmdahlResult result;
  result.teams = teams;

  const std::int64_t solve_cost = 1;
  const std::int64_t serial_time =
      tasks * (solve_cost + stamp_cost);  // one student does everything
  // The checkpoint stamps serially regardless of team size; solving is
  // perfectly parallel across team members.
  const std::int64_t parallel_solve =
      (tasks + teams - 1) / teams * solve_cost;
  const std::int64_t stamping = tasks * stamp_cost;
  // Solving is perfectly parallel; the checkpoint desk stamps every card
  // one at a time afterwards — the un-parallelizable fraction of the race.
  result.makespan = parallel_solve + stamping;

  result.simulated_speedup = static_cast<double>(serial_time) /
                             static_cast<double>(result.makespan);
  result.serial_fraction =
      static_cast<double>(stamp_cost) /
      static_cast<double>(solve_cost + stamp_cost);
  const double s = result.serial_fraction;
  result.predicted_speedup = 1.0 / (s + (1.0 - s) / teams);
  return result;
}

// --- GradingExamsInParallel ------------------------------------------------------

GradingResult grade_exams(int graders, int exams,
                          std::span<const std::int64_t> question_costs,
                          GradingStrategy strategy, std::uint64_t seed) {
  assert(graders >= 1 && exams >= 1 && !question_costs.empty());
  GradingResult result;
  Rng rng(seed);

  // cost[e][q]: base question cost plus a per-exam wobble (a messy answer
  // takes longer to mark).
  const std::size_t questions = question_costs.size();
  std::vector<std::int64_t> cost(static_cast<std::size_t>(exams) *
                                 questions);
  for (int e = 0; e < exams; ++e) {
    for (std::size_t q = 0; q < questions; ++q) {
      cost[static_cast<std::size_t>(e) * questions + q] =
          question_costs[q] + rng.between(0, 2);
    }
  }
  auto exam_cost = [&](int e) {
    std::int64_t total = 0;
    for (std::size_t q = 0; q < questions; ++q) {
      total += cost[static_cast<std::size_t>(e) * questions + q];
    }
    return total;
  };

  switch (strategy) {
    case GradingStrategy::kStaticSplit: {
      // Contiguous shares of the stack, fixed in advance.
      const int chunk = (exams + graders - 1) / graders;
      for (int g = 0; g < graders; ++g) {
        std::int64_t busy = 0;
        for (int e = g * chunk; e < std::min(exams, (g + 1) * chunk); ++e) {
          busy += exam_cost(e);
        }
        result.makespan = std::max(result.makespan, busy);
      }
      break;
    }
    case GradingStrategy::kCentralPile: {
      // Greedy: the next free grader takes the top exam, paying one unit
      // of contention per grab.
      std::vector<std::int64_t> free_at(static_cast<std::size_t>(graders),
                                        0);
      for (int e = 0; e < exams; ++e) {
        auto soonest =
            std::min_element(free_at.begin(), free_at.end());
        *soonest += 1 + exam_cost(e);  // 1 = reach into the shared pile
        ++result.pile_waits;
      }
      result.makespan =
          *std::max_element(free_at.begin(), free_at.end());
      break;
    }
    case GradingStrategy::kPerQuestion: {
      // One grader per question, exams flowing down the line; extra
      // graders beyond the question count idle. Event-driven, like the
      // car assembly line, with per-exam variable stage costs.
      const std::size_t stages =
          std::min<std::size_t>(questions, static_cast<std::size_t>(graders));
      std::vector<std::int64_t> stage_free(stages, 0);
      for (int e = 0; e < exams; ++e) {
        std::int64_t ready = 0;
        for (std::size_t s = 0; s < stages; ++s) {
          // Stage s grades question s; the last stage takes any leftover
          // questions when there are fewer graders than questions.
          std::int64_t stage_cost = 0;
          if (s + 1 < stages) {
            stage_cost = cost[static_cast<std::size_t>(e) * questions + s];
          } else {
            for (std::size_t q = s; q < questions; ++q) {
              stage_cost +=
                  cost[static_cast<std::size_t>(e) * questions + q];
            }
          }
          const std::int64_t start = std::max(ready, stage_free[s]);
          stage_free[s] = start + stage_cost;
          ready = stage_free[s];
        }
        result.makespan = std::max(result.makespan, ready);
      }
      break;
    }
  }
  result.all_graded = true;
  return result;
}

// --- LibraryCacheHierarchy ------------------------------------------------------------

namespace {

/// One LRU level.
class LruLevel {
 public:
  explicit LruLevel(std::int64_t capacity) : capacity_(capacity) {}

  bool access(std::int64_t id) {
    auto it = where_.find(id);
    if (it != where_.end()) {
      order_.splice(order_.begin(), order_, it->second);
      return true;
    }
    insert(id);
    return false;
  }

  void insert(std::int64_t id) {
    if (where_.count(id) != 0) return;
    order_.push_front(id);
    where_[id] = order_.begin();
    if (static_cast<std::int64_t>(order_.size()) > capacity_) {
      where_.erase(order_.back());
      order_.pop_back();
    }
  }

 private:
  std::int64_t capacity_;
  std::list<std::int64_t> order_;
  std::unordered_map<std::int64_t, std::list<std::int64_t>::iterator> where_;
};

}  // namespace

CacheResult simulate_hierarchy(std::span<const CacheLevel> levels,
                               std::span<const std::int64_t> trace) {
  assert(!levels.empty());
  CacheResult result;
  result.total_accesses = static_cast<std::int64_t>(trace.size());
  std::vector<LruLevel> lru;
  std::vector<std::int64_t> hits(levels.size() + 1, 0);
  for (const auto& level : levels) lru.emplace_back(level.capacity);

  std::int64_t total_cost = 0;
  for (std::int64_t id : trace) {
    bool found = false;
    for (std::size_t l = 0; l < lru.size(); ++l) {
      if (lru[l].access(id)) {
        ++hits[l];
        total_cost += levels[l].latency;
        // Promote into the faster levels (inclusive hierarchy).
        for (std::size_t f = 0; f < l; ++f) lru[f].insert(id);
        found = true;
        break;
      }
    }
    if (!found) {
      ++hits[levels.size()];
      // Missing everywhere costs twice the slowest level (the interlibrary
      // loan round trip).
      total_cost += 2 * levels.back().latency;
    }
  }
  for (std::size_t l = 0; l <= levels.size(); ++l) {
    result.hit_rate.push_back(trace.empty()
                                  ? 0.0
                                  : static_cast<double>(hits[l]) /
                                        static_cast<double>(trace.size()));
  }
  result.amat = trace.empty() ? 0.0
                              : static_cast<double>(total_cost) /
                                    static_cast<double>(trace.size());
  return result;
}

std::vector<std::int64_t> looping_trace(std::int64_t working_set,
                                        std::int64_t accesses) {
  std::vector<std::int64_t> trace;
  trace.reserve(static_cast<std::size_t>(accesses));
  for (std::int64_t i = 0; i < accesses; ++i) {
    trace.push_back(i % working_set);
  }
  return trace;
}

std::vector<std::int64_t> random_trace(std::int64_t universe,
                                       std::int64_t accesses,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int64_t> trace;
  trace.reserve(static_cast<std::size_t>(accesses));
  for (std::int64_t i = 0; i < accesses; ++i) {
    trace.push_back(
        static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(
            universe))));
  }
  return trace;
}

RoommateResult roommate_interference(std::int64_t shelf_capacity,
                                     std::int64_t working_set,
                                     std::int64_t accesses) {
  RoommateResult result;
  const CacheLevel shelf{shelf_capacity, 1};

  auto alone = looping_trace(working_set, accesses);
  result.alone_hit_rate =
      simulate_hierarchy(std::span(&shelf, 1), alone).hit_rate[0];

  // Interleave two loops over disjoint working sets (roommate's books are
  // offset past ours).
  std::vector<std::int64_t> shared;
  shared.reserve(static_cast<std::size_t>(2 * accesses));
  for (std::int64_t i = 0; i < accesses; ++i) {
    shared.push_back(i % working_set);
    shared.push_back(working_set + (i % working_set));
  }
  result.shared_hit_rate =
      simulate_hierarchy(std::span(&shelf, 1), shared).hit_rate[0];
  return result;
}

}  // namespace pdcu::act
