// Internal interface between stencil.cpp and the AVX2 translation unit.
// stencil_avx2.cpp is the only file compiled with -mavx2 (when the
// toolchain supports it), so the intrinsics never leak into code that a
// non-AVX2 host might execute before the runtime cpuid dispatch.
#pragma once

#include <cstddef>
#include <cstdint>

namespace pdcu::act::detail {

/// True when stencil_avx2.cpp was built with AVX2 code generation. The
/// runtime dispatch additionally requires cpuid to report AVX2.
bool avx2_compiled();

/// One Life row with explicit neighbour-row pointers, AVX2 interior +
/// scalar wrap columns. Falls back to the scalar kernel in stubs built
/// without AVX2 (never dispatched there, but must still link).
void life_row_avx2(const std::uint8_t* up, const std::uint8_t* mid,
                   const std::uint8_t* down, std::uint8_t* out,
                   std::size_t w);

/// Scalar reference row kernel (defined in stencil.cpp), shared with the
/// AVX2 TU for wrap columns, tails, and the no-AVX2 stub.
void life_row_scalar(const std::uint8_t* up, const std::uint8_t* mid,
                     const std::uint8_t* down, std::uint8_t* out,
                     std::size_t w);

/// Branch-free byte row kernel the compiler autovectorizes (stencil.cpp).
void life_row_autovec(const std::uint8_t* up, const std::uint8_t* mid,
                      const std::uint8_t* down, std::uint8_t* out,
                      std::size_t w);

}  // namespace pdcu::act::detail
