// ParallelStencilGameOfLife: Conway's Game of Life on a 2D torus, the
// repo's first compute-bound workload and the dramatization behind the
// proposed students-as-cells activity ("people act as processes", §III.A):
// every student is a cell, looks at eight neighbours, and flips their card
// simultaneously on the clap.
//
// Three honest host kernels (serial scalar, ThreadPool row tiles, SIMD —
// an autovectorized byte kernel plus AVX2 intrinsics behind runtime cpuid
// dispatch) are all bit-identical to the serial oracle on every grid, and
// a classroom run decomposes the torus into per-rank row blocks with
// per-generation halo exchange over rt::Comm under the virtual-time cost
// model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "pdcu/runtime/classroom.hpp"
#include "pdcu/runtime/thread_pool.hpp"

namespace pdcu::act {

/// Row-major byte grid on a 2D torus; every cell is 0 (dead) or 1 (alive).
struct LifeGrid {
  std::size_t width = 0;
  std::size_t height = 0;
  std::vector<std::uint8_t> cells;  ///< width * height, row-major

  std::uint8_t& at(std::size_t row, std::size_t col) {
    return cells[row * width + col];
  }
  std::uint8_t at(std::size_t row, std::size_t col) const {
    return cells[row * width + col];
  }

  std::size_t alive() const;
  bool operator==(const LifeGrid&) const = default;

  /// Deterministic random soup: pure function of (width, height, seed).
  static LifeGrid random(std::size_t width, std::size_t height,
                         std::uint64_t seed, double density = 0.35);

  /// Builds a grid from rows of '.' (dead) and '#' (alive); all rows must
  /// be the same length. Handy for oscillator tests.
  static LifeGrid parse(const std::vector<std::string>& rows);
};

/// The host kernels, compared honestly (the SIMD intrinsics do not always
/// beat the compiler's autovectorization; bench_stencil reports both).
enum class LifeKernel {
  kSerial,   ///< scalar reference oracle
  kTiled,    ///< rt::ThreadPool row blocks; bit-identical at any pool size
  kAutovec,  ///< branch-free byte kernel the compiler vectorizes
  kAvx2,     ///< hand-written AVX2 intrinsics (separate -mavx2 TU)
};

std::string_view kernel_name(LifeKernel kernel);

/// False only for kAvx2 on hosts without AVX2 (or non-x86 builds);
/// life_step falls back to kAutovec there so callers can always ask for
/// kAvx2 and still get a bit-identical answer.
bool kernel_available(LifeKernel kernel);

/// Runtime cpuid dispatch: kAvx2 when the host supports it, else kAutovec.
LifeKernel best_simd_kernel();

/// One generation of Life on the torus with the chosen kernel. `pool` is
/// used by kTiled only (nullptr = rt::default_pool()). Every kernel is
/// bit-identical to kSerial on every grid.
LifeGrid life_step(const LifeGrid& grid, LifeKernel kernel,
                   rt::ThreadPool* pool = nullptr);

/// `generations` steps of life_step.
LifeGrid life_run(LifeGrid grid, int generations, LifeKernel kernel,
                  rt::ThreadPool* pool = nullptr);

/// Result of the classroom dramatization.
struct StencilResult {
  LifeGrid grid;          ///< after `generations`, bit-identical to serial
  rt::RunCost cost;       ///< virtual-time cost of the parallel run
  int ranks = 0;          ///< ranks actually used (clamped to height)
  int generations = 0;
  std::int64_t halo_messages = 0;  ///< neighbor sends across the whole run
  double speedup_vs_serial = 0.0;  ///< virtual-time speedup over one rank
  std::string error;               ///< "" on success
  bool ok() const { return error.empty(); }
};

/// The analytic halo-message count a run must produce: every rank sends
/// its top and bottom boundary row every generation (2 * ranks *
/// generations), and none when a single rank owns the whole torus.
std::int64_t expected_halo_messages(int ranks, int generations);

/// Game of Life as a classroom run: the torus is decomposed into
/// contiguous row blocks (one per rank, ceil-split so non-divisible
/// heights work), and each generation every rank sends its boundary rows
/// to its torus neighbours, receives the matching halos, steps its block,
/// and meets the class at a barrier. Ranks above `height` would own no
/// rows, so the rank count is clamped to the height. The final grid is
/// gathered at rank 0 and is bit-identical to `generations` serial steps.
StencilResult stencil_classroom(const LifeGrid& start, int ranks,
                                int generations, rt::CostModel model = {},
                                rt::TraceLog* trace = nullptr);

}  // namespace pdcu::act
