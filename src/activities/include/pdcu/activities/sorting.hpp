// Executable simulations of the curated sorting activities — the most
// common family of unplugged PDC activities in the literature (§III.A).
// Each function is the faithful protocol of its classroom dramatization,
// executed on the classroom runtime with virtual-time cost accounting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pdcu/runtime/classroom.hpp"
#include "pdcu/runtime/scheduler.hpp"
#include "pdcu/runtime/trace.hpp"

namespace pdcu::act {

using Value = std::int64_t;

// --- FindSmallestCard (Bachelis et al. 1994) ------------------------------

/// Result of the tournament minimum.
struct TournamentResult {
  Value minimum = 0;
  std::int64_t comparisons = 0;  ///< total comparisons (work)
  std::int64_t rounds = 0;       ///< parallel rounds (ceil(log2 students))
  rt::RunCost cost;
};

/// Students pair up and the larger card sits down; repeats until one stands.
/// `students` ranks each receive a block of `cards` and reduce the minimum
/// over a binomial tree.
TournamentResult find_smallest_card(std::span<const Value> cards,
                                    int students,
                                    rt::TraceLog* trace = nullptr);

// --- OddEvenTranspositionSort (Rifkin 1994) --------------------------------

/// Result of the one-student-per-value dramatization.
struct OddEvenResult {
  std::vector<Value> sorted;
  int rounds = 0;  ///< phases executed (at most n)
  rt::RunCost cost;
};

/// One student per value; alternating odd/even neighbor exchanges until
/// sorted (runs the full n phases, as the classroom protocol does).
OddEvenResult odd_even_transposition(std::span<const Value> values,
                                     rt::TraceLog* trace = nullptr);

/// Blocked variant for larger inputs: each of `workers` students holds a
/// sorted block; phases merge-split neighbor blocks. Used by the speedup
/// bench.
OddEvenResult odd_even_blocked(std::span<const Value> values, int workers,
                               rt::TraceLog* trace = nullptr);

// --- ParallelRadixSort (Rifkin 1994) ---------------------------------------

struct RadixResult {
  std::vector<Value> sorted;
  int passes = 0;  ///< digit passes (sequential between passes)
  rt::RunCost cost;
};

/// Teams distribute cards into digit bins, least significant digit first;
/// bins are recombined between passes. `teams` ranks; base-10 digits, as in
/// the classroom. Values must be non-negative.
RadixResult parallel_radix_sort(std::span<const Value> values, int teams,
                                rt::TraceLog* trace = nullptr);

// --- ParallelCardSort (Bachelis et al. 1994; merge-based) ------------------

struct MergeSortResult {
  std::vector<Value> sorted;
  int levels = 0;  ///< merge-tree levels after the local sort
  rt::RunCost cost;
};

/// Groups sort hands locally, then pairs of groups merge until one deck
/// remains. `groups` must be a power of two.
MergeSortResult parallel_card_sort(std::span<const Value> values, int groups,
                                   rt::TraceLog* trace = nullptr);

// --- SortingNetworks (CS Unplugged) -----------------------------------------

/// One comparator: compare wires (a, b), put min on a, max on b.
struct Comparator {
  std::size_t a = 0;
  std::size_t b = 0;
};

/// A sorting network as parallel layers of disjoint comparators.
struct SortingNetwork {
  std::size_t wires = 0;
  std::vector<std::vector<Comparator>> layers;

  std::size_t depth() const { return layers.size(); }
  std::size_t comparator_count() const;
};

/// The 6-wire network drawn on the CS Unplugged playground.
SortingNetwork cs_unplugged_network();

/// Batcher odd-even merge network for any number of wires.
SortingNetwork batcher_network(std::size_t wires);

/// Walks values through the network (students walking the chalk diagram);
/// each layer is one parallel step.
std::vector<Value> run_network(const SortingNetwork& network,
                               std::span<const Value> values,
                               rt::TraceLog* trace = nullptr);

/// True if the network sorts every 0/1 input (hence every input, by the
/// 0-1 principle). Exhaustive up to 2^wires.
bool sorts_all_zero_one_inputs(const SortingNetwork& network);

// --- NondeterministicSorting (Sivilotti & Pike 2007) ------------------------

struct NondetSortResult {
  std::vector<Value> values;
  rt::ScheduleResult schedule;
  bool sorted = false;
};

/// Any adjacent pair may compare-and-swap at any time, in any order; the
/// assertional argument guarantees every schedule sorts. Agent i guards
/// pair (i, i+1).
NondetSortResult nondeterministic_sort(std::vector<Value> values,
                                       rt::SchedulePolicy policy,
                                       std::uint64_t seed,
                                       std::size_t max_steps);

}  // namespace pdcu::act
