// The simulation registry: links curation entries (Activity::simulation
// slugs) to runnable demonstrations. Each demo runs a small, deterministic
// instance of its protocol and reports what the classroom would observe.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace pdcu::act {

/// Output of one demonstration run.
struct DemoReport {
  std::string summary;  ///< a few lines of observed results
  std::string script;   ///< optional classroom script ("" when not traced)
  bool ok = false;      ///< the run's own invariants held
};

/// A registered simulation.
struct Simulation {
  std::string slug;         ///< matches Activity::simulation
  std::string name;         ///< human-readable
  std::string description;  ///< one line
  std::function<DemoReport(std::uint64_t seed)> run;
};

/// All registered simulations, in stable order.
const std::vector<Simulation>& simulations();

/// Lookup by slug; nullptr when unknown.
const Simulation* find_simulation(std::string_view slug);

}  // namespace pdcu::act
