// Executable simulations of the race-condition and synchronization
// activities: SweeteningTheJuice (Ben-Ari & Kolikant), ConcertTickets
// (Kolikant; Lewandowski et al.), IntersectionSynchronization (Chesebrough
// & Turner), and DinnerPartyProducers (Andrianoff & Levine).
//
// These run on real std::threads. The "unsynchronized" modes reproduce the
// classroom bug (check-then-act with a window between check and act) using
// relaxed atomics, so the lost updates are real but the program stays free
// of undefined behaviour.
#pragma once

#include <cstdint>
#include <vector>

namespace pdcu::act {

// --- SweeteningTheJuice ------------------------------------------------------

/// How the robots coordinate access to the shared glass.
enum class JuiceMode {
  kUnsynchronized,  ///< read sweetness, think, then add (the classroom bug)
  kMutex,           ///< lock the glass around check-and-add
  kCompareExchange  ///< optimistic: re-check atomically before adding
};

struct JuiceResult {
  int target = 0;
  int final_sweetness = 0;
  int spoonfuls_added = 0;
  bool oversweetened = false;  ///< final > target: the race fired
};

/// `robots` threads each repeatedly run "if sweetness < target, add one
/// spoonful" until everyone observes sweetness >= target.
JuiceResult sweeten_juice(int robots, int target, JuiceMode mode,
                          std::uint64_t seed);

/// Runs `trials` unsynchronized experiments and returns how many
/// oversweetened — the empirical race probability the class observes.
int count_oversweetened(int robots, int target, int trials,
                        std::uint64_t seed);

// --- ConcertTickets -----------------------------------------------------------

/// Box-office coordination strategy.
enum class TicketStrategy {
  kNoCoordination,  ///< clerks check-then-sell with a window (overselling)
  kCoarseLock,      ///< one lock for the whole seat map
  kPerSeatLock,     ///< one atomic flag per seat (test-and-set)
  kOptimistic       ///< CAS on the seat counter
};

struct TicketResult {
  int seats = 0;
  int clerks = 0;
  int tickets_issued = 0;    ///< total tickets handed out
  int double_sold_seats = 0; ///< seats sold to more than one customer
  bool oversold = false;
  std::int64_t nanoseconds = 0;
};

/// `clerks` threads sell `seats` seats from a shared map until none appear
/// free.
TicketResult sell_tickets(int seats, int clerks, TicketStrategy strategy,
                          std::uint64_t seed);

// --- IntersectionSynchronization ----------------------------------------------

/// Traffic-control discipline for the shared intersection.
enum class IntersectionControl {
  kStopSign,      ///< spin on a test-and-set flag (polling)
  kTrafficLight,  ///< ticket lock: numbered turns
  kPoliceOfficer, ///< monitor: mutex + condition variable
  kTokenRoad      ///< message passing: a token circulates among cars
};

struct IntersectionResult {
  bool mutual_exclusion_held = true;  ///< never two cars inside
  int total_crossings = 0;
  int max_crossings_by_one_car = 0;
  int min_crossings_by_one_car = 0;  ///< fairness signal
  std::int64_t nanoseconds = 0;
};

/// `cars` threads each cross the intersection `crossings_per_car` times
/// under the chosen discipline; an invariant checker detects overlap.
IntersectionResult run_intersection(int cars, int crossings_per_car,
                                    IntersectionControl control);

// --- FastAnswerVsSharedAccess (Smith & Srivastava) ---------------------------

struct TwoStationsResult {
  std::int64_t station_a_makespan = 0;  ///< pure data parallelism
  std::int64_t station_b_makespan = 0;  ///< serialized by the stapler
  std::int64_t station_a_count = 0;     ///< face cards found
  double station_a_speedup = 0.0;       ///< vs one student, same station
  double station_b_speedup = 0.0;       ///< capped by the shared resource
};

/// The two-station dramatization distinguishing "more hands, faster
/// answer" from "managing access to a scarce shared resource" (the PF_1
/// outcome). Station A: `students` count face cards in disjoint deck
/// slices (embarrassingly parallel). Station B: the same students
/// assemble `work_items` packets in parallel, but every packet must pass
/// through the single shared stapler. Virtual-time makespans; the B
/// station's speedup is capped by the stapler no matter the head count.
TwoStationsResult two_stations(int students, int work_items,
                               std::uint64_t seed);

// --- DinnerPartyProducers -------------------------------------------------------

struct DinnerResult {
  int dishes_cooked = 0;
  int dishes_served = 0;
  int window_full_stalls = 0;   ///< cooks waited on a full window
  int window_empty_stalls = 0;  ///< waiters waited on an empty window
  bool every_dish_served_once = true;
};

/// `cooks` producer threads plate `dishes_per_cook` dishes each through a
/// serving window holding `window_capacity` plates; `waiters` consumer
/// threads carry them off. Condition variables are the dinner bell.
DinnerResult dinner_party(int cooks, int waiters, int dishes_per_cook,
                          int window_capacity);

}  // namespace pdcu::act
