// Executable simulations of the performance and architecture analogies:
// LongDistancePhoneCall (latency/bandwidth), MowingTheLawn and
// GroceryCheckoutQueues (load balancing), CarAssemblyPipeline (pipelining),
// HumanSpeedupRace (Amdahl's law), and LibraryCacheHierarchy (memory
// hierarchy).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pdcu/runtime/virtual_cost.hpp"

namespace pdcu::act {

// --- LongDistancePhoneCall ------------------------------------------------------

struct PhoneCallResult {
  std::int64_t many_small_cost = 0;  ///< per-item calls
  std::int64_t one_big_cost = 0;     ///< one aggregated call
  double overhead_ratio = 0.0;       ///< many_small / one_big
};

/// Sending `items` data items as `items / chunk` calls of `chunk` items
/// versus one call: the connection charge amortization the analogy teaches.
PhoneCallResult phone_call_compare(std::int64_t items, std::int64_t chunk,
                                   rt::CostModel model = {});

// --- MowingTheLawn / GroceryCheckoutQueues ---------------------------------------

struct LoadBalanceResult {
  std::int64_t total_work = 0;
  std::int64_t static_makespan = 0;   ///< pre-partitioned strips
  std::int64_t dynamic_makespan = 0;  ///< take-next-patch-when-free
  std::int64_t dynamic_overhead = 0;  ///< per-grab coordination cost paid
  double static_imbalance = 0.0;      ///< static_makespan / ideal
};

/// Schedules `patch_costs` onto `workers` mowers both ways. Dynamic
/// scheduling is greedy list scheduling with `grab_cost` coordination per
/// patch.
LoadBalanceResult balance_load(std::span<const std::int64_t> patch_costs,
                               int workers, std::int64_t grab_cost = 1);

/// A skewed workload generator: mostly small patches plus a few rock
/// gardens (heavy patches), as in the analogy.
std::vector<std::int64_t> skewed_patches(int patches, std::uint64_t seed);

// --- CarAssemblyPipeline ----------------------------------------------------------

struct PipelineResult {
  std::int64_t serial_makespan = 0;     ///< one car at a time
  std::int64_t pipelined_makespan = 0;  ///< full assembly line
  std::int64_t latency = 0;             ///< one car end-to-end
  double throughput = 0.0;              ///< cars per bottleneck interval
  std::int64_t bottleneck_stage_cost = 0;
};

/// Runs `items` cars through stages with the given per-stage costs.
/// The pipelined makespan follows the classic timing diagram:
/// latency + (items-1) * bottleneck.
PipelineResult run_pipeline(std::span<const std::int64_t> stage_costs,
                            int items);

// --- HumanSpeedupRace (Amdahl) -------------------------------------------------------

struct AmdahlResult {
  int teams = 0;
  double serial_fraction = 0.0;
  double predicted_speedup = 0.0;  ///< 1 / (s + (1-s)/p)
  double simulated_speedup = 0.0;  ///< from the simulated race
  std::int64_t makespan = 0;
};

/// Simulates the race: `tasks` task cards of unit cost, a checkpoint desk
/// that stamps every card serially (`stamp_cost` per card), `teams`
/// runners. Returns predicted-vs-simulated speedup.
AmdahlResult speedup_race(int tasks, std::int64_t stamp_cost, int teams);

// --- GradingExamsInParallel (Bogaerts) -----------------------------------------

/// How the graders divide the stack.
enum class GradingStrategy {
  kStaticSplit,   ///< split the stack evenly in advance
  kCentralPile,   ///< deal one exam at a time from a shared pile
  kPerQuestion    ///< one question per grader (a pipeline)
};

struct GradingResult {
  std::int64_t makespan = 0;     ///< virtual time until all exams graded
  std::int64_t pile_waits = 0;   ///< contended grabs at the central pile
  bool all_graded = false;
};

/// `graders` grade `exams` whose per-exam difficulty varies per question;
/// exam e, question q costs `question_costs[q]` + a per-exam wobble.
GradingResult grade_exams(int graders, int exams,
                          std::span<const std::int64_t> question_costs,
                          GradingStrategy strategy, std::uint64_t seed);

// --- LibraryCacheHierarchy ------------------------------------------------------------

/// One level of the book hierarchy (desk, shelf, library, interlibrary loan).
struct CacheLevel {
  std::int64_t capacity = 0;  ///< books that fit (entries)
  std::int64_t latency = 0;   ///< access cost when found here
};

struct CacheResult {
  std::vector<double> hit_rate;   ///< per level (last = backing store)
  double amat = 0.0;              ///< average access cost
  std::int64_t total_accesses = 0;
};

/// A multi-level LRU cache simulator driven by an access trace of book ids.
CacheResult simulate_hierarchy(std::span<const CacheLevel> levels,
                               std::span<const std::int64_t> trace);

/// Trace generators: a looping working set (high locality) and uniform
/// random accesses (no locality).
std::vector<std::int64_t> looping_trace(std::int64_t working_set,
                                        std::int64_t accesses);
std::vector<std::int64_t> random_trace(std::int64_t universe,
                                       std::int64_t accesses,
                                       std::uint64_t seed);

/// Two roommates sharing the shelf: interleaves two looping traces with
/// disjoint working sets, returning the hit-rate drop versus running alone.
struct RoommateResult {
  double alone_hit_rate = 0.0;
  double shared_hit_rate = 0.0;
};
RoommateResult roommate_interference(std::int64_t shelf_capacity,
                                     std::int64_t working_set,
                                     std::int64_t accesses);

}  // namespace pdcu::act
