// Executable simulations of the data-parallel worksheet activities:
// ArraySummationWithCards and ParallelArraySearch (Ghafoor et al. iPDC),
// MatrixMultiplicationTeams (iPDC), CoinFlipMonteCarlo (Maxim et al.), and
// BallotCounting (Bachelis et al.).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pdcu/runtime/classroom.hpp"

namespace pdcu::act {

// --- ArraySummationWithCards -----------------------------------------------------

struct SummationResult {
  std::int64_t sum = 0;
  rt::RunCost cost;
  double speedup_vs_serial = 0.0;  ///< virtual-time speedup
};

/// Scatter the card row over `students`, sum slices simultaneously, and
/// combine partial sums over a binomial tree.
SummationResult array_summation(std::span<const std::int64_t> cards,
                                int students,
                                rt::TraceLog* trace = nullptr);

// --- ParallelArraySearch -----------------------------------------------------------

struct SearchResult {
  std::int64_t found_index = -1;    ///< -1 when absent
  std::int64_t cards_flipped = 0;   ///< total work including wasted scans
  rt::RunCost cost;
};

/// Teams partition the face-down row and search simultaneously; the first
/// finder shouts and the others stop at their next card flip.
SearchResult parallel_search(std::span<const std::int64_t> cards,
                             std::int64_t target, int teams,
                             rt::TraceLog* trace = nullptr);

// --- MatrixMultiplicationTeams -------------------------------------------------------

/// Row-major square matrix.
struct Matrix {
  std::size_t n = 0;
  std::vector<std::int64_t> data;

  std::int64_t& at(std::size_t r, std::size_t c) { return data[r * n + c]; }
  std::int64_t at(std::size_t r, std::size_t c) const {
    return data[r * n + c];
  }

  static Matrix random(std::size_t n, std::uint64_t seed);
  static Matrix zero(std::size_t n);
};

/// Serial reference product.
Matrix matmul_serial(const Matrix& a, const Matrix& b);

struct MatmulResult {
  Matrix product;
  std::int64_t strip_fetches = 0;  ///< walks to the memory wall
  rt::RunCost cost;
};

/// Teams own row-blocks of the result. With `blocked` false every element
/// fetches its row and column strips (the first classroom round); with
/// `blocked` true each team fetches a strip once and reuses it.
MatmulResult matmul_teams(const Matrix& a, const Matrix& b, int teams,
                          bool blocked, rt::TraceLog* trace = nullptr);

// --- CoinFlipMonteCarlo ----------------------------------------------------------------

struct MonteCarloResult {
  std::int64_t flips = 0;
  std::int64_t both_heads = 0;
  double estimate = 0.0;   ///< of 1/4
  double error = 0.0;      ///< |estimate - 0.25|
  rt::RunCost cost;
};

/// Every student flips coin pairs; tallies are pooled by reduction. The
/// samples share nothing, so virtual speedup is nearly perfect.
MonteCarloResult coin_flip_monte_carlo(std::int64_t flips_per_student,
                                       int students, std::uint64_t seed);

// --- BallotCounting ----------------------------------------------------------------------

struct BallotResult {
  std::int64_t votes_a = 0;
  std::int64_t votes_b = 0;
  rt::RunCost cost;
  std::int64_t combine_rounds = 0;  ///< the sequential tail of the tree
};

/// Deal the ballot box into piles, count simultaneously, combine subtotals
/// on the board in a binomial tree.
BallotResult ballot_counting(std::span<const std::int64_t> ballots,
                             int counters, rt::TraceLog* trace = nullptr);

}  // namespace pdcu::act
