// Executable simulations of the distributed-systems activities:
// SelfStabilizingTokenRing (Sivilotti & Demirbas), StableLeaderElection and
// ParallelGarbageCollection (Sivilotti & Pike), ByzantineGenerals (Lloyd),
// GardenersAndSharedWork (Kolikant), and TelephoneChain (Kitchen et al.).
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "pdcu/runtime/classroom.hpp"
#include "pdcu/runtime/scheduler.hpp"

namespace pdcu::act {

// --- SelfStabilizingTokenRing (Dijkstra's K-state protocol) -----------------

/// Ring state: one counter in [0, K) per student; student 0 is the root.
struct TokenRing {
  std::vector<int> states;
  int k = 0;  ///< K >= number of students

  /// A student is "privileged" (holds a token) when their rule is enabled:
  /// root when equal to the left neighbor, others when different.
  bool privileged(std::size_t i) const;
  /// Number of tokens currently in the ring.
  int token_count() const;
  /// Legitimate configurations have exactly one token.
  bool legitimate() const { return token_count() == 1; }
  /// Fires student i's rule if enabled (the classroom move).
  void step(std::size_t i);
};

struct StabilizationResult {
  bool stabilized = false;
  std::size_t steps = 0;          ///< moves until first legitimate state
  int initial_tokens = 0;
  bool stayed_legitimate = false; ///< closure: legitimate ever after
};

/// Runs the ring from an arbitrary (possibly corrupt) state under the given
/// schedule until it reaches a legitimate configuration, then verifies
/// closure for `closure_steps` more moves.
StabilizationResult stabilize_token_ring(std::vector<int> initial_states,
                                         int k, rt::SchedulePolicy policy,
                                         std::uint64_t seed,
                                         std::size_t max_steps,
                                         std::size_t closure_steps = 200);

// --- StableLeaderElection -----------------------------------------------------

struct ElectionResult {
  std::int64_t leader_id = -1;
  bool elected_maximum = false;   ///< safety: the max id won
  bool stable = false;            ///< no changes once converged
  std::size_t steps = 0;          ///< agent moves (gossip variant)
  std::int64_t messages = 0;      ///< ring messages (Chang-Roberts variant)
};

/// The dramatized "adopt the larger candidate you can see" protocol: each
/// student repeatedly takes the max of their candidate and their left
/// neighbor's. Converges to the maximum id everywhere; stability checked by
/// running extra steps after convergence.
ElectionResult leader_election_gossip(const std::vector<std::int64_t>& ids,
                                      rt::SchedulePolicy policy,
                                      std::uint64_t seed,
                                      std::size_t max_steps);

/// Chang-Roberts message-passing election on the classroom runtime; counts
/// real messages.
ElectionResult leader_election_ring(const std::vector<std::int64_t>& ids);

// --- ByzantineGenerals (oral messages, OM(m)) ----------------------------------

struct ByzantineResult {
  std::vector<int> loyal_decisions;  ///< decision of each loyal lieutenant
  bool agreement = false;  ///< IC1: all loyal lieutenants agree
  bool validity = false;   ///< IC2: loyal commander's order is obeyed
  std::int64_t messages = 0;
};

/// Runs Lamport-Shostak-Pease OM(m) with `generals` participants
/// (general 0 commands), the given traitor set, and `order` in {0, 1}.
/// Traitors lie deterministically based on the recipient, the worst case
/// the classroom discovers.
ByzantineResult byzantine_om(int generals, const std::set<int>& traitors,
                             int rounds, int order);

// --- ParallelGarbageCollection ---------------------------------------------------

/// Tri-color marking state of a heap object.
enum class GcColor { kWhite, kGray, kBlack };

struct GcResult {
  bool lost_live_object = false;  ///< a reachable object was collected
  int collected = 0;
  int live = 0;
  std::size_t steps = 0;
};

/// Concurrent mark-sweep on a random object graph: mutator agents re-point
/// edges while the collector marks. With the write barrier (the classroom's
/// "shout when you hide a box") no live object is ever collected; without
/// it, adversarial schedules can hide live objects.
GcResult parallel_gc(int objects, int edges, int mutator_moves,
                     bool write_barrier, std::uint64_t seed);

// --- GardenersAndSharedWork --------------------------------------------------------

/// Coordination scheme for watering the orchard.
enum class GardenScheme {
  kNoCoordination,  ///< everyone waters whatever looks dry (duplicates)
  kStaticRows,      ///< rows partitioned in advance
  kGateNotes        ///< shared marks at the gate (mutex-protected set)
};

struct GardenResult {
  int trees = 0;
  int watered_exactly_once = 0;
  int watered_twice_or_more = 0;
  int skipped = 0;
};

/// `gardeners` threads water `trees` trees under the scheme.
GardenResult water_orchard(int gardeners, int trees, GardenScheme scheme,
                           std::uint64_t seed);

// --- TelephoneChain ------------------------------------------------------------------

struct TelephoneResult {
  std::int64_t chain_makespan = 0;  ///< virtual time, linear chain
  std::int64_t tree_makespan = 0;   ///< virtual time, binomial tree
  int chain_hops = 0;
  int corrupted_words = 0;  ///< words garbled along the chain
};

/// Whispers a message of `words` words along a chain of `students`, then
/// broadcasts it along a tree, comparing completion times; each hop garbles
/// a word with probability `garble_percent`/100.
TelephoneResult telephone_chain(int students, int words, int garble_percent,
                                std::uint64_t seed);

}  // namespace pdcu::act
