// AVX2 Game of Life row kernel. This TU is compiled with -mavx2 when the
// toolchain and target support it (see src/activities/CMakeLists.txt); on
// other configurations it degrades to a stub that reports
// avx2_compiled() == false and is never dispatched.
#include "stencil_kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <initializer_list>

namespace pdcu::act::detail {

bool avx2_compiled() { return true; }

void life_row_avx2(const std::uint8_t* up, const std::uint8_t* mid,
                   const std::uint8_t* down, std::uint8_t* out,
                   std::size_t w) {
  if (w < 34) {
    // Too narrow for even one unaligned 32-byte interior block.
    life_row_scalar(up, mid, down, out, w);
    return;
  }
  const __m256i two = _mm256_set1_epi8(2);
  const __m256i three = _mm256_set1_epi8(3);
  const __m256i one = _mm256_set1_epi8(1);

  std::size_t c = 1;
  for (; c + 32 < w; c += 32) {
    // Sum the eight neighbour bytes; counts peak at 8, no saturation
    // needed.
    __m256i count = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(up + c - 1));
    count = _mm256_add_epi8(count, _mm256_loadu_si256(
                                       reinterpret_cast<const __m256i*>(up + c)));
    count = _mm256_add_epi8(
        count,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(up + c + 1)));
    count = _mm256_add_epi8(
        count,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mid + c - 1)));
    count = _mm256_add_epi8(
        count,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mid + c + 1)));
    count = _mm256_add_epi8(
        count,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(down + c - 1)));
    count = _mm256_add_epi8(
        count,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(down + c)));
    count = _mm256_add_epi8(
        count,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(down + c + 1)));

    const __m256i alive = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(mid + c));
    const __m256i eq3 = _mm256_cmpeq_epi8(count, three);
    const __m256i eq2 = _mm256_cmpeq_epi8(count, two);
    // alive cells are exactly 1, so cmpeq against 1 gives the 0xFF mask.
    const __m256i alive_mask = _mm256_cmpeq_epi8(alive, one);
    const __m256i next = _mm256_and_si256(
        _mm256_or_si256(eq3, _mm256_and_si256(eq2, alive_mask)), one);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + c), next);
  }

  // Scalar for the interior tail and both wrap columns, with the same
  // rule expression as the reference kernel.
  for (; c + 1 < w; ++c) {
    const int count = up[c - 1] + up[c] + up[c + 1] + mid[c - 1] +
                      mid[c + 1] + down[c - 1] + down[c] + down[c + 1];
    out[c] =
        static_cast<std::uint8_t>(count == 3 || (mid[c] != 0 && count == 2));
  }
  for (std::size_t edge : {std::size_t{0}, w - 1}) {
    const std::size_t left = (edge + w - 1) % w;
    const std::size_t right = (edge + 1) % w;
    const int count = up[left] + up[edge] + up[right] + mid[left] +
                      mid[right] + down[left] + down[edge] + down[right];
    out[edge] = static_cast<std::uint8_t>(count == 3 ||
                                          (mid[edge] != 0 && count == 2));
  }
}

}  // namespace pdcu::act::detail

#else  // !defined(__AVX2__)

namespace pdcu::act::detail {

bool avx2_compiled() { return false; }

void life_row_avx2(const std::uint8_t* up, const std::uint8_t* mid,
                   const std::uint8_t* down, std::uint8_t* out,
                   std::size_t w) {
  // Unreachable through life_step (kernel_available gates dispatch), but
  // kept callable so direct users of the detail interface still get the
  // right answer.
  life_row_scalar(up, mid, down, out, w);
}

}  // namespace pdcu::act::detail

#endif
