#include "pdcu/taxonomy/term_index.hpp"

#include <algorithm>

#include "pdcu/support/strings.hpp"

namespace pdcu::tax {

void TermIndex::add_page(const PageRef& page, const PageTags& tags) {
  ++total_pages_;
  for (const auto& [key, terms] : tags) {
    if (!config_.is_taxonomy_key(key)) continue;
    auto& term_map = index_[key];
    for (const auto& term : terms) {
      auto& pages = term_map[term];
      if (std::find(pages.begin(), pages.end(), page) == pages.end()) {
        pages.push_back(page);
      }
    }
  }
}

std::vector<std::string> TermIndex::terms(std::string_view taxonomy) const {
  std::vector<std::string> out;
  auto it = index_.find(taxonomy);
  if (it == index_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [term, pages] : it->second) out.push_back(term);
  return out;  // std::map iterates sorted
}

std::vector<PageRef> TermIndex::pages(std::string_view taxonomy,
                                      std::string_view term) const {
  const auto* found = find_pages(taxonomy, term);
  return found != nullptr ? *found : std::vector<PageRef>{};
}

const std::vector<PageRef>* TermIndex::find_pages(std::string_view taxonomy,
                                                  std::string_view term) const {
  auto it = index_.find(taxonomy);
  if (it == index_.end()) return nullptr;
  auto jt = it->second.find(term);
  return jt == it->second.end() ? nullptr : &jt->second;
}

std::size_t TermIndex::count(std::string_view taxonomy,
                             std::string_view term) const {
  const auto* found = find_pages(taxonomy, term);
  return found != nullptr ? found->size() : 0;
}

std::vector<PageRef> TermIndex::pages_with_any(
    std::string_view taxonomy, const std::vector<std::string>& terms) const {
  std::vector<PageRef> out;
  for (const auto& term : terms) {
    for (const auto& page : pages(taxonomy, term)) {
      if (std::find(out.begin(), out.end(), page) == out.end()) {
        out.push_back(page);
      }
    }
  }
  return out;
}

std::vector<PageRef> TermIndex::pages_with_all(
    std::string_view taxonomy, const std::vector<std::string>& terms) const {
  if (terms.empty()) return {};
  std::vector<PageRef> out = pages(taxonomy, terms.front());
  for (std::size_t i = 1; i < terms.size() && !out.empty(); ++i) {
    std::vector<PageRef> with_term = pages(taxonomy, terms[i]);
    std::vector<PageRef> kept;
    for (const auto& page : out) {
      if (std::find(with_term.begin(), with_term.end(), page) !=
          with_term.end()) {
        kept.push_back(page);
      }
    }
    out = std::move(kept);
  }
  return out;
}

namespace {

/// Case-folded with '-' and '_' unified, so user input like
/// "pd-communication" resolves against "PD_CommunicationCoordination".
std::string fold_term(std::string_view term) {
  std::string folded = strings::to_lower(term);
  for (char& c : folded) {
    if (c == '-') c = '_';
  }
  return folded;
}

}  // namespace

std::optional<std::string> TermIndex::resolve_term(
    std::string_view taxonomy, std::string_view input) const {
  auto it = index_.find(taxonomy);
  if (it == index_.end() || input.empty()) return std::nullopt;
  const std::string needle = fold_term(input);

  std::optional<std::string> prefix_match;
  bool ambiguous = false;
  for (const auto& [term, pages] : it->second) {
    const std::string folded = fold_term(term);
    if (folded == needle) return term;  // exact beats any prefix
    if (strings::starts_with(folded, needle)) {
      ambiguous = prefix_match.has_value();
      prefix_match = term;
    }
  }
  return ambiguous ? std::nullopt : prefix_match;
}

}  // namespace pdcu::tax
