#include "pdcu/taxonomy/chips.hpp"

#include "pdcu/support/slug.hpp"
#include "pdcu/support/strings.hpp"

namespace pdcu::tax {

namespace strs = pdcu::strings;

std::string term_url(const Taxonomy& taxonomy, const std::string& term) {
  return "/" + taxonomy.key + "/" + slugify(term) + "/";
}

std::string html_chip(const Taxonomy& taxonomy, const std::string& term) {
  return "<a class=\"chip chip-" + taxonomy.key + "\" style=\"background:" +
         taxonomy.color.hex + "\" href=\"" + term_url(taxonomy, term) +
         "\">" + strs::html_escape(term) + "</a>";
}

std::string ansi_chip(const Taxonomy& taxonomy, const std::string& term) {
  return "\x1b[38;5;" + std::to_string(taxonomy.color.ansi256) + "m[" + term +
         "]\x1b[0m";
}

std::string plain_chip(const Taxonomy& taxonomy, const std::string& term) {
  (void)taxonomy;
  return "[" + term + "]";
}

}  // namespace pdcu::tax
