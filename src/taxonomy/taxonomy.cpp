#include "pdcu/taxonomy/taxonomy.hpp"

namespace pdcu::tax {

TaxonomyConfig TaxonomyConfig::pdcunplugged() {
  TaxonomyConfig config;
  // Visible taxonomies, in the order they appear under an activity title.
  config.add({std::string(keys::kCs2013), "CS2013", false,
              {"blue", "#2b6cb0", 27}});
  config.add({std::string(keys::kTcpp), "TCPP", false,
              {"green", "#2f855a", 28}});
  config.add({std::string(keys::kCourses), "Courses", false,
              {"purple", "#6b46c1", 93}});
  config.add({std::string(keys::kSenses), "Senses", false,
              {"orange", "#c05621", 166}});
  // Hidden taxonomies used by the CS2013 / TCPP / Accessibility views.
  config.add({std::string(keys::kCs2013Details), "CS2013 Learning Outcomes",
              true, {"lightblue", "#63b3ed", 75}});
  config.add({std::string(keys::kTcppDetails), "TCPP Topics", true,
              {"lightgreen", "#68d391", 77}});
  config.add({std::string(keys::kMedium), "Medium", true,
              {"red", "#c53030", 124}});
  return config;
}

std::vector<Taxonomy> TaxonomyConfig::visible() const {
  std::vector<Taxonomy> out;
  for (const auto& t : taxonomies_) {
    if (!t.hidden) out.push_back(t);
  }
  return out;
}

std::optional<Taxonomy> TaxonomyConfig::find(std::string_view key) const {
  for (const auto& t : taxonomies_) {
    if (t.key == key) return t;
  }
  return std::nullopt;
}

}  // namespace pdcu::tax
