// The term index: Hugo's taxonomy grouping. Given tagged pages, groups them
// by (taxonomy, term) so the site can render a listing page per term and the
// views can enumerate activities per learning outcome / topic.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "pdcu/taxonomy/taxonomy.hpp"

namespace pdcu::tax {

/// A lightweight reference to a tagged page.
struct PageRef {
  std::string slug;   ///< e.g. "findsmallestcard"
  std::string title;  ///< e.g. "FindSmallestCard"

  bool operator==(const PageRef& other) const { return slug == other.slug; }
};

/// Tags carried by one page: taxonomy key -> terms.
using PageTags = std::map<std::string, std::vector<std::string>, std::less<>>;

/// Groups pages by term, per taxonomy.
class TermIndex {
 public:
  explicit TermIndex(TaxonomyConfig config) : config_(std::move(config)) {}

  /// Indexes one page. Unknown taxonomy keys in `tags` are ignored (they are
  /// ordinary front-matter fields, not taxonomies). Duplicate terms on the
  /// same page index once.
  void add_page(const PageRef& page, const PageTags& tags);

  /// All terms of a taxonomy, sorted; empty for unknown taxonomies.
  std::vector<std::string> terms(std::string_view taxonomy) const;

  /// Pages carrying a term, in insertion (curation) order.
  std::vector<PageRef> pages(std::string_view taxonomy,
                             std::string_view term) const;

  /// Pages carrying a term, without copying: a pointer into the index,
  /// valid until the next add_page; nullptr when the taxonomy or term is
  /// unknown. The search filter path resolves tens of thousands of slugs
  /// per query through this — pages() would clone every PageRef string.
  const std::vector<PageRef>* find_pages(std::string_view taxonomy,
                                         std::string_view term) const;

  /// Number of pages carrying a term.
  std::size_t count(std::string_view taxonomy, std::string_view term) const;

  /// Pages carrying *any* term of the taxonomy (deduplicated, insertion
  /// order). Used for per-knowledge-unit activity totals.
  std::vector<PageRef> pages_with_any(
      std::string_view taxonomy,
      const std::vector<std::string>& terms) const;

  /// Pages carrying *all* the given terms (intersection query for views).
  std::vector<PageRef> pages_with_all(
      std::string_view taxonomy,
      const std::vector<std::string>& terms) const;

  /// Resolves user input to a canonical term of the taxonomy: first an
  /// exact match, then a prefix match if it is unique — both case-folded
  /// and with '-'/'_' unified. Ambiguous or unknown input resolves to
  /// nullopt. Used by the search query language (`cs2013:PD-Communication`
  /// -> "PD_CommunicationCoordination").
  std::optional<std::string> resolve_term(std::string_view taxonomy,
                                          std::string_view input) const;

  std::size_t page_count() const { return total_pages_; }

  const TaxonomyConfig& config() const { return config_; }

 private:
  TaxonomyConfig config_;
  // taxonomy key -> term -> pages (insertion order).
  std::map<std::string, std::map<std::string, std::vector<PageRef>,
                                 std::less<>>,
           std::less<>>
      index_;
  std::size_t total_pages_ = 0;
};

}  // namespace pdcu::tax
