// Term "chips": the colored tags rendered under an activity title (Fig. 3).
// Rendered two ways: HTML for the generated site and ANSI for terminal tools.
#pragma once

#include <string>

#include "pdcu/taxonomy/taxonomy.hpp"

namespace pdcu::tax {

/// HTML chip: a colored link to the term's listing page,
/// e.g. <a class="chip chip-cs2013" style="background:#2b6cb0"
///        href="/cs2013/pd_parallelalgorithms/">PD_ParallelAlgorithms</a>.
std::string html_chip(const Taxonomy& taxonomy, const std::string& term);

/// ANSI chip for terminal rendering: `[term]` wrapped in the taxonomy color.
std::string ansi_chip(const Taxonomy& taxonomy, const std::string& term);

/// Plain chip without color codes (for logs and golden tests).
std::string plain_chip(const Taxonomy& taxonomy, const std::string& term);

/// Site-relative URL of a term page, e.g. "/cs2013/pd_parallelalgorithms/".
std::string term_url(const Taxonomy& taxonomy, const std::string& term);

}  // namespace pdcu::tax
