// The taxonomy system: the reason the paper chose Hugo (§II.B).
//
// A taxonomy is a named classification axis (e.g. `cs2013`, `senses`); each
// page lists a subset of the taxonomy's terms in its front matter, and the
// engine groups pages by term so every term gets a listing page.
//
// PDCunplugged defines seven taxonomies: four visible in the activity header
// (cs2013, tcpp, courses, senses) and three hidden ones used to build views
// (cs2013details, tcppdetails, medium).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pdcu::tax {

/// Display color assigned to a taxonomy's chips ("Each taxonomy is assigned
/// a different color", §II.B).
struct Color {
  std::string name;      ///< human name, e.g. "teal"
  std::string hex;       ///< CSS hex, e.g. "#1f8a8c"
  int ansi256 = 7;       ///< ANSI-256 code for terminal chips
};

/// A taxonomy definition.
struct Taxonomy {
  std::string key;          ///< front-matter key, e.g. "cs2013"
  std::string display_name; ///< e.g. "CS2013"
  bool hidden = false;      ///< hidden taxonomies don't render in headers
  Color color;

  bool operator==(const Taxonomy& other) const { return key == other.key; }
};

/// The fixed PDCunplugged taxonomy configuration.
class TaxonomyConfig {
 public:
  /// Builds the seven-taxonomy PDCunplugged configuration.
  static TaxonomyConfig pdcunplugged();

  /// All taxonomies, visible first, in stable order.
  const std::vector<Taxonomy>& all() const { return taxonomies_; }

  /// Taxonomies rendered in the activity header (non-hidden), in order.
  std::vector<Taxonomy> visible() const;

  /// Lookup by front-matter key.
  std::optional<Taxonomy> find(std::string_view key) const;

  bool is_taxonomy_key(std::string_view key) const {
    return find(key).has_value();
  }

  void add(Taxonomy taxonomy) { taxonomies_.push_back(std::move(taxonomy)); }

 private:
  std::vector<Taxonomy> taxonomies_;
};

/// Canonical keys for the PDCunplugged taxonomies.
namespace keys {
inline constexpr std::string_view kCs2013 = "cs2013";
inline constexpr std::string_view kTcpp = "tcpp";
inline constexpr std::string_view kCourses = "courses";
inline constexpr std::string_view kSenses = "senses";
inline constexpr std::string_view kCs2013Details = "cs2013details";
inline constexpr std::string_view kTcppDetails = "tcppdetails";
inline constexpr std::string_view kMedium = "medium";
}  // namespace keys

}  // namespace pdcu::tax
