#include "pdcu/extensions/proposed.hpp"

#include "../core/curation_parts.hpp"

namespace pdcu::ext {

namespace {

const char* kThisRepo =
    "PDCunplugged-C++ reproduction, proposed gap-filling activities, 2020.";

std::vector<core::Activity> build() {
  using core::detail::ActivitySpec;
  using core::detail::expand;
  std::vector<core::Activity> out;

  out.push_back(expand(ActivitySpec{
      "HumanScan",
      2020,
      "2020-03-01",
      {"PDCunplugged community (proposed)"},
      "",
      "Students in a row hold numbers. In round k, every student "
      "simultaneously shows their running total to the student 2^k places "
      "to the right, then adds what arrived from 2^k places to the left. "
      "After ceil(log2 n) rounds every student holds the prefix sum of "
      "the row - the Hillis-Steele parallel scan, kinesthetically. Fills "
      "the parallel-prefix hole in the Algorithmic Paradigms category "
      "(SSIII.C).",
      "Standing row with simultaneous exchanges; a seated variant passes "
      "running-total slips along desk rows.",
      "No formal assessment yet; proposed activity.",
      {},
      {{kThisRepo, ""}},
      {"PD_5", "PAAP_4"},
      {"K_Scan", "C_ComputationDecomposition"},
      {"CS2", "DSA"},
      {"movement", "visual"},
      {"role-play", "cards"},
      "human_scan"}));

  out.push_back(expand(ActivitySpec{
      "BucketBrigadeScatterGather",
      2020,
      "2020-03-01",
      {"PDCunplugged community (proposed)"},
      "",
      "A teacher must hand a worksheet stack to every student and collect "
      "marked totals back. First the teacher walks to each desk in turn; "
      "then the class forms a bucket brigade that splits the stack in "
      "half at every hand-off (a binomial scatter) and merges totals the "
      "same way coming back (gather). Timing both runs shows why "
      "collective communication constructs beat root-does-everything - "
      "the scatter/gather and broadcast/multicast topics SSIII.C finds "
      "uncovered.",
      "Passing stacks hand to hand; works seated along rows.",
      "No formal assessment yet; proposed activity.",
      {},
      {{kThisRepo, ""}},
      {"PCC_4"},
      {"C_ScatterGather", "C_BroadcastMulticast", "C_CommunicationOverhead"},
      {"CS2", "DSA", "Systems"},
      {"movement", "touch"},
      {"role-play", "paper"},
      "bucket_brigade"}));

  out.push_back(expand(ActivitySpec{
      "LibraryWebSearch",
      2020,
      "2020-03-05",
      {"PDCunplugged community (proposed)"},
      "",
      "Each student owns a card box of 'documents' (an index shard). The "
      "teacher announces a query; every shard simultaneously scores its "
      "own cards and shouts out only its three best; the aggregator desk "
      "merges the shouted lists into the final ranking. The class "
      "verifies the merged answer equals what one student reading every "
      "card would produce - how a web search parallelizes, the "
      "never-covered K_WebSearch topic.",
      "Seated card scoring; shouting can be replaced by held-up slates.",
      "No formal assessment yet; proposed activity.",
      {},
      {{kThisRepo, ""}},
      {"PD_4", "PAAP_4"},
      {"K_WebSearch", "A_Search"},
      {"CS1", "CS2", "DSA"},
      {"visual", "touch"},
      {"cards", "game"},
      "web_search"}));

  out.push_back(expand(ActivitySpec{
      "FingerTableRelay",
      2020,
      "2020-03-05",
      {"PDCunplugged community (proposed)"},
      "",
      "Students form a ring; each memorizes who stands 1, 2, 4, and 8 "
      "places clockwise (their finger table). A request card for a "
      "numbered locker is routed by always taking the longest jump that "
      "does not overshoot. The class counts hops and compares with "
      "passing the card neighbour to neighbour: log n versus n - the "
      "peer-to-peer lookup structure (Chord) behind file-sharing "
      "networks, filling the K_PeerToPeer gap.",
      "Standing ring with card passing; jumps can be called out rather "
      "than walked.",
      "No formal assessment yet; proposed activity.",
      {},
      {{kThisRepo, ""}},
      {"DS_7"},
      {"K_PeerToPeer", "C_CommunicationCost"},
      {"CS2", "DSA", "Systems"},
      {"movement", "visual"},
      {"role-play", "cards"},
      "p2p_lookup"}));

  out.push_back(expand(ActivitySpec{
      "FoodTruckElasticity",
      2020,
      "2020-03-10",
      {"PDCunplugged community (proposed)"},
      "",
      "A lunch rush hits a row of food trucks (students with stamp pads "
      "serving customer cards). With a fixed number of trucks the queue "
      "explodes at noon and trucks stand idle at two; with an elastic "
      "rule - open a truck when the line exceeds six, close one when it "
      "drops below two - the queue stays bounded while paying for far "
      "fewer truck-minutes. Cloud elasticity and pay-for-what-you-use, "
      "filling the cloud/grid gap the paper highlights twice (SSIII.C, "
      "SSIII.E).",
      "Queue role-play with optional seated variant dealing customer "
      "cards to server desks.",
      "No formal assessment yet; proposed activity.",
      {},
      {{kThisRepo, ""}},
      {"CC_1"},
      {"K_CloudGrid", "C_DynamicLoadBalancing"},
      {"CS1", "CS2", "Systems"},
      {"movement", "visual"},
      {"role-play", "game"},
      "food_truck_rush"}));

  out.push_back(expand(ActivitySpec{
      "PhoneBatteryBudget",
      2020,
      "2020-03-10",
      {"PDCunplugged community (proposed)"},
      "",
      "Students schedule homework on a phone with a battery meter drawn "
      "on the board: running fast drains the battery cubically faster "
      "but finishes early and lets the phone deep-sleep; running slow "
      "sips power but never sleeps. Given work, a deadline, and an idle "
      "power, teams compute both plans' total energy and argue when "
      "race-to-idle wins. Power consumption is the gap SSIII.E names "
      "explicitly ('perhaps most glaring').",
      "Board-and-worksheet arithmetic; no movement required.",
      "No formal assessment yet; proposed activity.",
      {},
      {{kThisRepo, ""}},
      {"PP_7"},
      {"K_EnergyEfficiency", "C_CostsOfComputation"},
      {"CS2", "DSA", "Systems"},
      {"visual"},
      {"board", "paper"},
      "battery_budget"}));

  out.push_back(expand(ActivitySpec{
      "BankTransferRace",
      2020,
      "2020-03-15",
      {"PDCunplugged community (proposed)"},
      "",
      "Two tellers move money between two account jars. Every individual "
      "action is atomic - one teller holds the jar while reading or "
      "writing its slip - yet interleaved transfers still make money "
      "appear or vanish, because the four-step transfer is not one "
      "transaction. The class then adds a transaction wand (only its "
      "holder may touch either jar) and the invariant holds. Exactly the "
      "distinction CS2013 PF outcome 3 asks for - data races versus "
      "higher-level races - which SSIII.B reports no activity covers.",
      "Table-top jar-and-slip manipulation; fully seated.",
      "No formal assessment yet; proposed activity.",
      {},
      {{kThisRepo, ""}},
      {"PF_3", "PCC_1"},
      {"K_HigherLevelRaces", "C_DataRaces"},
      {"CS2", "DSA", "Systems"},
      {"touch", "visual"},
      {"role-play", "coins"},
      "bank_transfer_race"}));

  out.push_back(expand(ActivitySpec{
      "ParallelStencilGameOfLife",
      2020,
      "2020-03-20",
      {"PDCunplugged community (proposed)"},
      "",
      "The class becomes a Game of Life torus: desks are cells, each "
      "student holds a card (alive/dead) and on every clap counts the "
      "eight neighbouring cards and flips simultaneously. Then the room "
      "is cut into row strips owned by teams: inside a strip neighbours "
      "just look at each other (shared memory), but strip edges must be "
      "passed as written halo notes to the next team each generation "
      "(message passing) - the shared-vs-distributed communication "
      "contrast of PCC outcome 8. A final round marches one 'SIMD "
      "caller' down a row applying the same rule to every cell in "
      "lockstep, the array-notation idea behind K_SIMDNotation. The "
      "pdcu stencil simulation replays the same decomposition with "
      "serial, thread-tiled, and AVX2 kernels that stay bit-identical.",
      "Card flipping at desks; halo notes pass along rows, no standing "
      "required.",
      "No formal assessment yet; proposed activity.",
      {},
      {{kThisRepo, ""}},
      {"PCC_8"},
      {"K_SIMDNotation", "C_DataParallelNotation"},
      {"CS2", "DSA", "Systems"},
      {"visual", "touch"},
      {"cards", "role-play"},
      "game_of_life"}));

  return out;
}

}  // namespace

const std::vector<core::Activity>& proposed_activities() {
  static const std::vector<core::Activity> kProposed = build();
  return kProposed;
}

const core::Activity* find_proposed(std::string_view slug) {
  for (const auto& activity : proposed_activities()) {
    if (activity.slug == slug) return &activity;
  }
  return nullptr;
}

}  // namespace pdcu::ext
