#include "pdcu/extensions/gap_sims.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <deque>
#include <thread>

#include "pdcu/support/rng.hpp"

namespace pdcu::ext {

// --- HumanScan ----------------------------------------------------------------

ScanResult human_scan(const std::vector<std::int64_t>& values,
                      rt::TraceLog* trace) {
  ScanResult result;
  const int n = static_cast<int>(values.size());
  if (n == 0) return result;
  result.prefix.resize(values.size());

  std::vector<std::int64_t> gathered(values.size());
  auto body = [&](rt::Comm& comm) {
    const int i = comm.rank();
    std::int64_t held = values[static_cast<std::size_t>(i)];
    int round = 0;
    for (int stride = 1; stride < n; stride <<= 1, ++round) {
      // Everyone simultaneously shows their value to the student `stride`
      // places to the right, then adds what arrived from the left.
      if (i + stride < n) comm.send(i + stride, {held}, /*tag=*/round);
      std::int64_t incoming = 0;
      if (i - stride >= 0) {
        incoming = comm.recv(i - stride, round).payload[0];
      }
      comm.work(1);
      held += incoming;
      if (trace != nullptr && i - stride >= 0) {
        comm.log("adds the value from student " +
                 std::to_string(i - stride) + ", now holds " +
                 std::to_string(held));
      }
      comm.barrier();
    }
    if (comm.rank() == 0) result.rounds = round;
    auto all = comm.gather(0, held);
    if (comm.rank() == 0) gathered = std::move(all);
  };
  rt::ClassroomResult run = rt::Classroom::run(n, body, {}, trace);
  for (std::size_t i = 0; i < gathered.size(); ++i) {
    result.prefix[i] = gathered[i];
  }
  result.cost = run.cost;
  return result;
}

// --- BucketBrigade --------------------------------------------------------------

BrigadeResult bucket_brigade(int students, int items, rt::TraceLog* trace) {
  assert(students >= 1 && items >= students);
  BrigadeResult result;

  std::vector<std::int64_t> worksheets(static_cast<std::size_t>(items));
  for (int i = 0; i < items; ++i) {
    worksheets[static_cast<std::size_t>(i)] = i + 1;
  }
  const std::int64_t expected_total =
      static_cast<std::int64_t>(items) * (items + 1) / 2;

  // Naive: the teacher (rank 0) walks to each student with their stack,
  // then walks back to collect each total.
  std::atomic<bool> naive_ok{true};
  auto naive = [&](rt::Comm& comm) {
    const int n = comm.size();
    const std::size_t chunk =
        (worksheets.size() + static_cast<std::size_t>(n) - 1) /
        static_cast<std::size_t>(n);
    if (comm.rank() == 0) {
      for (int dst = 1; dst < n; ++dst) {
        std::size_t lo = std::min(worksheets.size(),
                                  chunk * static_cast<std::size_t>(dst));
        std::size_t hi = std::min(worksheets.size(), lo + chunk);
        comm.work(2);  // the walk
        comm.send(dst,
                  std::vector<std::int64_t>(
                      worksheets.begin() + static_cast<long>(lo),
                      worksheets.begin() + static_cast<long>(hi)),
                  1);
      }
      std::int64_t total = 0;
      for (std::size_t i = 0; i < std::min(chunk, worksheets.size()); ++i) {
        comm.work(1);
        total += worksheets[i];
      }
      for (int src = 1; src < n; ++src) {
        comm.work(2);
        total += comm.recv(rt::kAny, 2).payload[0];
      }
      if (total != expected_total) naive_ok.store(false);
    } else {
      std::vector<std::int64_t> mine = comm.recv(0, 1).payload;
      std::int64_t total = 0;
      for (std::int64_t v : mine) {
        comm.work(1);
        total += v;
      }
      comm.send(0, {total}, 2);
    }
  };
  auto naive_run = rt::Classroom::run(students, naive);
  result.naive_makespan = naive_run.cost.makespan;

  // Brigade: binomial-tree scatter, local sum, binomial-tree reduce.
  std::atomic<bool> tree_ok{true};
  auto tree = [&](rt::Comm& comm) {
    std::vector<std::int64_t> mine = comm.scatter(0, worksheets);
    std::int64_t total = 0;
    for (std::int64_t v : mine) {
      comm.work(1);
      total += v;
    }
    if (trace != nullptr) {
      comm.log("passes a stack down the brigade and reports " +
               std::to_string(total));
    }
    std::int64_t sum = comm.reduce(
        0, total, [](std::int64_t a, std::int64_t b) { return a + b; });
    if (comm.rank() == 0 && sum != expected_total) tree_ok.store(false);
  };
  auto tree_run = rt::Classroom::run(students, tree, {}, trace);
  result.tree_makespan = tree_run.cost.makespan;
  result.all_delivered = naive_ok.load() && tree_ok.load();
  result.totals_match = result.all_delivered;
  return result;
}

// --- LibraryWebSearch -------------------------------------------------------------

WebSearchResult web_search(int shards, int docs_per_shard, int top_k,
                           std::uint64_t seed) {
  assert(shards >= 1 && top_k >= 1);
  WebSearchResult result;
  result.shards = shards;

  // Document scores: doc id -> relevance for "the query".
  const int total_docs = shards * docs_per_shard;
  Rng rng(seed);
  std::vector<std::int64_t> score(static_cast<std::size_t>(total_docs));
  for (auto& s : score) s = rng.between(0, 1000000);

  // Serial oracle: full sort by (score desc, id asc).
  std::vector<std::int64_t> oracle(static_cast<std::size_t>(total_docs));
  for (int d = 0; d < total_docs; ++d) {
    oracle[static_cast<std::size_t>(d)] = d;
  }
  std::sort(oracle.begin(), oracle.end(),
            [&](std::int64_t a, std::int64_t b) {
              if (score[static_cast<std::size_t>(a)] !=
                  score[static_cast<std::size_t>(b)]) {
                return score[static_cast<std::size_t>(a)] >
                       score[static_cast<std::size_t>(b)];
              }
              return a < b;
            });
  oracle.resize(static_cast<std::size_t>(top_k));

  // Each shard scores its slice and reports its local top-k; the
  // aggregator merges. Shard s owns docs [s*dps, (s+1)*dps).
  std::vector<std::int64_t> merged;
  auto body = [&](rt::Comm& comm) {
    const int s = comm.rank();
    const int lo = s * docs_per_shard;
    const int hi = lo + docs_per_shard;
    std::vector<std::int64_t> local;
    for (int d = lo; d < hi; ++d) {
      comm.work(1);  // score one card
      local.push_back(d);
    }
    std::sort(local.begin(), local.end(),
              [&](std::int64_t a, std::int64_t b) {
                if (score[static_cast<std::size_t>(a)] !=
                    score[static_cast<std::size_t>(b)]) {
                  return score[static_cast<std::size_t>(a)] >
                         score[static_cast<std::size_t>(b)];
                }
                return a < b;
              });
    local.resize(std::min<std::size_t>(local.size(),
                                       static_cast<std::size_t>(top_k)));
    if (s != 0) {
      comm.send(0, local, /*tag=*/5);
    } else {
      std::vector<std::int64_t> pool = local;
      for (int i = 0; i < comm.size() - 1; ++i) {
        auto msg = comm.recv(rt::kAny, 5);
        pool.insert(pool.end(), msg.payload.begin(), msg.payload.end());
      }
      std::sort(pool.begin(), pool.end(),
                [&](std::int64_t a, std::int64_t b) {
                  if (score[static_cast<std::size_t>(a)] !=
                      score[static_cast<std::size_t>(b)]) {
                    return score[static_cast<std::size_t>(a)] >
                           score[static_cast<std::size_t>(b)];
                  }
                  return a < b;
                });
      comm.work(static_cast<std::int64_t>(pool.size()));
      pool.resize(static_cast<std::size_t>(top_k));
      merged = std::move(pool);
    }
  };
  auto run = rt::Classroom::run(shards, body);
  result.top_docs = std::move(merged);
  result.matches_serial_oracle = result.top_docs == oracle;
  result.cost = run.cost;
  return result;
}

// --- GossipPeerToPeer -----------------------------------------------------------

P2pResult p2p_lookup(int peers, int start, int target_key) {
  assert(peers >= 1);
  P2pResult result;
  result.max_possible = peers;
  const int owner = ((target_key % peers) + peers) % peers;
  result.linear_hops = ((owner - start) % peers + peers) % peers;

  // Finger-table routing: from `current`, jump the largest power-of-two
  // distance that does not overshoot the owner (clockwise).
  int current = start;
  while (current != owner) {
    int remaining = ((owner - current) % peers + peers) % peers;
    int jump = 1;
    while (jump * 2 <= remaining) jump *= 2;
    current = (current + jump) % peers;
    ++result.hops;
    if (result.hops > 2 * peers) return result;  // defensive
  }
  result.found = true;
  return result;
}

// --- FoodTruckElasticity -----------------------------------------------------------

ElasticityResult food_truck_rush(int fixed_trucks, int minutes,
                                 int scale_up_at, int scale_down_at,
                                 std::uint64_t seed) {
  assert(fixed_trucks >= 1 && minutes >= 1);
  ElasticityResult result;

  // Arrival curve: quiet, lunch spike in the middle, quiet again.
  Rng rng(seed);
  std::vector<int> arrivals(static_cast<std::size_t>(minutes));
  for (int t = 0; t < minutes; ++t) {
    const bool rush = t > minutes / 3 && t < 2 * minutes / 3;
    arrivals[static_cast<std::size_t>(t)] =
        static_cast<int>(rng.below(rush ? 8 : 2));
  }
  constexpr int kServicePerTruckPerMinute = 2;

  // Fixed provisioning.
  {
    int queue = 0;
    for (int t = 0; t < minutes; ++t) {
      queue += arrivals[static_cast<std::size_t>(t)];
      queue = std::max(0, queue - fixed_trucks * kServicePerTruckPerMinute);
      result.max_queue_static = std::max(result.max_queue_static, queue);
      result.truck_minutes_static += fixed_trucks;
    }
  }

  // Elastic provisioning: one truck minimum, scale on queue thresholds.
  {
    int queue = 0;
    int trucks = 1;
    for (int t = 0; t < minutes; ++t) {
      queue += arrivals[static_cast<std::size_t>(t)];
      if (queue > scale_up_at) {
        ++trucks;
        ++result.scale_ups;
      } else if (queue < scale_down_at && trucks > 1) {
        --trucks;
        ++result.scale_downs;
      }
      queue = std::max(0, queue - trucks * kServicePerTruckPerMinute);
      result.max_queue_elastic = std::max(result.max_queue_elastic, queue);
      result.truck_minutes_elastic += trucks;
    }
  }
  return result;
}

// --- PhoneBatteryBudget -------------------------------------------------------------

PowerResult battery_budget(std::int64_t work, std::int64_t deadline,
                           std::int64_t static_power) {
  assert(work > 0 && deadline > 0);
  PowerResult result;

  // Power model: running at frequency f costs f^3 + static_power per time
  // unit (dynamic + leakage) and retires f work units per time unit; deep
  // sleep after finishing is free. Fast: f=2 (race-to-idle). Slow: the
  // lowest integer f meeting the deadline.
  auto energy = [&](std::int64_t f, std::int64_t time) {
    return time * (f * f * f + static_power);
  };
  {
    const std::int64_t f = 2;
    result.fast_time = (work + f - 1) / f;
    result.fast_energy = energy(f, result.fast_time);
  }
  {
    std::int64_t f = 1;
    while ((work + f - 1) / f > deadline) ++f;
    result.slow_time = (work + f - 1) / f;
    result.deadline_met_slow = result.slow_time <= deadline;
    result.slow_energy = energy(f, result.slow_time);
  }
  return result;
}

// --- BankTransferRace ----------------------------------------------------------------

TransferResult bank_transfer_race(int trials, bool transactional,
                                  std::uint64_t seed) {
  TransferResult result;
  result.trials = trials;

  for (int trial = 0; trial < trials; ++trial) {
    // Two accounts, total 100. Two tellers each move 10 from A to B using
    // individually atomic loads and stores only.
    std::atomic<std::int64_t> account_a{100};
    std::atomic<std::int64_t> account_b{0};
    std::mutex transaction;

    auto teller = [&](int id) {
      Rng rng(seed + static_cast<std::uint64_t>(trial) * 131 +
              static_cast<std::uint64_t>(id));
      if (transactional) {
        std::lock_guard lock(transaction);
        account_a.store(account_a.load() - 10);
        account_b.store(account_b.load() + 10);
        return;
      }
      // Every access is atomic — no data race — but the four accesses are
      // not one atomic transaction.
      std::int64_t a = account_a.load();
      const auto spins = rng.below(32);
      for (std::uint64_t s = 0; s < spins; ++s) std::this_thread::yield();
      account_a.store(a - 10);
      std::int64_t b = account_b.load();
      account_b.store(b + 10);
    };
    std::thread t1(teller, 1);
    std::thread t2(teller, 2);
    t1.join();
    t2.join();
    if (account_a.load() + account_b.load() != 100) {
      ++result.invariant_violations;
    }
  }
  return result;
}

}  // namespace pdcu::ext
