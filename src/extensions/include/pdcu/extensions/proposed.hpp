// The paper's future-work agenda, implemented (§III.E, §IV): proposed new
// unplugged activities that fill the coverage holes the paper names —
// distributed systems, cloud computing, power consumption, communication
// constructs, parallel prefix, higher-level races, web search, and
// peer-to-peer — each with an executable simulation.
//
// These are deliberately NOT part of the 38-activity snapshot curation
// (which reproduces the paper's statistics exactly); they model the next
// batch of community contributions.
#pragma once

#include <vector>

#include "pdcu/core/activity.hpp"

namespace pdcu::ext {

/// Seven proposed activities targeting the paper's named gaps.
const std::vector<core::Activity>& proposed_activities();

/// Lookup by slug; nullptr when absent.
const core::Activity* find_proposed(std::string_view slug);

}  // namespace pdcu::ext
