// Executable simulations for the proposed gap-filling activities.
#pragma once

#include <cstdint>
#include <vector>

#include "pdcu/runtime/classroom.hpp"

namespace pdcu::ext {

// --- HumanScan: parallel prefix (fills the K_Scan / paradigms gap) ----------

struct ScanResult {
  std::vector<std::int64_t> prefix;  ///< inclusive prefix sums
  int rounds = 0;                    ///< ceil(log2 n) doubling rounds
  rt::RunCost cost;
};

/// Hillis-Steele doubling scan: in round k every student adds the value
/// held 2^k places to their left. One student per element.
ScanResult human_scan(const std::vector<std::int64_t>& values,
                      rt::TraceLog* trace = nullptr);

// --- BucketBrigade: scatter/gather + broadcast constructs --------------------

struct BrigadeResult {
  std::int64_t naive_makespan = 0;  ///< teacher hands every item personally
  std::int64_t tree_makespan = 0;   ///< binomial scatter + gather
  bool all_delivered = false;
  bool totals_match = false;
};

/// The teacher distributes `items` worksheets to `students` and collects
/// marked totals back, first walking to each student (linear), then via a
/// bucket-brigade tree (scatter/gather). Fills the C_ScatterGather and
/// C_BroadcastMulticast gaps.
BrigadeResult bucket_brigade(int students, int items,
                             rt::TraceLog* trace = nullptr);

// --- LibraryWebSearch: how parallel web search works -------------------------

struct WebSearchResult {
  std::vector<std::int64_t> top_docs;  ///< ids, best first
  bool matches_serial_oracle = false;
  rt::RunCost cost;
  std::int64_t shards = 0;
};

/// Index shards (students with card boxes) score a query locally and the
/// aggregator merges per-shard top-k lists — the scatter/score/merge
/// structure of a web search. Fills the K_WebSearch gap.
WebSearchResult web_search(int shards, int docs_per_shard, int top_k,
                           std::uint64_t seed);

// --- GossipPeerToPeer: peer-to-peer lookup -----------------------------------

struct P2pResult {
  bool found = false;
  int hops = 0;            ///< hops taken by the finger-table route
  int linear_hops = 0;     ///< hops a naive ring walk would take
  int max_possible = 0;    ///< ring size
};

/// A ring of students each knowing successors at distance 1, 2, 4, ...
/// (a human Chord): routing a request reaches the owner in O(log n) hops
/// versus O(n) for pass-to-your-neighbour. Fills the K_PeerToPeer gap.
P2pResult p2p_lookup(int peers, int start, int target_key);

// --- FoodTruckElasticity: cloud elasticity ------------------------------------

struct ElasticityResult {
  int max_queue_static = 0;    ///< worst queue with fixed trucks
  int max_queue_elastic = 0;   ///< worst queue with autoscaling
  std::int64_t truck_minutes_static = 0;   ///< resources paid for
  std::int64_t truck_minutes_elastic = 0;
  int scale_ups = 0;
  int scale_downs = 0;
};

/// A lunch rush hits a row of food trucks. Fixed provisioning either
/// starves the queue or wastes idle trucks; elastic provisioning opens a
/// truck when the queue passes `scale_up_at` and closes one when it falls
/// below `scale_down_at`. Fills the Cloud Computing / K_CloudGrid gap.
ElasticityResult food_truck_rush(int fixed_trucks, int minutes,
                                 int scale_up_at, int scale_down_at,
                                 std::uint64_t seed);

// --- PhoneBatteryBudget: power as a constraint ---------------------------------

struct PowerResult {
  std::int64_t fast_energy = 0;   ///< race-to-idle at high frequency
  std::int64_t slow_energy = 0;   ///< stretch at low frequency
  std::int64_t fast_time = 0;
  std::int64_t slow_time = 0;
  bool deadline_met_slow = false;
};

/// Finish `work` units before `deadline` on a phone. Running at frequency
/// f costs f^3 + static_power per time unit (dynamic plus leakage) and
/// retires f work units; once done the phone deep-sleeps for free.
/// Students discover that stretching wins when leakage is negligible and
/// race-to-idle wins when it dominates. Fills the PP_7 power gap.
PowerResult battery_budget(std::int64_t work, std::int64_t deadline,
                           std::int64_t static_power);

// --- BankTransferRace: higher-level races (PF_3) --------------------------------

struct TransferResult {
  int trials = 0;
  int invariant_violations = 0;  ///< money created or destroyed
  bool data_race_free = true;    ///< every single access was atomic
};

/// Two tellers move money between accounts using individually-atomic
/// reads and writes — no data race anywhere — yet the transfer invariant
/// (total balance constant) breaks: a *higher-level* race. With a
/// transaction lock the invariant holds. Fills the PF_3 gap.
TransferResult bank_transfer_race(int trials, bool transactional,
                                  std::uint64_t seed);

}  // namespace pdcu::ext
