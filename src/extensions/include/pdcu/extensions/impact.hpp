// Coverage-impact analysis: what the proposed activities would do to
// Tables I and II — the "gauge the level of potential impact" workflow the
// paper describes for activity authors (§II.C), computed.
#pragma once

#include <string>
#include <vector>

#include "pdcu/core/coverage.hpp"

namespace pdcu::ext {

/// Before/after coverage for one knowledge unit or topic area.
struct ImpactRow {
  std::string name;
  std::size_t total;           ///< outcomes or topics
  std::size_t covered_before;
  std::size_t covered_after;

  std::size_t gained() const { return covered_after - covered_before; }
};

/// The combined curation: the 38-activity snapshot plus the proposals.
std::vector<core::Activity> extended_curation();

/// Table I impact (9 rows).
std::vector<ImpactRow> cs2013_impact();

/// Table II impact (4 rows).
std::vector<ImpactRow> tcpp_impact();

/// Gap terms closed by the proposals (previously uncovered, now covered).
std::vector<std::string> gaps_closed();

/// Renders the full before/after report.
std::string render_impact_report();

}  // namespace pdcu::ext
