#include "pdcu/extensions/impact.hpp"

#include <algorithm>
#include <set>

#include "pdcu/core/curation.hpp"
#include "pdcu/core/gaps.hpp"
#include "pdcu/extensions/proposed.hpp"
#include "pdcu/support/text_table.hpp"

namespace pdcu::ext {

std::vector<core::Activity> extended_curation() {
  std::vector<core::Activity> all = core::curation();
  const auto& proposed = proposed_activities();
  all.insert(all.end(), proposed.begin(), proposed.end());
  return all;
}

std::vector<ImpactRow> cs2013_impact() {
  core::CoverageAnalyzer before(core::curation());
  auto extended = extended_curation();
  core::CoverageAnalyzer after(extended);
  auto before_rows = before.cs2013_table();
  auto after_rows = after.cs2013_table();
  std::vector<ImpactRow> out;
  for (std::size_t i = 0; i < before_rows.size(); ++i) {
    out.push_back({before_rows[i].unit_name, before_rows[i].num_outcomes,
                   before_rows[i].covered_outcomes,
                   after_rows[i].covered_outcomes});
  }
  return out;
}

std::vector<ImpactRow> tcpp_impact() {
  core::CoverageAnalyzer before(core::curation());
  auto extended = extended_curation();
  core::CoverageAnalyzer after(extended);
  auto before_rows = before.tcpp_table();
  auto after_rows = after.tcpp_table();
  std::vector<ImpactRow> out;
  for (std::size_t i = 0; i < before_rows.size(); ++i) {
    out.push_back({before_rows[i].area_name, before_rows[i].num_topics,
                   before_rows[i].covered_topics,
                   after_rows[i].covered_topics});
  }
  return out;
}

std::vector<std::string> gaps_closed() {
  core::GapFinder before(core::curation());
  auto extended = extended_curation();
  core::GapFinder after(extended);

  std::set<std::string> still_open;
  for (const auto& gap : after.uncovered_outcomes()) {
    still_open.insert(gap.detail_term);
  }
  for (const auto& gap : after.uncovered_topics()) {
    still_open.insert(gap.detail_term);
  }

  std::vector<std::string> closed;
  for (const auto& gap : before.uncovered_outcomes()) {
    if (still_open.count(gap.detail_term) == 0) {
      closed.push_back(gap.detail_term);
    }
  }
  for (const auto& gap : before.uncovered_topics()) {
    if (still_open.count(gap.detail_term) == 0) {
      closed.push_back(gap.detail_term);
    }
  }
  return closed;
}

std::string render_impact_report() {
  std::string out =
      "Coverage impact of the " +
      std::to_string(proposed_activities().size()) +
      " proposed gap-filling activities\n\n";

  TextTable cs2013({"Knowledge Unit", "Before", "After", "Gained"});
  for (std::size_t c = 1; c <= 3; ++c) cs2013.set_align(c, Align::kRight);
  for (const auto& row : cs2013_impact()) {
    cs2013.add_row({row.name,
                    std::to_string(row.covered_before) + "/" +
                        std::to_string(row.total),
                    std::to_string(row.covered_after) + "/" +
                        std::to_string(row.total),
                    row.gained() == 0 ? "" : "+" +
                                                 std::to_string(row.gained())});
  }
  out += "CS2013 (Table I revisited):\n" + cs2013.render() + "\n";

  TextTable tcpp({"Topic Area", "Before", "After", "Gained"});
  for (std::size_t c = 1; c <= 3; ++c) tcpp.set_align(c, Align::kRight);
  for (const auto& row : tcpp_impact()) {
    tcpp.add_row({row.name,
                  std::to_string(row.covered_before) + "/" +
                      std::to_string(row.total),
                  std::to_string(row.covered_after) + "/" +
                      std::to_string(row.total),
                  row.gained() == 0 ? "" : "+" +
                                               std::to_string(row.gained())});
  }
  out += "TCPP (Table II revisited):\n" + tcpp.render() + "\n";

  out += "Gaps closed:";
  for (const auto& term : gaps_closed()) out += " " + term;
  out += "\n";
  return out;
}

}  // namespace pdcu::ext
