#include "pdcu/core/activity.hpp"

namespace pdcu::core {

tax::PageTags Activity::tags() const {
  tax::PageTags tags;
  tags["cs2013"] = cs2013;
  tags["cs2013details"] = cs2013details;
  tags["tcpp"] = tcpp;
  tags["tcppdetails"] = tcppdetails;
  tags["courses"] = courses;
  tags["senses"] = senses;
  tags["medium"] = mediums;
  return tags;
}

}  // namespace pdcu::core
