#include "pdcu/core/link_audit.hpp"

#include "pdcu/support/fs.hpp"
#include "pdcu/support/strings.hpp"

namespace pdcu::core {

namespace strs = pdcu::strings;

namespace {

/// Activities whose original external materials the paper records as
/// de-activated (§IV cites [12] Rifkin, [35] Chesebrough & Turner, [37]
/// Andrianoff & Levine).
struct KnownDead {
  const char* slug;
  const char* note;
};
constexpr KnownDead kKnownDead[] = {
    {"parallelradixsort",
     "Rifkin (1994) cited external activity materials; links de-activated "
     "(paper SSIV)"},
    {"intersectionsynchronization",
     "Chesebrough & Turner (2010) supporting links de-activated (paper "
     "SSIV)"},
    {"dinnerpartyproducers",
     "Andrianoff & Levine (2002) role-play materials link de-activated "
     "(paper SSIV)"},
};

const char* known_dead_note(const std::string& slug) {
  for (const auto& entry : kKnownDead) {
    if (slug == entry.slug) return entry.note;
  }
  return nullptr;
}

}  // namespace

std::vector<LinkAuditEntry> audit_links(
    const std::vector<Activity>& activities) {
  std::vector<LinkAuditEntry> out;
  for (const auto& activity : activities) {
    LinkAuditEntry entry;
    entry.slug = activity.slug;
    entry.url = activity.origin_url;
    if (const char* note = known_dead_note(activity.slug)) {
      entry.status = LinkStatus::kKnownDead;
      entry.note = note;
    } else if (activity.origin_url.empty()) {
      entry.status = LinkStatus::kSelfContained;
      entry.note = "details carried inline";
    } else if (strs::starts_with(activity.origin_url, "https://")) {
      entry.status = LinkStatus::kLinked;
      entry.note = "external materials not yet mirrored";
    } else {
      entry.status = LinkStatus::kAtRisk;
      entry.note = "plain-http link, unarchived";
    }
    out.push_back(std::move(entry));
  }
  return out;
}

std::vector<std::size_t> audit_counts(
    const std::vector<LinkAuditEntry>& entries) {
  std::vector<std::size_t> counts(4, 0);
  for (const auto& entry : entries) {
    counts[static_cast<std::size_t>(entry.status)] += 1;
  }
  return counts;
}

std::string render_link_audit(const std::vector<LinkAuditEntry>& entries) {
  auto counts = audit_counts(entries);
  std::string out = "=== External-materials audit (paper SSIV) ===\n";
  out += "self-contained: " + std::to_string(counts[0]) +
         ", known-dead: " + std::to_string(counts[1]) +
         ", at-risk (http): " + std::to_string(counts[2]) +
         ", linked (https): " + std::to_string(counts[3]) + "\n\n";
  for (const auto& entry : entries) {
    if (entry.status == LinkStatus::kSelfContained) continue;
    const char* label = entry.status == LinkStatus::kKnownDead ? "DEAD  "
                        : entry.status == LinkStatus::kAtRisk ? "RISK  "
                                                              : "LINKED";
    out += std::string(label) + " " + strs::pad_right(entry.slug, 30) +
           " " + (entry.url.empty() ? "-" : entry.url) + "\n";
  }
  out += "\nRecommendation (SSIV): mirror linked materials into the "
         "repository so a copy exists at an independent location; see "
         "export_archive_plan().\n";
  return out;
}

Expected<std::size_t> export_archive_plan(
    const std::vector<Activity>& activities,
    const std::filesystem::path& out_dir) {
  std::size_t written = 0;
  for (const auto& activity : activities) {
    if (!activity.has_external_resources()) continue;
    std::string readme;
    readme += "# Materials mirror: " + activity.title + "\n\n";
    readme += "Source: " + activity.origin_url + "\n\n";
    readme += "Place archived copies of the external materials (slides, "
              "handouts, instructor guides) in this directory so the "
              "activity survives link rot (PDCunplugged paper, SSIV).\n\n";
    readme += "Citations to archive:\n\n";
    for (const auto& citation : activity.citations) {
      readme += "- " + citation.text + "\n";
      if (!citation.url.empty()) {
        readme += "  (materials: " + citation.url + ")\n";
      }
    }
    auto status = fs::write_file(
        out_dir / "materials" / activity.slug / "README.md", readme);
    if (!status) return status.error();
    ++written;
  }
  return written;
}

}  // namespace pdcu::core
