#include "pdcu/core/coverage.hpp"

#include <algorithm>
#include <set>

#include "pdcu/support/strings.hpp"
#include "pdcu/support/text_table.hpp"

namespace pdcu::core {

namespace strs = pdcu::strings;

std::string Cs2013Row::percent_coverage() const {
  return strs::percent(static_cast<double>(covered_outcomes),
                       static_cast<double>(num_outcomes));
}

std::string TcppRow::percent_coverage() const {
  return strs::percent(static_cast<double>(covered_topics),
                       static_cast<double>(num_topics));
}

std::string TcppCategoryRow::percent_coverage() const {
  return strs::percent(static_cast<double>(covered_topics),
                       static_cast<double>(num_topics));
}

CoverageAnalyzer::CoverageAnalyzer(const std::vector<Activity>& activities)
    : activities_(activities) {}

std::vector<std::string> CoverageAnalyzer::covered_outcomes(
    const cur::KnowledgeUnit& unit) const {
  std::set<std::string> present;
  const std::string prefix = unit.abbrev + "_";
  for (const auto& activity : activities_) {
    for (const auto& term : activity.cs2013details) {
      if (strs::starts_with(term, prefix)) present.insert(term);
    }
  }
  return {present.begin(), present.end()};
}

std::vector<std::string> CoverageAnalyzer::covered_topics(
    const cur::TcppArea& area) const {
  std::set<std::string> area_terms;
  for (const auto* topic : area.all_topics()) area_terms.insert(topic->term());
  std::set<std::string> present;
  for (const auto& activity : activities_) {
    for (const auto& term : activity.tcppdetails) {
      if (area_terms.count(term) != 0) present.insert(term);
    }
  }
  return {present.begin(), present.end()};
}

std::vector<Cs2013Row> CoverageAnalyzer::cs2013_table() const {
  std::vector<Cs2013Row> rows;
  for (const auto& unit : cur::Cs2013Catalog::instance().units()) {
    Cs2013Row row;
    row.unit_name = unit.name;
    row.elective = unit.elective;
    row.num_outcomes = unit.outcomes.size();
    row.covered_outcomes = covered_outcomes(unit).size();
    row.total_activities = static_cast<std::size_t>(std::count_if(
        activities_.begin(), activities_.end(), [&](const Activity& a) {
          return std::find(a.cs2013.begin(), a.cs2013.end(), unit.term) !=
                 a.cs2013.end();
        }));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<TcppRow> CoverageAnalyzer::tcpp_table() const {
  std::vector<TcppRow> rows;
  for (const auto& area : cur::TcppCatalog::instance().areas()) {
    TcppRow row;
    row.area_name = area.name;
    row.num_topics = area.topic_count();
    row.covered_topics = covered_topics(area).size();
    row.total_activities = static_cast<std::size_t>(std::count_if(
        activities_.begin(), activities_.end(), [&](const Activity& a) {
          return std::find(a.tcpp.begin(), a.tcpp.end(), area.term) !=
                 a.tcpp.end();
        }));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<TcppCategoryRow> CoverageAnalyzer::tcpp_category_table() const {
  std::vector<TcppCategoryRow> rows;
  for (const auto& area : cur::TcppCatalog::instance().areas()) {
    for (const auto& category : area.categories) {
      TcppCategoryRow row;
      row.area_name = area.name;
      row.category_name = category.name;
      row.num_topics = category.topics.size();
      std::set<std::string> cat_terms;
      for (const auto& topic : category.topics) cat_terms.insert(topic.term());
      std::set<std::string> present;
      for (const auto& activity : activities_) {
        for (const auto& term : activity.tcppdetails) {
          if (cat_terms.count(term) != 0) present.insert(term);
        }
      }
      row.covered_topics = present.size();
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

std::string CoverageAnalyzer::render_cs2013_table() const {
  TextTable table({"Knowledge Unit", "Num. Learning Outcomes",
                   "Num. Covered Outcomes", "Percent Coverage",
                   "Total Activities"},
                  24);
  for (std::size_t c = 1; c <= 4; ++c) table.set_align(c, Align::kRight);
  for (const auto& row : cs2013_table()) {
    table.add_row({row.unit_name + (row.elective ? " (E)" : ""),
                   std::to_string(row.num_outcomes),
                   std::to_string(row.covered_outcomes),
                   row.percent_coverage(),
                   std::to_string(row.total_activities)});
  }
  return table.render();
}

std::string CoverageAnalyzer::render_tcpp_table() const {
  TextTable table({"Topic Area", "Num. Topics", "Num. Covered Topics",
                   "Percent Coverage", "Total Activities"},
                  24);
  for (std::size_t c = 1; c <= 4; ++c) table.set_align(c, Align::kRight);
  for (const auto& row : tcpp_table()) {
    table.add_row({row.area_name, std::to_string(row.num_topics),
                   std::to_string(row.covered_topics), row.percent_coverage(),
                   std::to_string(row.total_activities)});
  }
  return table.render();
}

}  // namespace pdcu::core
