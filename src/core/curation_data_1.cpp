// Curation data, part 1 of 2: activities 1-19 (see curation_parts.hpp).
//
// Each entry is reconstructed from the literature the paper cites; the tag
// matrix across both parts reproduces every aggregate reported in the
// paper's §III (verified by tests/core/coverage_test.cpp).
#include "curation_parts.hpp"

namespace pdcu::core::detail {

namespace {

const char* kBachelis1994 =
    "G. F. Bachelis, B. R. Maxim, D. A. James, and Q. F. Stout, \"Bringing "
    "algorithms to life: Cooperative computing activities using students as "
    "processors,\" School Science and Mathematics, vol. 94, no. 4, pp. "
    "176-186, 1994.";
const char* kMaxim1990 =
    "B. R. Maxim, G. Bachelis, D. James, and Q. Stout, \"Introducing "
    "parallel algorithms in undergraduate computer science courses "
    "(tutorial session),\" in SIGCSE '90, pp. 255-, 1990.";
const char* kKitchen1992 =
    "A. T. Kitchen, N. C. Schaller, and P. T. Tymann, \"Game playing as a "
    "technique for teaching parallel computing concepts,\" SIGCSE Bull., "
    "vol. 24, no. 3, pp. 35-38, 1992.";
const char* kRifkin1994 =
    "A. Rifkin, \"Teaching parallel programming and software engineering "
    "concepts to high school students,\" SIGCSE Bull., vol. 26, no. 1, pp. "
    "26-30, 1994.";
const char* kSivilottiDemirbas2003 =
    "P. A. G. Sivilotti and M. Demirbas, \"Introducing middle school girls "
    "to fault tolerant computing,\" in SIGCSE '03, pp. 327-331, 2003.";
const char* kSivilottiPike2007 =
    "P. A. G. Sivilotti and S. M. Pike, \"The suitability of kinesthetic "
    "learning activities for teaching distributed algorithms,\" in SIGCSE "
    "'07, pp. 362-366, 2007.";
const char* kBenAri1999 =
    "M. Ben-Ari and Y. B.-D. Kolikant, \"Thinking parallel: The process of "
    "learning concurrency,\" in ITiCSE '99, pp. 13-16, 1999.";
const char* kKolikant2001 =
    "Y. B.-D. Kolikant, \"Gardeners and cinema tickets: High school "
    "students' preconceptions of concurrency,\" Computer Science Education, "
    "vol. 11, no. 3, pp. 221-245, 2001.";
const char* kLewandowski2007 =
    "G. Lewandowski, D. J. Bouvier, R. McCartney, K. Sanders, and B. Simon, "
    "\"Commonsense computing (episode 3): Concurrency and concert "
    "tickets,\" in ICER '07, pp. 133-144, 2007.";
const char* kLewandowski2010 =
    "G. Lewandowski, D. J. Bouvier, T.-Y. Chen, R. McCartney, K. Sanders, "
    "B. Simon, and T. VanDeGrift, \"Commonsense understanding of "
    "concurrency: Computing students and concert tickets,\" Commun. ACM, "
    "vol. 53, no. 7, pp. 60-70, 2010.";
const char* kLloyd1994 =
    "W. S. Lloyd, \"Exploring the byzantine generals problem with beginning "
    "computer science students,\" SIGCSE Bull., vol. 26, no. 4, pp. 21-24, "
    "1994.";
const char* kNeeman2006 =
    "H. Neeman, L. Lee, J. Mullen, and G. Newman, \"Analogies for teaching "
    "parallel computing to inexperienced programmers,\" in ITiCSE-WGR '06, "
    "pp. 64-67, 2006.";
const char* kNeeman2008 =
    "H. Neeman, H. Severini, and D. Wu, \"Supercomputing in plain english: "
    "Teaching cyberinfrastructure to computing novices,\" SIGCSE Bull., "
    "vol. 40, no. 2, pp. 27-30, 2008.";
const char* kGiacaman2012 =
    "N. Giacaman, \"Teaching by example: Using analogies and live coding "
    "demonstrations to teach parallel computing concepts to undergraduate "
    "students,\" in IPDPSW '12, pp. 1295-1298, 2012.";
const char* kBell2009 =
    "T. Bell, J. Alexander, I. Freeman, and M. Grimley, \"Computer science "
    "unplugged: School students doing real computing without computers,\" "
    "The New Zealand Journal of Applied Computing and Information "
    "Technology, vol. 13, no. 1, pp. 20-29, 2009.";
const char* kMoore2000 =
    "M. Moore, \"Introducing parallel processing concepts,\" J. Comput. "
    "Sci. Coll., vol. 15, no. 3, pp. 173-180, 2000.";
const char* kGhafoor2019 =
    "S. K. Ghafoor, D. W. Brown, M. Rogers, and T. Hines, \"Unplugged "
    "activities to introduce parallel computing in introductory programming "
    "classes: An experience report,\" in ITiCSE '19, pp. 309-309, 2019.";
const char* kSivilotti2003Url =
    "http://web.cse.ohio-state.edu/~sivilotti.1/outreach/FESC02/";

}  // namespace

void append_part1(std::vector<Activity>& out) {
  // 1 -----------------------------------------------------------------------
  out.push_back(expand(ActivitySpec{
      "FindSmallestCard",
      1994,
      "2019-10-01",
      {"Gilbert Bachelis", "Bruce Maxim", "David James", "Quentin Stout"},
      "",  // no external resources survive for the 1994 description
      "Each student receives one numbered card. The class must find the "
      "smallest card without any single person looking at every card. "
      "Students pair up, compare cards, and the holder of the larger card "
      "sits down; rounds repeat until one student remains standing with the "
      "minimum. The dramatization makes the tournament (tree) reduction "
      "pattern concrete: n/2 comparisons happen simultaneously in the first "
      "round, and only ceil(log2 n) rounds are needed, compared with n-1 "
      "sequential comparisons for one person scanning a deck. A follow-up "
      "discussion contrasts the number of *rounds* (parallel steps) with "
      "the total number of comparisons (work).",
      "Requires standing and pairing up; students with mobility "
      "constraints can participate by raising cards from their seats while "
      "a partner relays comparisons. Large-print cards help low-vision "
      "students.",
      "No formal assessment published. Bachelis et al. report informal "
      "success with pre-college and undergraduate audiences.",
      {{"Kitchen, Schaller & Tymann (1992)",
        "Described as a game for teaching parallel minimum-finding; "
        "students hold playing cards and the instructor coordinates "
        "rounds."}},
      {{kBachelis1994, ""}, {kMaxim1990, ""}, {kKitchen1992, ""}},
      {"PD_2", "PD_5", "PAAP_4", "PAAP_7"},
      {"A_MinMaxFinding", "C_CostsOfComputation", "C_ComputationDecomposition"},
      {"CS1", "CS2", "DSA"},
      {"touch", "visual"},
      {"cards"},
      "find_smallest_card"}));

  // 2 -----------------------------------------------------------------------
  out.push_back(expand(ActivitySpec{
      "OddEvenTranspositionSort",
      1994,
      "2019-10-01",
      {"Adam Rifkin"},
      kSivilotti2003Url,
      "Students stand in a row, each holding a number. On odd ticks, "
      "students in odd positions compare with their right neighbor and swap "
      "if out of order; on even ticks, students in even positions do the "
      "same. After at most n rounds the line is sorted. The dramatization "
      "shows how a sequential O(n^2) bubble sort becomes an O(n)-round "
      "parallel algorithm when disjoint neighbor pairs act simultaneously, "
      "and why alternating phases prevent two students from swapping with "
      "both neighbors at once.",
      "Whole-body movement activity: students must stand, compare, and "
      "physically swap positions. A seated variation passes cards instead "
      "of moving bodies. Numbers should be large enough to read across a "
      "classroom.",
      "Partially assessed as part of the workshop study of Sivilotti and "
      "Demirbas; student feedback indicated the dramatization clarified "
      "why parallel bubble sort needs alternating phases.",
      {{"Sivilotti (2003 instructor write-up)",
        "A one-page instructor guide for running the dramatization, "
        "including timing-by-clapping to emphasize synchronous rounds."}},
      {{kRifkin1994, ""}, {kSivilottiDemirbas2003, kSivilotti2003Url}},
      {"PD_1", "PD_2", "PAAP_3", "PAAP_5"},
      {"A_Sorting", "C_SPMD", "C_Speedup"},
      {"K_12", "CS2", "DSA"},
      {"movement", "visual"},
      {"role-play"},
      "odd_even_transposition"}));

  // 3 -----------------------------------------------------------------------
  out.push_back(expand(ActivitySpec{
      "ParallelRadixSort",
      1994,
      "2019-10-03",
      {"Adam Rifkin"},
      "",  // the external materials Rifkin cited have been de-activated
      "Teams of students sort a deck of numbered cards by repeatedly "
      "distributing cards into bins by digit, least significant digit "
      "first. Each team owns a subset of bins, so the distribution step of "
      "every pass happens in parallel; the recombination step makes the "
      "communication cost visible as students carry bins across the room. "
      "The activity highlights that a non-comparison sort parallelizes "
      "differently from comparison sorts: the per-pass work is data "
      "parallel, while the pass order is strictly sequential.",
      "Table-top card handling; suitable for students who prefer to remain "
      "seated. Color-coded bins help distinguish digits at a distance.",
      "No formal assessment published.",
      {},
      {{kRifkin1994, ""}},
      {"PD_5", "PAAP_4"},
      {"A_Sorting"},
      {"K_12", "CS2", "DSA"},
      {"touch", "visual"},
      {"cards"},
      "parallel_radix_sort"}));

  // 4 -----------------------------------------------------------------------
  out.push_back(expand(ActivitySpec{
      "ParallelCardSort",
      1994,
      "2019-10-03",
      {"Gilbert Bachelis", "Bruce Maxim", "David James", "Quentin Stout"},
      "",
      "Groups of students each sort a hand of cards, then pairs of groups "
      "merge their sorted hands, halving the number of groups each round "
      "until a single sorted deck remains. The activity dramatizes parallel "
      "merge sort: the independent sorting phase is embarrassingly "
      "parallel, while the merging tree exposes the diminishing parallelism "
      "near the root. Instructors typically time a one-student sort against "
      "the group sort to make the speedup (and its limits) tangible.",
      "Table-top activity requiring fine motor card handling; a "
      "large-format card set or sorting slips of paper with thick markers "
      "makes the activity easier for students with low vision or limited "
      "dexterity.",
      "Adapted and evaluated in later work: Ghafoor et al. (2019) report "
      "pre/post-test gains when the card sort is used in CS1/CS2.",
      {{"Moore (2000)",
        "Uses the card sort as the opening activity of a parallel "
        "processing unit, with explicit timing of 1, 2, and 4 groups."},
       {"Ghafoor, Brown, Rogers & Hines (2019)",
        "Restructured as a guided worksheet activity with pre/post "
        "assessment in introductory programming classes."}},
      {{kBachelis1994, ""}, {kMoore2000, ""}, {kGhafoor2019, ""}},
      {"PD_2", "PD_4", "PAAP_5"},
      {"A_Sorting", "A_DivideAndConquer"},
      {"CS1", "CS2", "DSA"},
      {"touch", "visual"},
      {"cards"},
      "parallel_card_sort"}));

  // 5 -----------------------------------------------------------------------
  out.push_back(expand(ActivitySpec{
      "SortingNetworks",
      2009,
      "2019-10-05",
      {"Tim Bell", "Jason Alexander", "Isaac Freeman", "Mike Grimley"},
      "https://csunplugged.org/sorting-networks",
      "Six students walk a sorting network chalked on the ground: at each "
      "drawn node two students meet, compare their numbers, and exit left "
      "(smaller) or right (larger). Regardless of starting arrangement the "
      "students emerge sorted. Because different pairs occupy different "
      "nodes simultaneously, the network sorts in far fewer steps than the "
      "number of comparisons, making the distinction between work and "
      "depth physically visible.",
      "Requires walking through a large floor diagram; a desktop version "
      "with tokens on a printed network accommodates students with "
      "mobility constraints. Generally accessible with minor modification.",
      "No formal assessment for PDC outcomes; the CS Unplugged project "
      "reports widespread classroom use of the collection.",
      {},
      {{kBell2009, "https://csunplugged.org"}},
      {"PD_5", "PA_8"},
      {"A_Sorting", "C_DependenciesDAG", "C_DataVsControlParallelism"},
      {"K_12", "CS0", "CS1"},
      {"movement", "visual"},
      {"game", "board"},
      "sorting_network"}));

  // 6 -----------------------------------------------------------------------
  out.push_back(expand(ActivitySpec{
      "SweeteningTheJuice",
      1999,
      "2019-10-08",
      {"Mordechai Ben-Ari", "Yifat Ben-David Kolikant"},
      "",
      "Two robots share the job of sweetening a glass of juice, each "
      "executing: read the sweetness level; if below target, add one "
      "spoonful. Students trace interleavings on a worksheet and discover "
      "the schedule in which both robots read 'not sweet enough' before "
      "either adds sugar, producing over-sweetened juice. The scenario "
      "motivates mutual exclusion from students' everyday intuition "
      "(constructivism): the fix they invent - one robot locks the glass - "
      "is exactly a critical section.",
      "Paper-and-pencil scenario with no movement requirement; the "
      "worksheet can be read aloud for low-vision students.",
      "No formal assessment published; Ben-Ari and Kolikant report "
      "qualitatively that high-school students could produce and explain "
      "the erroneous interleaving afterward.",
      {},
      {{kBenAri1999, ""}},
      {"PCC_1"},
      {"C_DataRaces", "C_CriticalRegions", "C_CrosscuttingConcurrency"},
      {"K_12", "CS2", "Systems"},
      {"visual"},
      {"paper"},
      "juice_robots"}));

  // 7 -----------------------------------------------------------------------
  out.push_back(expand(ActivitySpec{
      "ConcertTickets",
      2001,
      "2019-10-08",
      {"Yifat Ben-David Kolikant"},
      "",
      "Several box offices sell tickets for the same concert from a shared "
      "pool of seats. Students play clerks who each follow: check remaining "
      "seats; collect money; issue a ticket. Without coordination two "
      "clerks sell the last seat twice. Students are asked to design the "
      "protocol that prevents overselling and to articulate what can go "
      "wrong between 'check' and 'issue'. The activity surfaces "
      "preconceptions about simultaneity and is the canonical example used "
      "by the Commonsense Computing studies of how novices reason about "
      "concurrency before instruction.",
      "Scenario-based; works as a whole-class discussion or a written "
      "exercise. Accessible to most audiences with minimal modification.",
      "Extensively studied: Lewandowski et al. (2007, 2010) analyzed "
      "hundreds of student solutions, finding most novices spontaneously "
      "propose workable (if inefficient) coordination strategies.",
      {{"Lewandowski et al. (2007, 2010)",
        "The 'Commonsense Computing' refinement: posed to students before "
        "any instruction, with a coding rubric for solution strategies."}},
      {{kKolikant2001, ""},
       {kLewandowski2007, ""},
       {kLewandowski2010, ""}},
      {"PCC_2", "CC_2"},
      {"C_ConcurrencyDefects", "C_DataRaces", "C_ClientServer",
       "C_CrosscuttingConcurrency"},
      {"K_12", "CS0", "CS1"},
      {"visual", "accessible"},
      {"paper"},
      "concert_tickets"}));

  // 8 -----------------------------------------------------------------------
  out.push_back(expand(ActivitySpec{
      "GardenersAndSharedWork",
      2001,
      "2019-10-10",
      {"Yifat Ben-David Kolikant"},
      "",
      "A team of gardeners must water every tree in an orchard exactly "
      "once, but they cannot see each other and can only leave notes at "
      "the gate. Students propose coordination schemes - partitioning rows "
      "in advance, marking watered trees, appointing a coordinator - and "
      "evaluate each against duplicated and skipped work. The analogy "
      "introduces distributed coordination without shared memory: state "
      "lives in the world (the trees, the gate notes), messages are "
      "asynchronous, and agreement must be reached despite no gardener "
      "having a global view.",
      "Pure verbal/written analogy; no visual materials required, making "
      "it suitable for blind and low-vision students.",
      "No formal assessment published; Kolikant (2001) analyzes students' "
      "proposed protocols as evidence of preconceptions about distributed "
      "agreement.",
      {},
      {{kKolikant2001, ""}},
      {"DS_7", "CC_2"},
      {"C_DistributedCoordination", "C_TasksAndThreads"},
      {"K_12", "DSA", "Systems"},
      {"accessible"},
      {"analogy"},
      "gardeners"}));

  // 9 -----------------------------------------------------------------------
  out.push_back(expand(ActivitySpec{
      "SelfStabilizingTokenRing",
      2003,
      "2019-10-12",
      {"Paolo Sivilotti", "Murat Demirbas"},
      kSivilotti2003Url,
      "Students stand in a circle, each holding a number of fingers up "
      "(their state). The student designated as the 'root' follows a "
      "different rule from everyone else, exactly as in Dijkstra's K-state "
      "self-stabilizing token ring: a non-root student copies their left "
      "neighbor's value when it differs (holding the token while they "
      "differ), and the root increments when the values match. Starting "
      "from arbitrary - even adversarially scrambled - hand states, the "
      "circle always converges to exactly one token circulating, "
      "dramatizing self-stabilization and mutual exclusion. Originally run "
      "as an outreach workshop introducing middle-school girls to fault "
      "tolerant computing.",
      "Requires standing in a circle and signaling with hands; a seated "
      "variation uses numbered cards on desks. Signals must be visible "
      "across the circle.",
      "Sivilotti and Demirbas (2003) report pre/post attitude surveys "
      "from the outreach workshop with positive shifts toward computing.",
      {},
      {{kSivilottiDemirbas2003, kSivilotti2003Url}},
      {"PCC_1"},
      {"K_FaultTolerance", "K_SelfStabilization", "C_MutualExclusionProblem"},
      {"K_12", "DSA", "Systems"},
      {"movement", "visual"},
      {"role-play"},
      "token_ring"}));

  // 10 ----------------------------------------------------------------------
  out.push_back(expand(ActivitySpec{
      "StableLeaderElection",
      2007,
      "2019-10-15",
      {"Paolo Sivilotti", "Scott Pike"},
      "http://web.cse.ohio-state.edu/~sivilotti.1/research/",
      "Students in a ring must elect exactly one leader using only local "
      "comparisons with neighbors, and the election must be *stable*: once "
      "a leader emerges, it never changes even as the algorithm keeps "
      "running. Following the assertional style, students first state the "
      "invariant ('at most one leader, and the maximum id never "
      "disappears') and then check that every local rule preserves it, "
      "rather than tracing executions step by step. Used to introduce "
      "upper-level students to reasoning about all executions of a "
      "concurrent algorithm at once.",
      "Standing ring formation with card exchanges; a seated variant "
      "passes index cards along rows. Ids should be large-print.",
      "Sivilotti and Pike (2007) surveyed students in an upper-division "
      "distributed algorithms course; responses favored the kinesthetic "
      "treatment over lecture-only presentation of the same algorithm.",
      {},
      {{kSivilottiPike2007, ""}},
      {"PCC_9", "PD_3"},
      {"C_LeaderElection", "C_SafetyLiveness"},
      {"CS2", "DSA", "Systems"},
      {"movement", "visual"},
      {"role-play"},
      "leader_election"}));

  // 11 ----------------------------------------------------------------------
  out.push_back(expand(ActivitySpec{
      "NondeterministicSorting",
      2007,
      "2019-10-15",
      {"Paolo Sivilotti", "Scott Pike"},
      "http://web.cse.ohio-state.edu/~sivilotti.1/research/",
      "Students hold numbered cards in a row. Any two adjacent students "
      "may, at any time and in any order, compare and swap if out of "
      "order - there is no global schedule at all. The class verifies an "
      "assertional argument: the multiset of values is invariant, "
      "out-of-order adjacent pairs can only decrease, so *every* execution "
      "terminates with a sorted row no matter which pairs act when. The "
      "activity teaches that correctness can be proved for all "
      "interleavings at once, the heart of the assertional view of "
      "concurrency.",
      "Can be run standing or seated; the essential action is pairwise "
      "card comparison. Works with tactile (braille-labeled) cards.",
      "Evaluated together with the other kinesthetic activities in "
      "Sivilotti and Pike (2007) via student surveys.",
      {},
      {{kSivilottiPike2007, ""}},
      {"FM_5", "PD_3"},
      {"C_Nondeterminism", "A_Sorting", "K_CrosscuttingNondeterminism"},
      {"CS2", "DSA", "Systems"},
      {"movement", "visual"},
      {"cards"},
      "nondeterministic_sort"}));

  // 12 ----------------------------------------------------------------------
  out.push_back(expand(ActivitySpec{
      "ParallelGarbageCollection",
      2007,
      "2019-10-18",
      {"Paolo Sivilotti", "Scott Pike"},
      "http://web.cse.ohio-state.edu/~sivilotti.1/research/",
      "Students play objects on the heap, holding strings that represent "
      "references; some students are 'mutators' who re-point strings while "
      "a 'collector' student concurrently marks reachable objects, "
      "three-color style (white/gray/black signs). The class hunts for the "
      "schedule in which a mutator hides a live object behind an already "
      "blackened one, motivating the tri-color invariant: no black object "
      "points to a white one. Students then act as the write barrier that "
      "restores the invariant, and argue (assertionally) that no live "
      "object is ever collected.",
      "Requires standing and holding strings; a tabletop variant uses "
      "yarn between labeled cups. Color signs should be distinguishable "
      "by shape as well as color for color-blind students.",
      "Evaluated via student surveys in Sivilotti and Pike (2007).",
      {},
      {{kSivilottiPike2007, ""}},
      {"PCC_1"},
      {"C_SafetyLiveness", "C_TasksAndThreads", "C_DependenciesDAG"},
      {"CS2", "DSA", "Systems"},
      {"movement", "visual"},
      {"role-play"},
      "parallel_gc"}));

  // 13 ----------------------------------------------------------------------
  out.push_back(expand(ActivitySpec{
      "ByzantineGenerals",
      1994,
      "2019-10-20",
      {"William Lloyd"},
      "",
      "Student 'generals' surrounding a city must agree to attack or "
      "retreat by exchanging written messages, but some generals are "
      "traitors who may send conflicting messages to different peers. "
      "Played in rounds with folded notes, the game lets the class "
      "discover that with three generals and one traitor the loyal "
      "generals cannot agree, while with four or more they can - the "
      "classic n > 3f bound. The activity introduces agreement under "
      "faults to beginning students long before they can read the "
      "Lamport-Shostak-Pease proof.",
      "Message-passing with folded paper notes; no movement beyond "
      "passing. Roles can be assigned so non-speaking students "
      "participate fully.",
      "No formal assessment published; Lloyd (1994) reports classroom "
      "experience with beginning CS students.",
      {},
      {{kLloyd1994, ""}},
      {"DS_7", "CC_2", "PCC_9"},
      {"C_ConsensusAgreement", "C_CommunicationCost"},
      {"K_12", "CS2", "Systems"},
      {"visual", "movement"},
      {"role-play", "paper"},
      "byzantine_generals"}));

  // 14 ----------------------------------------------------------------------
  out.push_back(expand(ActivitySpec{
      "LongDistancePhoneCall",
      2006,
      "2019-10-22",
      {"Henry Neeman", "Lloyd Lee", "Julia Mullen", "Gerard Newman"},
      "http://www.oscer.ou.edu/education.php",
      "From the 'Supercomputing in Plain English' workshop series: sending "
      "data between processors is like a long-distance phone call with a "
      "connection charge (latency) and a per-minute charge (inverse "
      "bandwidth). Many short calls pay the connection charge over and "
      "over; one long call amortizes it. Students compute the cost of "
      "sending one large message versus many small ones and derive why "
      "parallel programs aggregate communication. The paper notes this "
      "analogy is aging: students with unlimited cell plans may never have "
      "seen per-minute charges.",
      "Pure verbal/numeric analogy requiring no materials; accessible to "
      "blind students. Consider updating the framing (e.g. delivery fees "
      "on orders) for audiences unfamiliar with per-minute billing.",
      "No formal assessment published; OSCER reports extensive workshop "
      "use with computing novices.",
      {},
      {{kNeeman2006, ""}, {kNeeman2008, ""}},
      {"PP_3", "PA_8"},
      {"C_CommunicationOverhead", "C_LatencyBandwidth"},
      {"CS0", "CS1", "Systems"},
      {"accessible"},
      {"analogy"},
      "phone_call"}));

  // 15 ----------------------------------------------------------------------
  out.push_back(expand(ActivitySpec{
      "DesertIslands",
      2006,
      "2019-10-22",
      {"Henry Neeman", "Lloyd Lee", "Julia Mullen", "Gerard Newman"},
      "http://www.oscer.ou.edu/education.php",
      "Each processor is a person on their own desert island with a "
      "private notebook (local memory); islands exchange information only "
      "by bottled messages (message passing). Nothing on another island "
      "can be seen directly - to learn anything you must ask and wait. "
      "The analogy defines distributed memory MIMD computing and is "
      "contrasted with the shared-whiteboard picture of shared memory, "
      "setting up the shared-vs-distributed design space.",
      "Verbal analogy, optionally illustrated with a sketch; works "
      "without any visual aid.",
      "No formal assessment published.",
      {},
      {{kNeeman2006, ""}, {kNeeman2008, ""}},
      {"PA_1"},
      {"K_MIMD", "C_SharedVsDistributedMemory"},
      {"CS0", "CS1", "Systems"},
      {"visual"},
      {"analogy"},
      ""}));

  // 16 ----------------------------------------------------------------------
  out.push_back(expand(ActivitySpec{
      "JigsawPuzzle",
      2006,
      "2019-10-24",
      {"Henry Neeman", "Lloyd Lee", "Julia Mullen", "Gerard Newman"},
      "http://www.oscer.ou.edu/education.php",
      "One person assembles a jigsaw puzzle in an hour. Two people at the "
      "same table (shared memory) nearly halve the time, but contend for "
      "the piece pile; four people crowd the table; at some point adding "
      "people slows the build. Splitting the puzzle across tables "
      "(distributed memory) removes contention but requires walking "
      "between tables to match border pieces. The analogy grounds "
      "multicore scaling limits, contention, and the shared/distributed "
      "trade-off in one scenario students can reason about quantitatively.",
      "Works as a verbal analogy or a live demonstration with a real "
      "puzzle; the live version involves fine motor manipulation.",
      "No formal assessment published.",
      {},
      {{kNeeman2006, ""}, {kNeeman2008, ""}},
      {"PA_1", "PA_2", "PP_1"},
      {"K_Multicore", "C_SharedVsDistributedMemory", "C_StaticLoadBalancing"},
      {"CS0", "CS1", "Systems"},
      {"visual"},
      {"analogy"},
      ""}));

  // 17 ----------------------------------------------------------------------
  out.push_back(expand(ActivitySpec{
      "MowingTheLawn",
      2006,
      "2019-10-24",
      {"Henry Neeman", "Lloyd Lee", "Julia Mullen", "Gerard Newman"},
      "http://www.oscer.ou.edu/education.php",
      "A large lawn must be mowed by several people with mowers. Dividing "
      "the lawn into equal strips in advance (static load balancing) "
      "fails when one strip hides a rock garden; letting each mower take "
      "the next unmowed patch when free (dynamic load balancing) adapts "
      "but costs coordination each time. Students estimate completion "
      "times under both schemes for lawns with uneven difficulty and "
      "discover the static/dynamic trade-off and the idle-worker problem.",
      "Verbal analogy with optional diagram; no materials required.",
      "No formal assessment published.",
      {},
      {{kNeeman2006, ""}, {kNeeman2008, ""}},
      {"PP_1", "PD_4"},
      {"C_DynamicLoadBalancing", "C_StaticLoadBalancing",
       "C_ComputationDecomposition", "C_CostsOfComputation"},
      {"CS0", "CS2", "DSA"},
      {"accessible"},
      {"analogy"},
      "load_balancing"}));

  // 18 ----------------------------------------------------------------------
  out.push_back(expand(ActivitySpec{
      "TooManyCooks",
      2008,
      "2019-10-26",
      {"Henry Neeman", "Horst Severini", "Daniel Wu"},
      "",
      "Cooks share one kitchen to produce a banquet. Two cooks are faster "
      "than one, but they queue for the single stove (resource "
      "contention); a specialist pastry chef and a grill cook divide "
      "dishes by skill (heterogeneous processing elements); and everyone "
      "stops while the head chef tastes the sauce (synchronization "
      "point). The analogy packages contention, heterogeneity, and "
      "synchronization stalls into one extensible scenario that "
      "instructors can grow as a course progresses.",
      "Verbal analogy; optionally staged with props. No movement or "
      "visual requirement in the spoken form.",
      "No formal assessment published.",
      {},
      {{kNeeman2008, ""}},
      {"PP_5", "PA_4"},
      {"K_Heterogeneous", "C_Synchronization"},
      {"CS2", "DSA", "Systems"},
      {"accessible"},
      {"analogy", "food"},
      ""}));

  // 19 ----------------------------------------------------------------------
  out.push_back(expand(ActivitySpec{
      "PizzaParallelism",
      2012,
      "2019-10-28",
      {"Nasser Giacaman"},
      "",
      "A pizzeria fills a large order: one cook stretches dough, another "
      "spreads sauce, a third tops, while the owner (the master) hands "
      "out the next pizza to whoever is free. Giacaman pairs the analogy "
      "with live-coding demonstrations for sophomores: the kitchen maps "
      "to a task pool, cooks to worker threads, and the owner's decisions "
      "to a scheduler. Students predict throughput as cooks are added and "
      "identify the point where the single oven becomes the bottleneck.",
      "Verbal analogy designed for lecture use; no materials required.",
      "No formal assessment of the analogy in isolation; Giacaman (2012) "
      "reports course-level experience teaching sophomores with analogies "
      "plus live demonstrations.",
      {},
      {{kGiacaman2012, ""}},
      {"PD_2", "PD_4", "PP_1"},
      {"C_TaskSpawn", "C_ComputationDecomposition", "C_MasterWorker"},
      {"CS1", "CS2", "DSA"},
      {"accessible"},
      {"analogy", "food"},
      ""}));
}

}  // namespace pdcu::core::detail
