// Internal: the built-in curation is assembled from two translation units
// to keep file sizes manageable. Not installed; include only from core.
#pragma once

#include <vector>

#include "pdcu/core/activity.hpp"

namespace pdcu::core::detail {

/// A compact builder used by the curation data files.
struct ActivitySpec {
  std::string title;
  int year;
  std::string date;                       ///< YYYY-MM-DD added-to-curation
  std::vector<std::string> authors;
  std::string origin_url;                 ///< "" = no external resources
  std::string details;
  std::string accessibility;
  std::string assessment;
  std::vector<Variation> variations;
  std::vector<Citation> citations;
  std::vector<std::string> lo_terms;      ///< cs2013details, e.g. "PD_2"
  std::vector<std::string> topic_terms;   ///< tcppdetails, e.g. "C_Speedup"
  std::vector<std::string> courses;
  std::vector<std::string> senses;
  std::vector<std::string> mediums;
  std::string simulation;
};

/// Expands a spec into a full Activity: derives the slug from the title,
/// the cs2013 knowledge-unit terms from the learning-outcome terms, and the
/// tcpp area terms from the topic terms (guaranteeing tag consistency).
Activity expand(const ActivitySpec& spec);

void append_part1(std::vector<Activity>& out);
void append_part2(std::vector<Activity>& out);

}  // namespace pdcu::core::detail
