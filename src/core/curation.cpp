#include "pdcu/core/curation.hpp"

#include <algorithm>
#include <cassert>

#include "curation_parts.hpp"
#include "pdcu/curriculum/cs2013.hpp"
#include "pdcu/curriculum/tcpp.hpp"
#include "pdcu/support/slug.hpp"

namespace pdcu::core {

namespace detail {

Activity expand(const ActivitySpec& spec) {
  Activity a;
  a.title = spec.title;
  a.slug = slugify(spec.title);
  auto date = Date::parse(spec.date);
  assert(date.has_value());
  a.date = date.value();
  a.year = spec.year;
  a.authors = spec.authors;
  a.origin_url = spec.origin_url;
  a.details = spec.details;
  a.accessibility = spec.accessibility;
  a.assessment = spec.assessment;
  a.variations = spec.variations;
  a.citations = spec.citations;
  a.cs2013details = spec.lo_terms;
  a.tcppdetails = spec.topic_terms;
  a.courses = spec.courses;
  a.senses = spec.senses;
  a.mediums = spec.mediums;
  a.simulation = spec.simulation;

  // Derive knowledge-unit terms from learning-outcome terms, preserving
  // first-appearance order. An unresolved detail term is a data bug.
  const auto& cs2013 = cur::Cs2013Catalog::instance();
  for (const auto& lo_term : spec.lo_terms) {
    auto ref = cs2013.resolve_detail_term(lo_term);
    assert(ref.has_value() && "unknown cs2013 detail term in curation data");
    const std::string& unit_term = ref->unit->term;
    if (std::find(a.cs2013.begin(), a.cs2013.end(), unit_term) ==
        a.cs2013.end()) {
      a.cs2013.push_back(unit_term);
    }
  }

  // Derive topic-area terms from topic terms, preserving order.
  const auto& tcpp = cur::TcppCatalog::instance();
  for (const auto& topic_term : spec.topic_terms) {
    auto ref = tcpp.resolve_detail_term_full(topic_term);
    assert(ref.area != nullptr && "unknown tcpp detail term in curation data");
    const std::string& area_term = ref.area->term;
    if (std::find(a.tcpp.begin(), a.tcpp.end(), area_term) == a.tcpp.end()) {
      a.tcpp.push_back(area_term);
    }
  }
  return a;
}

}  // namespace detail

const std::vector<Activity>& curation() {
  static const std::vector<Activity> kCuration = [] {
    std::vector<Activity> out;
    out.reserve(38);
    detail::append_part1(out);
    detail::append_part2(out);
    return out;
  }();
  return kCuration;
}

const Activity* find_activity(std::string_view slug) {
  for (const auto& activity : curation()) {
    if (activity.slug == slug) return &activity;
  }
  return nullptr;
}

}  // namespace pdcu::core
