#include "pdcu/core/gaps.hpp"

#include <algorithm>

#include "pdcu/curriculum/cs2013.hpp"
#include "pdcu/curriculum/tcpp.hpp"

namespace pdcu::core {

namespace {

/// Titles of activities carrying a given detail term in a given tag field.
std::vector<std::string> holders(
    const std::vector<Activity>& activities,
    const std::vector<std::string> Activity::*field, const std::string& term) {
  std::vector<std::string> out;
  for (const auto& a : activities) {
    const auto& tags = a.*field;
    if (std::find(tags.begin(), tags.end(), term) != tags.end()) {
      out.push_back(a.title);
    }
  }
  return out;
}

}  // namespace

GapFinder::GapFinder(const std::vector<Activity>& activities)
    : activities_(activities) {}

std::vector<OutcomeGap> GapFinder::uncovered_outcomes() const {
  std::vector<OutcomeGap> out;
  for (const auto& unit : cur::Cs2013Catalog::instance().units()) {
    for (const auto& outcome : unit.outcomes) {
      std::string term = unit.detail_term(outcome.number);
      if (holders(activities_, &Activity::cs2013details, term).empty()) {
        out.push_back({unit.name, term, outcome.text});
      }
    }
  }
  return out;
}

std::vector<TopicGap> GapFinder::uncovered_topics() const {
  std::vector<TopicGap> out;
  for (const auto& area : cur::TcppCatalog::instance().areas()) {
    for (const auto& category : area.categories) {
      for (const auto& topic : category.topics) {
        std::string term = topic.term();
        if (holders(activities_, &Activity::tcppdetails, term).empty()) {
          out.push_back({area.name, category.name, term, topic.description});
        }
      }
    }
  }
  return out;
}

std::vector<SingleCoverage> GapFinder::single_coverage_outcomes() const {
  std::vector<SingleCoverage> out;
  for (const auto& unit : cur::Cs2013Catalog::instance().units()) {
    for (const auto& outcome : unit.outcomes) {
      std::string term = unit.detail_term(outcome.number);
      auto who = holders(activities_, &Activity::cs2013details, term);
      if (who.size() == 1) {
        out.push_back({term, outcome.text, who.front()});
      }
    }
  }
  return out;
}

std::vector<SingleCoverage> GapFinder::single_coverage_topics() const {
  std::vector<SingleCoverage> out;
  for (const auto& area : cur::TcppCatalog::instance().areas()) {
    for (const auto* topic : area.all_topics()) {
      std::string term = topic->term();
      auto who = holders(activities_, &Activity::tcppdetails, term);
      if (who.size() == 1) {
        out.push_back({term, topic->description, who.front()});
      }
    }
  }
  return out;
}

std::vector<std::string> GapFinder::empty_categories() const {
  std::vector<std::string> out;
  for (const auto& area : cur::TcppCatalog::instance().areas()) {
    for (const auto& category : area.categories) {
      bool any_covered = false;
      for (const auto& topic : category.topics) {
        if (!holders(activities_, &Activity::tcppdetails, topic.term())
                 .empty()) {
          any_covered = true;
          break;
        }
      }
      if (!any_covered) out.push_back(area.name + " / " + category.name);
    }
  }
  return out;
}

std::string GapFinder::render_report() const {
  std::string out = "=== Coverage gaps (SSIII.B, SSIII.C, SSIII.E) ===\n\n";

  out += "CS2013 learning outcomes with no unplugged activity:\n";
  for (const auto& gap : uncovered_outcomes()) {
    out += "  [" + gap.detail_term + "] " + gap.unit_name + ": " +
           gap.outcome_text + "\n";
  }

  out += "\nTCPP topics with no unplugged activity:\n";
  for (const auto& gap : uncovered_topics()) {
    out += "  [" + gap.detail_term + "] " + gap.area_name + " / " +
           gap.category_name + ": " + gap.description + "\n";
  }

  out += "\nTCPP categories with zero coverage:\n";
  for (const auto& name : empty_categories()) {
    out += "  " + name + "\n";
  }

  out += "\nFragile coverage (exactly one activity):\n";
  for (const auto& single : single_coverage_outcomes()) {
    out += "  [" + single.detail_term + "] only \"" + single.activity_title +
           "\"\n";
  }
  for (const auto& single : single_coverage_topics()) {
    out += "  [" + single.detail_term + "] only \"" + single.activity_title +
           "\"\n";
  }
  return out;
}

}  // namespace pdcu::core
